"""Setuptools entry point.

Kept alongside pyproject.toml so `pip install -e .` works in offline
environments without the `wheel` package (legacy editable install).

The version is single-sourced from ``src/repro/__init__.py`` — read
textually so the package (and its dependencies) need not be importable
at install time.
"""

import os
import re

from setuptools import find_packages, setup


def read_version() -> str:
    init_path = os.path.join(
        os.path.dirname(os.path.abspath(__file__)), "src", "repro", "__init__.py"
    )
    with open(init_path, "r", encoding="utf-8") as handle:
        match = re.search(
            r"^__version__\s*=\s*[\"']([^\"']+)[\"']", handle.read(), re.M
        )
    if match is None:
        raise RuntimeError(f"__version__ not found in {init_path}")
    return match.group(1)


setup(
    name="repro",
    version=read_version(),
    description=(
        "Subgraph pattern matching over uncertain graphs with identity "
        "linkage uncertainty (ICDE 2014 reproduction)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy", "networkx"],
)
