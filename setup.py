"""Setuptools entry point.

Kept alongside pyproject.toml so `pip install -e .` works in offline
environments without the `wheel` package (legacy editable install).
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Subgraph pattern matching over uncertain graphs with identity "
        "linkage uncertainty (ICDE 2014 reproduction)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy", "networkx"],
)
