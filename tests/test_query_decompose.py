"""Unit tests for repro.query.decompose (paths, cost model, SET COVER)."""

import pytest

from repro.query.decompose import (
    Decomposition,
    QueryPath,
    decompose_query,
    enumerate_candidate_paths,
    path_cost,
    path_degree,
    path_density,
)
from repro.query.query_graph import QueryGraph
from repro.utils.errors import QueryError


def flat_estimator(label_seq, alpha):
    return 10.0


def figure4_query():
    """The paper's Figure 4: path 1-2-3-4 with extra nodes 5, 6.

    Edges: path (1,2),(2,3),(3,4); cycle edge (1,3); neighbors
    5 adjacent to 3 and 4; 6 adjacent to 4 (degree example).
    """
    return QueryGraph(
        {i: "x" for i in range(1, 7)},
        [(1, 2), (2, 3), (3, 4), (1, 3), (3, 5), (4, 5), (4, 6)],
    )


class TestQueryPath:
    def test_length_and_edges(self):
        path = QueryPath((1, 2, 3))
        assert path.length == 2
        assert path.path_edges == frozenset(
            {frozenset({1, 2}), frozenset({2, 3})}
        )

    def test_position_of(self):
        assert QueryPath((7, 8, 9)).position_of(8) == 1


class TestCostModel:
    def test_path_degree_figure4(self):
        query = figure4_query()
        path = QueryPath((1, 2, 3, 4))
        # degrees: 1->2, 2->2, 3->5 (wait: 3 adj to 2,4,1,5), 4->3(3,5,6)
        # From the paper: degree of path (1,2,3,4) is 5 in their figure;
        # our reconstruction gives sum(deg) - 2*length.
        expected = sum(query.degree(n) for n in (1, 2, 3, 4)) - 2 * 3
        assert path_degree(query, path) == expected

    def test_path_density_figure4(self):
        query = figure4_query()
        path = QueryPath((1, 2, 3, 4))
        # K = edges among {1,2,3,4} = path edges + (1,3) = 4; M = 4
        assert path_density(query, path) == pytest.approx(2 * 4 / (4 * 3))

    def test_density_single_node(self):
        query = QueryGraph({"x": "a"}, [])
        assert path_density(query, QueryPath(("x",))) == 1.0

    def test_cost_decreases_with_degree_and_density(self):
        query = figure4_query()
        dense_path = QueryPath((1, 2, 3, 4))
        sparse_path = QueryPath((4, 6))
        # same estimate: denser/better-connected path is cheaper
        assert path_cost(query, dense_path, 10.0) < path_cost(
            query, sparse_path, 100.0
        )


class TestEnumerate:
    def test_all_paths_within_length(self):
        query = QueryGraph(
            {"a": "x", "b": "x", "c": "x"}, [("a", "b"), ("b", "c")]
        )
        paths = enumerate_candidate_paths(query, 2)
        node_sets = {p.nodes for p in paths}
        # undirected canonical: a-b, b-c, a-b-c
        assert len(node_sets) == 3

    def test_isolated_node_gets_single_path(self):
        query = QueryGraph({"a": "x", "b": "x"}, [])
        paths = enumerate_candidate_paths(query, 2)
        assert {p.nodes for p in paths} == {("a",), ("b",)}

    def test_max_length_respected(self):
        query = figure4_query()
        for path in enumerate_candidate_paths(query, 2):
            assert path.length <= 2

    def test_invalid_max_length(self):
        with pytest.raises(QueryError):
            enumerate_candidate_paths(figure4_query(), 0)


class TestDecomposition:
    def test_greedy_covers_everything(self):
        query = figure4_query()
        decomposition = decompose_query(
            query, flat_estimator, alpha=0.5, max_length=3
        )
        covered = set()
        for path in decomposition.paths:
            covered |= path.path_edges
        assert covered == set(query.edges)

    def test_random_covers_everything(self):
        query = figure4_query()
        decomposition = decompose_query(
            query, flat_estimator, alpha=0.5, max_length=3,
            strategy="random", seed=3,
        )
        covered = set()
        for path in decomposition.paths:
            covered |= path.path_edges
        assert covered == set(query.edges)

    def test_join_predicates_symmetrical(self):
        query = figure4_query()
        decomposition = decompose_query(
            query, flat_estimator, alpha=0.5, max_length=2
        )
        for (i, j), predicates in decomposition.join_predicates.items():
            flipped = decomposition.predicates_between(j, i)
            assert flipped == tuple((pj, pi) for pi, pj in predicates)
            assert j in decomposition.joins_with[i]
            assert i in decomposition.joins_with[j]

    def test_exclusive_coverage_partitions_query(self):
        query = figure4_query()
        decomposition = decompose_query(
            query, flat_estimator, alpha=0.5, max_length=2
        )
        all_nodes = [
            n for nodes in decomposition.covered_nodes.values() for n in nodes
        ]
        all_edges = [
            e for edges in decomposition.covered_edges.values() for e in edges
        ]
        assert sorted(all_nodes) == sorted(query.nodes)
        assert len(all_nodes) == len(set(all_nodes))
        assert sorted(all_edges, key=repr) == sorted(query.edges, key=repr)
        assert len(all_edges) == len(set(all_edges))

    def test_selective_paths_preferred(self):
        """Greedy picks the path whose index estimate is most selective."""
        query = QueryGraph(
            {"a": "rare", "b": "rare", "c": "common", "d": "common"},
            [("a", "b"), ("b", "c"), ("c", "d")],
        )

        def estimator(label_seq, alpha):
            return 1.0 if "rare" in label_seq else 1000.0

        decomposition = decompose_query(query, estimator, 0.5, max_length=2)
        first = decomposition.paths[0]
        assert "rare" in query.label_sequence(first.nodes)

    def test_unknown_strategy_rejected(self):
        with pytest.raises(QueryError):
            decompose_query(
                figure4_query(), flat_estimator, 0.5, 2, strategy="magic"
            )

    def test_incomplete_cover_detected(self):
        query = figure4_query()
        with pytest.raises(QueryError):
            Decomposition(query=query, paths=[QueryPath((1, 2))])

    def test_single_node_query(self):
        query = QueryGraph({"only": "a"}, [])
        decomposition = decompose_query(query, flat_estimator, 0.5, 2)
        assert [p.nodes for p in decomposition.paths] == [("only",)]


class TestExactStrategy:
    def test_exact_covers_everything(self):
        query = figure4_query()
        decomposition = decompose_query(
            query, flat_estimator, 0.5, max_length=3, strategy="exact"
        )
        assert decomposition.strategy_used == "exact"
        covered = set()
        for path in decomposition.paths:
            covered |= path.path_edges
        assert covered == set(query.edges)

    def test_exact_optimal_for_known_instance(self):
        """Greedy is lured by a high-gain path; exact finds the cheaper
        two-path cover."""
        query = QueryGraph(
            {"a": "x", "b": "x", "c": "x", "d": "x"},
            [("a", "b"), ("b", "c"), ("c", "d")],
        )

        def estimator(label_seq, alpha):
            # 3-edge path is just barely cheap per edge; the two short
            # 1-edge paths at the ends are much cheaper together.
            return {2: 2.0, 3: 100.0, 4: 500.0}[len(label_seq)]

        greedy = decompose_query(query, estimator, 0.5, 3, strategy="greedy")
        exact = decompose_query(query, estimator, 0.5, 3, strategy="exact")
        assert exact.estimated_cost <= greedy.estimated_cost * (1 + 1e-12)

    def test_exact_single_node_query(self):
        query = QueryGraph({"only": "a"}, [])
        decomposition = decompose_query(
            query, flat_estimator, 0.5, 2, strategy="exact"
        )
        assert decomposition.strategy_used == "exact"
        assert [p.nodes for p in decomposition.paths] == [("only",)]

    def test_cutoff_falls_back_to_greedy(self):
        labels = {i: "x" for i in range(17)}
        edges = [(i, i + 1) for i in range(16)]
        query = QueryGraph(labels, edges)
        decomposition = decompose_query(
            query, flat_estimator, 0.5, 2, strategy="exact"
        )
        assert decomposition.strategy_used == "greedy"
        covered = set()
        for path in decomposition.paths:
            covered |= path.path_edges
        assert covered == set(query.edges)


class TestStrategyInvariants:
    """Every strategy yields exclusive coverage, symmetric join
    predicates and a positive estimated cost."""

    def _random_cases(self):
        import random

        from repro.datasets import random_query

        rng = random.Random(1207)
        for _ in range(12):
            num_nodes = rng.randint(2, 5)
            max_edges = num_nodes * (num_nodes - 1) // 2
            num_edges = rng.randint(num_nodes - 1, max_edges)
            yield random_query(
                num_nodes, num_edges, ("A", "B", "C"),
                seed=rng.randrange(2**31),
            )

    def _variable_estimator(self, label_seq, alpha):
        return 1.0 + 7.0 * len(label_seq) + (3.0 if "B" in label_seq else 0.0)

    @pytest.mark.parametrize("strategy", ["greedy", "exact", "random"])
    def test_invariants(self, strategy):
        for query in self._random_cases():
            decomposition = decompose_query(
                query, self._variable_estimator, 0.4, max_length=2,
                strategy=strategy, seed=5,
            )
            # exclusive node/edge coverage partitions the query
            nodes = [
                n
                for ns in decomposition.covered_nodes.values()
                for n in ns
            ]
            edges = [
                e
                for es in decomposition.covered_edges.values()
                for e in es
            ]
            def edge_key(edge):
                # repr() of equal frozensets is insertion-order
                # dependent; sort by member reprs instead.
                return tuple(sorted(map(repr, edge)))

            assert sorted(nodes, key=repr) == sorted(query.nodes, key=repr)
            assert len(nodes) == len(set(nodes))
            assert sorted(edges, key=edge_key) == sorted(
                query.edges, key=edge_key
            )
            assert len(edges) == len(set(edges))
            # symmetric predicates_between
            for (i, j), predicates in decomposition.join_predicates.items():
                assert decomposition.predicates_between(i, j) == predicates
                assert decomposition.predicates_between(j, i) == tuple(
                    (pj, pi) for pi, pj in predicates
                )
            assert decomposition.estimated_cost > 0.0


class TestPlanStability:
    """Regression: equal-efficiency ties break on the canonical path
    key, so plans are identical across PYTHONHASHSEED values."""

    SCRIPT = r"""
import sys
from repro.query.decompose import decompose_query
from repro.query.query_graph import QueryGraph

# String node ids: set/dict iteration order is hash-seed dependent,
# and the flat estimator makes every same-length path tie.
labels = {name: "L" for name in ("ant", "bee", "cat", "dog", "eel", "fox")}
edges = [("ant", "bee"), ("bee", "cat"), ("cat", "dog"), ("dog", "eel"),
         ("eel", "fox"), ("ant", "fox"), ("bee", "eel")]
query = QueryGraph(labels, edges)
for strategy in ("greedy", "exact"):
    decomposition = decompose_query(
        query, lambda seq, alpha: 10.0, 0.5, 2, strategy=strategy
    )
    print(strategy, [list(p.nodes) for p in decomposition.paths])
"""

    def test_plans_identical_across_hash_seeds(self):
        import os
        import subprocess
        import sys

        outputs = set()
        for seed in ("0", "1", "12345"):
            env = dict(os.environ, PYTHONHASHSEED=seed)
            env["PYTHONPATH"] = os.pathsep.join(
                p for p in (
                    os.path.join(os.path.dirname(__file__), "..", "src"),
                    os.environ.get("PYTHONPATH"),
                ) if p
            )
            result = subprocess.run(
                [sys.executable, "-c", self.SCRIPT],
                capture_output=True, text=True, env=env, check=True,
            )
            outputs.add(result.stdout)
        assert len(outputs) == 1, outputs
