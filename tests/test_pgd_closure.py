"""Unit tests for repro.pgd.closure (transitive-closure merge sets)."""

import math

import pytest

from repro.peg import build_peg
from repro.pgd import PGD, add_transitive_closure, transitive_closure_sets
from repro.pgd.closure import geometric_mean_combiner
from repro.utils.errors import ModelError


def fs(*items):
    return frozenset(items)


class TestTransitiveClosureSets:
    def test_chain_produces_triple(self):
        seeds = {fs("a", "b"): 0.8, fs("b", "c"): 0.5}
        derived = transitive_closure_sets(seeds)
        assert set(derived) == {fs("a", "b", "c")}
        expected = math.sqrt(0.8 * 0.5) * 1.0  # decay defaults to 1.0
        assert derived[fs("a", "b", "c")] == pytest.approx(expected)

    def test_disjoint_seeds_produce_nothing(self):
        seeds = {fs("a", "b"): 0.8, fs("c", "d"): 0.5}
        assert transitive_closure_sets(seeds) == {}

    def test_three_chained_pairs(self):
        seeds = {
            fs("a", "b"): 0.9, fs("b", "c"): 0.9, fs("c", "d"): 0.9
        }
        derived = transitive_closure_sets(seeds)
        assert set(derived) == {
            fs("a", "b", "c"),
            fs("b", "c", "d"),
            fs("a", "b", "c", "d"),
        }

    def test_non_overlapping_combinations_skipped(self):
        """{a,b} and {c,d} joined only through {b,c}: the pair union
        {a,b} ∪ {c,d} alone is not connected and must not appear."""
        seeds = {
            fs("a", "b"): 0.9, fs("c", "d"): 0.9, fs("b", "c"): 0.9
        }
        derived = transitive_closure_sets(seeds)
        assert fs("a", "b", "c", "d") in derived
        assert fs("a", "b", "c") in derived
        # the disconnected union {a,b,c,d} minus the bridge is impossible
        # to form, and no 2-subset of disjoint seeds appears:
        assert all(len(s) >= 3 for s in derived)

    def test_decay_damps_large_sets(self):
        seeds = {fs("a", "b"): 0.8, fs("b", "c"): 0.8}
        no_decay = transitive_closure_sets(seeds, decay=1.0)
        damped = transitive_closure_sets(seeds, decay=0.5)
        assert damped[fs("a", "b", "c")] == pytest.approx(
            no_decay[fs("a", "b", "c")] * 0.5
        )

    def test_invalid_decay(self):
        with pytest.raises(ModelError):
            transitive_closure_sets({fs("a", "b"): 0.5}, decay=0.0)

    def test_limit_guard(self):
        # A star of pairs through one shared reference explodes quickly.
        seeds = {fs("hub", f"x{i}"): 0.9 for i in range(9)}
        with pytest.raises(ModelError):
            transitive_closure_sets(seeds, limit=10)

    def test_combiner_empty_rejected(self):
        with pytest.raises(ModelError):
            geometric_mean_combiner([])

    def test_zero_potential_seed(self):
        seeds = {fs("a", "b"): 0.0, fs("b", "c"): 0.9}
        derived = transitive_closure_sets(seeds)
        assert derived[fs("a", "b", "c")] == 0.0


class TestAddTransitiveClosure:
    def make_pgd(self):
        pgd = PGD()
        for ref in ("a", "b", "c"):
            pgd.add_reference(ref, "x")
        pgd.add_reference_set(("a", "b"), 0.8)
        pgd.add_reference_set(("b", "c"), 0.6)
        return pgd

    def test_adds_sets_in_place(self):
        pgd = self.make_pgd()
        added = add_transitive_closure(pgd)
        assert added == (fs("a", "b", "c"),)
        assert fs("a", "b", "c") in pgd.reference_sets()

    def test_closure_peg_has_merged_triple(self):
        pgd = self.make_pgd()
        add_transitive_closure(pgd)
        peg = build_peg(pgd)
        triple = fs("a", "b", "c")
        assert triple in peg.entities
        assert 0.0 < peg.existence_probability(triple) < 1.0
        # all configurations remain a normalized distribution
        component = peg.component_of(triple)
        total = sum(cfg.probability for cfg in component.configurations)
        assert total == pytest.approx(1.0)

    def test_closure_preserves_exact_semantics(self):
        """Worlds of the closed PGD still sum to probability one."""
        from repro.peg import enumerate_worlds

        pgd = self.make_pgd()
        pgd.add_edge("a", "c", 0.5)
        add_transitive_closure(pgd)
        peg = build_peg(pgd)
        total = sum(w.probability for w in enumerate_worlds(peg))
        assert total == pytest.approx(1.0)
