"""Unit tests for repro.peg.entity_graph probability services."""

import pytest

from repro.peg import build_peg, world_match_probability
from repro.pgd import pgd_from_edge_list
from repro.utils.errors import ModelError, QueryError


def fs(*items):
    return frozenset(items)


class TestProbabilityServices:
    def test_match_probability_figure1(self, figure1_peg):
        """The worked example: Pr((s34, s2, s1) as (r, a, i))."""
        node_labels = {fs("r3", "r4"): "r", fs("r2"): "a", fs("r1"): "i"}
        edges = [
            fs(fs("r3", "r4"), fs("r2")),
            fs(fs("r2"), fs("r1")),
        ]
        prob = figure1_peg.match_probability(node_labels, edges)
        # 0.5 (label r) * 1 (label a) * 0.75 (i on r1) -> labels
        # 0.75 (merged edge) * 0.9 (r1-r2 edge) -> edges; * 0.8 merge prob
        assert prob == pytest.approx(0.5 * 1.0 * 0.75 * 0.75 * 0.9 * 0.8)

    def test_match_probability_matches_world_oracle(self, figure1_peg):
        node_labels = {fs("r3"): "r", fs("r2"): "a", fs("r4"): "i"}
        edges = [fs(fs("r3"), fs("r2")), fs(fs("r2"), fs("r4"))]
        fast = figure1_peg.match_probability(node_labels, edges)
        slow = world_match_probability(figure1_peg, node_labels, edges)
        assert fast == pytest.approx(slow)

    def test_conflicting_entities_give_zero(self, figure1_peg):
        node_labels = {fs("r3"): "r", fs("r3", "r4"): "i"}
        assert figure1_peg.existence_marginal(node_labels.keys()) == 0.0

    def test_prle_zero_label(self, figure1_peg):
        assert figure1_peg.prle({fs("r2"): "i"}, []) == 0.0

    def test_prle_missing_edge(self, figure1_peg):
        # r3 and r1 are not connected
        assert figure1_peg.prle(
            {fs("r3"): "r", fs("r1"): "i"},
            [fs(fs("r3"), fs("r1"))],
        ) == 0.0

    def test_unknown_entity_rejected(self, figure1_peg):
        with pytest.raises(ModelError):
            figure1_peg.existence_marginal([fs("ghost")])

    def test_shares_references(self, figure1_peg):
        assert figure1_peg.share_references(fs("r3"), fs("r3", "r4"))
        assert not figure1_peg.share_references(fs("r1"), fs("r2"))


class TestIdFastPath:
    def test_id_methods_agree_with_entity_methods(self, figure1_peg):
        peg = figure1_peg
        for entity in peg.entities:
            node = peg.id_of(entity)
            assert peg.possible_labels_id(node) == peg.possible_labels(entity)
            for label in peg.possible_labels(entity):
                assert peg.label_probability_id(node, label) == \
                    peg.label_probability(entity, label)
            assert peg.existence_probability_id(node) == \
                peg.existence_probability(entity)

    def test_edge_probability_id(self, figure1_peg):
        peg = figure1_peg
        id_a = peg.id_of(fs("r3", "r4"))
        id_b = peg.id_of(fs("r2"))
        assert peg.edge_probability_id(id_a, id_b) == pytest.approx(0.75)
        assert peg.edge_probability_id(id_b, id_a) == pytest.approx(0.75)

    def test_missing_edge_id_is_zero(self, figure1_peg):
        peg = figure1_peg
        assert peg.edge_probability_id(
            peg.id_of(fs("r3")), peg.id_of(fs("r1"))
        ) == 0.0

    def test_shares_references_id(self, figure1_peg):
        peg = figure1_peg
        assert peg.shares_references_id(
            peg.id_of(fs("r3")), peg.id_of(fs("r3", "r4"))
        )
        assert not peg.shares_references_id(
            peg.id_of(fs("r1")), peg.id_of(fs("r2"))
        )

    def test_existence_marginal_ids(self, figure1_peg):
        peg = figure1_peg
        ids = [peg.id_of(fs("r3")), peg.id_of(fs("r4"))]
        assert peg.existence_marginal_ids(ids) == pytest.approx(0.2)

    def test_degree(self, figure1_peg):
        peg = figure1_peg
        assert peg.degree(peg.id_of(fs("r2"))) == len(
            peg.neighbors(fs("r2"))
        )


class TestConditionalEdges:
    @pytest.fixture
    def conditional_peg(self):
        return build_peg(
            pgd_from_edge_list(
                node_labels={"x": {"a": 0.6, "b": 0.4}, "y": "b"},
                edges=[("x", "y", {("a", "b"): 0.9, ("b", "b"): 0.3})],
            )
        )

    def test_edge_probability_requires_labels(self, conditional_peg):
        id_x = conditional_peg.id_of(fs("x"))
        id_y = conditional_peg.id_of(fs("y"))
        with pytest.raises(QueryError):
            conditional_peg.edge_probability_id(id_x, id_y)

    def test_conditional_lookup(self, conditional_peg):
        id_x = conditional_peg.id_of(fs("x"))
        id_y = conditional_peg.id_of(fs("y"))
        assert conditional_peg.edge_probability_id(
            id_x, id_y, "a", "b"
        ) == pytest.approx(0.9)
        assert conditional_peg.edge_probability_id(
            id_x, id_y, "b", "b"
        ) == pytest.approx(0.3)

    def test_max_probability_bounds(self, conditional_peg):
        id_x = conditional_peg.id_of(fs("x"))
        id_y = conditional_peg.id_of(fs("y"))
        assert conditional_peg.edge_max_probability_id(
            id_x, id_y
        ) == pytest.approx(0.9)
        # x fixed to "b": the unknown endpoint may still be "a", whose
        # CPT entry (a, b) = 0.9 dominates (b, b) = 0.3.
        assert conditional_peg.edge_max_probability_id(
            id_x, id_y, "b", None
        ) == pytest.approx(0.9)
        # both fixed to "b": only the (b, b) entry remains.
        assert conditional_peg.edge_max_probability_id(
            id_x, id_y, "b", "b"
        ) == pytest.approx(0.3)

    def test_match_probability_uses_assigned_labels(self, conditional_peg):
        prob_a = conditional_peg.match_probability(
            {fs("x"): "a", fs("y"): "b"}, [fs(fs("x"), fs("y"))]
        )
        prob_b = conditional_peg.match_probability(
            {fs("x"): "b", fs("y"): "b"}, [fs(fs("x"), fs("y"))]
        )
        assert prob_a == pytest.approx(0.6 * 1.0 * 0.9)
        assert prob_b == pytest.approx(0.4 * 1.0 * 0.3)
