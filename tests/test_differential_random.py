"""Randomized differential harness: sharded vs unsharded vs brute force.

For a stream of small random PEGs and random queries, four independent
evaluation routes must agree *exactly* — same match sets, same
probabilities:

1. the optimized engine over the monolithic :class:`PathIndex` with the
   vectorized (numpy) reduction backend,
2. the same engine with the pure-Python reference reduction backend —
   which must additionally agree with the vectorized backend on the
   reduction statistics (partition sizes and removal counts),
3. the optimized engine over a :class:`ShardedPathIndex` (both per
   query and through batched execution), and
4. brute-force possible-worlds enumeration
   (:mod:`repro.peg.possible_worlds` via
   :func:`repro.query.baselines.exhaustive_matches` — the literal
   Eq. 8 semantics).

The graphs are kept tiny so the exponential oracle stays feasible; the
case count (``>= 200`` PEG/query cases) is what gives the harness its
bite. The seed is fixed (override with ``REPRO_DIFF_SEED``) so CI runs
are reproducible across Python versions.
"""

from __future__ import annotations

import os
import random

import pytest

from repro.datasets import SyntheticConfig, generate_synthetic_pgd, random_query
from repro.peg import build_peg
from repro.query import QueryEngine, QueryOptions, exhaustive_matches

PYTHON_BACKEND = QueryOptions(reduction_backend="python")
VECTOR_BACKEND = QueryOptions(reduction_backend="vectorized")

SEED = int(os.environ.get("REPRO_DIFF_SEED", "20260730"))
NUM_GRAPHS = 25
QUERIES_PER_GRAPH = 4
ALPHAS = (0.15, 0.45)
NUM_SHARDS = 3
MAX_LENGTH = 2
BETA = 0.05

#: Total differential cases exercised by this module.
TOTAL_CASES = NUM_GRAPHS * QUERIES_PER_GRAPH * len(ALPHAS)


def match_keys(matches):
    return sorted(
        (m.nodes, m.edges, round(m.probability, 9)) for m in matches
    )


def reduction_key(result):
    """Backend-independent reduction facts of one query result.

    Work counters (``message_updates``, ``rounds``) are excluded — they
    legitimately differ between the incremental Python backend and the
    whole-array vectorized one.
    """
    stats = result.reduction
    if stats is None:
        return None
    return (
        stats.initial_sizes,
        stats.after_structure_sizes,
        stats.final_sizes,
        stats.structure_removed,
        stats.upperbound_removed,
    )


def _tiny_config(rng: random.Random) -> SyntheticConfig:
    """A random configuration small enough for world enumeration.

    The world count is roughly ``configurations * labelings *
    2^edges``; 2 labels and <= 8 references with one edge per node keep
    it well under the enumeration budget for every draw.
    """
    return SyntheticConfig(
        num_references=rng.randint(6, 8),
        edges_per_node=1,
        num_labels=2,
        uncertainty=rng.uniform(0.3, 0.6),
        groups=1,
        group_size=2,
        pairs_per_group=1,
        seed=rng.randrange(2**31),
    )


def _random_queries(rng: random.Random, sigma):
    queries = []
    for _ in range(QUERIES_PER_GRAPH):
        num_nodes = rng.choice((2, 2, 3))
        max_edges = num_nodes * (num_nodes - 1) // 2
        num_edges = rng.randint(num_nodes - 1, max_edges)
        queries.append(
            random_query(num_nodes, num_edges, sigma, seed=rng.randrange(2**31))
        )
    return queries


def _cases():
    rng = random.Random(SEED)
    for graph_index in range(NUM_GRAPHS):
        yield graph_index, _tiny_config(rng), rng.randrange(2**31)


@pytest.mark.parametrize(
    "graph_index,config,query_seed",
    list(_cases()),
    ids=lambda value: value if isinstance(value, int) else None,
)
def test_differential_agreement(graph_index, config, query_seed):
    peg = build_peg(generate_synthetic_pgd(config))
    unsharded = QueryEngine(peg, max_length=MAX_LENGTH, beta=BETA)
    sharded = QueryEngine(
        peg, max_length=MAX_LENGTH, beta=BETA, num_shards=NUM_SHARDS
    )
    rng = random.Random(query_seed)
    sigma = sorted(peg.sigma, key=repr)
    queries = _random_queries(rng, sigma)

    batch = [
        (query, alpha) for query in queries for alpha in ALPHAS
    ]
    batched_results = sharded.query_batch(batch)

    case = 0
    for query in queries:
        for alpha in ALPHAS:
            oracle = match_keys(exhaustive_matches(peg, query, alpha))
            vectorized = unsharded.query(query, alpha, VECTOR_BACKEND)
            python = unsharded.query(query, alpha, PYTHON_BACKEND)
            via_sharded = match_keys(sharded.query(query, alpha).matches)
            via_batch = match_keys(batched_results[case].matches)
            context = (graph_index, config.seed, query.nodes, alpha)
            assert match_keys(vectorized.matches) == oracle, context
            assert match_keys(python.matches) == oracle, context
            assert via_sharded == oracle, context
            assert via_batch == oracle, context
            # Backend parity beyond matches: identical partition sizes
            # and removal counts, and the same search-space numbers.
            assert reduction_key(vectorized) == reduction_key(python), context
            assert vectorized.search_space_final == python.search_space_final, \
                context
            assert vectorized.candidate_counts == python.candidate_counts, \
                context
            case += 1
    assert case == QUERIES_PER_GRAPH * len(ALPHAS)


def test_case_count_meets_floor():
    """The harness must exercise at least 200 random PEG/query cases."""
    assert TOTAL_CASES >= 200
