"""Randomized differential harness: sharded vs unsharded vs brute force.

For a stream of small random PEGs and random queries, three independent
evaluation routes must agree *exactly* — same match sets, same
probabilities:

1. the optimized engine over the monolithic :class:`PathIndex`,
2. the optimized engine over a :class:`ShardedPathIndex` (both per
   query and through batched execution), and
3. brute-force possible-worlds enumeration
   (:mod:`repro.peg.possible_worlds` via
   :func:`repro.query.baselines.exhaustive_matches` — the literal
   Eq. 8 semantics).

The graphs are kept tiny so the exponential oracle stays feasible; the
case count (``>= 200`` PEG/query cases) is what gives the harness its
bite. The seed is fixed (override with ``REPRO_DIFF_SEED``) so CI runs
are reproducible across Python versions.
"""

from __future__ import annotations

import os
import random

import pytest

from repro.datasets import SyntheticConfig, generate_synthetic_pgd, random_query
from repro.peg import build_peg
from repro.query import QueryEngine, exhaustive_matches

SEED = int(os.environ.get("REPRO_DIFF_SEED", "20260730"))
NUM_GRAPHS = 25
QUERIES_PER_GRAPH = 4
ALPHAS = (0.15, 0.45)
NUM_SHARDS = 3
MAX_LENGTH = 2
BETA = 0.05

#: Total differential cases exercised by this module.
TOTAL_CASES = NUM_GRAPHS * QUERIES_PER_GRAPH * len(ALPHAS)


def match_keys(matches):
    return sorted(
        (m.nodes, m.edges, round(m.probability, 9)) for m in matches
    )


def _tiny_config(rng: random.Random) -> SyntheticConfig:
    """A random configuration small enough for world enumeration.

    The world count is roughly ``configurations * labelings *
    2^edges``; 2 labels and <= 8 references with one edge per node keep
    it well under the enumeration budget for every draw.
    """
    return SyntheticConfig(
        num_references=rng.randint(6, 8),
        edges_per_node=1,
        num_labels=2,
        uncertainty=rng.uniform(0.3, 0.6),
        groups=1,
        group_size=2,
        pairs_per_group=1,
        seed=rng.randrange(2**31),
    )


def _random_queries(rng: random.Random, sigma):
    queries = []
    for _ in range(QUERIES_PER_GRAPH):
        num_nodes = rng.choice((2, 2, 3))
        max_edges = num_nodes * (num_nodes - 1) // 2
        num_edges = rng.randint(num_nodes - 1, max_edges)
        queries.append(
            random_query(num_nodes, num_edges, sigma, seed=rng.randrange(2**31))
        )
    return queries


def _cases():
    rng = random.Random(SEED)
    for graph_index in range(NUM_GRAPHS):
        yield graph_index, _tiny_config(rng), rng.randrange(2**31)


@pytest.mark.parametrize(
    "graph_index,config,query_seed",
    list(_cases()),
    ids=lambda value: value if isinstance(value, int) else None,
)
def test_differential_agreement(graph_index, config, query_seed):
    peg = build_peg(generate_synthetic_pgd(config))
    unsharded = QueryEngine(peg, max_length=MAX_LENGTH, beta=BETA)
    sharded = QueryEngine(
        peg, max_length=MAX_LENGTH, beta=BETA, num_shards=NUM_SHARDS
    )
    rng = random.Random(query_seed)
    sigma = sorted(peg.sigma, key=repr)
    queries = _random_queries(rng, sigma)

    batch = [
        (query, alpha) for query in queries for alpha in ALPHAS
    ]
    batched_results = sharded.query_batch(batch)

    case = 0
    for query in queries:
        for alpha in ALPHAS:
            oracle = match_keys(exhaustive_matches(peg, query, alpha))
            via_unsharded = match_keys(unsharded.query(query, alpha).matches)
            via_sharded = match_keys(sharded.query(query, alpha).matches)
            via_batch = match_keys(batched_results[case].matches)
            context = (graph_index, config.seed, query.nodes, alpha)
            assert via_unsharded == oracle, context
            assert via_sharded == oracle, context
            assert via_batch == oracle, context
            case += 1
    assert case == QUERIES_PER_GRAPH * len(ALPHAS)


def test_case_count_meets_floor():
    """The harness must exercise at least 200 random PEG/query cases."""
    assert TOTAL_CASES >= 200
