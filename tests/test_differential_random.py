"""Randomized differential harness: sharded vs unsharded vs brute force.

For a stream of small random PEGs and random queries, four independent
evaluation routes must agree *exactly* — same match sets, same
probabilities:

1. the optimized engine over the monolithic :class:`PathIndex` with the
   vectorized (numpy) reduction backend,
2. the same engine with the pure-Python reference reduction backend —
   which must additionally agree with the vectorized backend on the
   reduction statistics (partition sizes and removal counts),
3. the optimized engine over a :class:`ShardedPathIndex` (both per
   query and through batched execution),
4. planned execution through :mod:`repro.query.plan` — the exact
   decomposition strategy, a plan-cache hit of it, and (throughout,
   since every engine here runs with the defaults) feedback-corrected
   cardinality estimates — any valid decomposition must yield
   bit-identical matches, and
5. brute-force possible-worlds enumeration
   (:mod:`repro.peg.possible_worlds` via
   :func:`repro.query.baselines.exhaustive_matches` — the literal
   Eq. 8 semantics).

The graphs are kept tiny so the exponential oracle stays feasible; the
case count (``>= 200`` PEG/query cases) is what gives the harness its
bite. The seed is fixed (override with ``REPRO_DIFF_SEED``) so CI runs
are reproducible across Python versions.
"""

from __future__ import annotations

import os
import random

import pytest

from repro.datasets import SyntheticConfig, generate_synthetic_pgd, random_query
from repro.peg import build_peg
from repro.query import QueryEngine, QueryOptions, exhaustive_matches
from repro.query.candidates import CandidateFinder
from repro.query.kpartite import build_candidate_links
from repro.query.links import build_candidate_links_vectorized

PYTHON_BACKEND = QueryOptions(reduction_backend="python")
VECTOR_BACKEND = QueryOptions(reduction_backend="vectorized")
PYTHON_LINKS = QueryOptions(link_backend="python")
EXACT_PLAN = QueryOptions(decomposition="exact")


def assert_link_equivalence(engine, query, alpha, context):
    """Vectorized and reference link builders emit identical link sets.

    Candidates are fetched through the engine's live index (overlay or
    compacted base included), so the comparison covers exactly the
    inputs the engine's link stage sees.
    """
    decomposition, _info = engine.planner.plan(query, alpha, QueryOptions())
    finder = CandidateFinder(
        engine.peg, query, alpha, index=engine.index, context=engine.context
    )
    candidates = {
        i: finder.find(path)[0]
        for i, path in enumerate(decomposition.paths)
    }
    reference = build_candidate_links(
        engine.peg, decomposition, candidates, alpha
    )
    vectorized = build_candidate_links_vectorized(
        engine.peg, decomposition, candidates, alpha
    )
    assert vectorized.pair_lists() == reference, context

SEED = int(os.environ.get("REPRO_DIFF_SEED", "20260730"))
NUM_GRAPHS = 25
QUERIES_PER_GRAPH = 4
ALPHAS = (0.15, 0.45)
NUM_SHARDS = 3
MAX_LENGTH = 2
BETA = 0.05

#: Total differential cases exercised by this module.
TOTAL_CASES = NUM_GRAPHS * QUERIES_PER_GRAPH * len(ALPHAS)


def match_keys(matches):
    return sorted(
        (m.nodes, m.edges, round(m.probability, 9)) for m in matches
    )


def reduction_key(result):
    """Backend-independent reduction facts of one query result.

    Work counters (``message_updates``, ``rounds``) are excluded — they
    legitimately differ between the incremental Python backend and the
    whole-array vectorized one.
    """
    stats = result.reduction
    if stats is None:
        return None
    return (
        stats.initial_sizes,
        stats.after_structure_sizes,
        stats.final_sizes,
        stats.structure_removed,
        stats.upperbound_removed,
    )


def _tiny_config(rng: random.Random) -> SyntheticConfig:
    """A random configuration small enough for world enumeration.

    The world count is roughly ``configurations * labelings *
    2^edges``; 2 labels and <= 8 references with one edge per node keep
    it well under the enumeration budget for every draw.
    """
    return SyntheticConfig(
        num_references=rng.randint(6, 8),
        edges_per_node=1,
        num_labels=2,
        uncertainty=rng.uniform(0.3, 0.6),
        groups=1,
        group_size=2,
        pairs_per_group=1,
        seed=rng.randrange(2**31),
    )


def _random_queries(rng: random.Random, sigma):
    queries = []
    for _ in range(QUERIES_PER_GRAPH):
        num_nodes = rng.choice((2, 2, 3))
        max_edges = num_nodes * (num_nodes - 1) // 2
        num_edges = rng.randint(num_nodes - 1, max_edges)
        queries.append(
            random_query(num_nodes, num_edges, sigma, seed=rng.randrange(2**31))
        )
    return queries


def _cases():
    rng = random.Random(SEED)
    for graph_index in range(NUM_GRAPHS):
        yield graph_index, _tiny_config(rng), rng.randrange(2**31)


@pytest.mark.parametrize(
    "graph_index,config,query_seed",
    list(_cases()),
    ids=lambda value: value if isinstance(value, int) else None,
)
def test_differential_agreement(graph_index, config, query_seed):
    peg = build_peg(generate_synthetic_pgd(config))
    unsharded = QueryEngine(peg, max_length=MAX_LENGTH, beta=BETA)
    sharded = QueryEngine(
        peg, max_length=MAX_LENGTH, beta=BETA, num_shards=NUM_SHARDS
    )
    rng = random.Random(query_seed)
    sigma = sorted(peg.sigma, key=repr)
    queries = _random_queries(rng, sigma)

    batch = [
        (query, alpha) for query in queries for alpha in ALPHAS
    ]
    batched_results = sharded.query_batch(batch)

    case = 0
    for query in queries:
        for alpha in ALPHAS:
            oracle = match_keys(exhaustive_matches(peg, query, alpha))
            vectorized = unsharded.query(query, alpha, VECTOR_BACKEND)
            python = unsharded.query(query, alpha, PYTHON_BACKEND)
            via_sharded = match_keys(sharded.query(query, alpha).matches)
            via_batch = match_keys(batched_results[case].matches)
            context = (graph_index, config.seed, query.nodes, alpha)
            assert match_keys(vectorized.matches) == oracle, context
            assert match_keys(python.matches) == oracle, context
            assert via_sharded == oracle, context
            assert via_batch == oracle, context
            # Link-builder differential: the vectorized CSR builder must
            # emit the exact link sets of the per-vertex reference, and
            # an engine forced onto the reference builder must agree.
            assert_link_equivalence(unsharded, query, alpha, context)
            python_links = unsharded.query(query, alpha, PYTHON_LINKS)
            assert match_keys(python_links.matches) == oracle, context
            if python_links.link_stats:  # empty-partition cases skip links
                assert python_links.link_stats["backend"] == "python", context
            # Planned execution: the exact strategy, then its plan-cache
            # hit, must agree with the oracle (estimator feedback is on
            # by default, so these also exercise corrected estimates).
            exact = unsharded.query(query, alpha, EXACT_PLAN)
            cached = unsharded.query(query, alpha, EXACT_PLAN)
            assert match_keys(exact.matches) == oracle, context
            assert match_keys(cached.matches) == oracle, context
            assert cached.plan.cached, context
            # Backend parity beyond matches: identical partition sizes
            # and removal counts, and the same search-space numbers.
            assert reduction_key(vectorized) == reduction_key(python), context
            assert vectorized.search_space_final == python.search_space_final, \
                context
            assert vectorized.candidate_counts == python.candidate_counts, \
                context
            case += 1
    assert case == QUERIES_PER_GRAPH * len(ALPHAS)


def test_case_count_meets_floor():
    """The harness must exercise at least 200 random PEG/query cases."""
    assert TOTAL_CASES >= 200


# ----------------------------------------------------------------------
# Mutate-then-query mode: live updates vs rebuild vs possible worlds
# ----------------------------------------------------------------------

NUM_MUTATION_GRAPHS = 10
MUTATIONS_PER_GRAPH = 4

#: Mutation differential cases (each query/alpha asserted pre- and
#: post-compact, on a sharded and an unsharded engine).
MUTATION_CASES = NUM_MUTATION_GRAPHS * QUERIES_PER_GRAPH * len(ALPHAS)


def _singleton_ids(peg):
    return [
        node
        for node in peg.node_ids()
        if not peg.is_removed_id(node)
        and len(peg.component_of(peg.entity_of(node)).entities) == 1
    ]


def _refs(peg, node_id):
    return tuple(sorted(peg.entity_of(node_id), key=repr))


def _world_estimate(peg) -> int:
    """Upper bound on the possible-world count (the oracle's formula)."""
    estimate = 1
    for component in peg.components:
        if component.configurations is not None:
            estimate *= max(1, len(component.configurations))
    for entity in peg.entities:
        estimate *= max(1, len(peg.possible_labels(entity)))
    return estimate * 2 ** peg.num_edges


def _random_mutation(rng: random.Random, peg, sigma, fresh_counter: list):
    """One random valid mutation op against the *current* PEG state."""
    from repro.delta import (
        AddEdge,
        AddEntity,
        MergeEntities,
        UpdateEdgeDistribution,
        UpdateLabelProbability,
    )
    from repro.pgd import BernoulliEdge

    def random_labels():
        chosen = rng.sample(sigma, rng.randint(1, len(sigma)))
        weights = [rng.uniform(0.1, 1.0) for _ in chosen]
        total = sum(weights)
        return {label: weight / total for label, weight in zip(chosen, weights)}

    live = [n for n in peg.node_ids() if not peg.is_removed_id(n)]
    singles = _singleton_ids(peg)
    kinds = ["add_entity", "update_label", "update_edge", "add_edge", "merge"]
    rng.shuffle(kinds)
    # Growth ops multiply the possible-world count (the oracle's
    # feasibility ceiling); only draw them while the budget allows.
    can_grow = _world_estimate(peg) * 8 < 500_000
    for kind in kinds:
        if kind in ("add_entity", "add_edge") and not can_grow:
            continue
        if kind == "add_entity":
            fresh_counter[0] += 1
            return AddEntity(
                (f"dyn-{fresh_counter[0]}",),
                random_labels(),
                rng.uniform(0.5, 1.0),
            )
        if kind == "update_label" and live:
            return UpdateLabelProbability(
                _refs(peg, rng.choice(live)), random_labels()
            )
        if kind == "update_edge":
            edges = [
                (a, b) for (a, b), dist in peg.edge_ids()
                if not dist.conditional
            ]
            if edges:
                a, b = rng.choice(sorted(edges))
                return UpdateEdgeDistribution(
                    _refs(peg, a), _refs(peg, b),
                    BernoulliEdge(rng.uniform(0.05, 1.0)),
                )
        if kind == "add_edge" and len(live) >= 2:
            pairs = [
                (a, b)
                for a in live for b in live
                if a < b
                and b not in peg.neighbor_ids(a)
                and not peg.shares_references_id(a, b)
            ]
            if pairs:
                a, b = rng.choice(pairs)
                return AddEdge(
                    _refs(peg, a), _refs(peg, b),
                    BernoulliEdge(rng.uniform(0.3, 1.0)),
                )
        if kind == "merge" and len(singles) >= 2:
            a, b = rng.sample(singles, 2)
            return MergeEntities(_refs(peg, a), _refs(peg, b))
    raise AssertionError("no applicable mutation found")  # pragma: no cover


def _mutation_cases():
    rng = random.Random(SEED + 1)
    for graph_index in range(NUM_MUTATION_GRAPHS):
        yield graph_index, _tiny_config(rng), rng.randrange(2**31)


@pytest.mark.parametrize(
    "graph_index,config,mutation_seed",
    list(_mutation_cases()),
    ids=lambda value: value if isinstance(value, int) else None,
)
def test_mutation_differential(graph_index, config, mutation_seed):
    """Overlay-served results equal a from-scratch rebuild and Eq. 8.

    Random mutation batches are absorbed by a running engine (sharded
    and unsharded); every query must then agree — pre- *and*
    post-``compact()`` — with an engine rebuilt from scratch over the
    mutated PEG and with brute-force possible-worlds enumeration.
    """
    pgd = generate_synthetic_pgd(config)
    # Two independent (identical) PEG copies: each engine owns and
    # mutates its own graph through the public apply_updates API.
    peg = build_peg(pgd)
    peg_sharded = build_peg(pgd)
    unsharded = QueryEngine(peg, max_length=MAX_LENGTH, beta=BETA)
    sharded = QueryEngine(
        peg_sharded, max_length=MAX_LENGTH, beta=BETA, num_shards=NUM_SHARDS
    )
    rng = random.Random(mutation_seed)
    sigma = sorted(peg.sigma, key=repr)
    fresh = [0]
    for _ in range(MUTATIONS_PER_GRAPH):
        # Generated against the evolving graph, applied to both copies
        # (ops address entities by reference set, so they port).
        op = _random_mutation(rng, peg, sigma, fresh)
        unsharded.apply_updates([op])
        sharded.apply_updates([op])

    rebuilt = QueryEngine(peg, max_length=MAX_LENGTH, beta=BETA)
    queries = _random_queries(rng, sigma)
    case = 0
    for compacted in (False, True):
        if compacted:
            unsharded.compact_updates()
            sharded.compact_updates()
        for query in queries:
            for alpha in ALPHAS:
                oracle = match_keys(exhaustive_matches(peg, query, alpha))
                context = (
                    graph_index, config.seed, query.nodes, alpha, compacted
                )
                assert match_keys(
                    unsharded.query(query, alpha).matches
                ) == oracle, context
                assert match_keys(
                    sharded.query(query, alpha).matches
                ) == oracle, context
                assert match_keys(
                    rebuilt.query(query, alpha).matches
                ) == oracle, context
                # Planned execution over the mutated graph: exact plans
                # (costed on delta-aware, feedback-corrected estimates)
                # and their cache hits must still match the oracle.
                exact = unsharded.query(query, alpha, EXACT_PLAN)
                cached = unsharded.query(query, alpha, EXACT_PLAN)
                assert match_keys(exact.matches) == oracle, context
                assert match_keys(cached.matches) == oracle, context
                assert cached.plan.cached, context
                # Link-builder differential on the mutated graph, both
                # overlay-served (pre-compact) and compacted.
                assert_link_equivalence(unsharded, query, alpha, context)
                assert_link_equivalence(sharded, query, alpha, context)
                case += 1
    assert case == 2 * QUERIES_PER_GRAPH * len(ALPHAS)


def test_mutation_case_count_meets_floor():
    """The mutate-then-query mode must exercise at least 80 cases."""
    assert MUTATION_CASES >= 80
