"""Tests for the interprocedural flow layer (repro.analysis.flow).

Covers the call-graph builder itself (resolution forms, cycle
tolerance, unknown-callee conservatism), the three flow checkers'
must-flag / must-not-flag fixtures — including the acceptance fixture:
two functions acquiring two locks in opposite orders, flagged by
REP210 — and the ``--call-graph`` dump surface.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

from repro.analysis.core import parse_source
from repro.analysis.flow import CallGraph, summarize
from repro.analysis.runner import main as lint_main
from tests.test_analysis import codes_of, lint_tree

#: The seeded deadlock pair: ``forward`` takes A then B, ``backward``
#: takes B then A. The static checker must flag the cycle (REP210) and
#: the runtime sanitizer must catch it when executed — the same text
#: feeds both (see tests/test_sanitizer.py).
DEADLOCK_PAIR_SOURCE = """\
    import threading

    class Pair:
        def __init__(self):
            self._a = threading.Lock()
            self._b = threading.Lock()

        def forward(self):
            with self._a:
                with self._b:
                    pass

        def backward(self):
            with self._b:
                with self._a:
                    pass
"""


def build_graph(tmp_path, files: dict) -> CallGraph:
    sources = []
    for rel, text in files.items():
        target = tmp_path / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(text))
        sources.append(
            parse_source(str(target), target.read_text())
        )
    return CallGraph(sources)


def callees_of(graph: CallGraph, fid: str) -> set:
    return {
        site.callee
        for site in graph.functions[fid].calls
        if site.callee is not None
    }


class TestCallGraphResolution:
    def test_self_method_and_module_function(self, tmp_path):
        graph = build_graph(tmp_path, {
            "repro/query/mod.py": """\
                def helper():
                    return 1

                class Engine:
                    def run(self):
                        self.step()
                        return helper()

                    def step(self):
                        pass
            """,
        })
        assert callees_of(graph, "repro.query.mod:Engine.run") == {
            "repro.query.mod:Engine.step",
            "repro.query.mod:helper",
        }

    def test_cross_module_from_import_and_alias(self, tmp_path):
        graph = build_graph(tmp_path, {
            "repro/query/a.py": """\
                def compute():
                    return 1
            """,
            "repro/query/b.py": """\
                from repro.query.a import compute
                import repro.query.a as qa

                def run():
                    compute()
                    qa.compute()
            """,
        })
        assert callees_of(graph, "repro.query.b:run") == {
            "repro.query.a:compute",
        }

    def test_submodule_binding_form(self, tmp_path):
        # ``from repro.net import protocol`` binds a module object.
        graph = build_graph(tmp_path, {
            "repro/net/protocol.py": """\
                def decode(frame):
                    return frame
            """,
            "repro/net/server.py": """\
                from repro.net import protocol

                def handle(frame):
                    return protocol.decode(frame)
            """,
        })
        assert callees_of(graph, "repro.net.server:handle") == {
            "repro.net.protocol:decode",
        }

    def test_constructor_resolves_to_init(self, tmp_path):
        graph = build_graph(tmp_path, {
            "repro/query/mod.py": """\
                class Cache:
                    def __init__(self):
                        self.data = {}

                def make():
                    return Cache()
            """,
        })
        assert callees_of(graph, "repro.query.mod:make") == {
            "repro.query.mod:Cache.__init__",
        }

    def test_attr_type_inference(self, tmp_path):
        graph = build_graph(tmp_path, {
            "repro/query/mod.py": """\
                class Cache:
                    def get(self, key):
                        return None

                class Engine:
                    def __init__(self):
                        self.cache = Cache()

                    def lookup(self, key):
                        return self.cache.get(key)
            """,
        })
        assert callees_of(graph, "repro.query.mod:Engine.lookup") == {
            "repro.query.mod:Cache.get",
        }

    def test_conflicting_attr_types_drop_the_inference(self, tmp_path):
        graph = build_graph(tmp_path, {
            "repro/query/mod.py": """\
                class A:
                    def go(self):
                        pass

                class B:
                    def go(self):
                        pass

                class Engine:
                    def __init__(self, fast):
                        if fast:
                            self.impl = A()
                        else:
                            self.impl = B()

                    def run(self):
                        self.impl.go()
            """,
        })
        assert callees_of(graph, "repro.query.mod:Engine.run") == set()

    def test_unknown_callees_are_conservative(self, tmp_path):
        graph = build_graph(tmp_path, {
            "repro/query/mod.py": """\
                import os

                def run(callback, obj):
                    callback()
                    obj.method()
                    os.getpid()
                    getattr(obj, "dynamic")()
            """,
        })
        info = graph.functions["repro.query.mod:run"]
        assert all(site.callee is None for site in info.calls)

    def test_recursion_does_not_hang(self, tmp_path):
        graph = build_graph(tmp_path, {
            "repro/query/mod.py": """\
                def ping(n):
                    return pong(n - 1)

                def pong(n):
                    if n > 0:
                        return ping(n)
                    return 0
            """,
        })
        # Summaries + both fixpoints must terminate over the cycle.
        summaries = summarize(graph)
        assert "repro.query.mod:ping" in summaries

    def test_base_class_method_resolution(self, tmp_path):
        graph = build_graph(tmp_path, {
            "repro/query/mod.py": """\
                class Base:
                    def shared(self):
                        pass

                class Child(Base):
                    def run(self):
                        self.shared()
            """,
        })
        assert callees_of(graph, "repro.query.mod:Child.run") == {
            "repro.query.mod:Base.shared",
        }

    def test_nested_defs_do_not_contribute_edges(self, tmp_path):
        graph = build_graph(tmp_path, {
            "repro/query/mod.py": """\
                def target():
                    pass

                def outer():
                    def closure():
                        target()
                    return closure
            """,
        })
        assert callees_of(graph, "repro.query.mod:outer") == set()


class TestLockFlowChecker:
    def test_seeded_deadlock_pair_flags_rep210(self, tmp_path):
        report = lint_tree(
            tmp_path,
            {"repro/service/pair.py": DEADLOCK_PAIR_SOURCE},
            select=["lock-flow"],
        )
        assert codes_of(report) == ["REP210"]
        message = report.diagnostics[0].message
        assert "Pair._a" in message and "Pair._b" in message
        assert "deadlock" in message

    def test_cross_function_cycle_through_calls(self, tmp_path):
        # Neither function nests the locks lexically; the cycle only
        # exists through the call graph.
        report = lint_tree(tmp_path, {
            "repro/service/mod.py": """\
                import threading

                class Engine:
                    def __init__(self):
                        self._a = threading.Lock()
                        self._b = threading.Lock()

                    def left(self):
                        with self._a:
                            self._take_b()

                    def _take_b(self):
                        with self._b:
                            pass

                    def right(self):
                        with self._b:
                            self._take_a()

                    def _take_a(self):
                        with self._a:
                            pass
            """,
        }, select=["lock-flow"])
        assert codes_of(report) == ["REP210"]

    def test_consistent_order_is_clean(self, tmp_path):
        report = lint_tree(tmp_path, {
            "repro/service/mod.py": """\
                import threading

                class Engine:
                    def __init__(self):
                        self._a = threading.Lock()
                        self._b = threading.Lock()

                    def one(self):
                        with self._a:
                            with self._b:
                                pass

                    def two(self):
                        with self._a:
                            with self._b:
                                pass
            """,
        }, select=["lock-flow"])
        assert report.clean

    def test_rlock_self_nesting_is_clean(self, tmp_path):
        report = lint_tree(tmp_path, {
            "repro/service/mod.py": """\
                import threading

                class Engine:
                    def __init__(self):
                        self._lock = threading.RLock()

                    def outer(self):
                        with self._lock:
                            self.inner()

                    def inner(self):
                        with self._lock:
                            pass
            """,
        }, select=["lock-flow"])
        assert report.clean

    def test_plain_lock_self_nesting_flags(self, tmp_path):
        report = lint_tree(tmp_path, {
            "repro/service/mod.py": """\
                import threading

                class Engine:
                    def __init__(self):
                        self._lock = threading.Lock()

                    def outer(self):
                        with self._lock:
                            self.inner()

                    def inner(self):
                        with self._lock:
                            pass
            """,
        }, select=["lock-flow"])
        assert codes_of(report) == ["REP210"]

    def test_holds_lock_annotation_feeds_the_graph(self, tmp_path):
        report = lint_tree(tmp_path, {
            "repro/service/mod.py": """\
                import threading

                class Engine:
                    def __init__(self):
                        self._a = threading.Lock()
                        self._b = threading.Lock()

                    def _locked_helper(self):  # holds-lock: _a
                        with self._b:
                            pass

                    def other(self):
                        with self._b:
                            with self._a:
                                pass
            """,
        }, select=["lock-flow"])
        assert codes_of(report) == ["REP210"]

    def test_direct_unbounded_wait_under_lock_flags_rep211(self, tmp_path):
        report = lint_tree(tmp_path, {
            "repro/service/mod.py": """\
                import threading
                import time

                class Engine:
                    def __init__(self):
                        self._lock = threading.Lock()

                    def spin(self):
                        with self._lock:
                            time.sleep(0.5)
            """,
        }, select=["lock-flow"])
        assert codes_of(report) == ["REP211"]
        assert "time.sleep" in report.diagnostics[0].message

    def test_transitive_wait_under_lock_prints_chain(self, tmp_path):
        report = lint_tree(tmp_path, {
            "repro/service/mod.py": """\
                import threading

                class Engine:
                    def __init__(self):
                        self._lock = threading.Lock()

                    def drain(self, future):
                        with self._lock:
                            self._wait(future)

                    def _wait(self, future):
                        future.result()
            """,
        }, select=["lock-flow"])
        assert codes_of(report) == ["REP211"]
        message = report.diagnostics[0].message
        assert "mod.Engine.drain -> mod.Engine._wait" in message
        assert ".result()" in message

    def test_bounded_waits_under_lock_are_clean(self, tmp_path):
        report = lint_tree(tmp_path, {
            "repro/service/mod.py": """\
                import threading

                class Engine:
                    def __init__(self):
                        self._lock = threading.Lock()

                    def drain(self, future, thread):
                        with self._lock:
                            future.result(1.0)
                            thread.join(timeout=2.0)
            """,
        }, select=["lock-flow"])
        assert report.clean

    def test_condition_wait_on_held_lock_is_clean(self, tmp_path):
        # The producer/consumer idiom: wait() releases the lock.
        report = lint_tree(tmp_path, {
            "repro/service/mod.py": """\
                import threading

                class Engine:
                    def __init__(self):
                        self._gate = threading.Lock()
                        self._done = threading.Condition(self._gate)

                    def wait_done(self):
                        with self._gate:
                            self._done.wait()
            """,
        }, select=["lock-flow"])
        assert report.clean

    def test_suppression_respected(self, tmp_path):
        report = lint_tree(tmp_path, {
            "repro/service/mod.py": """\
                import threading
                import time

                class Engine:
                    def __init__(self):
                        self._lock = threading.Lock()

                    def spin(self):
                        with self._lock:
                            time.sleep(0.5)  # lint-ok: REP211 test pacing
            """,
        }, select=["lock-flow"])
        assert report.clean
        assert report.suppressed == 1


class TestTransitiveBlockingChecker:
    def test_sleep_two_frames_below_coroutine_flags(self, tmp_path):
        report = lint_tree(tmp_path, {
            "repro/net/mod.py": """\
                import time

                async def handler():
                    prepare()

                def prepare():
                    flush()

                def flush():
                    time.sleep(0.1)
            """,
        }, select=["async-flow"])
        assert codes_of(report) == ["REP410"]
        message = report.diagnostics[0].message
        # The full sync chain, coroutine first.
        assert "mod.handler -> mod.prepare -> mod.flush" in message
        assert "time.sleep" in message

    def test_direct_blocking_left_to_rep401(self, tmp_path):
        report = lint_tree(tmp_path, {
            "repro/net/mod.py": """\
                import time

                async def handler():
                    time.sleep(0.1)
            """,
        }, select=["async-flow"])
        assert report.clean  # REP401's territory, not REP410's

    def test_async_callee_is_not_traversed(self, tmp_path):
        report = lint_tree(tmp_path, {
            "repro/net/mod.py": """\
                import time

                async def outer():
                    await inner()

                async def inner():
                    helper()

                def helper():
                    time.sleep(0.1)
            """,
        }, select=["async-flow"])
        # Only ``inner`` flags; ``outer`` trusts its async callee.
        assert codes_of(report) == ["REP410"]
        assert "mod.inner -> mod.helper" in report.diagnostics[0].message

    def test_loop_only_sync_methods_are_entry_points(self, tmp_path):
        report = lint_tree(tmp_path, {
            "repro/net/mod.py": """\
                import time

                class Server:
                    def _reply(self, data):  # loop-only
                        self._write(data)

                    def _write(self, data):
                        time.sleep(0.01)
            """,
        }, select=["async-flow"])
        assert codes_of(report) == ["REP410"]

    def test_aliased_import_is_seen_transitively(self, tmp_path):
        report = lint_tree(tmp_path, {
            "repro/net/mod.py": """\
                from time import sleep

                async def handler():
                    helper()

                def helper():
                    sleep(0.1)
            """,
        }, select=["async-flow"])
        assert codes_of(report) == ["REP410"]


class TestErrorEscapeChecker:
    def test_engine_raise_reaching_handler_flags(self, tmp_path):
        report = lint_tree(tmp_path, {
            "repro/query/calc.py": """\
                def compute(spec):
                    raise ValueError("bad spec")
            """,
            "repro/net/handler.py": """\
                from repro.query.calc import compute

                async def handle(spec):
                    return compute(spec)
            """,
        }, select=["error-flow"])
        assert codes_of(report) == ["REP510"]
        message = report.diagnostics[0].message
        assert "builtins.ValueError" in message
        assert "handler.handle -> calc.compute" in message

    def test_catching_the_exception_is_clean(self, tmp_path):
        report = lint_tree(tmp_path, {
            "repro/query/calc.py": """\
                def compute(spec):
                    raise ValueError("bad spec")
            """,
            "repro/net/handler.py": """\
                from repro.query.calc import compute

                async def handle(spec):
                    try:
                        return compute(spec)
                    except ValueError:
                        return None
            """,
        }, select=["error-flow"])
        assert report.clean

    def test_catching_a_superclass_is_clean(self, tmp_path):
        report = lint_tree(tmp_path, {
            "repro/query/calc.py": """\
                def compute(spec):
                    raise KeyError("missing")
            """,
            "repro/net/handler.py": """\
                from repro.query.calc import compute

                async def handle(spec):
                    try:
                        return compute(spec)
                    except LookupError:
                        return None
            """,
        }, select=["error-flow"])
        assert report.clean

    def test_typed_repro_errors_are_clean(self, tmp_path):
        report = lint_tree(tmp_path, {
            "repro/utils/errors.py": """\
                class ReproError(Exception):
                    pass

                class QueryError(ReproError):
                    pass
            """,
            "repro/query/calc.py": """\
                from repro.utils.errors import QueryError

                def compute(spec):
                    raise QueryError("bad spec")
            """,
            "repro/net/handler.py": """\
                from repro.query.calc import compute

                async def handle(spec):
                    return compute(spec)
            """,
        }, select=["error-flow"])
        assert report.clean

    def test_net_local_raises_are_out_of_scope(self, tmp_path):
        # REP501 owns raises *in* the serving modules; REP510 is about
        # engine-layer escapes crossing into them.
        report = lint_tree(tmp_path, {
            "repro/net/handler.py": """\
                async def handle(spec):
                    raise ValueError("local")
            """,
        }, select=["error-flow"])
        assert report.clean


class TestCallGraphDump:
    def test_dump_to_stdout(self, tmp_path, capsys):
        target = tmp_path / "repro" / "query" / "mod.py"
        target.parent.mkdir(parents=True)
        target.write_text(textwrap.dedent("""\
            def helper():
                return 1

            def run():
                return helper()
        """))
        assert lint_main([str(tmp_path), "--call-graph", "-"]) == 0
        payload = json.loads(capsys.readouterr().out)
        run_entry = payload["repro.query.mod:run"]
        assert run_entry["calls"][0]["callee"] == "repro.query.mod:helper"

    def test_dump_to_file_via_repro_cli(self, tmp_path, capsys):
        from repro.cli import main as cli_main

        target = tmp_path / "repro" / "query" / "mod.py"
        target.parent.mkdir(parents=True)
        target.write_text("def solo():\n    return 1\n")
        out = tmp_path / "graph.json"
        assert cli_main(
            ["lint", str(tmp_path), "--call-graph", str(out)]
        ) == 0
        payload = json.loads(out.read_text())
        assert "repro.query.mod:solo" in payload

    def test_real_tree_dump_is_well_formed(self, tmp_path):
        src = Path(__file__).resolve().parents[1] / "src" / "repro"
        out = tmp_path / "graph.json"
        assert lint_main(
            [str(src / "net"), "--call-graph", str(out)]
        ) == 0
        payload = json.loads(out.read_text())
        request = payload["repro.net.client:QueryClient.request"]
        callees = {
            call["callee"] for call in request["calls"] if call["callee"]
        }
        assert "repro.net.client:QueryClient._exchange" in callees
