"""Unit tests for repro.datasets.queries."""

import pytest

from repro.datasets.queries import (
    PATTERN_NAMES,
    paper_query_series,
    pattern_query,
    random_query,
)
from repro.utils.errors import QueryError


class TestRandomQuery:
    def test_size(self):
        q = random_query(6, 9, ("a", "b"), seed=0)
        assert q.num_nodes == 6
        assert q.num_edges == 9

    def test_connected(self):
        for seed in range(5):
            q = random_query(8, 7, ("a",), seed=seed)  # tree: minimum edges
            assert len(q.connected_components()) == 1

    def test_labels_from_sigma(self):
        q = random_query(5, 6, ("a", "b", "c"), seed=1)
        assert all(q.label(n) in ("a", "b", "c") for n in q.nodes)

    def test_explicit_labels(self):
        labels = {f"q{i}": "z" for i in range(4)}
        q = random_query(4, 3, ("a",), seed=2, labels=labels)
        assert all(q.label(n) == "z" for n in q.nodes)

    def test_infeasible_rejected(self):
        with pytest.raises(QueryError):
            random_query(4, 2, ("a",), seed=0)  # below spanning tree
        with pytest.raises(QueryError):
            random_query(4, 7, ("a",), seed=0)  # above complete graph

    def test_reproducible(self):
        a = random_query(7, 10, ("a", "b"), seed=9)
        b = random_query(7, 10, ("a", "b"), seed=9)
        assert a.edges == b.edges
        assert [a.label(n) for n in a.nodes] == [b.label(n) for n in b.nodes]


class TestPaperSeries:
    def test_figure6c_series(self):
        series = paper_query_series(15)
        assert series == [
            (3, 3), (5, 10), (7, 21), (9, 36), (11, 44), (13, 52), (15, 60)
        ]


class TestPatternQueries:
    def test_all_patterns_build(self):
        for name in PATTERN_NAMES:
            q = pattern_query(name, "g")
            assert q.num_nodes >= 4
            assert len(q.connected_components()) == 1

    def test_shapes(self):
        assert pattern_query("GR", "g").num_edges == 6      # 4-clique
        assert pattern_query("ST", "g").num_edges == 4      # star
        assert pattern_query("TR", "g").num_edges == 6      # binary tree
        assert pattern_query("BF1", "g").num_edges == 6     # two triangles
        assert pattern_query("BF2", "g").num_edges == 8     # two diamonds

    def test_star_has_center(self):
        q = pattern_query("ST", "g")
        degrees = sorted(q.degree(n) for n in q.nodes)
        assert degrees == [1, 1, 1, 1, 4]

    def test_tree_is_acyclic(self):
        q = pattern_query("TR", "g")
        assert q.num_edges == q.num_nodes - 1

    def test_label_mapping(self):
        labels = {f"n{i}": f"L{i}" for i in range(5)}
        q = pattern_query("ST", labels)
        assert q.label("n0") == "L0"
        assert q.label("n4") == "L4"

    def test_unknown_pattern_rejected(self):
        with pytest.raises(QueryError):
            pattern_query("XYZ", "g")
