"""Regression tests for violations the invariant linter surfaced.

Running ``repro.analysis`` over the tree for the first time found a
handful of true violations — unlocked reads of lock-guarded state and
one hash-order-dependent iteration. Each fix is locked down here with a
behavioural test (a recording lock proxy that counts acquisitions, or a
direct ordering assertion), so the contract survives even if the
annotations are ever removed.
"""

from __future__ import annotations

import threading

import pytest

from repro.net.client import QueryClient
from repro.obs.metrics import MetricsRegistry
from repro.query import QueryGraph
from repro.query.plan import EstimatorFeedback, QueryPlanner
from repro.relational.engine import build_relations
from repro.service.service import (
    RESULT_NEUTRAL_OPTIONS,
    QueryService,
    request_key,
)
from repro.service.stats import ServiceStats
from repro.utils.errors import NetError, ServiceError
from tests.conftest import small_random_peg
from tests.test_service import FakeEngine


class RecordingLock:
    """Context-manager proxy that counts acquisitions of a real lock."""

    def __init__(self, inner=None):
        self._inner = inner if inner is not None else threading.Lock()
        self.acquisitions = 0

    def acquire(self, *args, **kwargs):
        self.acquisitions += 1
        return self._inner.acquire(*args, **kwargs)

    def release(self):
        return self._inner.release()

    def __enter__(self):
        self.acquire()
        return self

    def __exit__(self, *exc_info):
        self.release()
        return False


class TestServiceStatsLocking:
    def test_repr_reads_counters_under_lock(self):
        stats = ServiceStats(registry=MetricsRegistry())
        stats.record_hit(0.01)
        lock = RecordingLock(stats._lock)
        stats._lock = lock
        text = repr(stats)
        assert lock.acquisitions == 1
        assert "requests=1" in text and "hits=1" in text


class TestPlannerLocking:
    def test_feedback_reads_take_the_lock(self):
        feedback = EstimatorFeedback()
        feedback.observe(("a", "b"), 0.5, estimated=10.0, observed=30)
        lock = RecordingLock(feedback._lock)
        feedback._lock = lock
        assert feedback.correction(("a", "b"), 0.5) > 1.0
        assert len(feedback) == 1
        # Unknown keys go through the same locked path.
        assert feedback.correction(("z",), 0.5) == 1.0
        assert lock.acquisitions == 3

    def test_planner_repr_reads_counters_under_lock(self):
        planner = QueryPlanner(engine=object(), cache_size=4)
        lock = RecordingLock(planner._lock)
        planner._lock = lock
        text = repr(planner)
        assert lock.acquisitions == 1
        assert "hits=0" in text


class TestHistogramLocking:
    def test_quantile_runs_entirely_under_lock(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h")
        histogram.observe(0.5)
        lock = RecordingLock(histogram._lock)
        histogram._lock = lock
        value = histogram.quantile(0.5)
        assert lock.acquisitions == 1
        assert value == pytest.approx(0.5, rel=0.25)


class TestServiceClosedCheckLocking:
    def test_submit_after_close_checks_closed_under_gate(self):
        service = QueryService(FakeEngine(), num_workers=1)
        service.close()
        gate = RecordingLock(service._gate)
        service._gate = gate
        with pytest.raises(ServiceError, match="closed"):
            service.submit(QueryGraph({"u": "a"}, []), 0.5)
        assert gate.acquisitions >= 1

    def test_submit_batch_after_close_checks_closed_under_gate(self):
        service = QueryService(FakeEngine(), num_workers=1)
        service.close()
        gate = RecordingLock(service._gate)
        service._gate = gate
        with pytest.raises(ServiceError, match="closed"):
            service.submit_batch([(QueryGraph({"u": "a"}, []), 0.5)])
        assert gate.acquisitions >= 1


class TestClientCloseLocking:
    def test_close_disconnects_under_the_request_lock(self):
        client = QueryClient("127.0.0.1", 1)
        lock = RecordingLock(client._lock)
        client._lock = lock
        client.close()  # never connected: still must serialize vs request()
        assert lock.acquisitions == 1
        assert client._sock is None


class TestClientBackoffLocking:
    """REP211 fix: the retry backoff sleep releases the request lock.

    Sleeping inside ``with self._lock`` would stall every other
    thread's request for the whole backoff schedule; the flow checker
    flagged it and the fix moved the sleep outside the hold.
    """

    def test_backoff_sleep_runs_with_the_lock_released(self, monkeypatch):
        client = QueryClient(
            "127.0.0.1", 1,
            max_retries=2, backoff_base=0.001, backoff_max=0.002,
            breaker_threshold=100, seed=7,
        )

        def refused(payload):
            raise ConnectionError("refused")

        lock_held_during_sleep: list = []

        def observing_sleep(delay):
            assert delay > 0.0
            lock_held_during_sleep.append(client._lock.locked())

        monkeypatch.setattr(client, "_exchange", refused)
        monkeypatch.setattr("repro.net.client.time.sleep", observing_sleep)
        with pytest.raises(NetError, match="after 3 attempts"):
            client.request({"kind": "query", "nodes": {}})
        # One backoff per retry, each with the lock released.
        assert lock_held_during_sleep == [False, False]
        assert client.retries == 2


class TestRelationalDeterminism:
    def test_node_relations_built_in_sorted_label_order(self):
        peg = small_random_peg(seed=3, num_references=20)
        # Insertion order deliberately unsorted: the builder must not
        # inherit set-iteration (hash) order for its relation layout.
        query = QueryGraph(
            {"n1": "zz", "n2": "aa", "n3": "mm"},
            [("n1", "n2"), ("n2", "n3")],
        )
        relations = build_relations(peg, query)
        node_labels = [
            key[1] for key in relations if key[0] == "node"
        ]
        assert node_labels == sorted(node_labels)
        assert set(node_labels) == {"aa", "mm", "zz"}


class TestResultNeutralOptionsContract:
    def test_neutral_options_do_not_change_the_key(self):
        from repro.query.engine import QueryOptions

        query = QueryGraph({"u": "a", "v": "b"}, [("u", "v")])
        base = request_key(query, 0.5, QueryOptions())
        for field in sorted(RESULT_NEUTRAL_OPTIONS):
            current = getattr(QueryOptions(), field)
            if isinstance(current, bool):
                changed = QueryOptions(**{field: not current})
            elif isinstance(current, int):
                changed = QueryOptions(**{field: current + 1})
            else:
                changed = QueryOptions(**{field: "other"})
            assert request_key(query, 0.5, changed) == base, field

    def test_every_option_field_is_keyed_or_declared_neutral(self):
        import dataclasses

        from repro.query.engine import QueryOptions

        fields = {f.name for f in dataclasses.fields(QueryOptions)}
        keyed = fields - RESULT_NEUTRAL_OPTIONS
        assert RESULT_NEUTRAL_OPTIONS <= fields
        # Changing any non-neutral field must change the key.
        query = QueryGraph({"u": "a", "v": "b"}, [("u", "v")])
        base = request_key(query, 0.5, QueryOptions())
        for field in sorted(keyed):
            current = getattr(QueryOptions(), field)
            if isinstance(current, bool):
                changed = QueryOptions(**{field: not current})
            elif isinstance(current, int):
                changed = QueryOptions(**{field: current + 17})
            else:
                changed = QueryOptions(**{field: "k-partite"})
            assert request_key(query, 0.5, changed) != base, field
