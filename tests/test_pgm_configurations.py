"""Unit tests for repro.pgm.configurations (exact-cover enumeration)."""

import math

import pytest

from repro.pgm.configurations import enumerate_exact_covers
from repro.utils.errors import ModelError


def fs(*items):
    return frozenset(items)


class TestEnumerateExactCovers:
    def test_singletons_only(self):
        covers = enumerate_exact_covers(
            ["a", "b"],
            [fs("a"), fs("b")],
            {fs("a"): 1.0, fs("b"): 1.0},
        )
        assert len(covers) == 1
        assert covers[0].chosen == fs(fs("a"), fs("b"))
        assert covers[0].probability == pytest.approx(1.0)

    def test_pair_vs_singletons(self):
        """Calibrated pair potentials give the intended merge probability."""
        p = 0.8
        covers = enumerate_exact_covers(
            ["a", "b"],
            [fs("a"), fs("b"), fs("a", "b")],
            {
                fs("a"): math.sqrt(1 - p),
                fs("b"): math.sqrt(1 - p),
                fs("a", "b"): math.sqrt(p),
            },
        )
        assert len(covers) == 2
        by_size = {len(cover.chosen): cover for cover in covers}
        assert by_size[1].probability == pytest.approx(p)
        assert by_size[2].probability == pytest.approx(1 - p)

    def test_probabilities_normalize(self):
        covers = enumerate_exact_covers(
            ["a", "b", "c"],
            [fs("a"), fs("b"), fs("c"), fs("a", "b"), fs("b", "c")],
            {
                fs("a"): 0.9,
                fs("b"): 0.5,
                fs("c"): 0.7,
                fs("a", "b"): 0.6,
                fs("b", "c"): 0.3,
            },
        )
        assert sum(c.probability for c in covers) == pytest.approx(1.0)
        # Three covers: all singletons, {ab, c}, {a, bc}.
        assert len(covers) == 3

    def test_overlapping_sets_never_cooccur(self):
        covers = enumerate_exact_covers(
            ["a", "b", "c"],
            [fs("a"), fs("b"), fs("c"), fs("a", "b"), fs("b", "c")],
            {
                fs("a"): 0.5,
                fs("b"): 0.5,
                fs("c"): 0.5,
                fs("a", "b"): 0.5,
                fs("b", "c"): 0.5,
            },
        )
        for cover in covers:
            chosen = list(cover.chosen)
            for i, left in enumerate(chosen):
                for right in chosen[i + 1:]:
                    assert not (left & right)

    def test_weight_counts_potential_per_reference(self):
        """A set of size s contributes potential^s to the cover weight."""
        covers = enumerate_exact_covers(
            ["a", "b"],
            [fs("a"), fs("b"), fs("a", "b")],
            {fs("a"): 1.0, fs("b"): 1.0, fs("a", "b"): 0.5},
        )
        by_size = {len(c.chosen): c for c in covers}
        # merged weight 0.25 vs unmerged weight 1.0
        assert by_size[1].probability == pytest.approx(0.25 / 1.25)

    def test_zero_potential_sets_skipped(self):
        covers = enumerate_exact_covers(
            ["a", "b"],
            [fs("a"), fs("b"), fs("a", "b")],
            {fs("a"): 1.0, fs("b"): 1.0, fs("a", "b"): 0.0},
        )
        assert len(covers) == 1

    def test_uncoverable_reference_rejected(self):
        with pytest.raises(ModelError):
            enumerate_exact_covers(
                ["a", "b"], [fs("a")], {fs("a"): 1.0}
            )

    def test_foreign_set_rejected(self):
        with pytest.raises(ModelError):
            enumerate_exact_covers(
                ["a"], [fs("a"), fs("a", "z")], {fs("a"): 1.0, fs("a", "z"): 1.0}
            )

    def test_no_positive_cover_rejected(self):
        with pytest.raises(ModelError):
            enumerate_exact_covers(["a"], [fs("a")], {fs("a"): 0.0})

    def test_deterministic_order(self):
        args = (
            ["a", "b", "c"],
            [fs("a"), fs("b"), fs("c"), fs("a", "b")],
            {fs("a"): 0.4, fs("b"): 0.6, fs("c"): 1.0, fs("a", "b"): 0.9},
        )
        first = enumerate_exact_covers(*args)
        second = enumerate_exact_covers(*args)
        assert first == second
        assert first[0].probability >= first[-1].probability

    def test_three_way_component(self):
        """A size-3 component with chained pairs enumerates all partitions."""
        covers = enumerate_exact_covers(
            ["a", "b", "c"],
            [
                fs("a"), fs("b"), fs("c"),
                fs("a", "b"), fs("b", "c"), fs("a", "c"),
            ],
            {
                fs("a"): 0.5, fs("b"): 0.5, fs("c"): 0.5,
                fs("a", "b"): 0.5, fs("b", "c"): 0.5, fs("a", "c"): 0.5,
            },
        )
        # partitions of {a,b,c} into singletons and one pair + singleton:
        # {a|b|c}, {ab|c}, {bc|a}, {ac|b} -> 4 covers
        assert len(covers) == 4
