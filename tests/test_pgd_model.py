"""Unit tests for repro.pgd.model (the PGD container)."""

import pytest

from repro.pgd.distributions import LabelDistribution
from repro.pgd.model import PGD
from repro.utils.errors import ModelError


def small_pgd():
    pgd = PGD()
    pgd.add_reference("r1", {"a": 0.5, "b": 0.5})
    pgd.add_reference("r2", "a")
    pgd.add_reference("r3", "b")
    pgd.add_edge("r1", "r2", 0.9)
    pgd.add_reference_set(("r1", "r3"), 0.4)
    return pgd


class TestReferences:
    def test_label_spec_forms(self):
        pgd = PGD()
        pgd.add_reference(1, "x")
        pgd.add_reference(2, {"x": 0.3, "y": 0.7})
        pgd.add_reference(3, LabelDistribution.certain("y"))
        assert pgd.label_distribution(1).probability("x") == 1.0
        assert pgd.label_distribution(2).probability("y") == 0.7
        assert pgd.sigma == frozenset({"x", "y"})

    def test_duplicate_reference_rejected(self):
        pgd = PGD()
        pgd.add_reference("r", "a")
        with pytest.raises(ModelError):
            pgd.add_reference("r", "b")

    def test_unknown_reference_lookup(self):
        with pytest.raises(ModelError):
            PGD().label_distribution("ghost")


class TestEdges:
    def test_undirected_lookup(self):
        pgd = small_pgd()
        assert pgd.edge_distribution("r1", "r2").probability() == 0.9
        assert pgd.edge_distribution("r2", "r1").probability() == 0.9
        assert pgd.edge_distribution("r1", "r3") is None

    def test_self_loop_rejected(self):
        pgd = small_pgd()
        with pytest.raises(ModelError):
            pgd.add_edge("r1", "r1", 0.5)

    def test_undeclared_endpoint_rejected(self):
        pgd = small_pgd()
        with pytest.raises(ModelError):
            pgd.add_edge("r1", "ghost", 0.5)

    def test_duplicate_edge_rejected(self):
        pgd = small_pgd()
        with pytest.raises(ModelError):
            pgd.add_edge("r2", "r1", 0.5)

    def test_conditional_edge_flag(self):
        pgd = small_pgd()
        assert not pgd.has_conditional_edges
        pgd.add_edge("r2", "r3", {("a", "b"): 0.5})
        assert pgd.has_conditional_edges


class TestReferenceSets:
    def test_sets_include_singletons(self):
        pgd = small_pgd()
        sets = pgd.reference_sets()
        assert frozenset(("r1",)) in sets
        assert frozenset(("r1", "r3")) in sets
        assert sets[frozenset(("r2",))] == 1.0
        assert sets[frozenset(("r1", "r3"))] == 0.4

    def test_singleton_override(self):
        pgd = small_pgd()
        pgd.set_singleton_potential("r1", 0.3)
        assert pgd.reference_sets()[frozenset(("r1",))] == 0.3

    def test_singleton_set_rejected(self):
        pgd = small_pgd()
        with pytest.raises(ModelError):
            pgd.add_reference_set(("r1",), 0.5)

    def test_undeclared_member_rejected(self):
        pgd = small_pgd()
        with pytest.raises(ModelError):
            pgd.add_reference_set(("r1", "ghost"), 0.5)

    def test_duplicate_set_rejected(self):
        pgd = small_pgd()
        with pytest.raises(ModelError):
            pgd.add_reference_set(("r3", "r1"), 0.6)

    def test_declared_sets_excludes_singletons(self):
        pgd = small_pgd()
        assert list(pgd.declared_sets()) == [frozenset(("r1", "r3"))]


class TestValidation:
    def test_empty_pgd_invalid(self):
        with pytest.raises(ModelError):
            PGD().validate()

    def test_cpt_label_outside_alphabet(self):
        pgd = small_pgd()
        pgd.add_edge("r2", "r3", {("a", "zz"): 0.5})
        with pytest.raises(ModelError):
            pgd.validate()

    def test_stats(self):
        stats = small_pgd().stats()
        assert stats == {
            "references": 3,
            "edges": 1,
            "reference_sets": 1,
            "labels": 2,
            "conditional_edges": 0,
        }
