"""Unit tests for repro.index.builder — completeness and correctness.

The key invariant: for every label sequence X and threshold alpha >= beta,
``index.lookup(X, alpha)`` returns exactly the paths that on-demand
enumeration finds, with identical probability components.
"""

import itertools

import pytest

from repro.index import build_path_index
from repro.index.builder import enumerate_paths_for_sequence
from repro.peg import build_peg
from repro.pgd import pgd_from_edge_list
from repro.storage import DiskPathStore, InMemoryPathStore
from tests.conftest import small_random_peg


def path_key_set(paths):
    return {(p.nodes, round(p.prle, 9), round(p.prn, 9)) for p in paths}


class TestFigure1Index:
    def test_level_zero_entries(self, figure1_peg):
        index = build_path_index(figure1_peg, max_length=1, beta=0.05)
        singles = index.lookup(("a",), 0.5)
        assert len(singles) == 1
        entity = figure1_peg.entity_of(singles[0].nodes[0])
        assert entity == frozenset({"r2"})

    def test_path_probabilities_stored_split(self, figure1_peg):
        index = build_path_index(figure1_peg, max_length=2, beta=0.05)
        hits = index.lookup(("r", "a", "i"), 0.15)
        assert len(hits) == 1
        hit = hits[0]
        assert hit.prn == pytest.approx(0.8)       # merged entity on path
        assert hit.probability == pytest.approx(0.2025)

    def test_no_reference_sharing_on_paths(self, figure1_peg):
        index = build_path_index(figure1_peg, max_length=2, beta=0.01)
        for seq in index.store.label_sequences():
            for _, payload in index.store.scan_buckets(seq, 0):
                from repro.index.paths import decode_paths
                for path in decode_paths(payload):
                    entities = [figure1_peg.entity_of(n) for n in path.nodes]
                    for i, left in enumerate(entities):
                        for right in entities[i + 1:]:
                            assert not (left & right)


class TestCompleteness:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_lookup_equals_on_demand(self, seed):
        peg = small_random_peg(seed=seed, num_references=50)
        index = build_path_index(peg, max_length=2, beta=0.2, gamma=0.1)
        sigma = sorted(peg.sigma)
        for length in (1, 2, 3):
            for seq in itertools.product(sigma, repeat=length):
                if length - 1 > index.max_length:
                    continue
                for alpha in (0.2, 0.5, 0.8):
                    looked_up = index.lookup(seq, alpha)
                    on_demand = enumerate_paths_for_sequence(peg, seq, alpha)
                    assert path_key_set(looked_up) == path_key_set(on_demand), (
                        seq,
                        alpha,
                    )

    def test_beta_pruning_sound(self):
        """Raising beta must never lose paths above the raised threshold."""
        peg = small_random_peg(seed=3, num_references=40)
        low = build_path_index(peg, max_length=2, beta=0.1)
        high = build_path_index(peg, max_length=2, beta=0.5)
        for seq in high.store.label_sequences():
            assert path_key_set(high.lookup(seq, 0.5)) == path_key_set(
                low.lookup(seq, 0.5)
            )


class TestOrientation:
    def test_palindrome_returns_both_alignments(self):
        peg = build_peg(
            pgd_from_edge_list(
                node_labels={"x": "a", "y": "b", "z": "a"},
                edges=[("x", "y", 0.9), ("y", "z", 0.8)],
            )
        )
        index = build_path_index(peg, max_length=2, beta=0.05)
        hits = index.lookup(("a", "b", "a"), 0.1)
        assert len(hits) == 2
        assert {h.nodes for h in hits} == {
            hits[0].nodes,
            tuple(reversed(hits[0].nodes)),
        }

    def test_non_palindrome_oriented_to_request(self):
        peg = build_peg(
            pgd_from_edge_list(
                node_labels={"x": "a", "y": "b"},
                edges=[("x", "y", 0.9)],
            )
        )
        index = build_path_index(peg, max_length=1, beta=0.05)
        forward = index.lookup(("a", "b"), 0.1)
        backward = index.lookup(("b", "a"), 0.1)
        assert len(forward) == len(backward) == 1
        assert forward[0].nodes == tuple(reversed(backward[0].nodes))
        # orientation matches the requested labels
        assert peg.possible_labels_id(forward[0].nodes[0]) == ("a",)
        assert peg.possible_labels_id(backward[0].nodes[0]) == ("b",)


class TestBuilderVariants:
    def test_disk_store_equivalent(self, tmp_path):
        peg = small_random_peg(seed=4, num_references=40)
        mem = build_path_index(peg, max_length=2, beta=0.3)
        disk = build_path_index(
            peg,
            max_length=2,
            beta=0.3,
            store=DiskPathStore(str(tmp_path / "idx")),
        )
        for seq in mem.store.label_sequences():
            assert path_key_set(mem.lookup(seq, 0.3)) == path_key_set(
                disk.lookup(seq, 0.3)
            )

    def test_threaded_build_equivalent(self):
        peg = small_random_peg(seed=5, num_references=40)
        serial = build_path_index(peg, max_length=2, beta=0.3)
        threaded = build_path_index(peg, max_length=2, beta=0.3, num_threads=4)
        for seq in serial.store.label_sequences():
            assert path_key_set(serial.lookup(seq, 0.3)) == path_key_set(
                threaded.lookup(seq, 0.3)
            )

    def test_build_stats_present(self):
        peg = small_random_peg(seed=6, num_references=40)
        index = build_path_index(peg, max_length=2, beta=0.3)
        stats = index.stats()
        assert stats["paths_per_length"][0] > 0
        assert stats["build_seconds"] > 0
        assert set(stats["paths_per_length"]) == {0, 1, 2}

    def test_longer_L_superset_of_shorter(self):
        peg = small_random_peg(seed=7, num_references=40)
        short = build_path_index(peg, max_length=1, beta=0.3)
        longer = build_path_index(peg, max_length=2, beta=0.3)
        for seq in short.store.label_sequences():
            assert path_key_set(short.lookup(seq, 0.3)) == path_key_set(
                longer.lookup(seq, 0.3)
            )


class TestBucketRounding:
    """One rounding rule shared by grid, builder and lookup (regression).

    ``0.7 * 1000`` is ``699.999...``: truncation in one place and
    rounding in another put grid-boundary probabilities one bucket low —
    most visibly, a lookup at ``alpha == beta == 0.7`` mis-raised
    "below index lower bound".
    """

    @staticmethod
    def _boundary_peg():
        # One certain 'a'-'b' edge with probability exactly 0.7: the
        # indexed 2-node path has probability float(0.7).
        return build_peg(
            pgd_from_edge_list(
                node_labels={"r1": "a", "r2": "b"},
                edges=[("r1", "r2", 0.7)],
            )
        )

    def test_lookup_at_alpha_equal_beta_boundary(self):
        index = build_path_index(
            self._boundary_peg(), max_length=1, beta=0.7, gamma=0.1
        )
        hits = index.lookup(("a", "b"), 0.7)
        assert len(hits) == 1
        assert hits[0].probability == pytest.approx(0.7)

    def test_builder_and_index_agree_on_buckets(self):
        from repro.index.builder import _bucket_for, _grid_milli

        index = build_path_index(
            self._boundary_peg(), max_length=1, beta=0.1, gamma=0.2
        )
        grid = _grid_milli(0.1, 0.2)
        assert grid == index.grid()
        for probability in (0.1, 0.3, 0.5, 0.7, 0.9, 0.2999999, 1.0):
            assert _bucket_for(probability, grid) == index.bucket_for(
                probability
            ), probability

    def test_stored_bucket_reachable_from_equal_alpha(self):
        index = build_path_index(
            self._boundary_peg(), max_length=1, beta=0.1, gamma=0.2
        )
        # float 0.7 rounds to 700; the path must be stored in a bucket
        # that a min-bucket scan from bucket_for(0.7) reaches.
        assert index.bucket_for(0.7) <= 700
        assert index.lookup(("a", "b"), 0.7)

    def test_grid_rejects_beta_above_one(self):
        from repro.index.builder import _grid_milli
        from repro.utils.errors import IndexError_

        with pytest.raises(IndexError_):
            _grid_milli(1.2, 0.1)
        with pytest.raises(IndexError_):
            build_path_index(self._boundary_peg(), max_length=1, beta=1.01)
