"""Shared fixtures: the paper's motivating example and small random PEGs."""

from __future__ import annotations

import pytest

from repro.datasets import SyntheticConfig, generate_synthetic_pgd
from repro.peg import build_peg
from repro.pgd import pgd_from_edge_list


@pytest.fixture
def figure1_pgd():
    """The Figure-1 reference network of the paper's Section 2."""
    return pgd_from_edge_list(
        node_labels={
            "r1": {"r": 0.25, "i": 0.75},
            "r2": "a",
            "r3": "r",
            "r4": "i",
        },
        edges=[
            ("r1", "r2", 0.9),
            ("r2", "r3", 1.0),
            ("r2", "r4", 0.5),
            ("r1", "r4", 1.0),
        ],
        reference_sets=[(("r3", "r4"), 0.8)],
    )


@pytest.fixture
def figure1_peg(figure1_pgd):
    return build_peg(figure1_pgd)


def small_random_peg(seed: int, num_references: int = 60, uncertainty: float = 0.4):
    """A small synthetic PEG for oracle comparisons."""
    config = SyntheticConfig(
        num_references=num_references,
        edges_per_node=2,
        num_labels=3,
        uncertainty=uncertainty,
        groups=3,
        seed=seed,
    )
    return build_peg(generate_synthetic_pgd(config))


@pytest.fixture
def random_peg():
    return small_random_peg(seed=42)
