"""Shared fixtures: the paper's motivating example and small random PEGs.

With ``REPRO_SANITIZE=1`` this also arms the runtime concurrency
sanitizer *before* any test constructs repro objects: every repro lock
becomes a :class:`~repro.testing.sanitizer.SanitizedLock`, the classes
with ``# guarded-by:`` annotations get Eraser-style lockset checking,
and an autouse fixture fails any test that accumulated violations.
"""

from __future__ import annotations

import os

import pytest

from repro.datasets import SyntheticConfig, generate_synthetic_pgd
from repro.peg import build_peg
from repro.pgd import pgd_from_edge_list
from repro.testing import sanitizer

if sanitizer.install_from_env():
    # Import *after* install so the classes' future instances pick up
    # sanitized guard locks the lockset checker can observe.
    from repro.net.client import CircuitBreaker
    from repro.service.stats import ServiceStats

    sanitizer.instrument_guarded(ServiceStats)
    sanitizer.instrument_guarded(CircuitBreaker)


@pytest.fixture(autouse=True)
def _sanitizer_clean():
    """Every test fails if it left concurrency violations behind."""
    yield
    if sanitizer.installed() and os.environ.get("REPRO_SANITIZE") == "1":
        sanitizer.assert_clean()


@pytest.fixture
def figure1_pgd():
    """The Figure-1 reference network of the paper's Section 2."""
    return pgd_from_edge_list(
        node_labels={
            "r1": {"r": 0.25, "i": 0.75},
            "r2": "a",
            "r3": "r",
            "r4": "i",
        },
        edges=[
            ("r1", "r2", 0.9),
            ("r2", "r3", 1.0),
            ("r2", "r4", 0.5),
            ("r1", "r4", 1.0),
        ],
        reference_sets=[(("r3", "r4"), 0.8)],
    )


@pytest.fixture
def figure1_peg(figure1_pgd):
    return build_peg(figure1_pgd)


def small_random_peg(seed: int, num_references: int = 60, uncertainty: float = 0.4):
    """A small synthetic PEG for oracle comparisons."""
    config = SyntheticConfig(
        num_references=num_references,
        edges_per_node=2,
        num_labels=3,
        uncertainty=uncertainty,
        groups=3,
        seed=seed,
    )
    return build_peg(generate_synthetic_pgd(config))


@pytest.fixture
def random_peg():
    return small_random_peg(seed=42)
