"""Unit tests for repro.pgm.markov."""

from repro.pgm.factor import Factor
from repro.pgm.markov import MarkovNetwork


def unary(var):
    return Factor.from_distribution(var, {0: 0.5, 1: 0.5})


def pairwise(var_a, var_b):
    return Factor.from_function(
        (var_a, var_b),
        {var_a: (0, 1), var_b: (0, 1)},
        lambda a: 1.0,
    )


class TestMarkovNetwork:
    def test_variables(self):
        net = MarkovNetwork([unary("a"), pairwise("b", "c")])
        assert net.variables == {"a", "b", "c"}

    def test_neighbors(self):
        net = MarkovNetwork([pairwise("a", "b"), pairwise("b", "c")])
        assert net.neighbors("b") == {"a", "c"}
        assert net.neighbors("a") == {"b"}

    def test_connected_components(self):
        net = MarkovNetwork(
            [pairwise("a", "b"), pairwise("c", "d"), unary("e")]
        )
        components = net.connected_components()
        assert sorted(sorted(c) for c in components) == [
            ["a", "b"],
            ["c", "d"],
            ["e"],
        ]

    def test_component_factors_complete(self):
        f1, f2, f3 = pairwise("a", "b"), pairwise("b", "c"), unary("d")
        net = MarkovNetwork([f1, f2, f3])
        components = {frozenset(c) for c in net.connected_components()}
        assert frozenset({"a", "b", "c"}) in components
        abc = net.component_factors(frozenset({"a", "b", "c"}))
        assert {id(f) for f in abc} == {id(f1), id(f2)}

    def test_factors_of(self):
        f1, f2 = pairwise("a", "b"), unary("a")
        net = MarkovNetwork([f1, f2])
        assert {id(f) for f in net.factors_of("a")} == {id(f1), id(f2)}
        assert {id(f) for f in net.factors_of("b")} == {id(f1)}

    def test_transitive_component(self):
        """A chain of shared variables forms a single component."""
        net = MarkovNetwork(
            [pairwise("a", "b"), pairwise("b", "c"), pairwise("c", "d")]
        )
        assert net.connected_components() == [frozenset({"a", "b", "c", "d"})]
