"""Unit tests for repro.index.paths serialization."""

import numpy as np
import pytest

from repro.index.paths import (
    IndexedPath,
    _decode_paths_scalar,
    concat_payloads,
    decode_path_arrays,
    decode_paths,
    decode_paths_above,
    encode_paths,
    payload_count,
)
from repro.utils.errors import IndexError_


class TestIndexedPath:
    def test_probability(self):
        path = IndexedPath((1, 2, 3), 0.5, 0.8)
        assert path.probability == pytest.approx(0.4)

    def test_reversed(self):
        path = IndexedPath((1, 2, 3), 0.5, 0.8)
        rev = path.reversed()
        assert rev.nodes == (3, 2, 1)
        assert rev.prle == 0.5
        assert rev.reversed() == path


class TestSerialization:
    def test_roundtrip(self):
        paths = [
            IndexedPath((0,), 1.0, 1.0),
            IndexedPath((1, 2), 0.5, 0.9),
            IndexedPath((3, 4, 5, 6), 0.25, 0.75),
        ]
        assert decode_paths(encode_paths(paths)) == paths

    def test_empty(self):
        assert decode_paths(encode_paths([])) == []

    def test_large_node_ids(self):
        paths = [IndexedPath((2**31, 2**32 - 1), 0.1, 0.2)]
        assert decode_paths(encode_paths(paths)) == paths

    def test_probability_precision(self):
        paths = [IndexedPath((1,), 0.123456789012345, 0.987654321098765)]
        decoded = decode_paths(encode_paths(paths))[0]
        assert decoded.prle == pytest.approx(0.123456789012345, abs=1e-15)
        assert decoded.prn == pytest.approx(0.987654321098765, abs=1e-15)

    def test_too_long_path_rejected(self):
        with pytest.raises(IndexError_):
            encode_paths([IndexedPath(tuple(range(300)), 0.5, 0.5)])

    def test_corrupt_payload_detected(self):
        payload = encode_paths([IndexedPath((1, 2), 0.5, 0.5)])
        with pytest.raises(IndexError_):
            decode_paths(payload + b"junk")

    def test_payload_count_without_decode(self):
        paths = [IndexedPath((i, i + 1), 0.5, 0.9) for i in range(7)]
        assert payload_count(encode_paths(paths)) == 7
        assert payload_count(encode_paths([])) == 0

    def test_concat_payloads_equals_encoding_concatenation(self):
        first = [IndexedPath((0,), 1.0, 1.0), IndexedPath((1, 2), 0.5, 0.9)]
        second = [IndexedPath((3, 4, 5), 0.25, 0.75)]
        merged = concat_payloads(
            [encode_paths(first), encode_paths(second), encode_paths([])]
        )
        assert decode_paths(merged) == first + second
        assert payload_count(merged) == 3


class TestBulkDecode:
    """The np.frombuffer fast path must be indistinguishable from the
    record-by-record reference decoder."""

    def _paths(self, count=50, num_nodes=3, seed=11):
        rng = np.random.default_rng(seed)
        return [
            IndexedPath(
                tuple(int(n) for n in rng.integers(0, 2**32, num_nodes)),
                float(rng.random()),
                float(rng.random()),
            )
            for _ in range(count)
        ]

    def test_arrays_match_scalar_decoder(self):
        paths = self._paths()
        payload = encode_paths(paths)
        nodes, prle, prn = decode_path_arrays(payload)
        assert nodes.shape == (50, 3)
        for i, path in enumerate(_decode_paths_scalar(payload)):
            assert tuple(nodes[i]) == path.nodes
            assert prle[i] == path.prle  # bit-exact, not approx
            assert prn[i] == path.prn

    def test_bulk_decode_equals_scalar(self):
        payload = encode_paths(self._paths(count=17, num_nodes=4))
        assert decode_paths(payload) == _decode_paths_scalar(payload)

    def test_heterogeneous_payload_falls_back(self):
        mixed = [IndexedPath((1,), 0.5, 0.5), IndexedPath((1, 2), 0.5, 0.5)]
        payload = encode_paths(mixed)
        assert decode_path_arrays(payload) is None
        assert decode_paths(payload) == mixed

    def test_decode_above_threshold(self):
        paths = self._paths(count=200)
        payload = encode_paths(paths)
        for alpha in (0.0, 0.25, 0.5, 1.1):
            expected = [p for p in paths if p.probability >= alpha]
            assert decode_paths_above(payload, alpha) == expected

    def test_decode_above_heterogeneous(self):
        mixed = [IndexedPath((1,), 0.9, 0.9), IndexedPath((1, 2), 0.1, 0.1)]
        payload = encode_paths(mixed)
        assert decode_paths_above(payload, 0.5) == [mixed[0]]

    def test_decode_from_memoryview(self):
        paths = self._paths(count=5)
        payload = memoryview(encode_paths(paths))
        assert decode_paths(payload) == paths
        assert decode_paths_above(payload, 0.0) == paths

    def test_empty_payload(self):
        payload = encode_paths([])
        nodes, prle, prn = decode_path_arrays(payload)
        assert nodes.shape[0] == 0 and prle.size == 0 and prn.size == 0
        assert decode_paths_above(payload, 0.0) == []

    def test_corrupt_payload_still_detected(self):
        payload = encode_paths([IndexedPath((1, 2), 0.5, 0.5)])
        with pytest.raises(IndexError_):
            decode_paths(payload + b"junk")
        with pytest.raises(IndexError_):
            decode_paths(encode_paths([]) + b"junk")
