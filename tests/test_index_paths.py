"""Unit tests for repro.index.paths serialization."""

import pytest

from repro.index.paths import (
    IndexedPath,
    concat_payloads,
    decode_paths,
    encode_paths,
    payload_count,
)
from repro.utils.errors import IndexError_


class TestIndexedPath:
    def test_probability(self):
        path = IndexedPath((1, 2, 3), 0.5, 0.8)
        assert path.probability == pytest.approx(0.4)

    def test_reversed(self):
        path = IndexedPath((1, 2, 3), 0.5, 0.8)
        rev = path.reversed()
        assert rev.nodes == (3, 2, 1)
        assert rev.prle == 0.5
        assert rev.reversed() == path


class TestSerialization:
    def test_roundtrip(self):
        paths = [
            IndexedPath((0,), 1.0, 1.0),
            IndexedPath((1, 2), 0.5, 0.9),
            IndexedPath((3, 4, 5, 6), 0.25, 0.75),
        ]
        assert decode_paths(encode_paths(paths)) == paths

    def test_empty(self):
        assert decode_paths(encode_paths([])) == []

    def test_large_node_ids(self):
        paths = [IndexedPath((2**31, 2**32 - 1), 0.1, 0.2)]
        assert decode_paths(encode_paths(paths)) == paths

    def test_probability_precision(self):
        paths = [IndexedPath((1,), 0.123456789012345, 0.987654321098765)]
        decoded = decode_paths(encode_paths(paths))[0]
        assert decoded.prle == pytest.approx(0.123456789012345, abs=1e-15)
        assert decoded.prn == pytest.approx(0.987654321098765, abs=1e-15)

    def test_too_long_path_rejected(self):
        with pytest.raises(IndexError_):
            encode_paths([IndexedPath(tuple(range(300)), 0.5, 0.5)])

    def test_corrupt_payload_detected(self):
        payload = encode_paths([IndexedPath((1, 2), 0.5, 0.5)])
        with pytest.raises(IndexError_):
            decode_paths(payload + b"junk")

    def test_payload_count_without_decode(self):
        paths = [IndexedPath((i, i + 1), 0.5, 0.9) for i in range(7)]
        assert payload_count(encode_paths(paths)) == 7
        assert payload_count(encode_paths([])) == 0

    def test_concat_payloads_equals_encoding_concatenation(self):
        first = [IndexedPath((0,), 1.0, 1.0), IndexedPath((1, 2), 0.5, 0.9)]
        second = [IndexedPath((3, 4, 5), 0.25, 0.75)]
        merged = concat_payloads(
            [encode_paths(first), encode_paths(second), encode_paths([])]
        )
        assert decode_paths(merged) == first + second
        assert payload_count(merged) == 3
