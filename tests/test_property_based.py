"""Property-based tests (hypothesis) for core data structures and invariants."""

import math

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.index.histogram import CardinalityHistogram
from repro.index.paths import IndexedPath, decode_paths, encode_paths
from repro.pgd.builders import normalized_levenshtein, pair_merge_potentials
from repro.pgd.distributions import BernoulliEdge, LabelDistribution
from repro.pgd.merge import average_edges, average_labels, disjunct_edges
from repro.pgm.configurations import enumerate_exact_covers
from repro.pgm.factor import Factor
from repro.storage.btree import BPlusTree


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------

probabilities = st.floats(0.0, 1.0, allow_nan=False)
positive_probabilities = st.floats(0.01, 1.0, allow_nan=False)


@st.composite
def label_distributions(draw):
    n = draw(st.integers(1, 5))
    raw = draw(
        st.lists(st.floats(0.01, 1.0), min_size=n, max_size=n)
    )
    total = sum(raw)
    return LabelDistribution(
        {f"l{i}": value / total for i, value in enumerate(raw)}
    )


# ----------------------------------------------------------------------
# B+ tree behaves exactly like a sorted dict
# ----------------------------------------------------------------------


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(
    ops=st.lists(
        st.tuples(st.binary(min_size=1, max_size=24), st.binary(max_size=24)),
        max_size=120,
    ),
    probe=st.binary(min_size=1, max_size=24),
)
def test_btree_matches_dict(tmp_path_factory, ops, probe):
    directory = tmp_path_factory.mktemp("btree")
    tree = BPlusTree(str(directory / "t.btree"))
    reference = {}
    try:
        for key, value in ops:
            tree.put(key, value)
            reference[key] = value
        assert len(tree) == len(reference)
        assert tree.get(probe) == reference.get(probe)
        assert [k for k, _ in tree.items()] == sorted(reference)
        if reference:
            lo = min(reference)
            scanned = dict(tree.range(lo))
            assert scanned == reference
    finally:
        tree.close()


# ----------------------------------------------------------------------
# Factor algebra laws
# ----------------------------------------------------------------------


@settings(max_examples=50, deadline=None)
@given(
    p=st.lists(st.floats(0.01, 1.0), min_size=2, max_size=2),
    q=st.lists(st.floats(0.01, 1.0), min_size=3, max_size=3),
)
def test_factor_product_marginal_consistent(p, q):
    """Marginalizing a product of independent factors recovers each."""
    f = Factor(("x",), {"x": (0, 1)}, p)
    g = Factor(("y",), {"y": (0, 1, 2)}, q)
    joint = f.multiply(g)
    fx = joint.marginalize(["y"])
    total_g = sum(q)
    for i, value in enumerate(p):
        assert math.isclose(fx.get({"x": i}), value * total_g, rel_tol=1e-9)


@settings(max_examples=50, deadline=None)
@given(values=st.lists(st.floats(0.01, 10.0), min_size=4, max_size=4))
def test_factor_normalize_is_distribution(values):
    f = Factor(("x",), {"x": tuple(range(4))}, values).normalize()
    assert math.isclose(f.partition, 1.0, rel_tol=1e-9)


# ----------------------------------------------------------------------
# Merge functions
# ----------------------------------------------------------------------


@settings(max_examples=50, deadline=None)
@given(dists=st.lists(label_distributions(), min_size=1, max_size=4))
def test_average_labels_normalized_and_bounded(dists):
    merged = average_labels(dists)
    total = sum(p for _, p in merged.items())
    assert math.isclose(total, 1.0, rel_tol=1e-9)
    for label, prob in merged.items():
        inputs = [d.probability(label) for d in dists]
        assert min(inputs) - 1e-12 <= prob <= max(inputs) + 1e-12


@settings(max_examples=50, deadline=None)
@given(ps=st.lists(positive_probabilities, min_size=1, max_size=5))
def test_edge_merges_bounded(ps):
    edges = [BernoulliEdge(p) for p in ps]
    avg = average_edges(edges).probability()
    dis = disjunct_edges(edges).probability()
    assert min(ps) - 1e-12 <= avg <= max(ps) + 1e-12
    assert max(ps) - 1e-12 <= dis <= 1.0 + 1e-12


# ----------------------------------------------------------------------
# Exact covers
# ----------------------------------------------------------------------


@settings(max_examples=40, deadline=None)
@given(
    potentials=st.lists(st.floats(0.05, 1.0), min_size=3, max_size=3),
)
def test_pair_component_distribution(potentials):
    """Any positive potentials give a normalized two-configuration model."""
    p_a, p_b, p_ab = potentials
    covers = enumerate_exact_covers(
        ["a", "b"],
        [frozenset("a"), frozenset("b"), frozenset(["a", "b"])],
        {
            frozenset("a"): p_a,
            frozenset("b"): p_b,
            frozenset(["a", "b"]): p_ab,
        },
    )
    assert len(covers) == 2
    assert math.isclose(sum(c.probability for c in covers), 1.0, rel_tol=1e-9)
    merged = next(c for c in covers if len(c.chosen) == 1)
    expected = (p_ab ** 2) / (p_ab ** 2 + p_a * p_b)
    assert math.isclose(merged.probability, expected, rel_tol=1e-9)


@settings(max_examples=40, deadline=None)
@given(p=st.floats(0.0, 0.99))
def test_pair_merge_potentials_roundtrip(p):
    pair, single = pair_merge_potentials(p)
    realized = (pair ** 2) / (pair ** 2 + single ** 2)
    assert math.isclose(realized, p, rel_tol=1e-9, abs_tol=1e-12)


# ----------------------------------------------------------------------
# Index path serialization
# ----------------------------------------------------------------------


@settings(max_examples=50, deadline=None)
@given(
    paths=st.lists(
        st.tuples(
            st.lists(st.integers(0, 2**32 - 1), min_size=1, max_size=6),
            probabilities,
            probabilities,
        ),
        max_size=30,
    )
)
def test_path_payload_roundtrip(paths):
    originals = [
        IndexedPath(tuple(nodes), prle, prn) for nodes, prle, prn in paths
    ]
    assert decode_paths(encode_paths(originals)) == originals


# ----------------------------------------------------------------------
# Histograms
# ----------------------------------------------------------------------


@settings(max_examples=50, deadline=None)
@given(
    counts=st.lists(st.integers(0, 1000), min_size=2, max_size=8),
    alpha=st.floats(0.0, 1.0),
)
def test_histogram_estimate_within_neighbor_bounds(counts, alpha):
    n = len(counts)
    thresholds = [i / (n - 1 + 1e-9) for i in range(n)]
    hist = CardinalityHistogram.from_bucket_counts(thresholds, counts)
    estimate = hist.estimate(alpha)
    assert hist.counts[-1] - 1e-9 <= estimate <= hist.counts[0] + 1e-9


# ----------------------------------------------------------------------
# String similarity
# ----------------------------------------------------------------------


@settings(max_examples=80, deadline=None)
@given(left=st.text(max_size=12), right=st.text(max_size=12))
def test_levenshtein_properties(left, right):
    score = normalized_levenshtein(left, right)
    assert 0.0 <= score <= 1.0
    assert score == normalized_levenshtein(right, left)
    if left == right:
        assert score == 1.0


# ----------------------------------------------------------------------
# End-to-end probability invariant on tiny models
# ----------------------------------------------------------------------


@settings(max_examples=15, deadline=None)
@given(
    num_refs=st.integers(6, 12),
    extra_edges=st.integers(0, 8),
    merge_p=st.floats(0.1, 0.9),
    seed=st.integers(0, 10_000),
    alpha=st.floats(0.1, 0.8),
)
def test_engine_agrees_with_direct_on_random_pgds(
    num_refs, extra_edges, merge_p, seed, alpha
):
    """End-to-end: the optimized engine equals the backtracking oracle
    on hypothesis-generated reference graphs with identity uncertainty."""
    import numpy as np

    from repro.peg import build_peg
    from repro.pgd import PGD
    from repro.query import QueryEngine, QueryGraph, direct_matches

    rng = np.random.default_rng(seed)
    labels = ("a", "b")
    pgd = PGD()
    for ref in range(num_refs):
        if rng.random() < 0.4:
            p = float(rng.uniform(0.2, 0.8))
            pgd.add_reference(ref, {"a": p, "b": 1.0 - p})
        else:
            pgd.add_reference(ref, labels[int(rng.integers(2))])
    # a random connected backbone plus extra edges
    for ref in range(1, num_refs):
        other = int(rng.integers(ref))
        pgd.add_edge(ref, other, float(rng.uniform(0.3, 1.0)))
    for _ in range(extra_edges):
        x, y = int(rng.integers(num_refs)), int(rng.integers(num_refs))
        if x != y and pgd.edge_distribution(x, y) is None:
            pgd.add_edge(x, y, float(rng.uniform(0.3, 1.0)))
    pgd.add_reference_set((0, 1), merge_p)
    peg = build_peg(pgd)
    engine = QueryEngine(peg, max_length=2, beta=0.05)
    query = QueryGraph(
        {"u": "a", "v": "b", "w": "a"}, [("u", "v"), ("v", "w")]
    )
    optimized = {
        (m.nodes, m.edges, round(m.probability, 9))
        for m in engine.query(query, alpha).matches
    }
    oracle = {
        (m.nodes, m.edges, round(m.probability, 9))
        for m in direct_matches(peg, query, alpha)
    }
    assert optimized == oracle


@settings(max_examples=20, deadline=None)
@given(
    edge_probs=st.lists(positive_probabilities, min_size=3, max_size=3),
    merge_p=st.floats(0.05, 0.95),
)
def test_match_probability_equals_world_sum(edge_probs, merge_p):
    """Eq. 11 equals the literal possible-world sum on random tiny PEGs."""
    from repro.peg import build_peg, world_match_probability
    from repro.pgd import pgd_from_edge_list

    pgd = pgd_from_edge_list(
        node_labels={
            "a": {"x": 0.5, "y": 0.5},
            "b": "x",
            "c": "y",
            "d": "x",
        },
        edges=[
            ("a", "b", edge_probs[0]),
            ("b", "c", edge_probs[1]),
            ("c", "d", edge_probs[2]),
        ],
        reference_sets=[(("a", "d"), merge_p)],
    )
    peg = build_peg(pgd)
    node_labels = {
        frozenset({"a"}): "x",
        frozenset({"b"}): "x",
        frozenset({"c"}): "y",
    }
    edges = [
        frozenset({frozenset({"a"}), frozenset({"b"})}),
        frozenset({frozenset({"b"}), frozenset({"c"})}),
    ]
    fast = peg.match_probability(node_labels, edges)
    slow = world_match_probability(peg, node_labels, edges)
    assert math.isclose(fast, slow, rel_tol=1e-9, abs_tol=1e-12)
