"""Unit tests for repro.pgd.builders."""

import math

import pytest

from repro.pgd.builders import (
    normalized_levenshtein,
    pair_merge_potentials,
    pgd_from_edge_list,
    reference_sets_from_similarity,
)
from repro.peg import build_peg
from repro.utils.errors import ModelError


class TestPairMergePotentials:
    @pytest.mark.parametrize("p", [0.0, 0.2, 0.5, 0.8, 0.99])
    def test_calibration_is_exact(self, p):
        pair, singleton = pair_merge_potentials(p)
        merged_weight = pair * pair
        unmerged_weight = singleton * singleton
        total = merged_weight + unmerged_weight
        assert merged_weight / total == pytest.approx(p)

    def test_certain_merge_rejected(self):
        with pytest.raises(ModelError):
            pair_merge_potentials(1.0)

    def test_end_to_end_merge_probability(self):
        pgd = pgd_from_edge_list(
            node_labels={"x": "a", "y": "a"},
            edges=[],
            reference_sets=[(("x", "y"), 0.7)],
        )
        peg = build_peg(pgd)
        merged = frozenset({"x", "y"})
        assert peg.existence_probability(merged) == pytest.approx(0.7)


class TestPgdFromEdgeList:
    def test_uncalibrated_pairs(self):
        pgd = pgd_from_edge_list(
            node_labels={"x": "a", "y": "a"},
            edges=[],
            reference_sets=[(("x", "y"), 0.6)],
            calibrate_pairs=False,
        )
        sets = pgd.reference_sets()
        assert sets[frozenset(("x", "y"))] == 0.6
        assert sets[frozenset(("x",))] == 1.0

    def test_larger_sets_never_calibrated(self):
        pgd = pgd_from_edge_list(
            node_labels={"x": "a", "y": "a", "z": "a"},
            edges=[],
            reference_sets=[(("x", "y", "z"), 0.5)],
        )
        assert pgd.reference_sets()[frozenset(("x", "y", "z"))] == 0.5

    def test_validates_result(self):
        with pytest.raises(ModelError):
            pgd_from_edge_list(node_labels={}, edges=[])


class TestNormalizedLevenshtein:
    def test_identical(self):
        assert normalized_levenshtein("abc", "abc") == 1.0

    def test_completely_different(self):
        assert normalized_levenshtein("abc", "xyz") == 0.0

    def test_single_edit(self):
        assert normalized_levenshtein("abcd", "abed") == pytest.approx(0.75)

    def test_empty_string(self):
        assert normalized_levenshtein("", "abc") == 0.0

    def test_symmetry(self):
        assert normalized_levenshtein("kitten", "sitting") == pytest.approx(
            normalized_levenshtein("sitting", "kitten")
        )


class TestReferenceSetsFromSimilarity:
    NAMES = {
        1: "Christopher Tucker",
        2: "Chris Tucker",
        3: "Becky Castor",
        4: "Becky Castorr",
    }

    def test_proposes_similar_pairs(self):
        proposals = reference_sets_from_similarity(
            self.NAMES, normalized_levenshtein, threshold=0.6
        )
        pairs = {frozenset(pair) for pair, _ in proposals}
        assert frozenset({3, 4}) in pairs
        assert frozenset({1, 2}) in pairs

    def test_each_reference_in_one_pair(self):
        names = {1: "aaa", 2: "aaa", 3: "aaa"}
        proposals = reference_sets_from_similarity(
            names, normalized_levenshtein, threshold=0.9
        )
        used = [r for pair, _ in proposals for r in pair]
        assert len(used) == len(set(used))

    def test_threshold_filters(self):
        proposals = reference_sets_from_similarity(
            self.NAMES, normalized_levenshtein, threshold=0.99
        )
        assert proposals == []

    def test_probability_mapping(self):
        proposals = reference_sets_from_similarity(
            self.NAMES,
            normalized_levenshtein,
            threshold=0.6,
            probability=lambda score: 0.5,
        )
        assert all(p == 0.5 for _, p in proposals)

    def test_identical_names_capped_below_one(self):
        proposals = reference_sets_from_similarity(
            {1: "same", 2: "same"}, normalized_levenshtein, threshold=0.9
        )
        assert proposals[0][1] == pytest.approx(0.99)

    def test_blocking_restricts_comparisons(self):
        calls = []

        def counting_similarity(a, b):
            calls.append((a, b))
            return normalized_levenshtein(a, b)

        reference_sets_from_similarity(
            self.NAMES,
            counting_similarity,
            threshold=0.6,
            blocking=lambda name: name.split()[-1][:3].lower(),
        )
        # Tucker-block and Castor-block pairs only: 1 + 1 comparisons.
        assert len(calls) == 2
