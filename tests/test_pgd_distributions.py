"""Unit tests for repro.pgd.distributions."""

import pytest

from repro.pgd.distributions import (
    BernoulliEdge,
    ConditionalEdge,
    LabelDistribution,
)
from repro.utils.errors import ModelError


class TestLabelDistribution:
    def test_basic_access(self):
        dist = LabelDistribution({"a": 0.25, "b": 0.75})
        assert dist.probability("a") == 0.25
        assert dist.probability("missing") == 0.0
        assert set(dist.support) == {"a", "b"}

    def test_certain(self):
        dist = LabelDistribution.certain("x")
        assert dist.probability("x") == 1.0
        assert dist.support == ("x",)

    def test_zero_mass_labels_not_in_support(self):
        dist = LabelDistribution({"a": 1.0, "b": 0.0})
        assert dist.support == ("a",)

    def test_must_normalize(self):
        with pytest.raises(ModelError):
            LabelDistribution({"a": 0.5})

    def test_equality_and_hash(self):
        a = LabelDistribution({"x": 0.4, "y": 0.6})
        b = LabelDistribution({"x": 0.4, "y": 0.6})
        assert a == b
        assert hash(a) == hash(b)
        assert a != LabelDistribution({"x": 0.6, "y": 0.4})

    def test_as_dict_is_copy(self):
        dist = LabelDistribution({"a": 1.0})
        copy = dist.as_dict()
        copy["a"] = 0.0
        assert dist.probability("a") == 1.0


class TestBernoulliEdge:
    def test_probability_ignores_labels(self):
        edge = BernoulliEdge(0.3)
        assert edge.probability() == 0.3
        assert edge.probability("a", "b") == 0.3
        assert edge.max_probability() == 0.3
        assert not edge.conditional

    def test_bounds_checked(self):
        with pytest.raises(ModelError):
            BernoulliEdge(1.5)

    def test_equality(self):
        assert BernoulliEdge(0.5) == BernoulliEdge(0.5)
        assert BernoulliEdge(0.5) != BernoulliEdge(0.4)


class TestConditionalEdge:
    def test_cpt_lookup_is_symmetric(self):
        edge = ConditionalEdge({("a", "b"): 0.6, ("a", "a"): 0.9})
        assert edge.conditional
        assert edge.probability("a", "b") == 0.6
        assert edge.probability("b", "a") == 0.6
        assert edge.probability("a", "a") == 0.9

    def test_default_for_missing_pairs(self):
        edge = ConditionalEdge({("a", "a"): 0.9}, default=0.1)
        assert edge.probability("a", "z") == 0.1

    def test_probability_requires_both_labels(self):
        edge = ConditionalEdge({("a", "a"): 0.9})
        with pytest.raises(ModelError):
            edge.probability("a", None)

    def test_max_probability_unconstrained(self):
        edge = ConditionalEdge({("a", "a"): 0.9, ("a", "b"): 0.4})
        assert edge.max_probability() == 0.9

    def test_max_probability_one_label_fixed(self):
        edge = ConditionalEdge({("a", "a"): 0.9, ("a", "b"): 0.4, ("b", "b"): 0.7})
        assert edge.max_probability(None, "b") == 0.7
        assert edge.max_probability("b", None) == 0.7
        assert edge.max_probability(None, "a") == 0.9

    def test_max_probability_no_match_uses_default(self):
        edge = ConditionalEdge({("a", "a"): 0.9}, default=0.05)
        assert edge.max_probability(None, "z") == 0.05

    def test_conflicting_entries_rejected(self):
        with pytest.raises(ModelError):
            ConditionalEdge({("a", "b"): 0.5, ("b", "a"): 0.6})

    def test_duplicate_consistent_entries_allowed(self):
        edge = ConditionalEdge({("a", "b"): 0.5, ("b", "a"): 0.5})
        assert edge.probability("a", "b") == 0.5

    def test_bad_key_rejected(self):
        with pytest.raises(ModelError):
            ConditionalEdge({"ab": 0.5})

    def test_empty_cpt_rejected(self):
        with pytest.raises(ModelError):
            ConditionalEdge({})
