"""Tests for the runtime concurrency sanitizer (repro.testing.sanitizer).

Covers the lock wrapper disciplines (order inversions, self-deadlock,
reentrancy), the factory frame-gating, the install surface, the
Eraser-style lockset instrumentation, and the acceptance contract: the
seeded deadlock pair is flagged by REP210 *statically* and caught by
the sanitizer *at runtime* from one and the same source text.
"""

from __future__ import annotations

import importlib.util
import os
import sys
import textwrap
import threading

import pytest

from repro.testing import sanitizer
from repro.testing.sanitizer import (
    SanitizedLock,
    SanitizedRLock,
    Violation,
)
from tests.test_analysis import codes_of, lint_tree
from tests.test_analysis_flow import DEADLOCK_PAIR_SOURCE


@pytest.fixture(autouse=True)
def sanitizer_lifecycle():
    """Isolate every test: fresh order graph, no leaked installation."""
    sanitizer.reset()
    yield
    sanitizer.reset()
    if os.environ.get("REPRO_SANITIZE") != "1":
        sanitizer.uninstall()


def run_in_thread(target) -> None:
    thread = threading.Thread(target=target)
    thread.start()
    thread.join(timeout=10.0)
    assert not thread.is_alive()


def kinds() -> list:
    return [violation.kind for violation in sanitizer.violations()]


class TestLockOrderDiscipline:
    def test_opposite_orders_report_inversion_with_both_stacks(self):
        a = SanitizedLock(site="repro.x.M._a:1")
        b = SanitizedLock(site="repro.x.M._b:2")
        with a:
            with b:
                pass
        with b:
            with a:
                pass
        assert kinds() == ["lock-order-inversion"]
        violation = sanitizer.violations()[0]
        assert "repro.x.M._a:1" in violation.message
        assert "repro.x.M._b:2" in violation.message
        assert violation.first_stack and violation.second_stack
        report = violation.format()
        assert "--- first side ---" in report
        assert "--- second side ---" in report

    def test_consistent_order_is_clean(self):
        a = SanitizedLock(site="repro.x.M._a:1")
        b = SanitizedLock(site="repro.x.M._b:2")
        for _ in range(3):
            with a:
                with b:
                    pass
        assert kinds() == []

    def test_each_inversion_reported_once(self):
        a = SanitizedLock(site="repro.x.M._a:1")
        b = SanitizedLock(site="repro.x.M._b:2")
        with a:
            with b:
                pass
        for _ in range(3):
            with b:
                with a:
                    pass
        assert kinds() == ["lock-order-inversion"]

    def test_same_site_instances_do_not_order(self):
        # Two instances of the same class attribute share one identity;
        # nesting them is shard-style striping, not an order edge.
        first = SanitizedLock(site="repro.x.Shard._lock:9")
        second = SanitizedLock(site="repro.x.Shard._lock:9")
        with first:
            with second:
                pass
        with second:
            with first:
                pass
        assert kinds() == []

    def test_cross_thread_inversion_detected(self):
        a = SanitizedLock(site="repro.x.M._a:1")
        b = SanitizedLock(site="repro.x.M._b:2")

        def forward():
            with a:
                with b:
                    pass

        def backward():
            with b:
                with a:
                    pass

        run_in_thread(forward)
        run_in_thread(backward)
        assert kinds() == ["lock-order-inversion"]

    def test_self_deadlock_raises_and_records(self):
        lock = SanitizedLock(site="repro.x.M._lock:1")
        lock.acquire()
        try:
            with pytest.raises(RuntimeError, match="self-deadlock"):
                lock.acquire()
        finally:
            lock.release()
        assert kinds() == ["self-deadlock"]

    def test_rlock_reentry_is_legal(self):
        lock = SanitizedRLock(site="repro.x.M._rlock:1")
        with lock:
            with lock:
                pass
        assert kinds() == []

    def test_nonblocking_acquire_skips_order_check(self):
        a = SanitizedLock(site="repro.x.M._a:1")
        b = SanitizedLock(site="repro.x.M._b:2")
        with a:
            with b:
                pass
        with b:
            assert a.acquire(blocking=False)
            a.release()
        assert kinds() == []

    def test_condition_interop(self):
        gate = SanitizedLock(site="repro.x.M._gate:1")
        done = threading.Condition(gate)
        with gate:
            done.wait(timeout=0.01)
        with gate:
            done.notify_all()
        assert kinds() == []
        assert not gate.locked()

    def test_reset_clears_the_order_graph(self):
        a = SanitizedLock(site="repro.x.M._a:1")
        b = SanitizedLock(site="repro.x.M._b:2")
        with a:
            with b:
                pass
        sanitizer.reset()
        with b:
            with a:
                pass
        assert kinds() == []  # the forward edge was forgotten


class TestInstallSurface:
    def test_repro_frames_get_sanitized_locks(self):
        sanitizer.install()
        namespace = {"__name__": "repro._sanitizer_probe"}
        exec(
            "import threading\n"
            "lock = threading.Lock()\n"
            "rlock = threading.RLock()\n",
            namespace,
        )
        assert isinstance(namespace["lock"], SanitizedLock)
        assert isinstance(namespace["rlock"], SanitizedRLock)
        assert "_sanitizer_probe" in namespace["lock"]._site

    def test_non_repro_frames_get_real_locks(self):
        sanitizer.install()
        lock = threading.Lock()  # this frame is tests.*, not repro.*
        assert not isinstance(lock, SanitizedLock)
        lock.acquire()
        lock.release()

    def test_install_and_uninstall_are_idempotent(self):
        was_installed = sanitizer.installed()
        sanitizer.install()
        sanitizer.install()
        assert sanitizer.installed()
        if not was_installed:
            sanitizer.uninstall()
            sanitizer.uninstall()
            assert not sanitizer.installed()
            assert threading.Lock is sanitizer._REAL_LOCK

    def test_install_from_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        assert sanitizer.install_from_env() is False
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        assert sanitizer.install_from_env() is True
        assert sanitizer.installed()

    def test_assert_clean_raises_then_clears(self):
        a = SanitizedLock(site="repro.x.M._a:1")
        b = SanitizedLock(site="repro.x.M._b:2")
        with a:
            with b:
                pass
        with b:
            with a:
                pass
        with pytest.raises(AssertionError, match="lock-order-inversion"):
            sanitizer.assert_clean()
        sanitizer.assert_clean()  # drained: second call passes

    def test_violation_format_without_stacks(self):
        violation = Violation(
            kind="guarded-write", message="m",
            first_stack="", second_stack="",
        )
        assert violation.format() == "[guarded-write] m"


GUARDED_FIXTURE_SOURCE = """\
import threading


class Counter:
    def __init__(self):
        self._lock = threading.Lock()
        self.value = 0  # guarded-by: _lock

    def bump(self):
        with self._lock:
            self.value += 1

    def sneak(self):
        self.value += 1


class SampledCounter:
    def __init__(self):
        self._lock = threading.Lock()
        self.value = 0  # guarded-by: _lock

    def sneak(self):
        self.value += 1


class Unguarded:
    def __init__(self):
        self.value = 0
"""


@pytest.fixture()
def guarded_module(tmp_path):
    """A repro-namespaced module with guarded classes, freshly imported.

    A unique module name per test keeps class-level instrumentation
    state from leaking between tests.
    """
    sanitizer.install()
    path = tmp_path / "guarded_fixture.py"
    path.write_text(GUARDED_FIXTURE_SOURCE)
    name = f"repro._sanfix_{tmp_path.name}"
    spec = importlib.util.spec_from_file_location(name, path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module  # inspect.getsourcefile resolves via here
    try:
        spec.loader.exec_module(module)
        yield module
    finally:
        sys.modules.pop(name, None)


class TestLocksetInstrumentation:
    def test_locked_writes_are_clean(self, guarded_module):
        cls = sanitizer.instrument_guarded(guarded_module.Counter)
        assert cls is guarded_module.Counter
        counter = guarded_module.Counter()
        run_in_thread(counter.bump)
        run_in_thread(counter.bump)
        assert counter.value == 2
        assert kinds() == []

    def test_unlocked_second_thread_write_flags(self, guarded_module):
        sanitizer.instrument_guarded(guarded_module.Counter)
        counter = guarded_module.Counter()
        run_in_thread(counter.sneak)
        assert kinds() == ["guarded-write"]
        message = sanitizer.violations()[0].message
        assert "Counter.value" in message
        assert "_lock" in message

    def test_first_writer_is_exempt(self, guarded_module):
        sanitizer.instrument_guarded(guarded_module.Counter)
        counter = guarded_module.Counter()
        counter.sneak()  # same thread as __init__: Eraser's init phase
        assert kinds() == []

    def test_guard_replacement_empties_the_lockset(self, guarded_module):
        sanitizer.instrument_guarded(guarded_module.Counter)
        counter = guarded_module.Counter()
        run_in_thread(counter.bump)
        # Swapping the guard object mid-life means no single lock
        # protects all writes, even though each write "holds the guard".
        counter._lock = SanitizedLock(site="repro.x.Counter._lock:99")
        run_in_thread(counter.bump)
        assert kinds() == ["empty-lockset"]

    def test_sampling_checks_every_nth_write(self, guarded_module):
        sanitizer.instrument_guarded(
            guarded_module.SampledCounter, sample_every=2
        )
        counter = guarded_module.SampledCounter()

        def sneak_four():
            for _ in range(4):
                counter.sneak()

        # Guarded writes: __init__ (checked, virgin) then four unlocked
        # writes from a second thread — positions 2..5, of which the
        # odd positions (3, 5) are sampled.
        run_in_thread(sneak_four)
        assert kinds() == ["guarded-write", "guarded-write"]

    def test_instrumentation_is_idempotent(self, guarded_module):
        sanitizer.instrument_guarded(guarded_module.Counter)
        first = guarded_module.Counter.__setattr__
        sanitizer.instrument_guarded(guarded_module.Counter)
        assert guarded_module.Counter.__setattr__ is first

    def test_class_without_guards_is_untouched(self, guarded_module):
        cls = sanitizer.instrument_guarded(guarded_module.Unguarded)
        assert cls.__setattr__ is object.__setattr__

    def test_pre_install_instances_are_skipped(self, guarded_module):
        sanitizer.instrument_guarded(guarded_module.Counter)
        counter = guarded_module.Counter()
        # Simulate an instance whose guard predates install(): a real,
        # unobservable primitive. No checks can run against it.
        counter._lock = sanitizer._REAL_LOCK()
        run_in_thread(counter.sneak)
        assert kinds() == []


class TestAcceptanceFixture:
    """One source text; the static and dynamic layers must both bite."""

    def test_static_rep210_flags_the_pair(self, tmp_path):
        report = lint_tree(
            tmp_path,
            {"repro/service/pair.py": DEADLOCK_PAIR_SOURCE},
            select=["lock-flow"],
        )
        assert codes_of(report) == ["REP210"]

    def test_runtime_sanitizer_catches_the_pair(self):
        sanitizer.install()
        namespace = {"__name__": "repro._seeded_deadlock"}
        exec(
            compile(
                textwrap.dedent(DEADLOCK_PAIR_SOURCE),
                "<seeded-deadlock>", "exec",
            ),
            namespace,
        )
        pair = namespace["Pair"]()
        assert isinstance(pair._a, SanitizedLock)
        run_in_thread(pair.forward)
        run_in_thread(pair.backward)
        assert kinds() == ["lock-order-inversion"]
        violation = sanitizer.violations()[0]
        assert "_seeded_deadlock" in violation.message
        with pytest.raises(AssertionError, match="opposite orders"):
            sanitizer.assert_clean()
