"""Unit tests for repro.peg.construct (PGD -> PEG transformation)."""

import pytest

from repro.peg import build_peg
from repro.pgd import PGD, pgd_from_edge_list
from repro.utils.errors import ModelError


def fs(*items):
    return frozenset(items)


class TestFigure1(object):
    """The paper's running example, checked value by value."""

    def test_entity_count(self, figure1_peg):
        # 4 singletons + the merged {r3, r4} entity.
        assert figure1_peg.num_nodes == 5

    def test_merged_label_distribution(self, figure1_peg):
        merged = fs("r3", "r4")
        assert figure1_peg.label_probability(merged, "r") == pytest.approx(0.5)
        assert figure1_peg.label_probability(merged, "i") == pytest.approx(0.5)

    def test_merged_edge_probability(self, figure1_peg):
        # average of (r3, r2) = 1.0 and (r4, r2) = 0.5
        assert figure1_peg.edge_probability(
            fs("r3", "r4"), fs("r2")
        ) == pytest.approx(0.75)

    def test_merge_probability(self, figure1_peg):
        assert figure1_peg.existence_probability(
            fs("r3", "r4")
        ) == pytest.approx(0.8)
        assert figure1_peg.existence_probability(fs("r3")) == pytest.approx(0.2)

    def test_no_edge_between_conflicting_entities(self, figure1_peg):
        # {r3} and {r3, r4} share reference r3: no PEG edge between them.
        assert not figure1_peg.has_edge(fs("r3"), fs("r3", "r4"))

    def test_singleton_entities_exist_with_probability_one(self, figure1_peg):
        assert figure1_peg.existence_probability(fs("r1")) == 1.0
        assert figure1_peg.existence_probability(fs("r2")) == 1.0


class TestConstructionRules:
    def test_entity_edges_inherit_reference_edges(self):
        pgd = pgd_from_edge_list(
            node_labels={"x": "a", "y": "b", "z": "b"},
            edges=[("x", "y", 0.5)],
            reference_sets=[(("y", "z"), 0.5)],
        )
        peg = build_peg(pgd)
        # merged {y, z} has an edge to {x} via the (x, y) reference edge
        assert peg.edge_probability(fs("y", "z"), fs("x")) == pytest.approx(0.5)

    def test_zero_probability_edges_dropped(self):
        pgd = pgd_from_edge_list(
            node_labels={"x": "a", "y": "b"},
            edges=[("x", "y", 0.0)],
        )
        peg = build_peg(pgd)
        assert peg.num_edges == 0

    def test_impossible_entities_dropped(self):
        pgd = PGD()
        pgd.add_reference("x", "a")
        pgd.add_reference("y", "a")
        pgd.add_reference_set(("x", "y"), 0.0)
        peg = build_peg(pgd)
        assert fs("x", "y") not in peg.entities

    def test_conditional_flag_propagates(self):
        pgd = pgd_from_edge_list(
            node_labels={"x": "a", "y": "b"},
            edges=[("x", "y", {("a", "b"): 0.5})],
        )
        assert build_peg(pgd).conditional

    def test_merged_conditional_edges(self):
        pgd = PGD()
        for ref, label in (("x", "a"), ("y", "b"), ("z", "b")):
            pgd.add_reference(ref, label)
        pgd.add_edge("x", "y", {("a", "b"): 0.8})
        pgd.add_edge("x", "z", {("a", "b"): 0.4})
        pgd.add_reference_set(("y", "z"), 0.5)
        peg = build_peg(pgd)
        assert peg.edge_probability(
            fs("y", "z"), fs("x"), "b", "a"
        ) == pytest.approx(0.6)

    def test_empty_pgd_rejected(self):
        with pytest.raises(ModelError):
            build_peg(PGD())

    def test_id_view_roundtrip(self, figure1_peg):
        for entity in figure1_peg.entities:
            node_id = figure1_peg.id_of(entity)
            assert figure1_peg.entity_of(node_id) == entity

    def test_adjacency_symmetry(self, figure1_peg):
        for node in figure1_peg.node_ids():
            for neighbor in figure1_peg.neighbor_ids(node):
                assert node in figure1_peg.neighbor_ids(neighbor)
