"""Unit tests for the approximate component-marginal sampler."""

import pytest

from repro.peg import build_peg
from repro.peg.components import IdentityComponent
from repro.pgd import PGD
from repro.pgm.configurations import enumerate_exact_covers
from repro.pgm.sampling import ComponentSampler
from repro.utils.errors import ModelError


def fs(*items):
    return frozenset(items)


def chain_component(size):
    """References r0..r(size-1), pair sets between consecutive ones."""
    refs = [f"r{i}" for i in range(size)]
    sets = {fs(r): 0.7 for r in refs}
    for left, right in zip(refs, refs[1:]):
        sets[fs(left, right)] = 0.5
    return refs, sets


class TestSamplerAccuracy:
    @pytest.mark.parametrize("size", [2, 3, 4, 5])
    def test_matches_exact_on_small_components(self, size):
        refs, sets = chain_component(size)
        exact = enumerate_exact_covers(refs, list(sets), sets)
        sampler = ComponentSampler(
            refs, list(sets), sets, num_samples=30_000, seed=1
        )
        for entity in sets:
            exact_marginal = sum(
                cfg.probability for cfg in exact if entity in cfg.chosen
            )
            estimate = sampler.existence_probability(entity)
            assert estimate == pytest.approx(exact_marginal, abs=0.03)

    def test_joint_marginal_accuracy(self):
        refs, sets = chain_component(4)
        exact = enumerate_exact_covers(refs, list(sets), sets)
        sampler = ComponentSampler(
            refs, list(sets), sets, num_samples=30_000, seed=2
        )
        pair = [fs("r0"), fs("r3")]
        exact_joint = sum(
            cfg.probability
            for cfg in exact
            if {fs("r0"), fs("r3")} <= cfg.chosen
        )
        assert sampler.existence_marginal(pair) == pytest.approx(
            exact_joint, abs=0.03
        )

    def test_conflicting_entities_estimate_zero(self):
        refs, sets = chain_component(3)
        sampler = ComponentSampler(refs, list(sets), sets, seed=3)
        assert sampler.existence_marginal([fs("r0"), fs("r0", "r1")]) == 0.0

    def test_deterministic_given_seed(self):
        refs, sets = chain_component(4)
        a = ComponentSampler(refs, list(sets), sets, num_samples=500, seed=9)
        b = ComponentSampler(refs, list(sets), sets, num_samples=500, seed=9)
        assert a.existence_probability(fs("r0")) == \
            b.existence_probability(fs("r0"))


class TestSamplerValidation:
    def test_unknown_entity_rejected(self):
        refs, sets = chain_component(3)
        sampler = ComponentSampler(refs, list(sets), sets, seed=0)
        with pytest.raises(ModelError):
            sampler.existence_marginal([fs("zz")])

    def test_uncoverable_reference_rejected(self):
        with pytest.raises(ModelError):
            ComponentSampler(["a", "b"], [fs("a")], {fs("a"): 1.0})

    def test_bad_sample_count(self):
        refs, sets = chain_component(2)
        with pytest.raises(ModelError):
            ComponentSampler(refs, list(sets), sets, num_samples=0)


class TestComponentFallback:
    def test_large_component_uses_sampler(self):
        refs, sets = chain_component(6)
        component = IdentityComponent(
            0, refs, list(sets), sets, exact_limit=4, approx_samples=20_000
        )
        assert not component.is_exact
        assert component.configurations is None
        exact = IdentityComponent(1, refs, list(sets), sets, exact_limit=32)
        for entity in sets:
            assert component.existence_probability(entity) == pytest.approx(
                exact.existence_probability(entity), abs=0.03
            )

    def test_build_peg_with_low_limit(self):
        pgd = PGD()
        refs = [f"x{i}" for i in range(5)]
        for ref in refs:
            pgd.add_reference(ref, "a")
        for left, right in zip(refs, refs[1:]):
            pgd.add_edge(left, right, 0.9)
            pgd.add_reference_set((left, right), 0.4)
        peg = build_peg(pgd, exact_component_limit=3, approx_samples=20_000)
        exact_peg = build_peg(pgd)
        for entity in peg.entities:
            assert peg.existence_probability(entity) == pytest.approx(
                exact_peg.existence_probability(entity), abs=0.04
            )

    def test_possible_worlds_rejected_on_approximate(self):
        from repro.peg import enumerate_worlds

        pgd = PGD()
        refs = [f"x{i}" for i in range(5)]
        for ref in refs:
            pgd.add_reference(ref, "a")
        for left, right in zip(refs, refs[1:]):
            pgd.add_reference_set((left, right), 0.4)
        peg = build_peg(pgd, exact_component_limit=3)
        with pytest.raises(ModelError):
            list(enumerate_worlds(peg))
