"""Chaos suite: the serving tier under seeded fault injection.

The invariant under test (ISSUE 8 acceptance): with faults enabled at
every site — store reads erroring, workers delayed or erroring, the
server dropping reads and writes mid-exchange — every client request
returns either a result *bit-identical to the fault-free oracle* or a
clean typed error. Never a wrong answer; never a hang (each exchange is
bounded by the client's connect/request timeouts, which double as the
suite's watchdog).

The sweep (:class:`TestChaosSweep`) runs CHAOS_SEEDS full
service+server stacks, each with a differently-seeded injector, firing
CHAOS_QUERIES_PER_SEED requests — well over the 50-case floor. Seeds
derive from ``REPRO_FAULTS_SEED`` when set (the CI chaos step pins it)
so a CI failure reproduces locally with the same environment.
"""

from __future__ import annotations

import os
import threading
import time

import pytest

from repro.net import QueryClient, protocol, start_server
from repro.peg import build_peg
from repro.query import QueryEngine, QueryGraph
from repro.service import QueryService
from repro.delta import AddEntity, MutationLog
from repro.testing import faults
from repro.utils.errors import (
    CircuitOpenError,
    FaultError,
    NetError,
    RemoteError,
)
from tests.conftest import small_random_peg

#: Every typed application error the wire protocol may answer with.
TYPED_ERRORS = {
    protocol.ERROR_REJECTED,
    protocol.ERROR_DEADLINE,
    protocol.ERROR_UNAVAILABLE,
    protocol.ERROR_BAD_REQUEST,
    protocol.ERROR_QUERY,
    protocol.ERROR_INTERNAL,
}

CHAOS_SEEDS = 18
CHAOS_QUERIES_PER_SEED = 4  # 72 fault-exposed requests, floor is 50

#: Per-exchange watchdog. Nothing in the suite may take longer.
WATCHDOG = 15.0

QUERIES = [
    ({"u": "i", "v": "a"}, [("u", "v")], 0.3),
    ({"u": "i", "v": "a"}, [("u", "v")], 0.6),
    ({"x": "r", "y": "a"}, [("x", "y")], 0.2),
    ({"a": "i"}, [], 0.5),
]


@pytest.fixture(autouse=True)
def _no_leftover_faults():
    faults.uninstall()
    yield
    faults.uninstall()


def chaos_rules(injector: faults.FaultInjector) -> faults.FaultInjector:
    """Arm every production fault site with moderate probabilities."""
    injector.add("store.read", "error", probability=0.15)
    injector.add("service.worker", "error", probability=0.10)
    injector.add("service.worker", "delay", probability=0.15, param=0.02)
    injector.add("net.read", "drop", probability=0.08)
    injector.add("net.write", "drop", probability=0.08)
    injector.add("net.accept", "drop", probability=0.10)
    return injector


class TestChaosSweep:
    def test_correct_or_clean_error_never_wrong_never_hung(self, figure1_peg):
        # Fault-free oracle replies, computed once.
        engine = QueryEngine(figure1_peg, max_length=2, beta=0.1)
        oracles = [
            protocol.serialize_matches(
                engine.query(QueryGraph(nodes, edges), alpha).matches
            )
            for nodes, edges, alpha in QUERIES
        ]

        base_seed = int(os.environ.get("REPRO_FAULTS_SEED", "1337"))
        outcomes = {"ok": 0, "typed_error": 0, "transport_error": 0}
        exercised = 0
        suite_start = time.monotonic()

        for case in range(CHAOS_SEEDS):
            # A fresh stack per case, built fault-free (the sweep tests
            # serving under faults, not index construction): a shared
            # cache would serve pre-fault results and mask store faults.
            engine = QueryEngine(figure1_peg, max_length=2, beta=0.1)
            service = QueryService(
                engine, num_workers=2, cache_size=0, max_admission_wait=2.0
            )
            handle = start_server(service, max_pending=8)
            faults.install(
                chaos_rules(faults.FaultInjector(seed=base_seed + case))
            )
            try:
                client = QueryClient(
                    *handle.address,
                    connect_timeout=WATCHDOG,
                    request_timeout=WATCHDOG,
                    max_retries=2,
                    backoff_base=0.005,
                    breaker_threshold=100,  # the sweep measures replies,
                    seed=case,              # not fail-fast behavior
                )
                for (nodes, edges, alpha), oracle in zip(QUERIES, oracles):
                    start = time.monotonic()
                    try:
                        reply = client.query(nodes, edges, alpha=alpha)
                    except RemoteError as exc:
                        # clean typed error
                        assert exc.code in TYPED_ERRORS, exc.code
                        outcomes["typed_error"] += 1
                    except (NetError, CircuitOpenError):
                        # connection torn by an injected drop: a clean
                        # transport error, never a corrupt frame
                        outcomes["transport_error"] += 1
                    else:
                        # the zero-wrong-answers half of the invariant:
                        # a success must be bit-identical to the oracle
                        assert reply["matches"] == oracle
                        outcomes["ok"] += 1
                    # the zero-hangs half: every exchange bounded
                    assert time.monotonic() - start < WATCHDOG
                    exercised += 1
                client.close()
            finally:
                faults.uninstall()  # clean shutdown path
                handle.stop(close_service=True)
        assert exercised == CHAOS_SEEDS * CHAOS_QUERIES_PER_SEED >= 50
        # the sweep must actually exercise faults and still succeed often
        assert outcomes["ok"] > 0
        assert outcomes["typed_error"] + outcomes["transport_error"] > 0
        assert time.monotonic() - suite_start < CHAOS_SEEDS * WATCHDOG

    def test_sweep_is_seed_deterministic(self):
        """The same seed must fire the same faults (reproducible CI)."""

        def fire_pattern(seed):
            injector = chaos_rules(faults.FaultInjector(seed=seed))
            return [
                (injector.fire(site) or faults.FaultAction(site, "none")).kind
                for site in ("store.read", "service.worker", "net.read",
                             "net.write", "net.accept") * 20
            ]

        assert fire_pattern(5) == fire_pattern(5)
        assert fire_pattern(5) != fire_pattern(6)


class TestFaultSites:
    """Each production site surfaces injected faults as clean errors."""

    def test_store_read_fault_is_typed_query_failure(self):
        peg = small_random_peg(seed=3)
        engine = QueryEngine(peg, max_length=2, beta=0.1)
        query = QueryGraph(
            {"a": sorted(peg.sigma, key=repr)[0]}, []
        )
        engine.query(query, 0.5)  # warm path works
        faults.install(faults.FaultInjector(seed=0)).add(
            "store.read", "error"
        )
        with pytest.raises(FaultError):
            engine.query(query, 0.5)
        faults.uninstall()
        # the engine survives the fault: clean evaluation afterwards
        assert engine.query(query, 0.5) is not None

    def test_worker_fault_surfaces_through_service(self, figure1_peg):
        engine = QueryEngine(figure1_peg, max_length=2, beta=0.1)
        with QueryService(engine, num_workers=1, cache_size=0) as service:
            faults.install(faults.FaultInjector(seed=0)).add(
                "service.worker", "error", max_fires=1
            )
            query = QueryGraph({"u": "i", "v": "a"}, [("u", "v")])
            with pytest.raises(FaultError):
                service.query(query, 0.5, timeout=WATCHDOG)
            # the worker pool survives: next request succeeds
            assert service.query(query, 0.5, timeout=WATCHDOG) is not None
            assert service.stats.errors == 1
            assert service.stats.requests == service.stats.completed

    def test_mutation_log_replay_fault_is_clean(self, tmp_path):
        path = str(tmp_path / "mutations.log")
        with MutationLog(path) as log:
            log.append(AddEntity(("f1",), {"A": 1.0}))
        faults.install(faults.FaultInjector(seed=0)).add(
            "log.replay", "error"
        )
        with MutationLog(path) as log:
            with pytest.raises(FaultError):
                log.replay()
        faults.uninstall()
        with MutationLog(path) as log:
            assert len(log.replay()) == 1

    def test_server_write_drop_tears_connection_not_protocol(self):
        """A dropped reply means a torn connection — never a torn frame."""
        peg = build_peg_figure1()
        engine = QueryEngine(peg, max_length=2, beta=0.1)
        service = QueryService(engine, num_workers=1, cache_size=0)
        handle = start_server(service)
        try:
            faults.install(faults.FaultInjector(seed=0)).add(
                "net.write", "drop", max_fires=1
            )
            client = QueryClient(
                *handle.address, max_retries=2, backoff_base=0.005,
                request_timeout=WATCHDOG,
            )
            # first reply dropped -> retry on a fresh connection wins
            reply = client.query({"u": "i", "v": "a"}, [("u", "v")], alpha=0.4)
            assert reply["ok"] is True
            assert client.retries >= 1
            client.close()
        finally:
            faults.uninstall()
            handle.stop(close_service=True)


def build_peg_figure1():
    from repro.pgd import pgd_from_edge_list

    return build_peg(
        pgd_from_edge_list(
            node_labels={
                "r1": {"r": 0.25, "i": 0.75},
                "r2": "a",
                "r3": "r",
                "r4": "i",
            },
            edges=[
                ("r1", "r2", 0.9),
                ("r2", "r3", 1.0),
                ("r2", "r4", 0.5),
                ("r1", "r4", 1.0),
            ],
            reference_sets=[(("r3", "r4"), 0.8)],
        )
    )
