"""Integration tests on high-diameter and clique-shaped queries.

Cycle queries stress the message-passing reduction (the paper uses a
5-cycle for Figure 7(f)); cliques stress cycle-edge pruning (cpr) and
join-candidate consistency.
"""

import pytest

from repro.query import QueryEngine, QueryGraph, QueryOptions, direct_matches
from tests.conftest import small_random_peg


def match_keys(matches):
    return {(m.nodes, m.edges, round(m.probability, 9)) for m in matches}


@pytest.fixture(scope="module")
def setup():
    peg = small_random_peg(seed=101, num_references=90, uncertainty=0.3)
    engine = QueryEngine(peg, max_length=2, beta=0.05)
    return peg, engine


def cycle_query(sigma, length):
    labels = {f"c{i}": sigma[i % len(sigma)] for i in range(length)}
    edges = [(f"c{i}", f"c{(i + 1) % length}") for i in range(length)]
    return QueryGraph(labels, edges)


def clique_query(sigma, size):
    labels = {f"k{i}": sigma[i % len(sigma)] for i in range(size)}
    edges = [
        (f"k{i}", f"k{j}") for i in range(size) for j in range(i + 1, size)
    ]
    return QueryGraph(labels, edges)


class TestCycles:
    @pytest.mark.parametrize("length", [3, 4, 5, 6])
    def test_cycle_agreement(self, setup, length):
        peg, engine = setup
        query = cycle_query(sorted(peg.sigma), length)
        for alpha in (0.1, 0.4):
            assert match_keys(engine.query(query, alpha).matches) == \
                match_keys(direct_matches(peg, query, alpha)), (length, alpha)

    def test_cycle_under_upperbound_reduction_only(self, setup):
        """Upperbound-only reduction (no structure) still sound."""
        peg, engine = setup
        query = cycle_query(sorted(peg.sigma), 5)
        options = QueryOptions(use_structure_reduction=False)
        assert match_keys(engine.query(query, 0.2, options).matches) == \
            match_keys(direct_matches(peg, query, 0.2))


class TestCliques:
    @pytest.mark.parametrize("size", [3, 4])
    def test_clique_agreement(self, setup, size):
        peg, engine = setup
        query = clique_query(sorted(peg.sigma), size)
        for alpha in (0.1, 0.3):
            assert match_keys(engine.query(query, alpha).matches) == \
                match_keys(direct_matches(peg, query, alpha)), (size, alpha)

    def test_clique_cycle_edges_enforced(self, setup):
        """Every returned clique match has all its edges present."""
        peg, engine = setup
        query = clique_query(sorted(peg.sigma), 4)
        for match in engine.query(query, 0.05).matches:
            assert len(match.edges) == query.num_edges
            for pair in match.edges:
                entity_a, entity_b = tuple(pair)
                assert peg.has_edge(entity_a, entity_b)


class TestWheelAndBowtie:
    def test_wheel_query(self, setup):
        """A 4-cycle with a center connected to all rim nodes."""
        peg, engine = setup
        sigma = sorted(peg.sigma)
        labels = {"hub": sigma[0]}
        edges = []
        for i in range(4):
            labels[f"r{i}"] = sigma[1 + i % (len(sigma) - 1)]
            edges.append(("hub", f"r{i}"))
            edges.append((f"r{i}", f"r{(i + 1) % 4}"))
        query = QueryGraph(labels, edges)
        assert match_keys(engine.query(query, 0.1).matches) == \
            match_keys(direct_matches(peg, query, 0.1))

    def test_bowtie_query(self, setup):
        """Two triangles sharing one node (Figure 8's BF1 shape)."""
        peg, engine = setup
        sigma = sorted(peg.sigma)
        query = QueryGraph(
            {
                "c": sigma[0], "a1": sigma[1], "a2": sigma[2],
                "b1": sigma[1], "b2": sigma[2],
            },
            [
                ("c", "a1"), ("c", "a2"), ("a1", "a2"),
                ("c", "b1"), ("c", "b2"), ("b1", "b2"),
            ],
        )
        assert match_keys(engine.query(query, 0.05).matches) == \
            match_keys(direct_matches(peg, query, 0.05))
