"""Unit tests for repro.peg.possible_worlds (the exact oracle itself)."""

import pytest

from repro.peg import build_peg, enumerate_worlds, world_match_probability
from repro.pgd import pgd_from_edge_list
from repro.utils.errors import ModelError


def fs(*items):
    return frozenset(items)


class TestEnumerateWorlds:
    def test_total_mass_is_one(self, figure1_peg):
        total = sum(w.probability for w in enumerate_worlds(figure1_peg))
        assert total == pytest.approx(1.0)

    def test_world_count_figure1(self, figure1_peg):
        worlds = list(enumerate_worlds(figure1_peg))
        # Unmerged config: 4 entities, r1 has 2 labels, 4 uncertain-ish
        # edges (0.9, 1.0, 0.5, 1.0 -> two branch, two fixed) = 2*2*2=8;
        # merged: 3 entities, r1 2 labels x s34 2 labels, edges 0.9/0.75/1
        # -> 4 * 4 = 16; total 24.
        assert len(worlds) == 24

    def test_no_conflicting_entities_in_any_world(self, figure1_peg):
        for world in enumerate_worlds(figure1_peg):
            entities = list(world.entities)
            for i, left in enumerate(entities):
                for right in entities[i + 1:]:
                    assert not (left & right)

    def test_edges_only_between_existing(self, figure1_peg):
        for world in enumerate_worlds(figure1_peg):
            for pair in world.edges:
                assert pair <= world.entities

    def test_labels_cover_existing_entities(self, figure1_peg):
        for world in enumerate_worlds(figure1_peg):
            assert set(world.label_of) == world.entities

    def test_limit_guard(self, figure1_peg):
        with pytest.raises(ModelError):
            list(enumerate_worlds(figure1_peg, limit=3))


class TestWorldMatchProbability:
    def test_certain_graph(self):
        peg = build_peg(
            pgd_from_edge_list(
                node_labels={"x": "a", "y": "b"},
                edges=[("x", "y", 1.0)],
            )
        )
        prob = world_match_probability(
            peg, {fs("x"): "a", fs("y"): "b"}, [fs(fs("x"), fs("y"))]
        )
        assert prob == pytest.approx(1.0)

    def test_single_uncertain_edge(self):
        peg = build_peg(
            pgd_from_edge_list(
                node_labels={"x": "a", "y": "b"},
                edges=[("x", "y", 0.35)],
            )
        )
        prob = world_match_probability(
            peg, {fs("x"): "a", fs("y"): "b"}, [fs(fs("x"), fs("y"))]
        )
        assert prob == pytest.approx(0.35)

    def test_impossible_label(self, figure1_peg):
        assert world_match_probability(
            figure1_peg, {fs("r2"): "i"}, []
        ) == 0.0

    def test_agrees_with_closed_form_everywhere(self, figure1_peg):
        """Every single-edge match agrees with Eq. 11."""
        for pair, _ in figure1_peg.edges():
            entity_a, entity_b = tuple(pair)
            label_a = figure1_peg.possible_labels(entity_a)[0]
            label_b = figure1_peg.possible_labels(entity_b)[0]
            node_labels = {entity_a: label_a, entity_b: label_b}
            fast = figure1_peg.match_probability(node_labels, [pair])
            slow = world_match_probability(figure1_peg, node_labels, [pair])
            assert fast == pytest.approx(slow), (entity_a, entity_b)
