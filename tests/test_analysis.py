"""Tests for the repro.analysis invariant linter.

Three layers of coverage:

* framework behaviour (parsing, suppressions, module scoping, the
  runner/CLI surface),
* per-checker fixtures — must-flag, must-not-flag, and
  suppression-respecting variants for every diagnostic code,
* whole-repo guarantees — ``src/repro`` lints clean, the cache-key
  checker provably *engages* on the real tree (a seeded violation is
  caught), and a fixture tree seeded with one violation per checker
  makes ``--strict`` exit non-zero.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

from repro.analysis import all_checkers, parse_source, run_paths
from repro.analysis.checkers.cache_keys import CacheKeyChecker
from repro.analysis.core import module_name_for
from repro.analysis.runner import main as lint_main

REPO_ROOT = Path(__file__).resolve().parents[1]
SRC_REPRO = REPO_ROOT / "src" / "repro"

#: Every code the registered checkers can emit.
ALL_CODES = {
    code for checker in all_checkers() for code in checker.codes
}


def lint_tree(tmp_path, files: dict, select=None):
    """Write ``{relpath: source}`` under ``tmp_path`` and lint it."""
    for rel, source in files.items():
        target = tmp_path / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(source))
    return run_paths([str(tmp_path)], select=select)


def codes_of(report) -> list:
    return [diagnostic.code for diagnostic in report.diagnostics]


class TestFramework:
    def test_module_name_anchors_at_repro(self):
        assert module_name_for("/tmp/x/repro/query/engine.py") == (
            "repro.query.engine"
        )
        assert module_name_for("src/repro/net/server.py") == (
            "repro.net.server"
        )
        assert module_name_for("/somewhere/loose.py") == "loose"

    def test_suppression_specific_code(self, tmp_path):
        report = lint_tree(tmp_path, {
            "repro/query/mod.py": """\
                def emit():
                    return list({1, 2})  # lint-ok: REP101 order irrelevant
            """,
        })
        assert report.clean
        assert report.suppressed == 1

    def test_suppression_bare_lint_ok_covers_all(self, tmp_path):
        report = lint_tree(tmp_path, {
            "repro/query/mod.py": """\
                def emit():
                    return list({1, 2})  # lint-ok
            """,
        })
        assert report.clean
        assert report.suppressed == 1

    def test_suppression_wrong_code_does_not_mask(self, tmp_path):
        report = lint_tree(tmp_path, {
            "repro/query/mod.py": """\
                def emit():
                    return list({1, 2})  # lint-ok: REP999
            """,
        })
        assert codes_of(report) == ["REP101"]

    def test_lint_ok_inside_string_is_not_a_suppression(self, tmp_path):
        report = lint_tree(tmp_path, {
            "repro/query/mod.py": """\
                MESSAGE = "use  # lint-ok: REP101 to suppress"
                def emit():
                    return list({1, 2})
            """,
        })
        assert codes_of(report) == ["REP101"]

    def test_syntax_error_becomes_diagnostic(self, tmp_path):
        report = lint_tree(tmp_path, {
            "repro/query/broken.py": "def broken(:\n",
        })
        assert codes_of(report) == ["REP001"]
        assert "syntax error" in report.diagnostics[0].message

    def test_select_by_checker_name_and_code(self, tmp_path):
        files = {
            "repro/query/mod.py": """\
                def emit(p):
                    if p == 0.7:
                        return list({1, 2})
            """,
        }
        by_name = lint_tree(tmp_path, files, select=["determinism"])
        assert codes_of(by_name) == ["REP101"]
        by_code = lint_tree(tmp_path, files, select=["REP601"])
        assert codes_of(by_code) == ["REP601"]

    def test_diagnostic_format_is_path_line_col_code(self, tmp_path):
        report = lint_tree(tmp_path, {
            "repro/query/mod.py": """\
                def emit():
                    return list({1, 2})
            """,
        })
        line = report.diagnostics[0].format()
        assert line.endswith(
            "mod.py:2:11: REP101 list() of a set preserves hash order; "
            "use sorted(...) for a stable order"
        )

    def test_list_codes_covers_every_registered_code(self, capsys):
        assert lint_main(["--list-codes"]) == 0
        output = capsys.readouterr().out
        for code in ALL_CODES:
            assert code in output

    def test_missing_path_is_usage_error(self, capsys):
        assert lint_main(["/no/such/path/anywhere"]) == 2


class TestDeterminismChecker:
    def test_for_over_set_literal_flags(self, tmp_path):
        report = lint_tree(tmp_path, {
            "mod.py": """\
                def emit(out):
                    for item in {1, 2, 3}:
                        out.append(item)
            """,
        })
        assert codes_of(report) == ["REP101"]

    def test_comprehension_over_set_call_flags(self, tmp_path):
        report = lint_tree(tmp_path, {
            "mod.py": "VALUES = [v for v in set(range(3))]\n",
        })
        assert codes_of(report) == ["REP101"]

    def test_join_and_conversions_flag(self, tmp_path):
        report = lint_tree(tmp_path, {
            "mod.py": """\
                first = ",".join({"a", "b"})
                second = tuple(frozenset([1]))
            """,
        })
        assert codes_of(report) == ["REP101", "REP101"]

    def test_sorted_set_is_clean(self, tmp_path):
        report = lint_tree(tmp_path, {
            "mod.py": """\
                def emit(items):
                    for item in sorted({x for x in items}):
                        yield item
                    return sorted(set(items))
            """,
        })
        assert report.clean

    def test_set_comprehension_output_is_clean(self, tmp_path):
        # The comprehension *produces* a set; its internal order can't
        # escape, so only genuinely order-leaking positions flag.
        report = lint_tree(tmp_path, {
            "mod.py": "LABELS = {x.lower() for x in ['A', 'B']}\n",
        })
        assert report.clean

    def test_repr_and_str_of_set_flag(self, tmp_path):
        report = lint_tree(tmp_path, {
            "mod.py": """\
                key = repr(frozenset([1, 2]))
                text = str({1, 2})
            """,
        })
        assert codes_of(report) == ["REP102", "REP102"]

    def test_global_rng_and_wall_clock_flag_in_pure_modules(self, tmp_path):
        report = lint_tree(tmp_path, {
            "repro/query/mod.py": """\
                import random
                import time

                def jitter():
                    return random.random() + time.time()
            """,
        })
        assert codes_of(report) == ["REP103", "REP103"]

    def test_rng_outside_pure_modules_is_clean(self, tmp_path):
        report = lint_tree(tmp_path, {
            "repro/net/mod.py": """\
                import random

                def jitter():
                    return random.random()
            """,
        })
        assert report.clean

    def test_monotonic_clock_is_clean_in_pure_modules(self, tmp_path):
        report = lint_tree(tmp_path, {
            "repro/query/mod.py": """\
                import time

                def stamp():
                    return time.monotonic(), time.perf_counter()
            """,
        })
        assert report.clean


class TestLockDisciplineChecker:
    GUARDED_CLASS = """\
        import threading

        class Stats:
            def __init__(self):
                self._lock = threading.Lock()
                self.hits = 0  # guarded-by: _lock

            %s
    """

    def test_unlocked_read_flags(self, tmp_path):
        report = lint_tree(tmp_path, {
            "mod.py": self.GUARDED_CLASS % (
                "def read(self):\n"
                "                return self.hits"
            ),
        })
        assert codes_of(report) == ["REP201"]

    def test_with_lock_read_is_clean(self, tmp_path):
        report = lint_tree(tmp_path, {
            "mod.py": self.GUARDED_CLASS % (
                "def read(self):\n"
                "                with self._lock:\n"
                "                    return self.hits"
            ),
        })
        assert report.clean

    def test_holds_lock_marker_is_clean(self, tmp_path):
        report = lint_tree(tmp_path, {
            "mod.py": self.GUARDED_CLASS % (
                "def _bump(self):  # holds-lock: _lock\n"
                "                self.hits += 1"
            ),
        })
        assert report.clean

    def test_init_is_exempt(self, tmp_path):
        report = lint_tree(tmp_path, {
            "mod.py": """\
                import threading

                class Stats:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self.hits = 0  # guarded-by: _lock
                        self.hits = self.hits + 1
            """,
        })
        assert report.clean

    def test_leading_comment_block_annotation(self, tmp_path):
        report = lint_tree(tmp_path, {
            "mod.py": """\
                import threading

                class Stats:
                    def __init__(self):
                        self._lock = threading.Lock()
                        #: guarded-by: _lock
                        self.hits = 0

                    def read(self):
                        return self.hits
            """,
        })
        assert codes_of(report) == ["REP201"]

    def test_nonexistent_guard_flags_rep203(self, tmp_path):
        report = lint_tree(tmp_path, {
            "mod.py": """\
                class Stats:
                    def __init__(self):
                        self.hits = 0  # guarded-by: _missing
            """,
        })
        assert codes_of(report) == ["REP203"]

    def test_event_loop_guard_sync_touch_flags_rep202(self, tmp_path):
        report = lint_tree(tmp_path, {
            "mod.py": """\
                class Server:
                    def __init__(self):
                        self._clients = {}  # guarded-by: event-loop

                    def touch(self):
                        return len(self._clients)
            """,
        })
        assert codes_of(report) == ["REP202"]

    def test_event_loop_guard_async_and_loop_only_are_clean(self, tmp_path):
        report = lint_tree(tmp_path, {
            "mod.py": """\
                class Server:
                    def __init__(self):
                        self._clients = {}  # guarded-by: event-loop

                    async def handle(self):
                        return len(self._clients)

                    def _disconnect(self, cid):  # loop-only
                        self._clients.pop(cid, None)
            """,
        })
        assert report.clean

    def test_suppression_respected(self, tmp_path):
        report = lint_tree(tmp_path, {
            "mod.py": self.GUARDED_CLASS % (
                "def read(self):\n"
                "                return self.hits"
                "  # lint-ok: REP201 benign racy read"
            ),
        })
        assert report.clean
        assert report.suppressed == 1


OPTIONS_FIXTURE = """\
    from dataclasses import dataclass

    @dataclass
    class QueryOptions:
        decomposition: str = "auto"
        seed: int = 0
        trace: bool = False
"""


class TestCacheKeyChecker:
    def test_complete_coverage_is_clean(self, tmp_path):
        report = lint_tree(tmp_path, {
            "repro/query/engine.py": OPTIONS_FIXTURE,
            "repro/service/service.py": """\
                RESULT_NEUTRAL_OPTIONS = frozenset({"trace"})

                def request_key(query, alpha, options, graph_version=0):
                    return (
                        query.canonical_form(),
                        options.decomposition,
                        options.seed,
                        graph_version,
                    )
            """,
        }, select=["cache-keys"])
        assert report.clean

    def test_uncovered_field_flags_rep301(self, tmp_path):
        report = lint_tree(tmp_path, {
            "repro/query/engine.py": OPTIONS_FIXTURE,
            "repro/service/service.py": """\
                RESULT_NEUTRAL_OPTIONS = frozenset({"trace"})

                def request_key(query, alpha, options, graph_version=0):
                    return (query.canonical_form(), options.decomposition,
                            graph_version)
            """,
        }, select=["cache-keys"])
        assert codes_of(report) == ["REP301"]
        assert "seed" in report.diagnostics[0].message

    def test_field_both_keyed_and_excluded_flags_rep302(self, tmp_path):
        report = lint_tree(tmp_path, {
            "repro/query/engine.py": OPTIONS_FIXTURE,
            "repro/service/service.py": """\
                RESULT_NEUTRAL_OPTIONS = frozenset({"seed", "trace"})

                def request_key(query, alpha, options, graph_version=0):
                    return (query.canonical_form(), options.decomposition,
                            options.seed, graph_version)
            """,
        }, select=["cache-keys"])
        assert codes_of(report) == ["REP302"]

    def test_stale_exclusion_entry_flags_rep302(self, tmp_path):
        report = lint_tree(tmp_path, {
            "repro/query/engine.py": OPTIONS_FIXTURE,
            "repro/service/service.py": """\
                RESULT_NEUTRAL_OPTIONS = frozenset({"trace", "renamed_away"})

                def request_key(query, alpha, options, graph_version=0):
                    return (query.canonical_form(), options.decomposition,
                            options.seed, graph_version)
            """,
        }, select=["cache-keys"])
        assert codes_of(report) == ["REP302"]
        assert "renamed_away" in report.diagnostics[0].message

    def test_missing_exclusion_constant_flags_rep302(self, tmp_path):
        report = lint_tree(tmp_path, {
            "repro/query/engine.py": OPTIONS_FIXTURE,
            "repro/service/service.py": """\
                def request_key(query, alpha, options, graph_version=0):
                    return (query.canonical_form(), options.decomposition,
                            options.seed, options.trace, graph_version)
            """,
        }, select=["cache-keys"])
        assert codes_of(report) == ["REP302"]
        assert "RESULT_NEUTRAL_OPTIONS" in report.diagnostics[0].message

    def test_builder_missing_ingredient_flags_rep303(self, tmp_path):
        report = lint_tree(tmp_path, {
            "repro/query/plan.py": """\
                def plan_key(query, alpha, max_length):
                    return (query.canonical_form(), _milli(alpha), max_length)
            """,
        }, select=["cache-keys"])
        assert codes_of(report) == ["REP303"]
        assert "graph_version" in report.diagnostics[0].message

    def test_self_disables_without_targets(self, tmp_path):
        report = lint_tree(tmp_path, {
            "repro/query/other.py": "VALUE = 1\n",
        }, select=["cache-keys"])
        assert report.clean

    def test_engages_on_the_real_tree(self):
        """Removing one keyed field from the *real* request_key is caught.

        This is the non-vacuity guarantee for the whole-repo clean run:
        the checker finds QueryOptions and request_key in src/repro and
        would flag a coverage regression there.
        """
        engine_path = SRC_REPRO / "query" / "engine.py"
        service_path = SRC_REPRO / "service" / "service.py"
        service_text = service_path.read_text()
        assert "options.seed," in service_text
        mutated = service_text.replace("options.seed,", "", 1)
        sources = [
            parse_source(str(engine_path), engine_path.read_text()),
            parse_source(str(service_path), mutated),
        ]
        findings = CacheKeyChecker().check_project(sources)
        assert any(
            d.code == "REP301" and "seed" in d.message for d in findings
        )


class TestAsyncioHygieneChecker:
    def test_time_sleep_in_coroutine_flags(self, tmp_path):
        report = lint_tree(tmp_path, {
            "mod.py": """\
                import time

                async def handler():
                    time.sleep(0.1)
            """,
        })
        assert codes_of(report) == ["REP401"]

    def test_open_and_bare_result_flag(self, tmp_path):
        report = lint_tree(tmp_path, {
            "mod.py": """\
                async def handler(future):
                    with open("/tmp/x") as handle:
                        handle.read()
                    return future.result()
            """,
        })
        assert codes_of(report) == ["REP401", "REP401"]

    def test_asyncio_sleep_and_result_with_timeout_are_clean(self, tmp_path):
        report = lint_tree(tmp_path, {
            "mod.py": """\
                import asyncio

                async def handler(future):
                    await asyncio.sleep(0.1)
                    return future.result(0)
            """,
        })
        assert report.clean

    def test_nested_sync_def_is_exempt(self, tmp_path):
        # A sync helper defined inside a coroutine may run via
        # asyncio.to_thread; only the coroutine's own body is loop-bound.
        report = lint_tree(tmp_path, {
            "mod.py": """\
                import time

                async def handler():
                    def blocking():
                        time.sleep(1.0)
                    return blocking
            """,
        })
        assert report.clean

    def test_sync_function_is_out_of_scope(self, tmp_path):
        report = lint_tree(tmp_path, {
            "mod.py": """\
                import time

                def worker():
                    time.sleep(0.1)
            """,
        })
        assert report.clean

    def test_from_import_alias_flags(self, tmp_path):
        # Regression: ``from time import sleep`` used to dodge the
        # literal ``time.sleep`` spelling match.
        report = lint_tree(tmp_path, {
            "mod.py": """\
                from time import sleep

                async def handler():
                    sleep(0.1)
            """,
        })
        assert codes_of(report) == ["REP401"]
        assert "time.sleep" in report.diagnostics[0].message

    def test_renamed_from_import_flags(self, tmp_path):
        report = lint_tree(tmp_path, {
            "mod.py": """\
                from time import sleep as snooze

                async def handler():
                    snooze(0.1)
            """,
        })
        assert codes_of(report) == ["REP401"]

    def test_module_alias_flags(self, tmp_path):
        report = lint_tree(tmp_path, {
            "mod.py": """\
                import time as t

                async def handler():
                    t.sleep(0.1)
            """,
        })
        assert codes_of(report) == ["REP401"]

    def test_harmless_from_import_is_clean(self, tmp_path):
        report = lint_tree(tmp_path, {
            "mod.py": """\
                from time import monotonic

                async def handler():
                    return monotonic()
            """,
        })
        assert report.clean

    def test_awaited_result_is_clean(self, tmp_path):
        report = lint_tree(tmp_path, {
            "mod.py": """\
                async def handler(task):
                    return await task.result()
            """,
        })
        assert report.clean

    def test_suppression_respected(self, tmp_path):
        report = lint_tree(tmp_path, {
            "mod.py": """\
                async def handler(memo):
                    return memo.result()  # lint-ok: REP401 not a future
            """,
        })
        assert report.clean
        assert report.suppressed == 1


class TestErrorTaxonomyChecker:
    def test_generic_raises_flag_in_serving_modules(self, tmp_path):
        report = lint_tree(tmp_path, {
            "repro/net/mod.py": """\
                def fail():
                    raise Exception("boom")

                def worse():
                    raise RuntimeError("boom")
            """,
        })
        assert codes_of(report) == ["REP501", "REP501"]

    def test_typed_and_contract_errors_are_clean(self, tmp_path):
        report = lint_tree(tmp_path, {
            "repro/service/mod.py": """\
                from repro.utils.errors import ServiceError

                def fail(value):
                    if value < 0:
                        raise ValueError(f"bad value {value}")
                    raise ServiceError("typed")
            """,
        })
        assert report.clean

    def test_bare_reraise_is_clean(self, tmp_path):
        report = lint_tree(tmp_path, {
            "repro/net/mod.py": """\
                def passthrough():
                    try:
                        return 1
                    except Exception:
                        raise
            """,
        })
        assert report.clean

    def test_out_of_scope_module_is_clean(self, tmp_path):
        report = lint_tree(tmp_path, {
            "repro/query/mod.py": """\
                def fail():
                    raise Exception("engine internals are not wire-facing")
            """,
        })
        assert report.clean


class TestFloatEqualityChecker:
    def test_fractional_equality_flags_in_probability_code(self, tmp_path):
        report = lint_tree(tmp_path, {
            "repro/query/mod.py": """\
                def check(p):
                    return p == 0.7 or p != -0.25
            """,
        })
        assert codes_of(report) == ["REP601", "REP601"]

    def test_exact_sentinels_and_thresholds_are_clean(self, tmp_path):
        report = lint_tree(tmp_path, {
            "repro/query/mod.py": """\
                def check(p):
                    return p == 0.0 or p == 1.0 or p == -1.0 or p >= 0.7
            """,
        })
        assert report.clean

    def test_out_of_scope_module_is_clean(self, tmp_path):
        report = lint_tree(tmp_path, {
            "repro/service/mod.py": "CHECK = 3.14 == 3.14\n",
        })
        assert report.clean

    def test_suppression_respected(self, tmp_path):
        report = lint_tree(tmp_path, {
            "repro/query/mod.py": """\
                def check(p):
                    return p == 0.7  # lint-ok: REP601 bit-exact contract
            """,
        })
        assert report.clean
        assert report.suppressed == 1


class TestDeadShimChecker:
    def test_pure_reexport_module_flags(self, tmp_path):
        report = lint_tree(tmp_path, {
            "repro/utils/shim.py": """\
                \"\"\"Compatibility shim.\"\"\"

                from os.path import join, split

                __all__ = ["join", "split"]
            """,
        })
        assert codes_of(report) == ["REP701"]

    def test_module_with_real_code_is_clean(self, tmp_path):
        report = lint_tree(tmp_path, {
            "repro/utils/real.py": """\
                from os.path import join

                def helper(a, b):
                    return join(a, b)
            """,
        })
        assert report.clean

    def test_package_init_is_exempt(self, tmp_path):
        report = lint_tree(tmp_path, {
            "repro/utils/__init__.py": """\
                from os.path import join, split

                __all__ = ["join", "split"]
            """,
        })
        assert report.clean

    def test_dated_suppression_respected(self, tmp_path):
        report = lint_tree(tmp_path, {
            "repro/utils/shim.py": """\
                from os.path import join  # lint-ok: REP701 remove after v2.0

                __all__ = ["join"]
            """,
        })
        assert report.clean
        assert report.suppressed == 1


#: One seeded violation per diagnostic code — the CI self-check corpus.
SEEDED_VIOLATIONS = {
    "repro/query/bad_determinism.py": """\
        import random
        import time

        def emit(items):
            out = []
            for item in {1, 2, 3}:
                out.append(item)
            key = repr(set(items))
            return out, key, random.random(), time.time()
    """,
    "repro/service/bad_locking.py": """\
        import threading

        class Stats:
            def __init__(self):
                self._lock = threading.Lock()
                self.hits = 0  # guarded-by: _lock
                self.typo = 0  # guarded-by: _missing

            def read(self):
                return self.hits

        class Server:
            def __init__(self):
                self._clients = {}  # guarded-by: event-loop

            def touch(self):
                return len(self._clients)
    """,
    "repro/query/bad_engine.py": """\
        from dataclasses import dataclass

        @dataclass
        class QueryOptions:
            decomposition: str = "auto"
            seed: int = 0
    """,
    "repro/service/bad_service.py": """\
        RESULT_NEUTRAL_OPTIONS = frozenset({"renamed_away"})

        def request_key(query, alpha, options, graph_version=0):
            return (query.canonical_form(), options.decomposition,
                    graph_version)
    """,
    "repro/query/bad_plan.py": """\
        def plan_key(query, alpha):
            return (query.canonical_form(), _milli(alpha))
    """,
    "repro/net/bad_async.py": """\
        import time

        async def handler():
            time.sleep(0.1)
    """,
    "repro/net/bad_errors.py": """\
        def fail():
            raise Exception("boom")
    """,
    "repro/query/bad_float.py": """\
        def check(p):
            return p == 0.7
    """,
    "repro/query/bad_shim.py": """\
        from os.path import join

        __all__ = ["join"]
    """,
    "repro/service/bad_deadlock.py": """\
        import threading

        class Pair:
            def __init__(self):
                self._a = threading.Lock()
                self._b = threading.Lock()

            def forward(self):
                with self._a:
                    with self._b:
                        pass

            def backward(self):
                with self._b:
                    with self._a:
                        pass
    """,
    "repro/service/bad_hold.py": """\
        import threading
        import time

        class Spinner:
            def __init__(self):
                self._lock = threading.Lock()

            def spin(self):
                with self._lock:
                    time.sleep(0.5)
    """,
    "repro/net/bad_transitive.py": """\
        import time

        async def handler():
            helper()

        def helper():
            time.sleep(0.1)
    """,
    "repro/query/bad_raiser.py": """\
        def compute(spec):
            raise ValueError("bad spec")
    """,
    "repro/net/bad_handler.py": """\
        from repro.query.bad_raiser import compute

        async def handle(spec):
            return compute(spec)
    """,
}


class TestWholeRepo:
    def test_src_repro_lints_clean(self):
        report = run_paths([str(SRC_REPRO)])
        assert report.clean, "\n" + report.render()
        assert report.files_checked > 90

    def test_strict_cli_exits_zero_on_src(self, capsys):
        assert lint_main([str(SRC_REPRO), "--strict", "--quiet"]) == 0

    def test_benchmarks_and_examples_lint_clean(self):
        report = run_paths([
            str(REPO_ROOT / "benchmarks"),
            str(REPO_ROOT / "examples"),
        ])
        assert report.clean, "\n" + report.render()
        assert report.files_checked > 0

    def test_seeded_violations_cover_every_code(self, tmp_path):
        report = lint_tree(tmp_path, SEEDED_VIOLATIONS)
        assert set(codes_of(report)) == ALL_CODES

    def test_strict_cli_exits_nonzero_on_seeded_tree(self, tmp_path, capsys):
        for rel, source in SEEDED_VIOLATIONS.items():
            target = tmp_path / rel
            target.parent.mkdir(parents=True, exist_ok=True)
            target.write_text(textwrap.dedent(source))
        assert lint_main([str(tmp_path), "--strict", "--quiet"]) == 1

    def test_json_report_round_trips(self, tmp_path, capsys):
        for rel, source in SEEDED_VIOLATIONS.items():
            target = tmp_path / rel
            target.parent.mkdir(parents=True, exist_ok=True)
            target.write_text(textwrap.dedent(source))
        out = tmp_path / "report.json"
        code = lint_main(
            [str(tmp_path), "--strict", "--quiet", "--json", str(out)]
        )
        assert code == 1
        payload = json.loads(out.read_text())
        assert payload["clean"] is False
        assert set(payload["counts_by_code"]) == ALL_CODES
        assert payload["files_checked"] == len(SEEDED_VIOLATIONS)
        for entry in payload["diagnostics"]:
            assert {"code", "message", "path", "line", "col", "checker"} <= (
                set(entry)
            )

    def test_repro_cli_lint_subcommand(self, capsys):
        from repro.cli import main as cli_main

        assert cli_main(["lint", str(SRC_REPRO), "--strict"]) == 0
        output = capsys.readouterr().out
        assert "0 finding(s)" in output
