"""Edge-case tests for the engine and pipeline components."""

import pytest

from repro.peg import build_peg
from repro.pgd import PGD, pgd_from_edge_list
from repro.query import (
    QueryEngine,
    QueryGraph,
    QueryOptions,
    direct_matches,
)
from tests.conftest import small_random_peg


def match_keys(matches):
    return {(m.nodes, m.edges, round(m.probability, 9)) for m in matches}


class TestDisconnectedQueries:
    @pytest.fixture(scope="class")
    def setup(self):
        peg = small_random_peg(seed=61, num_references=40)
        return peg, QueryEngine(peg, max_length=2, beta=0.1)

    def test_two_components(self, setup):
        peg, engine = setup
        sigma = sorted(peg.sigma)
        query = QueryGraph(
            {"a": sigma[0], "b": sigma[1], "c": sigma[2], "d": sigma[0]},
            [("a", "b"), ("c", "d")],
        )
        assert match_keys(engine.query(query, 0.4).matches) == match_keys(
            direct_matches(peg, query, 0.4)
        )

    def test_edge_plus_isolated_node(self, setup):
        peg, engine = setup
        sigma = sorted(peg.sigma)
        query = QueryGraph(
            {"a": sigma[0], "b": sigma[1], "x": sigma[2]},
            [("a", "b")],
        )
        assert match_keys(engine.query(query, 0.5).matches) == match_keys(
            direct_matches(peg, query, 0.5)
        )

    def test_all_isolated_nodes(self, setup):
        peg, engine = setup
        sigma = sorted(peg.sigma)
        query = QueryGraph({"x": sigma[0], "y": sigma[1]}, [])
        assert match_keys(engine.query(query, 0.6).matches) == match_keys(
            direct_matches(peg, query, 0.6)
        )


class TestDegenerateInputs:
    def test_label_absent_from_graph(self):
        peg = small_random_peg(seed=62, num_references=30)
        engine = QueryEngine(peg, max_length=1, beta=0.1)
        query = QueryGraph({"a": "not-a-label", "b": "L0"}, [("a", "b")])
        result = engine.query(query, 0.3)
        assert result.matches == []
        assert result.search_space_final == 0.0

    def test_alpha_one(self):
        """alpha = 1.0 keeps only fully certain matches."""
        peg = build_peg(
            pgd_from_edge_list(
                node_labels={"x": "a", "y": "b", "z": "b"},
                edges=[("x", "y", 1.0), ("x", "z", 0.9)],
            )
        )
        engine = QueryEngine(peg, max_length=1, beta=0.5)
        query = QueryGraph({"u": "a", "v": "b"}, [("u", "v")])
        matches = engine.query(query, 1.0).matches
        assert len(matches) == 1
        assert matches[0].probability == 1.0

    def test_query_larger_than_graph(self):
        peg = build_peg(
            pgd_from_edge_list(
                node_labels={"x": "a", "y": "a"},
                edges=[("x", "y", 0.9)],
            )
        )
        engine = QueryEngine(peg, max_length=1, beta=0.1)
        query = QueryGraph(
            {"u": "a", "v": "a", "w": "a"},
            [("u", "v"), ("v", "w")],
        )
        assert engine.query(query, 0.1).matches == []

    def test_repeated_labels_automorphism_dedup(self):
        """Symmetric queries yield each labeled subgraph exactly once."""
        peg = build_peg(
            pgd_from_edge_list(
                node_labels={"x": "a", "y": "a", "z": "a"},
                edges=[("x", "y", 0.9), ("y", "z", 0.9), ("x", "z", 0.9)],
            )
        )
        engine = QueryEngine(peg, max_length=2, beta=0.1)
        triangle = QueryGraph(
            {"u": "a", "v": "a", "w": "a"},
            [("u", "v"), ("v", "w"), ("u", "w")],
        )
        matches = engine.query(triangle, 0.5).matches
        # one triangle exists; 6 automorphic embeddings collapse to 1
        assert len(matches) == 1

    def test_star_peg_star_query(self):
        """A hub asked to match a star query with repeated labels."""
        peg = build_peg(
            pgd_from_edge_list(
                node_labels={
                    "hub": "h", "l1": "x", "l2": "x", "l3": "x"
                },
                edges=[
                    ("hub", "l1", 0.9),
                    ("hub", "l2", 0.8),
                    ("hub", "l3", 0.7),
                ],
            )
        )
        engine = QueryEngine(peg, max_length=2, beta=0.05)
        query = QueryGraph(
            {"c": "h", "a": "x", "b": "x"}, [("c", "a"), ("c", "b")]
        )
        matches = engine.query(query, 0.3).matches
        oracle = direct_matches(peg, query, 0.3)
        assert match_keys(matches) == match_keys(oracle)
        # pairs {l1,l2}, {l1,l3}, {l2,l3}: 3 labeled subgraphs
        assert len(matches) == 3


class TestIdentityEdgeCases:
    def test_query_spanning_one_component(self):
        """Two query nodes matched into the same identity component."""
        pgd = PGD()
        for ref, label in (
            ("a", "x"), ("b", "y"), ("c", "x"), ("d", "y")
        ):
            pgd.add_reference(ref, label)
        pgd.add_edge("a", "b", 1.0)
        pgd.add_edge("b", "c", 1.0)
        pgd.add_edge("c", "d", 1.0)
        # a and c may be the same entity; matching both singletons in one
        # match must use the joint (not product) marginal.
        pgd.add_reference_set(("a", "c"), 0.5)
        peg = build_peg(pgd)
        engine = QueryEngine(peg, max_length=2, beta=0.01)
        query = QueryGraph(
            {"u": "x", "v": "y", "w": "x"}, [("u", "v"), ("v", "w")]
        )
        matches = engine.query(query, 0.01).matches
        oracle = direct_matches(peg, query, 0.01)
        assert match_keys(matches) == match_keys(oracle)
        for match in matches:
            entities = [entity for entity, _ in match.nodes]
            for i, left in enumerate(entities):
                for right in entities[i + 1:]:
                    assert not (left & right)

    def test_merged_entity_on_path_with_its_neighbor(self):
        """Merged entities keep edges contributed by either reference."""
        pgd = pgd_from_edge_list(
            node_labels={"p": "a", "q": "a", "r": "b"},
            edges=[("p", "r", 0.8)],
            reference_sets=[(("p", "q"), 0.6)],
        )
        peg = build_peg(pgd)
        engine = QueryEngine(peg, max_length=1, beta=0.01)
        query = QueryGraph({"u": "a", "v": "b"}, [("u", "v")])
        matches = engine.query(query, 0.01).matches
        nodes_seen = {frozenset(e for e, _ in m.nodes) for m in matches}
        merged = frozenset({"p", "q"})
        assert frozenset({frozenset({"p"}), frozenset({"r"})}) in nodes_seen
        assert frozenset({merged, frozenset({"r"})}) in nodes_seen
