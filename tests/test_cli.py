"""Unit tests for the command-line interface."""

import json

import pytest

from repro.cli import main
from repro.peg import load_peg


@pytest.fixture
def peg_file(tmp_path):
    path = str(tmp_path / "tiny.peg")
    code = main(
        [
            "generate", "--kind", "synthetic", "--size", "60",
            "--seed", "3", "--out", path,
        ]
    )
    assert code == 0
    return path


class TestGenerate:
    def test_generate_synthetic(self, peg_file, capsys):
        peg = load_peg(peg_file)
        assert peg.num_nodes >= 60

    def test_generate_dblp(self, tmp_path, capsys):
        path = str(tmp_path / "dblp.peg")
        assert main(
            ["generate", "--kind", "dblp", "--size", "60", "--out", path]
        ) == 0
        peg = load_peg(path)
        assert peg.conditional
        out = capsys.readouterr().out
        assert "entities" in out

    def test_generate_imdb(self, tmp_path):
        path = str(tmp_path / "imdb.peg")
        assert main(
            ["generate", "--kind", "imdb", "--size", "60", "--out", path]
        ) == 0
        assert not load_peg(path).conditional


class TestInfo:
    def test_info_prints_stats(self, peg_file, capsys):
        assert main(["info", peg_file]) == 0
        out = capsys.readouterr().out
        assert "nodes" in out
        assert "label alphabet" in out

    def test_info_missing_file(self, tmp_path, capsys):
        assert main(["info", str(tmp_path / "ghost.peg")]) == 1
        assert "error" in capsys.readouterr().err


class TestQuery:
    def write_spec(self, tmp_path, nodes, edges):
        spec = tmp_path / "query.json"
        spec.write_text(json.dumps({"nodes": nodes, "edges": edges}))
        return str(spec)

    def test_query_runs(self, peg_file, tmp_path, capsys):
        spec = self.write_spec(
            tmp_path, {"a": "L0", "b": "L1"}, [["a", "b"]]
        )
        assert main(
            ["query", peg_file, "--spec", spec, "--alpha", "0.2"]
        ) == 0
        out = capsys.readouterr().out
        assert "matches" in out

    def test_query_explain(self, peg_file, tmp_path, capsys):
        spec = self.write_spec(
            tmp_path, {"a": "L0", "b": "L1"}, [["a", "b"]]
        )
        assert main(
            ["query", peg_file, "--spec", spec, "--alpha", "0.2", "--explain"]
        ) == 0
        out = capsys.readouterr().out
        assert "decomposition:" in out
        assert "search space:" in out

    def test_query_bad_spec(self, peg_file, tmp_path, capsys):
        spec = tmp_path / "bad.json"
        spec.write_text(json.dumps(["not", "a", "spec"]))
        assert main(
            ["query", peg_file, "--spec", str(spec)]
        ) == 1
        assert "error" in capsys.readouterr().err

    def test_query_inline_pattern(self, peg_file, capsys):
        assert main(
            [
                "query", peg_file,
                "--pattern", "(a:L0)-(b:L1)",
                "--alpha", "0.2",
            ]
        ) == 0
        assert "matches" in capsys.readouterr().out

    def test_query_bad_pattern(self, peg_file, capsys):
        assert main(
            ["query", peg_file, "--pattern", "(a)-(b)"]
        ) == 1
        assert "error" in capsys.readouterr().err

    def test_query_limit(self, peg_file, tmp_path, capsys):
        spec = self.write_spec(tmp_path, {"a": "L0"}, [])
        assert main(
            [
                "query", peg_file, "--spec", spec,
                "--alpha", "0.3", "--limit", "2",
                "--max-length", "1",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "matches" in out

    def test_query_trace_renders_span_tree(self, peg_file, tmp_path, capsys):
        spec = self.write_spec(
            tmp_path,
            {"a": "L0", "b": "L1", "c": "L0", "d": "L1"},
            [["a", "b"], ["b", "c"], ["c", "d"]],
        )
        assert main(
            [
                "query", peg_file, "--spec", spec, "--alpha", "0.2",
                "--max-length", "1", "--shards", "2", "--trace",
            ]
        ) == 0
        out = capsys.readouterr().out
        for stage in ("plan", "lookup", "partition", "link_build",
                      "reduce", "match"):
            assert stage in out
        assert "shard_fetches[" in out
        assert "ms" in out

    def test_query_trace_with_explain(self, peg_file, tmp_path, capsys):
        spec = self.write_spec(tmp_path, {"a": "L0", "b": "L1"}, [["a", "b"]])
        assert main(
            [
                "query", peg_file, "--spec", spec, "--alpha", "0.2",
                "--explain", "--trace",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "decomposition:" in out
        assert "lookup" in out


class TestMetricsCommand:
    def test_metrics_prints_prometheus_exposition(
        self, peg_file, tmp_path, capsys
    ):
        spec = tmp_path / "query.json"
        spec.write_text(json.dumps(
            {"nodes": {"a": "L0", "b": "L1"}, "edges": [["a", "b"]]}
        ))
        assert main(
            [
                "metrics", peg_file, "--spec", str(spec),
                "--alpha", "0.2", "--repeat", "2",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_queries_total counter" in out
        assert "# TYPE repro_query_seconds histogram" in out
        assert 'le="+Inf"' in out
        assert "repro_query_seconds_count" in out


class TestVersion:
    def test_version_flag(self, capsys):
        import repro

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert repro.__version__ in capsys.readouterr().out


class TestServe:
    def write_workload(self, tmp_path):
        workload = tmp_path / "workload.jsonl"
        lines = [
            json.dumps({"nodes": {"a": "L0", "b": "L1"},
                        "edges": [["a", "b"]]}),
            json.dumps({"nodes": {"x": "L1", "y": "L0"},
                        "edges": [["x", "y"]], "alpha": 0.3}),
        ]
        workload.write_text("\n".join(lines))
        return str(workload)

    def test_cold_then_warm_round_trip(self, peg_file, tmp_path, capsys):
        workload = self.write_workload(tmp_path)
        snapshot = str(tmp_path / "bundle")

        assert main(
            [
                "serve", peg_file, "--snapshot", snapshot,
                "--queries", workload, "--alpha", "0.2",
                "--repeat", "2", "--stats",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "cold start" in out
        assert "query 0" in out and "query 1" in out
        assert "hits" in out

        assert main(
            [
                "serve", peg_file, "--snapshot", snapshot,
                "--queries", workload, "--alpha", "0.2",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "warm start" in out
        assert "matches" in out

    def test_serve_without_snapshot(self, peg_file, tmp_path, capsys):
        workload = self.write_workload(tmp_path)
        assert main(
            ["serve", peg_file, "--queries", workload, "--alpha", "0.2"]
        ) == 0
        assert "cold start" in capsys.readouterr().out

    def test_serve_metrics_every_prints_snapshot_lines(
        self, peg_file, tmp_path, capsys
    ):
        workload = self.write_workload(tmp_path)
        assert main(
            [
                "serve", peg_file, "--queries", workload, "--alpha", "0.2",
                "--repeat", "2", "--metrics-every", "1",
            ]
        ) == 0
        out = capsys.readouterr().out
        metric_lines = [l for l in out.splitlines()
                        if l.startswith("[metrics]")]
        assert len(metric_lines) == 2
        assert "hit_rate=" in metric_lines[0]
        assert "p95=" in metric_lines[1]

    def test_serve_json_list_workload(self, peg_file, tmp_path, capsys):
        workload = tmp_path / "workload.json"
        workload.write_text(json.dumps(
            [{"nodes": {"a": "L0"}, "edges": []}]
        ))
        assert main(
            [
                "serve", peg_file, "--queries", str(workload),
                "--alpha", "0.3",
            ]
        ) == 0
        assert "query 0" in capsys.readouterr().out

    def test_serve_bad_workload(self, peg_file, tmp_path, capsys):
        workload = tmp_path / "workload.jsonl"
        workload.write_text(json.dumps({"edges": []}))
        assert main(
            ["serve", peg_file, "--queries", str(workload)]
        ) == 1
        assert "error" in capsys.readouterr().err

    def test_serve_batch_mode(self, peg_file, tmp_path, capsys):
        workload = self.write_workload(tmp_path)
        assert main(
            [
                "serve", peg_file, "--queries", workload,
                "--alpha", "0.2", "--batch", "--repeat", "2", "--stats",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "query 0" in out and "query 1" in out
        assert "hits" in out

    def test_serve_cold_start_sharded(self, peg_file, tmp_path, capsys):
        workload = self.write_workload(tmp_path)
        snapshot = str(tmp_path / "sharded-bundle")
        assert main(
            [
                "serve", peg_file, "--snapshot", snapshot,
                "--queries", workload, "--alpha", "0.2", "--shards", "3",
            ]
        ) == 0
        assert "cold start" in capsys.readouterr().out
        assert (tmp_path / "sharded-bundle" / "shard-00").is_dir()


class TestBuild:
    def test_build_then_warm_serve(self, peg_file, tmp_path, capsys):
        bundle = str(tmp_path / "bundle")
        assert main(
            [
                "build", peg_file, "--out", bundle,
                "--max-length", "2", "--beta", "0.1",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "monolithic index" in out and "paths" in out

        workload = tmp_path / "w.jsonl"
        workload.write_text(json.dumps(
            {"nodes": {"a": "L0", "b": "L1"}, "edges": [["a", "b"]]}
        ))
        assert main(
            [
                "serve", peg_file, "--snapshot", bundle,
                "--queries", str(workload), "--alpha", "0.2",
            ]
        ) == 0
        assert "warm start" in capsys.readouterr().out

    def test_build_sharded(self, peg_file, tmp_path, capsys):
        bundle = str(tmp_path / "bundle")
        assert main(
            [
                "build", peg_file, "--out", bundle, "--shards", "4",
                "--max-length", "1", "--beta", "0.2",
            ]
        ) == 0
        assert "4 shards" in capsys.readouterr().out
        assert (tmp_path / "bundle" / "shard-03").is_dir()

    def test_build_processes_require_shards(self, peg_file, tmp_path, capsys):
        assert main(
            [
                "build", peg_file, "--out", str(tmp_path / "b"),
                "--build-processes", "2",
            ]
        ) == 1
        assert "--shards" in capsys.readouterr().err

    def test_rebuild_into_used_directory_drops_stale_data(
        self, peg_file, tmp_path
    ):
        from repro.index.bundle import load_offline

        bundle = str(tmp_path / "bundle")
        # First build indexes far more paths (low beta) than the second;
        # without cleanup the reopened store would still serve them.
        assert main(
            [
                "build", peg_file, "--out", bundle,
                "--max-length", "2", "--beta", "0.05",
            ]
        ) == 0
        assert main(
            [
                "build", peg_file, "--out", bundle,
                "--max-length", "1", "--beta", "0.5",
            ]
        ) == 0
        index, _ = load_offline(bundle)
        fresh = str(tmp_path / "fresh")
        assert main(
            [
                "build", peg_file, "--out", fresh,
                "--max-length", "1", "--beta", "0.5",
            ]
        ) == 0
        expected, _ = load_offline(fresh)
        assert index.num_paths() == expected.num_paths()
        for seq in expected.histograms:
            assert len(index.lookup(seq, 0.5)) == len(
                expected.lookup(seq, 0.5)
            )

    def test_rebuild_unsharded_over_sharded(self, peg_file, tmp_path):
        from repro.index import ShardedPathIndex
        from repro.index.bundle import load_offline

        bundle = str(tmp_path / "bundle")
        assert main(
            [
                "build", peg_file, "--out", bundle, "--shards", "3",
                "--max-length", "1", "--beta", "0.2",
            ]
        ) == 0
        assert main(
            [
                "build", peg_file, "--out", bundle,
                "--max-length", "1", "--beta", "0.2",
            ]
        ) == 0
        index, _ = load_offline(bundle)
        assert not isinstance(index, ShardedPathIndex)
        assert not (tmp_path / "bundle" / "shard-00").exists()

    def test_serve_build_processes_validation(self, peg_file, tmp_path, capsys):
        workload = tmp_path / "w.jsonl"
        workload.write_text(json.dumps(
            {"nodes": {"a": "L0", "b": "L1"}, "edges": [["a", "b"]]}
        ))
        assert main(
            [
                "serve", peg_file, "--queries", str(workload),
                "--build-processes", "2",
            ]
        ) == 1
        assert "--shards" in capsys.readouterr().err
        assert main(
            [
                "serve", peg_file, "--queries", str(workload),
                "--shards", "2", "--build-processes", "2",
            ]
        ) == 1
        assert "--snapshot" in capsys.readouterr().err


class TestApplyUpdates:
    @staticmethod
    def _write_ops(tmp_path, ops):
        path = str(tmp_path / "ops.jsonl")
        with open(path, "w", encoding="utf-8") as handle:
            for op in ops:
                handle.write(json.dumps(op) + "\n")
        return path

    def test_apply_updates_bundle_round_trip(self, peg_file, tmp_path, capsys):
        bundle = str(tmp_path / "bundle")
        assert main(
            ["build", peg_file, "--out", bundle,
             "--max-length", "2", "--beta", "0.05"]
        ) == 0
        ops = self._write_ops(tmp_path, [
            {"op": "add_entity", "refs": ["dyn-1"],
             "labels": {"L0": 0.6, "L1": 0.4}, "existence": 0.9},
            {"op": "add_edge", "refs_a": [0], "refs_b": ["dyn-1"],
             "edge": 0.8},
            {"op": "update_label_probability", "refs": [1],
             "labels": {"L1": 1.0}},
        ])
        out_peg = str(tmp_path / "updated.peg")
        log = str(tmp_path / "mutations.log")
        assert main(
            ["apply-updates", peg_file, "--ops", ops, "--snapshot", bundle,
             "--log", log, "--out", out_peg]
        ) == 0
        out = capsys.readouterr().out
        assert "applied 3 ops" in out
        assert "compacted" in out

        from repro.delta import MutationLog
        from repro.query import QueryEngine, QueryGraph

        with MutationLog(log) as mutation_log:
            assert len(mutation_log) == 3

        peg = load_peg(out_peg)
        reopened = QueryEngine.from_saved(peg, bundle)
        rebuilt = QueryEngine(peg, max_length=2, beta=0.05)
        query = QueryGraph({"a": "L0", "b": "L1"}, [("a", "b")])
        def keys(matches):
            return sorted(
                (m.nodes, round(m.probability, 9)) for m in matches
            )
        assert keys(reopened.query(query, 0.2).matches) == keys(
            rebuilt.query(query, 0.2).matches
        )

    def test_apply_updates_without_snapshot(self, peg_file, tmp_path, capsys):
        ops = self._write_ops(tmp_path, [
            {"op": "update_label_probability", "refs": [2],
             "labels": {"L0": 1.0}},
        ])
        assert main(["apply-updates", peg_file, "--ops", ops]) == 0
        out = capsys.readouterr().out
        assert "applied 1 ops" in out
        # Default output overwrites the input PEG.
        updated = load_peg(peg_file)
        assert updated.label_probability(frozenset({2}), "L0") == 1.0

    def test_apply_updates_rejects_bad_op(self, peg_file, tmp_path, capsys):
        ops = self._write_ops(tmp_path, [
            {"op": "update_label_probability", "refs": ["missing"],
             "labels": {"L0": 1.0}},
        ])
        assert main(["apply-updates", peg_file, "--ops", ops]) == 1
        assert "error" in capsys.readouterr().err

    def test_no_compact_conflicts_with_snapshot(self, peg_file, tmp_path,
                                                capsys):
        ops = self._write_ops(tmp_path, [
            {"op": "update_label_probability", "refs": [2],
             "labels": {"L0": 1.0}},
        ])
        assert main(
            ["apply-updates", peg_file, "--ops", ops,
             "--snapshot", str(tmp_path / "b"), "--no-compact"]
        ) == 1
        assert "no-compact" in capsys.readouterr().err


class TestPlan:
    def write_spec(self, tmp_path, nodes, edges):
        path = tmp_path / "plan-spec.json"
        path.write_text(json.dumps({"nodes": nodes, "edges": edges}))
        return str(path)

    def test_plan_prints_decomposition_and_cache_hit(
        self, peg_file, tmp_path, capsys
    ):
        spec = self.write_spec(
            tmp_path,
            {"a": "L0", "b": "L1", "c": "L0"},
            [["a", "b"], ["b", "c"], ["a", "c"]],
        )
        assert main(
            ["plan", peg_file, "--spec", spec, "--alpha", "0.3",
             "--strategy", "exact", "--repeat", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "source=exact" in out
        assert "source=cache" in out
        assert "plan cache: 1 hits, 1 misses" in out
        assert "P0:" in out

    def test_plan_inline_pattern(self, peg_file, capsys):
        assert main(
            ["plan", peg_file, "--pattern", "(a:L0)-(b:L1)", "--repeat", "1"]
        ) == 0
        out = capsys.readouterr().out
        assert "strategy=greedy" in out
        assert "est. cardinality" in out

    def test_plan_random_strategy_seeded(self, peg_file, capsys):
        assert main(
            ["plan", peg_file, "--pattern", "(a:L0)-(b:L1)",
             "--strategy", "random", "--repeat", "2"]
        ) == 0
        out = capsys.readouterr().out
        # Seeded random plans are cacheable: the second round hits.
        assert "source=cache" in out

    def test_plan_rejects_bad_alpha(self, peg_file, capsys):
        assert main(
            ["plan", peg_file, "--pattern", "(a:L0)-(b:L1)", "--alpha", "1.5"]
        ) == 1
        assert "alpha must be in (0, 1]" in capsys.readouterr().err

    def test_plan_bad_spec(self, peg_file, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(["not", "a", "spec"]))
        assert main(["plan", peg_file, "--spec", str(path)]) == 1
        assert "error" in capsys.readouterr().err


class TestQueryExactStrategy:
    def test_query_accepts_exact_decomposition(self, peg_file, tmp_path,
                                               capsys):
        spec = tmp_path / "exact-spec.json"
        spec.write_text(json.dumps({
            "nodes": {"a": "L0", "b": "L1"},
            "edges": [["a", "b"]],
        }))
        assert main(
            ["query", peg_file, "--spec", str(spec), "--alpha", "0.3",
             "--decomposition", "exact", "--explain"]
        ) == 0
        out = capsys.readouterr().out
        assert "plan: strategy=exact" in out
        assert "matches:" in out
