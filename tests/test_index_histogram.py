"""Unit tests for repro.index.histogram."""

import math

import pytest

from repro.index.histogram import CardinalityHistogram
from repro.utils.errors import IndexError_


class TestConstruction:
    def test_from_bucket_counts_cumulative(self):
        hist = CardinalityHistogram.from_bucket_counts(
            [0.3, 0.5, 0.7, 0.9], [10, 20, 5, 1]
        )
        # cumulative from the top: >=0.3: 36, >=0.5: 26, >=0.7: 6, >=0.9: 1
        assert hist.counts == (36, 26, 6, 1)

    def test_rejects_increasing_counts(self):
        with pytest.raises(IndexError_):
            CardinalityHistogram([0.3, 0.5], [5, 10])

    def test_rejects_length_mismatch(self):
        with pytest.raises(IndexError_):
            CardinalityHistogram([0.3], [5, 10])

    def test_rejects_empty(self):
        with pytest.raises(IndexError_):
            CardinalityHistogram([], [])


class TestEstimation:
    def test_exact_at_grid_points(self):
        hist = CardinalityHistogram([0.3, 0.6, 0.9], [100, 40, 4])
        assert hist.estimate(0.3) == 100
        assert hist.estimate(0.6) == 40
        assert hist.estimate(0.9) == 4

    def test_clamps_outside_grid(self):
        hist = CardinalityHistogram([0.3, 0.9], [50, 5])
        assert hist.estimate(0.1) == 50
        assert hist.estimate(0.99) == 5

    def test_exponential_interpolation(self):
        """Midpoint of an exponential through (0.2, 100) and (0.4, 1)."""
        hist = CardinalityHistogram([0.2, 0.4], [100, 1])
        assert hist.estimate(0.3) == pytest.approx(10.0)

    def test_interpolation_monotone(self):
        hist = CardinalityHistogram([0.2, 0.5, 0.8], [1000, 50, 2])
        values = [hist.estimate(a / 100) for a in range(20, 81, 5)]
        assert all(a >= b for a, b in zip(values, values[1:]))

    def test_zero_upper_endpoint_linear_fallback(self):
        hist = CardinalityHistogram([0.2, 0.4], [10, 0])
        assert hist.estimate(0.3) == pytest.approx(5.0)
        assert hist.estimate(0.39) == pytest.approx(0.5, abs=0.01)

    def test_zero_lower_endpoint(self):
        hist = CardinalityHistogram([0.2, 0.4], [0, 0])
        assert hist.estimate(0.3) == 0.0

    def test_exponential_fit_formula(self):
        """Explicit check of h_i * (h_j/h_i)^((a - a_i)/(a_j - a_i))."""
        hist = CardinalityHistogram([0.1, 0.5], [80, 20])
        alpha = 0.2
        expected = 80 * math.exp((alpha - 0.1) / 0.4 * math.log(20 / 80))
        assert hist.estimate(alpha) == pytest.approx(expected)

    def test_total(self):
        hist = CardinalityHistogram([0.3, 0.6], [12, 5])
        assert hist.total() == 12


class TestDuplicateThresholds:
    """Regression: duplicate grid thresholds (possible via
    from_bucket_counts after a delta compaction true-up) must merge at
    construction instead of breaking the monotonicity check or leaving
    a zero-width interval."""

    def test_constructor_merges_duplicates(self):
        hist = CardinalityHistogram([0.1, 0.5, 0.5, 0.9], [7, 3, 4, 1])
        assert hist.thresholds == (0.1, 0.5, 0.9)
        # Two cumulative counts at one threshold mean the larger one.
        assert hist.counts == (7, 4, 1)

    def test_from_bucket_counts_sums_duplicates(self):
        hist = CardinalityHistogram.from_bucket_counts(
            [0.3, 0.5, 0.5, 0.9], [10, 2, 3, 1]
        )
        assert hist.thresholds == (0.3, 0.5, 0.9)
        # buckets: 0.3 -> 10, 0.5 -> 5 (merged), 0.9 -> 1
        assert hist.counts == (16, 6, 1)

    def test_estimates_exact_at_merged_grid_points(self):
        hist = CardinalityHistogram.from_bucket_counts(
            [0.2, 0.6, 0.6, 1.0], [30, 4, 4, 2]
        )
        assert hist.estimate(0.2) == 40
        assert hist.estimate(0.6) == 10
        assert hist.estimate(1.0) == 2

    def test_interpolation_across_merged_duplicates_finite(self):
        hist = CardinalityHistogram([0.2, 0.6, 0.6], [100, 10, 10])
        for alpha in (0.3, 0.4, 0.5, 0.59, 0.6):
            value = hist.estimate(alpha)
            assert 0.0 < value <= 100.0

    def test_still_rejects_truly_increasing_counts(self):
        with pytest.raises(IndexError_):
            CardinalityHistogram([0.3, 0.5, 0.5], [5, 2, 10])
