"""Unit tests for repro.query.query_graph."""

import pytest

from repro.query.query_graph import QueryGraph
from repro.utils.errors import QueryError


def triangle():
    return QueryGraph(
        {"x": "a", "y": "b", "z": "c"},
        [("x", "y"), ("y", "z"), ("x", "z")],
    )


class TestConstruction:
    def test_basic(self):
        q = triangle()
        assert q.num_nodes == 3
        assert q.num_edges == 3
        assert q.label("x") == "a"

    def test_empty_rejected(self):
        with pytest.raises(QueryError):
            QueryGraph({}, [])

    def test_self_loop_rejected(self):
        with pytest.raises(QueryError):
            QueryGraph({"x": "a"}, [("x", "x")])

    def test_unknown_endpoint_rejected(self):
        with pytest.raises(QueryError):
            QueryGraph({"x": "a"}, [("x", "ghost")])

    def test_duplicate_edge_rejected(self):
        with pytest.raises(QueryError):
            QueryGraph({"x": "a", "y": "b"}, [("x", "y"), ("y", "x")])

    def test_malformed_edge_rejected(self):
        with pytest.raises(QueryError):
            QueryGraph({"x": "a"}, ["x"])


class TestAccessors:
    def test_neighbors_and_degree(self):
        q = triangle()
        assert q.neighbors("x") == frozenset({"y", "z"})
        assert q.degree("x") == 2

    def test_unknown_node_rejected(self):
        with pytest.raises(QueryError):
            triangle().label("ghost")
        with pytest.raises(QueryError):
            triangle().neighbors("ghost")

    def test_has_edge_symmetric(self):
        q = triangle()
        assert q.has_edge("x", "y")
        assert q.has_edge("y", "x")
        assert not q.has_edge("x", "x2") if True else None

    def test_label_sequence(self):
        assert triangle().label_sequence(["x", "y", "z"]) == ("a", "b", "c")

    def test_neighbor_label_count(self):
        q = QueryGraph(
            {"c": "hub", "l1": "a", "l2": "a", "l3": "b"},
            [("c", "l1"), ("c", "l2"), ("c", "l3")],
        )
        assert q.neighbor_label_count("c", "a") == 2
        assert q.neighbor_label_count("c", "b") == 1
        assert q.neighbor_label_count("c", "z") == 0

    def test_density(self):
        assert triangle().density() == pytest.approx(1.0)
        star = QueryGraph(
            {"c": "a", "l1": "b", "l2": "b"}, [("c", "l1"), ("c", "l2")]
        )
        assert star.density() == pytest.approx(2 / 3)
        single = QueryGraph({"x": "a"}, [])
        assert single.density() == 1.0

    def test_connected_components(self):
        q = QueryGraph(
            {"a": "x", "b": "x", "c": "x"},
            [("a", "b")],
        )
        components = {frozenset(c) for c in q.connected_components()}
        assert components == {frozenset({"a", "b"}), frozenset({"c"})}


class TestCanonicalization:
    def test_equal_up_to_node_renaming(self):
        original = QueryGraph(
            {"a": "DB", "b": "ML", "c": "DB"}, [("a", "b"), ("b", "c")]
        )
        renamed = QueryGraph(
            {"x": "ML", "y": "DB", "z": "DB"}, [("y", "x"), ("x", "z")]
        )
        assert original == renamed
        assert hash(original) == hash(renamed)
        assert original.canonical_form() == renamed.canonical_form()
        assert original.signature() == renamed.signature()

    def test_insertion_order_irrelevant(self):
        forward = QueryGraph(
            {"a": "x", "b": "y", "c": "z"}, [("a", "b"), ("b", "c")]
        )
        backward = QueryGraph(
            {"c": "z", "b": "y", "a": "x"}, [("b", "c"), ("a", "b")]
        )
        assert forward == backward

    def test_different_structure_distinguished(self):
        path = QueryGraph(
            {1: "a", 2: "a", 3: "a", 4: "a"}, [(1, 2), (2, 3), (3, 4)]
        )
        star = QueryGraph(
            {1: "a", 2: "a", 3: "a", 4: "a"}, [(1, 2), (1, 3), (1, 4)]
        )
        assert path != star
        assert path.signature() != star.signature()

    def test_different_labels_distinguished(self):
        one = QueryGraph({"a": "x", "b": "y"}, [("a", "b")])
        other = QueryGraph({"a": "x", "b": "z"}, [("a", "b")])
        assert one != other

    def test_symmetric_queries(self):
        clique = QueryGraph(
            {1: "a", 2: "a", 3: "a"}, [(1, 2), (2, 3), (1, 3)]
        )
        renamed = QueryGraph(
            {"p": "a", "q": "a", "r": "a"}, [("q", "p"), ("r", "q"), ("p", "r")]
        )
        assert clique == renamed

    def test_label_swap_on_symmetric_shape(self):
        # Same shape, labels attached to different structural positions.
        center_a = QueryGraph(
            {"c": "a", "l1": "b", "l2": "b"}, [("c", "l1"), ("c", "l2")]
        )
        center_b = QueryGraph(
            {"c": "b", "l1": "a", "l2": "b"}, [("c", "l1"), ("c", "l2")]
        )
        assert center_a != center_b

    def test_usable_as_dict_key(self):
        seen = {}
        seen[QueryGraph({"a": "x", "b": "y"}, [("a", "b")])] = 1
        seen[QueryGraph({"u": "x", "v": "y"}, [("u", "v")])] = 2
        assert len(seen) == 1
        assert seen[QueryGraph({"m": "y", "n": "x"}, [("n", "m")])] == 2

    def test_not_equal_to_other_types(self):
        assert triangle() != "triangle"
        assert (triangle() == 42) is False

    def test_signature_is_stable_hex(self):
        sig = triangle().signature()
        assert isinstance(sig, str)
        assert len(sig) == 64
        int(sig, 16)  # parses as hex
        assert sig == triangle().signature()
