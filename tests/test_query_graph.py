"""Unit tests for repro.query.query_graph."""

import pytest

from repro.query.query_graph import QueryGraph
from repro.utils.errors import QueryError


def triangle():
    return QueryGraph(
        {"x": "a", "y": "b", "z": "c"},
        [("x", "y"), ("y", "z"), ("x", "z")],
    )


class TestConstruction:
    def test_basic(self):
        q = triangle()
        assert q.num_nodes == 3
        assert q.num_edges == 3
        assert q.label("x") == "a"

    def test_empty_rejected(self):
        with pytest.raises(QueryError):
            QueryGraph({}, [])

    def test_self_loop_rejected(self):
        with pytest.raises(QueryError):
            QueryGraph({"x": "a"}, [("x", "x")])

    def test_unknown_endpoint_rejected(self):
        with pytest.raises(QueryError):
            QueryGraph({"x": "a"}, [("x", "ghost")])

    def test_duplicate_edge_rejected(self):
        with pytest.raises(QueryError):
            QueryGraph({"x": "a", "y": "b"}, [("x", "y"), ("y", "x")])

    def test_malformed_edge_rejected(self):
        with pytest.raises(QueryError):
            QueryGraph({"x": "a"}, ["x"])


class TestAccessors:
    def test_neighbors_and_degree(self):
        q = triangle()
        assert q.neighbors("x") == frozenset({"y", "z"})
        assert q.degree("x") == 2

    def test_unknown_node_rejected(self):
        with pytest.raises(QueryError):
            triangle().label("ghost")
        with pytest.raises(QueryError):
            triangle().neighbors("ghost")

    def test_has_edge_symmetric(self):
        q = triangle()
        assert q.has_edge("x", "y")
        assert q.has_edge("y", "x")
        assert not q.has_edge("x", "x2") if True else None

    def test_label_sequence(self):
        assert triangle().label_sequence(["x", "y", "z"]) == ("a", "b", "c")

    def test_neighbor_label_count(self):
        q = QueryGraph(
            {"c": "hub", "l1": "a", "l2": "a", "l3": "b"},
            [("c", "l1"), ("c", "l2"), ("c", "l3")],
        )
        assert q.neighbor_label_count("c", "a") == 2
        assert q.neighbor_label_count("c", "b") == 1
        assert q.neighbor_label_count("c", "z") == 0

    def test_density(self):
        assert triangle().density() == pytest.approx(1.0)
        star = QueryGraph(
            {"c": "a", "l1": "b", "l2": "b"}, [("c", "l1"), ("c", "l2")]
        )
        assert star.density() == pytest.approx(2 / 3)
        single = QueryGraph({"x": "a"}, [])
        assert single.density() == 1.0

    def test_connected_components(self):
        q = QueryGraph(
            {"a": "x", "b": "x", "c": "x"},
            [("a", "b")],
        )
        components = {frozenset(c) for c in q.connected_components()}
        assert components == {frozenset({"a", "b"}), frozenset({"c"})}
