"""Unit tests for repro.pgm.elimination (validated against brute force)."""

import itertools

import pytest

from repro.pgm.elimination import joint_probability, variable_elimination
from repro.pgm.factor import Factor, product
from repro.utils.errors import ModelError


def chain_model():
    """x -> y -> z chain with asymmetric potentials."""
    f_x = Factor.from_distribution("x", {0: 0.6, 1: 0.4})
    f_xy = Factor.from_function(
        ("x", "y"),
        {"x": (0, 1), "y": (0, 1)},
        lambda a: 0.9 if a["x"] == a["y"] else 0.1,
    )
    f_yz = Factor.from_function(
        ("y", "z"),
        {"y": (0, 1), "z": (0, 1)},
        lambda a: 0.7 if a["y"] == a["z"] else 0.3,
    )
    return [f_x, f_xy, f_yz]


def brute_force_marginal(factors, query):
    joint = product(factors)
    joint = joint.normalize()
    others = [v for v in joint.variables if v not in query]
    result = joint
    for var in others:
        result = result.marginalize([var])
    return result


class TestVariableElimination:
    def test_matches_brute_force_single_query(self):
        factors = chain_model()
        ve = variable_elimination(factors, ["z"])
        bf = brute_force_marginal(factors, ["z"])
        for value in (0, 1):
            assert ve.get({"z": value}) == pytest.approx(bf.get({"z": value}))

    def test_matches_brute_force_pair_query(self):
        factors = chain_model()
        ve = variable_elimination(factors, ["x", "z"])
        bf = brute_force_marginal(factors, ["x", "z"])
        for x, z in itertools.product((0, 1), repeat=2):
            assert ve.get({"x": x, "z": z}) == pytest.approx(
                bf.get({"x": x, "z": z})
            )

    def test_with_evidence(self):
        factors = chain_model()
        ve = variable_elimination(factors, ["z"], evidence={"x": 1})
        # conditional brute force
        joint = product(factors).reduce({"x": 1}).normalize()
        bf = joint.marginalize(["y"])
        for value in (0, 1):
            assert ve.get({"z": value}) == pytest.approx(bf.get({"z": value}))

    def test_unnormalized_mass(self):
        factors = chain_model()
        ve = variable_elimination(factors, ["x"], normalize=False)
        assert ve.partition == pytest.approx(product(factors).partition)

    def test_unknown_query_variable(self):
        with pytest.raises(ModelError):
            variable_elimination(chain_model(), ["missing"])

    def test_empty_model_rejected(self):
        with pytest.raises(ModelError):
            variable_elimination([], ["x"])


class TestJointProbability:
    def test_matches_normalized_product(self):
        factors = chain_model()
        joint = product(factors).normalize()
        for x, y, z in itertools.product((0, 1), repeat=3):
            assignment = {"x": x, "y": y, "z": z}
            assert joint_probability(factors, assignment) == pytest.approx(
                joint.get(assignment)
            )

    def test_total_mass_is_one(self):
        factors = chain_model()
        total = sum(
            joint_probability(factors, {"x": x, "y": y, "z": z})
            for x, y, z in itertools.product((0, 1), repeat=3)
        )
        assert total == pytest.approx(1.0)
