"""Unit tests for repro.query.baselines (the oracles themselves)."""

import pytest

from repro.peg import build_peg
from repro.pgd import pgd_from_edge_list
from repro.query import QueryGraph, direct_matches, exhaustive_matches


def match_keys(matches):
    return {(m.nodes, m.edges, round(m.probability, 9)) for m in matches}


def fs(*items):
    return frozenset(items)


class TestExhaustive:
    def test_figure1_worked_example(self, figure1_peg):
        """The paper's Section 2 walkthrough, all candidate matches."""
        query = QueryGraph(
            {"q1": "r", "q2": "a", "q3": "i"},
            [("q1", "q2"), ("q2", "q3")],
        )
        matches = exhaustive_matches(figure1_peg, query, alpha=1e-9)
        by_nodes = {m.nodes: m.probability for m in matches}
        merged = fs("r3", "r4")
        # (s34, s2, s1): 0.5 * 1 * 0.75 * 0.75 * 0.9 * 0.8
        key = tuple(sorted(
            {merged: "r", fs("r2"): "a", fs("r1"): "i"}.items(),
            key=lambda kv: repr(kv[0]),
        ))
        assert by_nodes[key] == pytest.approx(0.2025)

    def test_matches_require_legal_worlds(self, figure1_peg):
        """No match may use both {r3} and {r3, r4}."""
        query = QueryGraph(
            {"q1": "r", "q2": "i"}, [("q1", "q2")]
        )
        for match in exhaustive_matches(figure1_peg, query, alpha=1e-9):
            entities = [entity for entity, _ in match.nodes]
            for i, left in enumerate(entities):
                for right in entities[i + 1:]:
                    assert not (left & right)

    def test_automorphic_embeddings_deduplicated(self):
        peg = build_peg(
            pgd_from_edge_list(
                node_labels={"x": "a", "y": "a"},
                edges=[("x", "y", 0.5)],
            )
        )
        query = QueryGraph({"u": "a", "v": "a"}, [("u", "v")])
        matches = exhaustive_matches(peg, query, alpha=0.1)
        # (x, y) and (y, x) are the same labeled subgraph: one match.
        assert len(matches) == 1
        assert matches[0].probability == pytest.approx(0.5)

    def test_threshold_applied(self, figure1_peg):
        query = QueryGraph(
            {"q1": "r", "q2": "a", "q3": "i"},
            [("q1", "q2"), ("q2", "q3")],
        )
        all_matches = exhaustive_matches(figure1_peg, query, alpha=1e-9)
        filtered = exhaustive_matches(figure1_peg, query, alpha=0.15)
        assert len(filtered) < len(all_matches)
        assert all(m.probability >= 0.15 for m in filtered)


class TestDirectAgainstExhaustive:
    @pytest.mark.parametrize(
        "query",
        [
            QueryGraph({"u": "r", "v": "a"}, [("u", "v")]),
            QueryGraph(
                {"u": "r", "v": "a", "w": "i"}, [("u", "v"), ("v", "w")]
            ),
            QueryGraph(
                {"u": "i", "v": "a", "w": "i"},
                [("u", "v"), ("v", "w"), ("u", "w")],
            ),
            QueryGraph({"u": "a"}, []),
        ],
        ids=["edge", "path", "triangle", "node"],
    )
    @pytest.mark.parametrize("alpha", [0.05, 0.3])
    def test_agreement(self, figure1_peg, query, alpha):
        assert match_keys(direct_matches(figure1_peg, query, alpha)) == \
            match_keys(exhaustive_matches(figure1_peg, query, alpha))

    def test_disconnected_query(self, figure1_peg):
        query = QueryGraph({"u": "a", "v": "i"}, [])
        assert match_keys(direct_matches(figure1_peg, query, 0.3)) == \
            match_keys(exhaustive_matches(figure1_peg, query, 0.3))

    def test_no_match_label(self, figure1_peg):
        query = QueryGraph({"u": "zz"}, [])
        assert direct_matches(figure1_peg, query, 0.1) == []
        assert exhaustive_matches(figure1_peg, query, 0.1) == []
