"""Unit tests for repro.pgd.merge."""

import pytest

from repro.pgd.distributions import (
    BernoulliEdge,
    ConditionalEdge,
    LabelDistribution,
)
from repro.pgd.merge import (
    MergeFunctions,
    average_edges,
    average_labels,
    disjunct_edges,
    get_merge_functions,
    max_edges,
    register_merge_functions,
)
from repro.utils.errors import ModelError


class TestAverageLabels:
    def test_paper_example(self):
        """Figure 1: averaging r(1) and i(1) gives r(0.5), i(0.5)."""
        merged = average_labels(
            [LabelDistribution.certain("r"), LabelDistribution.certain("i")]
        )
        assert merged.probability("r") == pytest.approx(0.5)
        assert merged.probability("i") == pytest.approx(0.5)

    def test_result_is_normalized(self):
        merged = average_labels(
            [
                LabelDistribution({"a": 0.3, "b": 0.7}),
                LabelDistribution({"b": 0.1, "c": 0.9}),
                LabelDistribution({"a": 1.0}),
            ]
        )
        assert sum(p for _, p in merged.items()) == pytest.approx(1.0)

    def test_single_input_identity(self):
        dist = LabelDistribution({"a": 0.2, "b": 0.8})
        assert average_labels([dist]) == dist

    def test_empty_rejected(self):
        with pytest.raises(ModelError):
            average_labels([])


class TestEdgeMerges:
    def test_average_bernoulli(self):
        """Figure 1: averaging edge probabilities 1.0 and 0.5 gives 0.75."""
        merged = average_edges([BernoulliEdge(1.0), BernoulliEdge(0.5)])
        assert merged.probability() == pytest.approx(0.75)

    def test_disjunct_bernoulli(self):
        merged = disjunct_edges([BernoulliEdge(0.5), BernoulliEdge(0.5)])
        assert merged.probability() == pytest.approx(0.75)

    def test_max_bernoulli(self):
        merged = max_edges([BernoulliEdge(0.2), BernoulliEdge(0.9)])
        assert merged.probability() == pytest.approx(0.9)

    def test_average_conditional(self):
        merged = average_edges(
            [
                ConditionalEdge({("a", "a"): 0.8, ("a", "b"): 0.4}),
                ConditionalEdge({("a", "a"): 0.6, ("a", "b"): 0.2}),
            ]
        )
        assert merged.conditional
        assert merged.probability("a", "a") == pytest.approx(0.7)
        assert merged.probability("a", "b") == pytest.approx(0.3)

    def test_mixed_conditional_and_bernoulli(self):
        merged = average_edges(
            [ConditionalEdge({("a", "a"): 0.8}), BernoulliEdge(0.4)]
        )
        assert merged.conditional
        assert merged.probability("a", "a") == pytest.approx(0.6)

    def test_disjunct_never_below_max_input(self):
        inputs = [BernoulliEdge(0.3), BernoulliEdge(0.6)]
        assert disjunct_edges(inputs).probability() >= 0.6

    def test_empty_rejected(self):
        with pytest.raises(ModelError):
            average_edges([])


class TestRegistry:
    def test_builtins_available(self):
        for name in ("average", "disjunct", "max"):
            merge = get_merge_functions(name)
            assert isinstance(merge, MergeFunctions)
            assert merge.name == name

    def test_unknown_rejected(self):
        with pytest.raises(ModelError):
            get_merge_functions("nope")

    def test_custom_registration(self):
        custom = MergeFunctions(
            labels=average_labels, edges=max_edges, name="custom-test"
        )
        register_merge_functions("custom-test", custom)
        assert get_merge_functions("custom-test") is custom

    def test_empty_name_rejected(self):
        with pytest.raises(ModelError):
            register_merge_functions("", get_merge_functions("average"))
