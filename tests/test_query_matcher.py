"""Unit tests for repro.query.matcher (join order + match generation)."""

import pytest

from repro.query.decompose import Decomposition, QueryPath
from repro.query.matcher import determine_join_order
from repro.query.query_graph import QueryGraph


def make_decomposition(query, node_tuples):
    return Decomposition(
        query=query, paths=[QueryPath(nodes) for nodes in node_tuples]
    )


class TestJoinOrder:
    def test_first_path_has_smallest_cardinality(self):
        query = QueryGraph(
            {1: "x", 2: "x", 3: "x", 4: "x"},
            [(1, 2), (2, 3), (3, 4)],
        )
        decomposition = make_decomposition(query, [(1, 2, 3), (3, 4)])
        order = determine_join_order(decomposition, {0: 100, 1: 2})
        assert order[0] == 1

    def test_overlap_preferred_over_cardinality(self):
        """After the first path, node overlap dominates the choice."""
        query = QueryGraph(
            {1: "x", 2: "x", 3: "x", 4: "x", 5: "x"},
            [(1, 2), (2, 3), (3, 4), (4, 5), (1, 3)],
        )
        decomposition = make_decomposition(
            query, [(1, 2, 3), (1, 3), (4, 5), (3, 4)]
        )
        order = determine_join_order(
            decomposition, {0: 1, 1: 50, 2: 2, 3: 50}
        )
        assert order[0] == 0
        # Path (1,3) overlaps the placed path in two nodes; (3,4) in one;
        # (4,5) in none. Overlap wins despite cardinalities.
        assert order[1] == 1

    def test_all_partitions_ordered_once(self):
        query = QueryGraph(
            {1: "x", 2: "x", 3: "x", 4: "x"},
            [(1, 2), (2, 3), (3, 4), (1, 4)],
        )
        decomposition = make_decomposition(
            query, [(1, 2), (2, 3), (3, 4), (4, 1)]
        )
        order = determine_join_order(decomposition, {i: i for i in range(4)})
        assert sorted(order) == [0, 1, 2, 3]

    def test_disconnected_partitions_still_ordered(self):
        query = QueryGraph(
            {1: "x", 2: "x", 3: "x", 4: "x"},
            [(1, 2), (3, 4)],
        )
        decomposition = make_decomposition(query, [(1, 2), (3, 4)])
        order = determine_join_order(decomposition, {0: 10, 1: 5})
        assert sorted(order) == [0, 1]
        assert order[0] == 1  # smaller cardinality first
