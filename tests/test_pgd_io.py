"""Unit tests for PGD JSON import/export."""

import json

import pytest

from repro.pgd import PGD
from repro.pgd.io import (
    load_pgd_json,
    pgd_from_dict,
    pgd_to_dict,
    save_pgd_json,
)
from repro.peg import build_peg
from repro.utils.errors import ModelError


def rich_pgd():
    pgd = PGD(merge="disjunct")
    pgd.add_reference("r1", {"a": 0.75, "r": 0.25})
    pgd.add_reference("r2", "a")
    pgd.add_reference("r3", "r")
    pgd.add_edge("r1", "r2", 0.9)
    pgd.add_edge("r2", "r3", {("a", "r"): 0.8, ("a", "a"): 0.3})
    pgd.add_reference_set(("r1", "r3"), 0.6)
    pgd.set_singleton_potential("r1", 0.7)
    return pgd


class TestRoundTrip:
    def test_dict_roundtrip_preserves_everything(self):
        original = rich_pgd()
        restored = pgd_from_dict(pgd_to_dict(original))
        assert restored.stats() == original.stats()
        assert restored.merge.name == "disjunct"
        assert restored.label_distribution("r1").probability("a") == 0.75
        assert restored.edge_distribution("r1", "r2").probability() == 0.9
        cpt = restored.edge_distribution("r2", "r3")
        assert cpt.conditional
        assert cpt.probability("a", "r") == 0.8
        sets = restored.reference_sets()
        assert sets[frozenset(("r1", "r3"))] == 0.6
        assert sets[frozenset(("r1",))] == 0.7

    def test_file_roundtrip(self, tmp_path):
        path = str(tmp_path / "graph.json")
        save_pgd_json(rich_pgd(), path)
        restored = load_pgd_json(path)
        assert restored.stats() == rich_pgd().stats()

    def test_exported_json_is_valid_and_stable(self, tmp_path):
        path_a = tmp_path / "a.json"
        path_b = tmp_path / "b.json"
        save_pgd_json(rich_pgd(), str(path_a))
        save_pgd_json(rich_pgd(), str(path_b))
        assert path_a.read_text() == path_b.read_text()
        document = json.loads(path_a.read_text())
        assert document["format"] == "repro-pgd"

    def test_restored_pgd_builds_identical_peg(self, tmp_path):
        path = str(tmp_path / "graph.json")
        save_pgd_json(rich_pgd(), path)
        original_peg = build_peg(rich_pgd())
        restored_peg = build_peg(load_pgd_json(path))
        assert restored_peg.stats() == original_peg.stats()
        for entity in original_peg.entities:
            assert restored_peg.existence_probability(entity) == \
                pytest.approx(original_peg.existence_probability(entity))


class TestValidation:
    def test_wrong_format(self):
        with pytest.raises(ModelError):
            pgd_from_dict({"format": "something-else", "version": 1})

    def test_wrong_version(self):
        with pytest.raises(ModelError):
            pgd_from_dict({"format": "repro-pgd", "version": 99})

    def test_missing_references(self):
        with pytest.raises(ModelError):
            pgd_from_dict(
                {"format": "repro-pgd", "version": 1, "references": {}}
            )

    def test_bad_edge_entry(self):
        document = pgd_to_dict(rich_pgd())
        document["edges"].append({"refs": ["r1"]})
        with pytest.raises(ModelError):
            pgd_from_dict(document)

    def test_edge_without_distribution(self):
        document = pgd_to_dict(rich_pgd())
        document["edges"].append({"refs": ["r1", "r3"]})
        with pytest.raises(ModelError):
            pgd_from_dict(document)

    def test_invalid_json_file(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(ModelError):
            load_pgd_json(str(path))
