"""Unit tests for repro.query.engine (the full online pipeline)."""

import pytest

from repro.peg import build_peg
from repro.pgd import pgd_from_edge_list
from repro.query import QueryEngine, QueryGraph, QueryOptions, direct_matches
from repro.storage import DiskPathStore
from repro.utils.errors import QueryError
from tests.conftest import small_random_peg


def match_keys(matches):
    return {(m.nodes, m.edges, round(m.probability, 9)) for m in matches}


@pytest.fixture(scope="module")
def engine_setup():
    peg = small_random_peg(seed=50, num_references=80)
    engine = QueryEngine(peg, max_length=2, beta=0.1)
    return peg, engine


class TestQueryValidation:
    def test_alpha_bounds(self, engine_setup):
        peg, engine = engine_setup
        query = QueryGraph({"a": "L0"}, [])
        with pytest.raises(QueryError):
            engine.query(query, alpha=0.0)
        with pytest.raises(QueryError):
            engine.query(query, alpha=1.5)


class TestResultsMatchOracle:
    @pytest.mark.parametrize("alpha", [0.2, 0.4, 0.7])
    def test_chain_query(self, engine_setup, alpha):
        peg, engine = engine_setup
        sigma = sorted(peg.sigma)
        query = QueryGraph(
            {"a": sigma[0], "b": sigma[1], "c": sigma[2]},
            [("a", "b"), ("b", "c")],
        )
        result = engine.query(query, alpha)
        assert match_keys(result.matches) == match_keys(
            direct_matches(peg, query, alpha)
        )

    def test_triangle_query(self, engine_setup):
        peg, engine = engine_setup
        sigma = sorted(peg.sigma)
        query = QueryGraph(
            {"a": sigma[0], "b": sigma[0], "c": sigma[1]},
            [("a", "b"), ("b", "c"), ("a", "c")],
        )
        result = engine.query(query, 0.2)
        assert match_keys(result.matches) == match_keys(
            direct_matches(peg, query, 0.2)
        )

    def test_single_node_query(self, engine_setup):
        peg, engine = engine_setup
        sigma = sorted(peg.sigma)
        query = QueryGraph({"only": sigma[0]}, [])
        result = engine.query(query, 0.6)
        assert match_keys(result.matches) == match_keys(
            direct_matches(peg, query, 0.6)
        )

    def test_alpha_below_beta_falls_back_on_demand(self, engine_setup):
        peg, engine = engine_setup
        sigma = sorted(peg.sigma)
        query = QueryGraph(
            {"a": sigma[0], "b": sigma[1]}, [("a", "b")]
        )
        result = engine.query(query, 0.05)  # below beta = 0.1
        assert match_keys(result.matches) == match_keys(
            direct_matches(peg, query, 0.05)
        )


class TestOptionsAndBaselineVariants:
    @pytest.mark.parametrize(
        "options",
        [
            QueryOptions(decomposition="random", seed=5),
            QueryOptions(use_context_pruning=False),
            QueryOptions(
                use_structure_reduction=False, use_upperbound_reduction=False
            ),
            QueryOptions(use_upperbound_reduction=False),
            QueryOptions(parallel_reduction=True),
        ],
        ids=[
            "random-decomposition",
            "no-context",
            "no-reduction",
            "structure-only",
            "parallel",
        ],
    )
    def test_variants_return_identical_answers(self, engine_setup, options):
        peg, engine = engine_setup
        sigma = sorted(peg.sigma)
        query = QueryGraph(
            {"a": sigma[0], "b": sigma[1], "c": sigma[0], "d": sigma[2]},
            [("a", "b"), ("b", "c"), ("c", "d")],
        )
        baseline = engine.query(query, 0.25)
        variant = engine.query(query, 0.25, options)
        assert match_keys(variant.matches) == match_keys(baseline.matches)


class TestStatistics:
    def test_search_space_progression(self, engine_setup):
        peg, engine = engine_setup
        sigma = sorted(peg.sigma)
        query = QueryGraph(
            {"a": sigma[0], "b": sigma[1], "c": sigma[0]},
            [("a", "b"), ("b", "c")],
        )
        result = engine.query(query, 0.3)
        assert result.search_space_path >= result.search_space_context
        assert result.search_space_context >= result.search_space_final
        assert set(result.timings) >= {"decompose", "candidates"}

    def test_no_reduction_final_space_not_smaller(self, engine_setup):
        peg, engine = engine_setup
        sigma = sorted(peg.sigma)
        query = QueryGraph(
            {"a": sigma[0], "b": sigma[1], "c": sigma[0]},
            [("a", "b"), ("b", "c")],
        )
        with_reduction = engine.query(query, 0.3)
        without = engine.query(
            query,
            0.3,
            QueryOptions(
                use_structure_reduction=False, use_upperbound_reduction=False
            ),
        )
        assert without.search_space_final >= with_reduction.search_space_final

    def test_offline_stats(self, engine_setup):
        _, engine = engine_setup
        stats = engine.offline_stats()
        assert stats["offline_seconds"] > 0
        assert "path_index" in stats["offline_timings"]
        assert "context" in stats["offline_timings"]


class TestDiskBackedEngine:
    def test_disk_store_engine_equivalent(self, tmp_path):
        peg = small_random_peg(seed=51, num_references=60)
        sigma = sorted(peg.sigma)
        memory_engine = QueryEngine(peg, max_length=2, beta=0.1)
        disk_engine = QueryEngine(
            peg,
            max_length=2,
            beta=0.1,
            store=DiskPathStore(str(tmp_path / "idx")),
        )
        query = QueryGraph(
            {"a": sigma[0], "b": sigma[1], "c": sigma[2]},
            [("a", "b"), ("b", "c")],
        )
        assert match_keys(disk_engine.query(query, 0.3).matches) == \
            match_keys(memory_engine.query(query, 0.3).matches)


class TestConditionalEngine:
    def test_correlated_edges_end_to_end(self):
        peg = build_peg(
            pgd_from_edge_list(
                node_labels={
                    "x": {"a": 0.7, "b": 0.3},
                    "y": "b",
                    "z": {"a": 0.5, "b": 0.5},
                },
                edges=[
                    ("x", "y", {("a", "b"): 0.9, ("b", "b"): 0.2}),
                    ("y", "z", {("a", "b"): 0.8, ("b", "b"): 0.1}),
                ],
            )
        )
        engine = QueryEngine(peg, max_length=2, beta=0.05)
        query = QueryGraph(
            {"u": "a", "v": "b", "w": "a"}, [("u", "v"), ("v", "w")]
        )
        result = engine.query(query, 0.2)
        assert match_keys(result.matches) == match_keys(
            direct_matches(peg, query, 0.2)
        )
        if result.matches:
            # 0.7 (x:a) * 1.0 (y:b) * 0.5 (z:a) * 0.9 * 0.8
            assert result.matches[0].probability == pytest.approx(
                0.7 * 0.5 * 0.9 * 0.8
            )


class TestReductionBackendOption:
    def test_unknown_backend_rejected(self, engine_setup):
        peg, engine = engine_setup
        sigma = sorted(peg.sigma)
        query = QueryGraph(
            {"a": sigma[0], "b": sigma[1]}, [("a", "b")]
        )
        with pytest.raises(QueryError):
            engine.query(
                query, 0.3, QueryOptions(reduction_backend="gpu")
            )

    def test_backends_agree_end_to_end(self, engine_setup):
        peg, engine = engine_setup
        sigma = sorted(peg.sigma)
        query = QueryGraph(
            {"a": sigma[0], "b": sigma[1], "c": sigma[0]},
            [("a", "b"), ("b", "c")],
        )
        for alpha in (0.2, 0.4):
            python = engine.query(
                query, alpha, QueryOptions(reduction_backend="python")
            )
            vectorized = engine.query(
                query, alpha, QueryOptions(reduction_backend="vectorized")
            )
            assert match_keys(python.matches) == match_keys(vectorized.matches)
            assert python.search_space_final == vectorized.search_space_final
