"""Unit tests for the seedable fault-injection registry."""

from __future__ import annotations

import time

import pytest

from repro.testing import faults
from repro.utils.errors import FaultError, ReproError


@pytest.fixture(autouse=True)
def _clean_injector():
    faults.uninstall()
    yield
    faults.uninstall()


class TestFaultRule:
    def test_exact_site_match(self):
        rule = faults.FaultRule(site="store.read", kind="error")
        assert rule.matches("store.read")
        assert not rule.matches("store.write")

    def test_prefix_match(self):
        rule = faults.FaultRule(site="net.*", kind="drop")
        assert rule.matches("net.read")
        assert rule.matches("net.write")
        assert not rule.matches("service.worker")

    def test_invalid_kind_rejected(self):
        with pytest.raises(ReproError):
            faults.FaultRule(site="x", kind="explode")

    def test_invalid_probability_rejected(self):
        with pytest.raises(ReproError):
            faults.FaultRule(site="x", kind="error", probability=1.5)


class TestFaultInjector:
    def test_disabled_is_no_op(self):
        # No injector installed: check() must be free and silent.
        assert faults.fire("store.read") is None
        faults.check("store.read")  # must not raise

    def test_error_kind_raises(self):
        injector = faults.install(faults.FaultInjector(seed=1))
        injector.add("store.read", "error")
        with pytest.raises(FaultError, match="store.read"):
            faults.check("store.read")
        assert injector.total_fired() == 1

    def test_delay_kind_sleeps(self):
        injector = faults.install(faults.FaultInjector(seed=1))
        injector.add("service.worker", "delay", param=0.05)
        start = time.perf_counter()
        faults.check("service.worker")
        assert time.perf_counter() - start >= 0.04

    def test_drop_returns_action(self):
        injector = faults.install(faults.FaultInjector(seed=1))
        injector.add("net.read", "drop")
        action = faults.fire("net.read")
        assert action is not None
        assert action.kind == "drop"

    def test_probability_is_seed_deterministic(self):
        def run(seed):
            injector = faults.FaultInjector(seed=seed)
            injector.add("s", "error", probability=0.5)
            return [injector.fire("s") is not None for _ in range(50)]

        assert run(7) == run(7)
        assert run(7) != run(8)
        fired = sum(run(7))
        assert 5 < fired < 45  # actually probabilistic, not all-or-nothing

    def test_max_fires_caps_rule(self):
        injector = faults.install(faults.FaultInjector(seed=1))
        injector.add("store.read", "error", max_fires=2)
        for _ in range(2):
            with pytest.raises(FaultError):
                faults.check("store.read")
        faults.check("store.read")  # exhausted: no longer fires
        assert injector.total_fired() == 2

    def test_uninstall_disables(self):
        injector = faults.install(faults.FaultInjector(seed=1))
        injector.add("store.read", "error")
        faults.uninstall()
        faults.check("store.read")
        assert faults.get_injector() is None


class TestEnvSpec:
    def test_parse_env_spec(self):
        injector = faults.parse_env(
            "store.read:error:0.25,net.*:delay:1.0:0.01", seed=3
        )
        assert len(injector.rules) == 2
        assert injector.rules[0].site == "store.read"
        assert injector.rules[0].probability == 0.25
        assert injector.rules[1].kind == "delay"
        assert injector.rules[1].param == 0.01

    def test_parse_env_rejects_garbage(self):
        with pytest.raises(ReproError):
            faults.parse_env("store.read")  # no kind

    def test_install_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "service.worker:error:1.0")
        monkeypatch.setenv("REPRO_FAULTS_SEED", "42")
        injector = faults.install_from_env()
        assert injector is not None
        with pytest.raises(FaultError):
            faults.check("service.worker")

    def test_install_from_env_absent(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        assert faults.install_from_env() is None
        assert faults.get_injector() is None
