"""Unit tests for repro.query.plan (cache, exact strategy, feedback)."""

import pytest

from repro.datasets import SyntheticConfig, generate_synthetic_pgd, random_query
from repro.peg import build_peg
from repro.query import (
    EstimatorFeedback,
    QueryEngine,
    QueryGraph,
    QueryOptions,
)
from repro.query.decompose import decompose_query
from repro.query.plan import plan_key


def flat_estimator(label_seq, alpha):
    return 10.0


@pytest.fixture(scope="module")
def engine():
    peg = build_peg(
        generate_synthetic_pgd(
            SyntheticConfig(num_references=30, num_labels=3, seed=11)
        )
    )
    return QueryEngine(peg, max_length=2, beta=0.05)


def triangle(prefix: str, sigma) -> QueryGraph:
    names = [f"{prefix}{i}" for i in range(3)]
    labels = {name: sigma[i % len(sigma)] for i, name in enumerate(names)}
    return QueryGraph(
        labels, [(names[0], names[1]), (names[1], names[2]),
                 (names[0], names[2])]
    )


class TestPlanCache:
    def test_second_plan_is_a_cache_hit(self, engine):
        sigma = sorted(engine.peg.sigma, key=repr)
        query = triangle("a", sigma)
        engine.planner.cache.clear()
        _, first = engine.planner.plan(query, 0.3, QueryOptions())
        _, second = engine.planner.plan(query, 0.3, QueryOptions())
        assert not first.cached and second.cached
        assert second.source == "cache"

    def test_cached_plan_rehydrates_onto_renamed_query(self, engine):
        sigma = sorted(engine.peg.sigma, key=repr)
        query = triangle("a", sigma)
        renamed = triangle("zz", sigma)
        engine.planner.cache.clear()
        planned, _ = engine.planner.plan(query, 0.3, QueryOptions())
        rehydrated, info = engine.planner.plan(renamed, 0.3, QueryOptions())
        assert info.cached
        # The rehydrated plan addresses the renamed query's own nodes
        # and is isomorphic to the original plan.
        for path in rehydrated.paths:
            assert all(node in renamed.nodes for node in path.nodes)
        assert sorted(
            tuple(renamed.label_sequence(p.nodes)) for p in rehydrated.paths
        ) == sorted(
            tuple(query.label_sequence(p.nodes)) for p in planned.paths
        )
        assert rehydrated.estimated_cost == planned.estimated_cost
        # The rehydrated decomposition covers the renamed query exactly
        # (Decomposition.__post_init__ would raise otherwise) and the
        # evaluation agrees with a fresh plan.
        fresh = engine.query(
            renamed, 0.3, QueryOptions(use_plan_cache=False)
        )
        cached = engine.query(renamed, 0.3)
        assert sorted(
            (m.nodes, round(m.probability, 9)) for m in cached.matches
        ) == sorted(
            (m.nodes, round(m.probability, 9)) for m in fresh.matches
        )

    def test_milli_rounded_alpha_shares_a_plan(self, engine):
        sigma = sorted(engine.peg.sigma, key=repr)
        query = triangle("m", sigma)
        engine.planner.cache.clear()
        _, first = engine.planner.plan(query, 0.45, QueryOptions())
        _, second = engine.planner.plan(query, 0.4504, QueryOptions())
        _, third = engine.planner.plan(query, 0.46, QueryOptions())
        assert not first.cached and second.cached and not third.cached

    def test_graph_version_invalidates(self, engine):
        sigma = sorted(engine.peg.sigma, key=repr)
        query = triangle("v", sigma)
        options = QueryOptions()
        key_before = plan_key(
            query, 0.3, options.decomposition, options.seed,
            engine.graph_version, engine.max_length,
        )
        key_after = plan_key(
            query, 0.3, options.decomposition, options.seed,
            engine.graph_version + 1, engine.max_length,
        )
        assert key_before != key_after

    def test_unseeded_random_plans_never_cached(self, engine):
        sigma = sorted(engine.peg.sigma, key=repr)
        query = triangle("r", sigma)
        engine.planner.cache.clear()
        options = QueryOptions(decomposition="random", seed=None)
        engine.planner.plan(query, 0.3, options)
        engine.planner.plan(query, 0.3, options)
        assert len(engine.planner.cache) == 0
        seeded = QueryOptions(decomposition="random", seed=7)
        _, first = engine.planner.plan(query, 0.3, seeded)
        _, second = engine.planner.plan(query, 0.3, seeded)
        assert not first.cached and second.cached

    def test_feedback_setting_is_part_of_the_key(self, engine):
        """A plan costed with corrections must not answer a request
        that asked for raw histogram estimates (different cost models)."""
        sigma = sorted(engine.peg.sigma, key=repr)
        query = triangle("k", sigma)
        engine.planner.cache.clear()
        _, with_feedback = engine.planner.plan(query, 0.3, QueryOptions())
        _, without = engine.planner.plan(
            query, 0.3, QueryOptions(use_estimator_feedback=False)
        )
        assert not with_feedback.cached and not without.cached
        assert len(engine.planner.cache) == 2
        _, again = engine.planner.plan(
            query, 0.3, QueryOptions(use_estimator_feedback=False)
        )
        assert again.cached

    def test_use_plan_cache_false_bypasses(self, engine):
        sigma = sorted(engine.peg.sigma, key=repr)
        query = triangle("b", sigma)
        engine.planner.cache.clear()
        options = QueryOptions(use_plan_cache=False)
        engine.planner.plan(query, 0.3, options)
        _, info = engine.planner.plan(query, 0.3, options)
        assert not info.cached
        assert len(engine.planner.cache) == 0


class TestExactStrategy:
    def test_exact_never_costs_more_than_greedy(self, engine):
        sigma = sorted(engine.peg.sigma, key=repr)
        for seed in range(8):
            query = random_query(3, 3, sigma, seed=seed)
            greedy = decompose_query(
                query, engine.index.estimate_cardinality, 0.3,
                engine.max_length, strategy="greedy",
            )
            exact = decompose_query(
                query, engine.index.estimate_cardinality, 0.3,
                engine.max_length, strategy="exact",
            )
            assert exact.strategy_used == "exact"
            assert exact.estimated_cost <= greedy.estimated_cost * (1 + 1e-9)

    def test_exact_falls_back_past_cutoff(self):
        # 16 edges > _EXACT_MAX_ELEMENTS: a path query of 17 nodes.
        labels = {i: "x" for i in range(17)}
        edges = [(i, i + 1) for i in range(16)]
        query = QueryGraph(labels, edges)
        decomposition = decompose_query(
            query, flat_estimator, 0.5, 2, strategy="exact"
        )
        assert decomposition.strategy_used == "greedy"

    def test_exact_is_deterministic(self, engine):
        sigma = sorted(engine.peg.sigma, key=repr)
        query = random_query(4, 5, sigma, seed=3)
        plans = {
            tuple(
                p.nodes
                for p in decompose_query(
                    query, engine.index.estimate_cardinality, 0.3,
                    engine.max_length, strategy="exact",
                ).paths
            )
            for _ in range(3)
        }
        assert len(plans) == 1


class TestEstimatorFeedback:
    def test_correction_moves_toward_observed(self):
        feedback = EstimatorFeedback(decay=1.0)
        seq = ("a", "b")
        assert feedback.correction(seq, 0.3) == 1.0
        feedback.observe(seq, 0.3, estimated=9.0, observed=19)
        assert feedback.correction(seq, 0.3) == pytest.approx(2.0)
        # corrected estimate now matches the observation
        assert 9.0 * feedback.correction(seq, 0.3) == pytest.approx(
            18.0, rel=0.2
        )

    def test_corrections_isolated_per_threshold(self):
        """A drift ratio observed at one alpha must not corrupt
        estimates at other thresholds of the same sequence."""
        feedback = EstimatorFeedback(decay=1.0)
        seq = ("a", "b")
        # Accurate at 0.1, badly off at 0.9 (tiny counts).
        feedback.observe(seq, 0.9, estimated=5.0, observed=0)
        assert feedback.correction(seq, 0.9) < 1.0
        assert feedback.correction(seq, 0.1) == 1.0
        # Same milli-bucket shares the correction.
        assert feedback.correction(seq, 0.9004) == feedback.correction(
            seq, 0.9
        )

    def test_correction_clamped(self):
        feedback = EstimatorFeedback(decay=1.0, max_correction=8.0)
        seq = ("a",)
        feedback.observe(seq, 0.5, estimated=0.0, observed=10_000)
        assert feedback.correction(seq, 0.5) == 8.0
        feedback.observe(seq, 0.5, estimated=10_000.0, observed=0)
        assert feedback.correction(seq, 0.5) >= 1.0 / 8.0

    def test_reset(self):
        feedback = EstimatorFeedback()
        feedback.observe(("a",), 0.5, 1.0, 5)
        assert len(feedback) == 1
        feedback.reset()
        assert len(feedback) == 0
        assert feedback.correction(("a",), 0.5) == 1.0

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            EstimatorFeedback(decay=0.0)
        with pytest.raises(ValueError):
            EstimatorFeedback(max_correction=0.5)

    def test_engine_feedback_corrects_estimates(self, engine):
        sigma = sorted(engine.peg.sigma, key=repr)
        query = triangle("f", sigma)
        engine.planner.invalidate()
        first = engine.query(query, 0.3)
        if not first.estimate_observations:
            pytest.skip("query produced no index-backed lookups")
        second = engine.query(query, 0.3)
        for i, (estimated, observed) in second.estimate_observations.items():
            est0, obs0 = first.estimate_observations[i]
            # After observing once, the corrected estimate is at least
            # as close to the observation as the raw one was.
            assert abs(estimated - observed) <= abs(est0 - obs0) + 1e-9

    def test_compaction_resets_feedback_and_plans(self):
        from repro.delta import AddEntity

        peg = build_peg(
            generate_synthetic_pgd(
                SyntheticConfig(num_references=12, num_labels=2, seed=6)
            )
        )
        own = QueryEngine(peg, max_length=2, beta=0.05)
        sigma = sorted(peg.sigma, key=repr)
        own.apply_updates([AddEntity(("pf-1",), {sigma[0]: 1.0}, 0.9)])
        own.query(triangle("c", sigma), 0.3)
        assert len(own.planner.cache) >= 1
        own.compact_updates()
        # Compaction trued the histograms up: learned corrections and
        # drift-costed plans are dropped with it.
        assert len(own.planner.feedback) == 0
        assert len(own.planner.cache) == 0


class TestServiceIntegration:
    def test_plan_counters_surface_in_service_stats(self):
        from repro.service import QueryService

        peg = build_peg(
            generate_synthetic_pgd(
                SyntheticConfig(num_references=16, num_labels=2, seed=4)
            )
        )
        sigma = sorted(peg.sigma, key=repr)
        query = triangle("s", sigma)
        with QueryService.build(peg, max_length=2, beta=0.05,
                                num_workers=2, cache_size=0) as service:
            service.query(query, 0.3)
            service.query(query, 0.3)
            snap = service.stats_snapshot()
        assert snap["plan_misses"] >= 1
        assert snap["plan_hits"] >= 1
        assert snap["plan_cache_hits"] >= 1
        assert "plan_cache_size" in snap
