"""Unit tests for repro.storage.pager."""

import os

import pytest

from repro.storage.pager import PAGE_SIZE, Pager
from repro.utils.errors import StorageError


@pytest.fixture
def pager(tmp_path):
    with Pager(str(tmp_path / "pages.db")) as p:
        yield p


class TestPager:
    def test_new_file_has_header_page(self, pager):
        assert pager.num_pages == 1

    def test_allocate_and_roundtrip(self, pager):
        page_id = pager.allocate()
        data = bytes([7]) * PAGE_SIZE
        pager.write(page_id, data)
        assert pager.read(page_id) == data

    def test_wrong_size_rejected(self, pager):
        page_id = pager.allocate()
        with pytest.raises(StorageError):
            pager.write(page_id, b"short")

    def test_out_of_range_rejected(self, pager):
        with pytest.raises(StorageError):
            pager.read(99)
        with pytest.raises(StorageError):
            pager.write(99, b"\x00" * PAGE_SIZE)

    def test_persistence_across_reopen(self, tmp_path):
        path = str(tmp_path / "persist.db")
        with Pager(path) as pager:
            page_id = pager.allocate()
            pager.write(page_id, b"\x42" * PAGE_SIZE)
        with Pager(path) as reopened:
            assert reopened.num_pages == 2
            assert reopened.read(page_id) == b"\x42" * PAGE_SIZE

    def test_eviction_preserves_data(self, tmp_path):
        with Pager(str(tmp_path / "evict.db"), cache_pages=8) as pager:
            pages = {}
            for i in range(64):
                page_id = pager.allocate()
                data = bytes([i]) * PAGE_SIZE
                pager.write(page_id, data)
                pages[page_id] = data
            for page_id, data in pages.items():
                assert pager.read(page_id) == data

    def test_unaligned_file_rejected(self, tmp_path):
        path = tmp_path / "bad.db"
        path.write_bytes(b"x" * 100)
        with pytest.raises(StorageError):
            Pager(str(path))

    def test_size_bytes(self, pager):
        pager.allocate()
        assert pager.size_bytes() == 2 * PAGE_SIZE

    def test_flush_writes_to_disk(self, tmp_path):
        path = str(tmp_path / "flush.db")
        pager = Pager(path)
        page_id = pager.allocate()
        pager.write(page_id, b"\x01" * PAGE_SIZE)
        pager.flush()
        assert os.path.getsize(path) == 2 * PAGE_SIZE
        pager.close()
