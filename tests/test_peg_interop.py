"""Unit tests for the networkx export."""

import networkx as nx
import pytest

from repro.peg import build_peg
from repro.peg.interop import to_networkx
from repro.pgd import pgd_from_edge_list


def fs(*items):
    return frozenset(items)


class TestToNetworkx:
    def test_structure_matches(self, figure1_peg):
        graph = to_networkx(figure1_peg)
        assert graph.number_of_nodes() == figure1_peg.num_nodes
        assert graph.number_of_edges() == figure1_peg.num_edges
        for pair, _ in figure1_peg.edges():
            entity_a, entity_b = tuple(pair)
            assert graph.has_edge(entity_a, entity_b)

    def test_node_attributes(self, figure1_peg):
        graph = to_networkx(figure1_peg)
        merged = fs("r3", "r4")
        attrs = graph.nodes[merged]
        assert attrs["labels"] == pytest.approx({"r": 0.5, "i": 0.5})
        assert attrs["existence"] == pytest.approx(0.8)
        assert attrs["references"] == ["'r3'", "'r4'"] or \
            sorted(attrs["references"]) == sorted(["r3", "r4"])

    def test_edge_attributes_independent(self, figure1_peg):
        graph = to_networkx(figure1_peg)
        data = graph.edges[fs("r3", "r4"), fs("r2")]
        assert data["probability"] == pytest.approx(0.75)

    def test_edge_attributes_conditional(self):
        peg = build_peg(
            pgd_from_edge_list(
                node_labels={"x": "a", "y": "b"},
                edges=[("x", "y", {("a", "b"): 0.9})],
            )
        )
        graph = to_networkx(peg)
        data = graph.edges[fs("x"), fs("y")]
        assert data["max_probability"] == pytest.approx(0.9)
        assert ("a", "b") in data["cpt"]

    def test_usable_with_networkx_algorithms(self, figure1_peg):
        graph = to_networkx(figure1_peg)
        # a plain algorithm runs on the exported structure
        assert nx.number_connected_components(graph) >= 1
        degrees = dict(graph.degree())
        assert max(degrees.values()) >= 2
