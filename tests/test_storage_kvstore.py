"""Unit tests for the two-level path stores (in-memory and disk)."""

import pytest

from repro.storage.kvstore import DiskPathStore, InMemoryPathStore
from repro.utils.errors import StorageError


@pytest.fixture(params=["memory", "disk"])
def store(request, tmp_path):
    if request.param == "memory":
        with InMemoryPathStore() as s:
            yield s
    else:
        with DiskPathStore(str(tmp_path / "store")) as s:
            yield s


SEQ_A = ("a", "b")
SEQ_B = ("a", "b", "c")


class TestPathStore:
    def test_put_get_roundtrip(self, store):
        store.put_bucket(SEQ_A, 700, b"payload-700")
        assert store.get_bucket(SEQ_A, 700) == b"payload-700"
        assert store.get_bucket(SEQ_A, 800) is None
        assert store.get_bucket(SEQ_B, 700) is None

    def test_scan_ascending_from_threshold(self, store):
        for bucket in (300, 900, 500, 700):
            store.put_bucket(SEQ_A, bucket, str(bucket).encode())
        scanned = list(store.scan_buckets(SEQ_A, 500))
        assert [b for b, _ in scanned] == [500, 700, 900]
        assert [p for _, p in scanned] == [b"500", b"700", b"900"]

    def test_scan_unknown_sequence_empty(self, store):
        assert list(store.scan_buckets(("zz",), 0)) == []

    def test_sequences_tracked(self, store):
        store.put_bucket(SEQ_A, 100, b"x")
        store.put_bucket(SEQ_B, 100, b"y")
        assert set(store.label_sequences()) == {SEQ_A, SEQ_B}

    def test_sequences_do_not_collide(self, store):
        store.put_bucket(SEQ_A, 100, b"short")
        store.put_bucket(SEQ_B, 100, b"long")
        assert store.get_bucket(SEQ_A, 100) == b"short"
        assert store.get_bucket(SEQ_B, 100) == b"long"

    def test_replace_bucket(self, store):
        store.put_bucket(SEQ_A, 100, b"first")
        store.put_bucket(SEQ_A, 100, b"second")
        assert store.get_bucket(SEQ_A, 100) == b"second"

    def test_bad_bucket_rejected(self, store):
        with pytest.raises(StorageError):
            store.put_bucket(SEQ_A, 1500, b"x")
        with pytest.raises(StorageError):
            store.put_bucket(SEQ_A, -1, b"x")

    def test_size_bytes_positive_after_write(self, store):
        store.put_bucket(SEQ_A, 100, b"x" * 100)
        assert store.size_bytes() >= 100


class TestDiskPersistence:
    def test_reopen_preserves_everything(self, tmp_path):
        directory = str(tmp_path / "persist")
        with DiskPathStore(directory) as store:
            store.put_bucket(SEQ_A, 400, b"A")
            store.put_bucket(SEQ_B, 600, b"B")
        with DiskPathStore(directory) as reopened:
            assert reopened.get_bucket(SEQ_A, 400) == b"A"
            assert reopened.get_bucket(SEQ_B, 600) == b"B"
            assert set(reopened.label_sequences()) == {SEQ_A, SEQ_B}

    def test_non_string_labels(self, tmp_path):
        with DiskPathStore(str(tmp_path / "labels")) as store:
            seq = ((1, "x"), (2, "y"))
            store.put_bucket(seq, 500, b"tuple-labels")
            assert store.get_bucket(seq, 500) == b"tuple-labels"


class TestConcurrentReaders:
    """A shared DiskPathStore must serve parallel readers correctly.

    The tree's pager cache and the record log's file handle are
    position-stateful; without the store-level lock, interleaved seeks
    corrupt reads. Many threads hammer disjoint (sequence, bucket)
    slots and verify every payload byte-for-byte.
    """

    def test_parallel_point_reads_and_scans(self, tmp_path):
        import threading

        sequences = [(f"s{i}", f"t{i}") for i in range(8)]
        buckets = (200, 400, 600, 800)
        with DiskPathStore(str(tmp_path / "shared")) as shared:
            for seq in sequences:
                for bucket in buckets:
                    payload = f"{seq[0]}:{bucket}".encode() * 50
                    shared.put_bucket(seq, bucket, payload)
            shared.flush()

            errors = []

            def reader(worker: int):
                try:
                    for round_num in range(20):
                        seq = sequences[(worker + round_num) % len(sequences)]
                        for bucket in buckets:
                            expected = f"{seq[0]}:{bucket}".encode() * 50
                            assert shared.get_bucket(seq, bucket) == expected
                        scanned = list(shared.scan_buckets(seq, 400))
                        assert [b for b, _ in scanned] == [400, 600, 800]
                        for bucket, payload in scanned:
                            assert payload == f"{seq[0]}:{bucket}".encode() * 50
                except Exception as exc:  # pragma: no cover - diagnostic
                    errors.append(exc)

            threads = [
                threading.Thread(target=reader, args=(i,)) for i in range(8)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert errors == []


class TestMmapReads:
    """DiskPathStore zero-copy read path (mmap_reads=True, the default)."""

    def test_get_bucket_returns_view(self, tmp_path):
        with DiskPathStore(str(tmp_path / "zc")) as store:
            store.put_bucket(SEQ_A, 500, b"zero-copy")
            payload = store.get_bucket(SEQ_A, 500)
            assert isinstance(payload, memoryview)
            assert payload == b"zero-copy"
            assert bytes(payload) == b"zero-copy"

    def test_scan_buckets_returns_views(self, tmp_path):
        with DiskPathStore(str(tmp_path / "zc")) as store:
            for bucket in (300, 700):
                store.put_bucket(SEQ_A, bucket, str(bucket).encode())
            scanned = dict(store.scan_buckets(SEQ_A, 0))
            assert scanned[300] == b"300" and scanned[700] == b"700"

    def test_mmap_disabled_returns_bytes(self, tmp_path):
        with DiskPathStore(str(tmp_path / "plain"), mmap_reads=False) as store:
            store.put_bucket(SEQ_A, 500, b"copied")
            payload = store.get_bucket(SEQ_A, 500)
            assert isinstance(payload, bytes)
            assert payload == b"copied"

    def test_view_survives_store_close(self, tmp_path):
        store = DiskPathStore(str(tmp_path / "zc"))
        store.put_bucket(SEQ_A, 500, b"still-valid")
        payload = store.get_bucket(SEQ_A, 500)
        store.close()  # must not raise despite the exported view
        assert payload == b"still-valid"

    def test_interleaved_put_get(self, tmp_path):
        with DiskPathStore(str(tmp_path / "zc")) as store:
            views = []
            for i in range(10):
                body = bytes([65 + i]) * (50 * (i + 1))
                store.put_bucket(SEQ_A, 100 + i, body)
                views.append((store.get_bucket(SEQ_A, 100 + i), body))
            for view, body in views:
                assert view == body

    def test_frombuffer_over_view(self, tmp_path):
        import numpy as np

        with DiskPathStore(str(tmp_path / "zc")) as store:
            data = np.arange(16, dtype=np.uint8).tobytes()
            store.put_bucket(SEQ_A, 500, data)
            view = store.get_bucket(SEQ_A, 500)
            array = np.frombuffer(view, dtype=np.uint8)
            assert array.tolist() == list(range(16))
