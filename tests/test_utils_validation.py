"""Unit tests for repro.utils.validation."""

import math

import pytest

from repro.utils.errors import ModelError
from repro.utils.validation import (
    check_distribution,
    check_non_negative,
    check_positive,
    check_probability,
)


class TestCheckProbability:
    def test_accepts_bounds(self):
        assert check_probability(0.0) == 0.0
        assert check_probability(1.0) == 1.0
        assert check_probability(0.5) == 0.5

    def test_coerces_to_float(self):
        assert isinstance(check_probability(1), float)

    @pytest.mark.parametrize("bad", [-0.01, 1.01, float("nan"), float("inf")])
    def test_rejects_out_of_range(self, bad):
        with pytest.raises(ModelError):
            check_probability(bad)

    def test_rejects_non_numeric(self):
        with pytest.raises(ModelError):
            check_probability("high")

    def test_error_message_names_argument(self):
        with pytest.raises(ModelError, match="edge prob"):
            check_probability(2.0, "edge prob")


class TestCheckDistribution:
    def test_accepts_normalized(self):
        cleaned = check_distribution({"a": 0.25, "b": 0.75})
        assert cleaned == {"a": 0.25, "b": 0.75}

    def test_rejects_empty(self):
        with pytest.raises(ModelError):
            check_distribution({})

    def test_rejects_subnormalized(self):
        with pytest.raises(ModelError):
            check_distribution({"a": 0.3, "b": 0.3})

    def test_rejects_overnormalized(self):
        with pytest.raises(ModelError):
            check_distribution({"a": 0.7, "b": 0.7})

    def test_accepts_tiny_rounding_error(self):
        check_distribution({"a": 1 / 3, "b": 1 / 3, "c": 1 / 3})

    def test_rejects_negative_entries(self):
        with pytest.raises(ModelError):
            check_distribution({"a": -0.5, "b": 1.5})


class TestPositivity:
    def test_positive(self):
        assert check_positive(0.1) == 0.1
        with pytest.raises(ModelError):
            check_positive(0.0)
        with pytest.raises(ModelError):
            check_positive(-1.0)
        with pytest.raises(ModelError):
            check_positive(math.inf)

    def test_non_negative(self):
        assert check_non_negative(0.0) == 0.0
        assert check_non_negative(2.5) == 2.5
        with pytest.raises(ModelError):
            check_non_negative(-0.001)
