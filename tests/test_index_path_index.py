"""Unit tests for repro.index.path_index (grid, lookup API, estimates)."""

import pytest

from repro.index import build_path_index
from repro.index.path_index import (
    PathIndex,
    canonical_sequence,
    is_palindrome,
)
from repro.storage import InMemoryPathStore
from repro.utils.errors import IndexError_
from tests.conftest import small_random_peg


class TestCanonicalization:
    def test_canonical_picks_smaller(self):
        assert canonical_sequence(("b", "a")) == ("a", "b")
        assert canonical_sequence(("a", "b")) == ("a", "b")

    def test_palindrome_detection(self):
        assert is_palindrome(("a",))
        assert is_palindrome(("a", "b", "a"))
        assert not is_palindrome(("a", "b"))

    def test_mixed_label_types(self):
        seq = (("x", 1), ("y", 2))
        assert canonical_sequence(seq) in (seq, tuple(reversed(seq)))


class TestBucketGrid:
    def make_index(self, beta=0.1, gamma=0.1):
        return PathIndex(
            store=InMemoryPathStore(),
            max_length=2,
            beta=beta,
            gamma=gamma,
            histograms={},
        )

    def test_grid_points(self):
        index = self.make_index(beta=0.3, gamma=0.2)
        assert index.grid() == (300, 500, 700, 900, 1000)

    def test_bucket_for(self):
        index = self.make_index(beta=0.3, gamma=0.2)
        assert index.bucket_for(0.3) == 300
        assert index.bucket_for(0.45) == 300
        assert index.bucket_for(0.5) == 500
        assert index.bucket_for(1.0) == 1000

    def test_below_beta_rejected(self):
        index = self.make_index(beta=0.3)
        with pytest.raises(IndexError_):
            index.bucket_for(0.2)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(IndexError_):
            self.make_index(beta=0.0)
        with pytest.raises(IndexError_):
            self.make_index(gamma=0.0)
        with pytest.raises(IndexError_):
            PathIndex(InMemoryPathStore(), 0, 0.1, 0.1, {})


class TestLookupValidation:
    def test_alpha_below_beta_rejected(self):
        peg = small_random_peg(seed=8, num_references=40)
        index = build_path_index(peg, max_length=1, beta=0.5)
        with pytest.raises(IndexError_):
            index.lookup(("L0", "L1"), 0.2)

    def test_alpha_below_beta_error_carries_context(self):
        """The error must name alpha, beta, and the label sequence."""
        peg = small_random_peg(seed=8, num_references=40)
        index = build_path_index(peg, max_length=1, beta=0.5)
        with pytest.raises(IndexError_) as excinfo:
            index.lookup(("L0", "L1"), 0.2)
        message = str(excinfo.value)
        assert "0.2" in message
        assert "0.5" in message
        assert "('L0', 'L1')" in message

    def test_overlong_sequence_rejected(self):
        peg = small_random_peg(seed=8, num_references=40)
        index = build_path_index(peg, max_length=1, beta=0.1)
        with pytest.raises(IndexError_):
            index.lookup(("L0", "L1", "L2"), 0.5)

    def test_unknown_sequence_empty(self):
        peg = small_random_peg(seed=8, num_references=40)
        index = build_path_index(peg, max_length=1, beta=0.1)
        assert index.lookup(("nope", "nope"), 0.5) == []


class TestCardinalityEstimates:
    def test_estimate_matches_exact_at_beta(self):
        peg = small_random_peg(seed=9, num_references=40)
        index = build_path_index(peg, max_length=2, beta=0.2, gamma=0.1)
        for seq in list(index.store.label_sequences())[:10]:
            exact = len(index.lookup(seq, 0.2))
            estimate = index.estimate_cardinality(seq, 0.2)
            assert estimate == pytest.approx(exact)

    def test_estimate_monotone_in_alpha(self):
        peg = small_random_peg(seed=9, num_references=40)
        index = build_path_index(peg, max_length=2, beta=0.2, gamma=0.1)
        seq = list(index.store.label_sequences())[0]
        estimates = [
            index.estimate_cardinality(seq, alpha)
            for alpha in (0.2, 0.4, 0.6, 0.8, 1.0)
        ]
        assert all(a >= b - 1e-9 for a, b in zip(estimates, estimates[1:]))

    def test_unknown_sequence_estimates_zero(self):
        peg = small_random_peg(seed=9, num_references=40)
        index = build_path_index(peg, max_length=1, beta=0.2)
        assert index.estimate_cardinality(("nope",), 0.5) == 0.0

    def test_stats_shape(self):
        peg = small_random_peg(seed=9, num_references=40)
        index = build_path_index(peg, max_length=1, beta=0.2)
        stats = index.stats()
        for key in ("max_length", "beta", "gamma", "sequences", "paths",
                    "size_bytes"):
            assert key in stats
