"""Unit tests for offline-bundle persistence (index + context)."""

import pytest

from repro.index.bundle import load_offline, save_offline
from repro.query import QueryEngine, QueryGraph
from repro.storage import DiskPathStore
from repro.utils.errors import IndexError_
from tests.conftest import small_random_peg


def match_keys(matches):
    return {(m.nodes, m.edges, round(m.probability, 9)) for m in matches}


@pytest.fixture(scope="module")
def peg():
    return small_random_peg(seed=70, num_references=60)


class TestSaveLoadRoundtrip:
    def test_memory_store_engine_roundtrip(self, peg, tmp_path):
        directory = str(tmp_path / "bundle")
        engine = QueryEngine(peg, max_length=2, beta=0.1)
        engine.save_offline(directory)
        reopened = QueryEngine.from_saved(peg, directory)
        sigma = sorted(peg.sigma)
        query = QueryGraph(
            {"a": sigma[0], "b": sigma[1], "c": sigma[2]},
            [("a", "b"), ("b", "c")],
        )
        assert match_keys(reopened.query(query, 0.3).matches) == \
            match_keys(engine.query(query, 0.3).matches)

    def test_disk_store_saved_in_place(self, peg, tmp_path):
        directory = str(tmp_path / "disk-bundle")
        engine = QueryEngine(
            peg, max_length=2, beta=0.1, store=DiskPathStore(directory)
        )
        engine.save_offline(directory)
        reopened = QueryEngine.from_saved(peg, directory)
        assert reopened.index.num_paths() == engine.index.num_paths()

    def test_metadata_preserved(self, peg, tmp_path):
        directory = str(tmp_path / "meta-bundle")
        engine = QueryEngine(peg, max_length=2, beta=0.2, gamma=0.05)
        engine.save_offline(directory)
        index, context = load_offline(directory)
        assert index.max_length == 2
        assert index.beta == 0.2
        assert index.gamma == 0.05
        assert index.num_paths() == engine.index.num_paths()
        assert context.sigma == engine.context.sigma

    def test_histogram_estimates_preserved(self, peg, tmp_path):
        directory = str(tmp_path / "hist-bundle")
        engine = QueryEngine(peg, max_length=2, beta=0.2)
        engine.save_offline(directory)
        index, _ = load_offline(directory)
        for seq in list(engine.index.histograms)[:5]:
            assert index.estimate_cardinality(seq, 0.5) == pytest.approx(
                engine.index.estimate_cardinality(seq, 0.5)
            )

    def test_context_tables_preserved(self, peg, tmp_path):
        directory = str(tmp_path / "ctx-bundle")
        engine = QueryEngine(peg, max_length=1, beta=0.2)
        engine.save_offline(directory)
        _, context = load_offline(directory)
        for node in list(peg.node_ids())[:10]:
            for label in context.sigma:
                assert context.cardinality(node, label) == \
                    engine.context.cardinality(node, label)
                assert context.full_upperbound(node, label) == \
                    engine.context.full_upperbound(node, label)


class TestShardedBundles:
    def test_sharded_roundtrip(self, peg, tmp_path):
        from repro.index import ShardedPathIndex

        directory = str(tmp_path / "sharded-bundle")
        engine = QueryEngine(peg, max_length=2, beta=0.1, num_shards=3)
        engine.save_offline(directory)
        reopened = QueryEngine.from_saved(peg, directory)
        assert isinstance(reopened.index, ShardedPathIndex)
        assert reopened.index.num_shards == 3
        sigma = sorted(peg.sigma)
        query = QueryGraph(
            {"a": sigma[0], "b": sigma[1], "c": sigma[2]},
            [("a", "b"), ("b", "c")],
        )
        assert match_keys(reopened.query(query, 0.3).matches) == \
            match_keys(engine.query(query, 0.3).matches)

    def test_sharded_saved_in_place(self, peg, tmp_path):
        directory = str(tmp_path / "sharded-disk")
        engine = QueryEngine(
            peg,
            max_length=1,
            beta=0.2,
            num_shards=2,
            shard_directory=directory,
        )
        # The shard stores already live under the bundle directory: a
        # save must flush in place, not copy.
        engine.save_offline(directory)
        index, _ = load_offline(directory)
        assert index.num_paths() == engine.index.num_paths()
        assert index.num_shards == 2

    def test_sharded_and_unsharded_bundles_agree(self, peg, tmp_path):
        mono_dir = str(tmp_path / "mono")
        shard_dir = str(tmp_path / "sharded")
        QueryEngine(peg, max_length=1, beta=0.2).save_offline(mono_dir)
        QueryEngine(
            peg, max_length=1, beta=0.2, num_shards=4
        ).save_offline(shard_dir)
        mono_index, _ = load_offline(mono_dir)
        shard_index, _ = load_offline(shard_dir)
        for seq in mono_index.histograms:
            mono = {
                (p.nodes, round(p.probability, 9))
                for p in mono_index.lookup(seq, 0.3)
            }
            sharded = {
                (p.nodes, round(p.probability, 9))
                for p in shard_index.lookup(seq, 0.3)
            }
            assert mono == sharded


class TestValidation:
    def test_missing_bundle(self, tmp_path):
        with pytest.raises(IndexError_):
            load_offline(str(tmp_path / "nothing"))

    def test_wrong_version(self, peg, tmp_path):
        import pickle
        import os

        directory = str(tmp_path / "versioned")
        engine = QueryEngine(peg, max_length=1, beta=0.2)
        engine.save_offline(directory)
        meta_path = os.path.join(directory, "offline.meta")
        with open(meta_path, "rb") as handle:
            meta = pickle.load(handle)
        meta["version"] = 999
        with open(meta_path, "wb") as handle:
            pickle.dump(meta, handle)
        with pytest.raises(IndexError_):
            load_offline(directory)
