"""Unit tests for the query extensions: explain() and top-k matching."""

import pytest

from repro.query import (
    QueryEngine,
    QueryGraph,
    direct_matches,
    explain,
    top_k_matches,
)
from repro.utils.errors import QueryError
from tests.conftest import small_random_peg


@pytest.fixture(scope="module")
def setup():
    peg = small_random_peg(seed=90, num_references=80)
    engine = QueryEngine(peg, max_length=2, beta=0.05)
    return peg, engine


class TestExplain:
    def test_explain_contains_key_sections(self, setup):
        peg, engine = setup
        sigma = sorted(peg.sigma)
        query = QueryGraph(
            {"a": sigma[0], "b": sigma[1], "c": sigma[0]},
            [("a", "b"), ("b", "c")],
        )
        result = engine.query(query, 0.3)
        text = explain(result)
        assert "decomposition:" in text
        assert "search space:" in text
        assert "timings (ms):" in text
        assert f"matches: {len(result.matches)}" in text

    def test_explain_truncates_matches(self, setup):
        peg, engine = setup
        sigma = sorted(peg.sigma)
        query = QueryGraph({"a": sigma[0], "b": sigma[1]}, [("a", "b")])
        result = engine.query(query, 0.1)
        if len(result.matches) > 2:
            text = explain(result, max_matches=2)
            assert "more" in text

    def test_explain_empty_result(self, setup):
        peg, engine = setup
        query = QueryGraph({"a": "no-such-label"}, [])
        text = explain(engine.query(query, 0.5))
        assert "matches: 0" in text


class TestTopK:
    def test_returns_k_most_probable(self, setup):
        peg, engine = setup
        sigma = sorted(peg.sigma)
        query = QueryGraph({"a": sigma[0], "b": sigma[1]}, [("a", "b")])
        k = 5
        top = top_k_matches(engine, query, k, floor=0.01)
        everything = direct_matches(peg, query, 0.01)
        expected = sorted(
            everything, key=lambda m: (-m.probability, repr(m.nodes))
        )[:k]
        assert [m.probability for m in top] == [
            m.probability for m in expected
        ]

    def test_fewer_matches_than_k(self, setup):
        peg, engine = setup
        sigma = sorted(peg.sigma)
        query = QueryGraph(
            {"a": sigma[0], "b": sigma[1], "c": sigma[2], "d": sigma[0]},
            [("a", "b"), ("b", "c"), ("c", "d"), ("a", "d")],
        )
        top = top_k_matches(engine, query, 1000, floor=0.05)
        oracle = direct_matches(peg, query, 0.05)
        assert len(top) == len(oracle)

    def test_sorted_descending(self, setup):
        peg, engine = setup
        sigma = sorted(peg.sigma)
        query = QueryGraph({"a": sigma[0], "b": sigma[1]}, [("a", "b")])
        top = top_k_matches(engine, query, 10, floor=0.01)
        probs = [m.probability for m in top]
        assert probs == sorted(probs, reverse=True)

    def test_parameter_validation(self, setup):
        _, engine = setup
        query = QueryGraph({"a": "L0"}, [])
        with pytest.raises(QueryError):
            top_k_matches(engine, query, 0)
        with pytest.raises(QueryError):
            top_k_matches(engine, query, 1, shrink=1.5)
        with pytest.raises(QueryError):
            top_k_matches(engine, query, 1, start_alpha=0.1, floor=0.5)


class ShufflingEngine:
    """Engine proxy emitting matches in scrambled order.

    ``top_k_matches`` must not rely on the engine's emission order —
    that order is not part of the engine contract (regression: top-k
    used to truncate whatever order arrived).
    """

    def __init__(self, engine, seed=0):
        import random

        self._engine = engine
        self._rng = random.Random(seed)

    def query(self, query, alpha, options=None):
        result = self._engine.query(query, alpha, options)
        shuffled = list(result.matches)
        self._rng.shuffle(shuffled)
        result.matches = shuffled
        return result


class TestTopKOrdering:
    def test_sorted_regardless_of_engine_order(self, setup):
        peg, engine = setup
        sigma = sorted(peg.sigma)
        query = QueryGraph({"a": sigma[0], "b": sigma[1]}, [("a", "b")])
        k = 5
        expected = sorted(
            (m.probability for m in direct_matches(peg, query, 0.01)),
            reverse=True,
        )[:k]
        top = top_k_matches(ShufflingEngine(engine, seed=99), query, k,
                            floor=0.01)
        assert [m.probability for m in top] == pytest.approx(expected)

    def test_tie_handling_is_deterministic(self, setup):
        peg, engine = setup
        sigma = sorted(peg.sigma)
        query = QueryGraph({"a": sigma[0], "b": sigma[1]}, [("a", "b")])
        picks = [
            top_k_matches(ShufflingEngine(engine, seed=s), query, 3,
                          floor=0.01)
            for s in range(5)
        ]
        canonical = [[m.canonical_key() for m in pick] for pick in picks]
        assert all(keys == canonical[0] for keys in canonical[1:])
