"""Unit tests for repro.query.candidates (context pruning)."""

import pytest

from repro.index import build_context, build_path_index
from repro.index.builder import enumerate_paths_for_sequence
from repro.peg import build_peg
from repro.pgd import pgd_from_edge_list
from repro.query.candidates import CandidateFinder, compute_path_statistics
from repro.query.decompose import QueryPath
from repro.query.query_graph import QueryGraph
from repro.query.baselines import direct_matches
from tests.conftest import small_random_peg


def figure4_query():
    return QueryGraph(
        {i: "x" for i in range(1, 7)},
        [(1, 2), (2, 3), (3, 4), (1, 3), (3, 5), (4, 5), (4, 6)],
    )


class TestPathStatistics:
    def test_figure4_neighbors(self):
        """Path (1,2,3,4): neighbors {5, 6}, rv(5) = {3, 4}, one cycle."""
        stats = compute_path_statistics(figure4_query(), QueryPath((1, 2, 3, 4)))
        assert set(stats.neighbors) == {5, 6}
        rv5 = {QueryPath((1, 2, 3, 4)).nodes[p] for p in stats.reverse_neighbors[5]}
        assert rv5 == {3, 4}
        rv6 = {QueryPath((1, 2, 3, 4)).nodes[p] for p in stats.reverse_neighbors[6]}
        assert rv6 == {4}
        # cycle edge (1, 3) at positions (0, 2)
        assert stats.cycles == ((0, 2),)

    def test_no_neighbors_when_path_covers_query(self):
        query = QueryGraph({"a": "x", "b": "y"}, [("a", "b")])
        stats = compute_path_statistics(query, QueryPath(("a", "b")))
        assert stats.neighbors == ()
        assert stats.cycles == ()

    def test_each_cycle_edge_counted_once(self):
        query = QueryGraph(
            {1: "x", 2: "x", 3: "x", 4: "x"},
            [(1, 2), (2, 3), (3, 4), (1, 3), (2, 4), (1, 4)],
        )
        stats = compute_path_statistics(query, QueryPath((1, 2, 3, 4)))
        assert sorted(stats.cycles) == [(0, 2), (0, 3), (1, 3)]


@pytest.fixture
def pruning_setup():
    """PEG where context pruning provably removes candidates."""
    peg = build_peg(
        pgd_from_edge_list(
            node_labels={
                # hub1 has two 'a' neighbors with strong edges;
                # hub2 has only one weak 'a' neighbor.
                "hub1": "h", "hub2": "h",
                "a1": "a", "a2": "a", "a3": "a",
                "b1": "b",
            },
            edges=[
                ("hub1", "a1", 0.9),
                ("hub1", "a2", 0.9),
                ("hub1", "b1", 0.9),
                ("hub2", "a3", 0.2),
            ],
        )
    )
    query = QueryGraph(
        {"c": "h", "x": "a", "y": "a", "z": "b"},
        [("c", "x"), ("c", "y"), ("c", "z")],
    )
    index = build_path_index(peg, max_length=1, beta=0.05)
    context = build_context(peg)
    return peg, query, index, context


class TestNodeLevelPruning:
    def test_cardinality_constraint(self, pruning_setup):
        peg, query, index, context = pruning_setup
        finder = CandidateFinder(
            peg, query, alpha=0.1, index=index, context=context
        )
        hub1 = peg.id_of(frozenset({"hub1"}))
        hub2 = peg.id_of(frozenset({"hub2"}))
        # 'c' requires two 'a' neighbors and one 'b' neighbor.
        assert finder.node_allowed("c", hub1)
        assert not finder.node_allowed("c", hub2)

    def test_probability_constraint(self, pruning_setup):
        peg, query, index, context = pruning_setup
        # With a very high alpha even hub1 fails: its 'a' full upper
        # bound is 0.9 and Pr(label) * 0.9^2 < 0.95.
        finder = CandidateFinder(
            peg, query, alpha=0.95, index=index, context=context
        )
        hub1 = peg.id_of(frozenset({"hub1"}))
        assert not finder.node_allowed("c", hub1)

    def test_wrong_label_always_pruned(self, pruning_setup):
        peg, query, index, context = pruning_setup
        finder = CandidateFinder(
            peg, query, alpha=0.1, index=index, context=context
        )
        a1 = peg.id_of(frozenset({"a1"}))
        assert not finder.node_allowed("c", a1)

    def test_context_disabled_keeps_label_check_only(self, pruning_setup):
        peg, query, index, context = pruning_setup
        finder = CandidateFinder(
            peg, query, alpha=0.1, index=index, context=context,
            use_context=False,
        )
        hub2 = peg.id_of(frozenset({"hub2"}))
        assert finder.node_allowed("c", hub2)


class TestFindCandidates:
    def test_find_prunes_raw_results(self, pruning_setup):
        peg, query, index, context = pruning_setup
        finder = CandidateFinder(
            peg, query, alpha=0.1, index=index, context=context
        )
        path = QueryPath(("x", "c"))
        pruned, raw = finder.find(path)
        assert raw >= len(pruned)
        # hub2's path (a3, hub2) must be pruned: hub2 lacks a second 'a'
        # neighbor and any 'b' neighbor.
        hub2 = peg.id_of(frozenset({"hub2"}))
        assert all(hub2 not in c.nodes for c in pruned)

    def test_pruning_is_sound(self):
        """Pruned candidate sets still produce all final matches."""
        peg = small_random_peg(seed=21, num_references=50)
        sigma = sorted(peg.sigma)
        query = QueryGraph(
            {"a": sigma[0], "b": sigma[1], "c": sigma[0]},
            [("a", "b"), ("b", "c")],
        )
        index = build_path_index(peg, max_length=2, beta=0.1)
        context = build_context(peg)
        alpha = 0.3
        finder = CandidateFinder(
            peg, query, alpha=alpha, index=index, context=context
        )
        path = QueryPath(("a", "b", "c"))
        pruned, _ = finder.find(path)
        kept = {c.nodes for c in pruned}
        # Every true match's path must survive pruning.
        for match in direct_matches(peg, query, alpha):
            mapping = dict(match.mapping)
            nodes = tuple(
                peg.id_of(mapping[q]) for q in ("a", "b", "c")
            )
            assert nodes in kept

    def test_on_demand_fallback_below_beta(self):
        peg = small_random_peg(seed=22, num_references=50)
        sigma = sorted(peg.sigma)
        query = QueryGraph(
            {"a": sigma[0], "b": sigma[1]}, [("a", "b")]
        )
        index = build_path_index(peg, max_length=1, beta=0.5)
        context = build_context(peg)
        finder = CandidateFinder(
            peg, query, alpha=0.2, index=index, context=context,
            use_context=False,
        )
        pruned, raw = finder.find(QueryPath(("a", "b")))
        expected = enumerate_paths_for_sequence(
            peg, query.label_sequence(("a", "b")), 0.2
        )
        assert {c.nodes for c in pruned} == {c.nodes for c in expected}
