"""Unit tests for repro.peg.serialize."""

import pickle

import pytest

from repro.peg import load_peg, save_peg
from repro.peg.serialize import FORMAT_VERSION
from repro.utils.errors import ModelError


class TestRoundTrip:
    def test_roundtrip_preserves_probabilities(self, figure1_peg, tmp_path):
        path = str(tmp_path / "figure1.peg")
        save_peg(figure1_peg, path)
        loaded = load_peg(path)
        assert loaded.stats() == figure1_peg.stats()
        merged = frozenset({"r3", "r4"})
        assert loaded.existence_probability(merged) == pytest.approx(
            figure1_peg.existence_probability(merged)
        )
        assert loaded.edge_probability(
            merged, frozenset({"r2"})
        ) == pytest.approx(0.75)

    def test_loaded_peg_is_queryable(self, figure1_peg, tmp_path):
        from repro.query import QueryEngine, QueryGraph

        path = str(tmp_path / "figure1.peg")
        save_peg(figure1_peg, path)
        loaded = load_peg(path)
        engine = QueryEngine(loaded, max_length=2, beta=0.05)
        query = QueryGraph(
            {"q1": "r", "q2": "a", "q3": "i"},
            [("q1", "q2"), ("q2", "q3")],
        )
        matches = engine.query(query, 0.15).matches
        assert len(matches) == 1
        assert matches[0].probability == pytest.approx(0.2025)


class TestValidation:
    def test_not_a_pickle(self, tmp_path):
        path = tmp_path / "junk.peg"
        path.write_bytes(b"this is not a pickle")
        with pytest.raises(ModelError):
            load_peg(str(path))

    def test_foreign_pickle(self, tmp_path):
        path = tmp_path / "foreign.peg"
        path.write_bytes(pickle.dumps({"something": "else"}))
        with pytest.raises(ModelError):
            load_peg(str(path))

    def test_wrong_version(self, figure1_peg, tmp_path):
        path = tmp_path / "old.peg"
        payload = {
            "magic": "repro-peg",
            "version": FORMAT_VERSION + 1,
            "peg": figure1_peg,
        }
        path.write_bytes(pickle.dumps(payload))
        with pytest.raises(ModelError):
            load_peg(str(path))

    def test_wrong_payload_type(self, tmp_path):
        path = tmp_path / "bad.peg"
        payload = {"magic": "repro-peg", "version": FORMAT_VERSION, "peg": 42}
        path.write_bytes(pickle.dumps(payload))
        with pytest.raises(ModelError):
            load_peg(str(path))
