"""The network serving tier: protocol, server semantics, client mechanics.

Server tests drive a real :class:`~repro.net.server.QueryServer` on an
ephemeral port, mostly over scriptable engine doubles whose evaluations
block on an event — the only way to make admission control, fairness,
deadlines and drain *deterministic* instead of timing-lottery tests.
"""

from __future__ import annotations

import asyncio
import socket
import struct
import threading
import time

import pytest

from repro.net import (
    ERROR_DEADLINE,
    ERROR_REJECTED,
    ERROR_UNAVAILABLE,
    CircuitBreaker,
    QueryClient,
    start_server,
)
from repro.net import protocol
from repro.peg import build_peg
from repro.query import QueryEngine, QueryGraph
from repro.service import QueryService
from repro.testing import faults
from repro.utils.errors import (
    CircuitOpenError,
    NetError,
    NetTimeout,
    QueryError,
    RemoteError,
)

FIGURE1_NODES = {"u": "i", "v": "a"}
FIGURE1_EDGES = [("u", "v")]


@pytest.fixture(autouse=True)
def _no_leftover_faults():
    faults.uninstall()
    yield
    faults.uninstall()


class FakeResult:
    def __init__(self, matches=()):
        self.matches = list(matches)


class GatedEngine:
    """Engine double whose evaluations block until ``gate`` is set."""

    def __init__(self, gate=None):
        self.gate = gate
        self.calls = []  # (alpha, graph_version at evaluation time)
        self.graph_version = 0
        self.applied = 0
        self._lock = threading.Lock()

    def query(self, query, alpha, options=None):
        if self.gate is not None:
            assert self.gate.wait(timeout=10)
        with self._lock:
            self.calls.append((alpha, self.graph_version))
        return FakeResult()

    def apply_updates(self, ops, log=None):
        self.graph_version += 1
        self.applied += 1
        return {"applied": len(ops)}


def gated_server(gate=None, *, num_workers=1, **config):
    """A started server over a GatedEngine service; caller must stop()."""
    engine = GatedEngine(gate)
    service = QueryService(engine, num_workers=num_workers, cache_size=0)
    handle = start_server(service, **config)
    return handle, engine, service


def wait_until(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while not predicate():
        assert time.monotonic() < deadline, "condition never became true"
        time.sleep(0.005)


# ----------------------------------------------------------------------
# Raw-socket helpers: pipelined frames (a QueryClient keeps only one
# request outstanding, which can never trip per-client caps).
# ----------------------------------------------------------------------


def connect_raw(address):
    sock = socket.create_connection(address, timeout=10)
    sock.settimeout(10)
    return sock


def send_frames(sock, frames):
    for frame in frames:
        sock.sendall(protocol.encode_frame(frame))


def read_reply(sock):
    header = b""
    while len(header) < 4:
        chunk = sock.recv(4 - len(header))
        if not chunk:
            raise ConnectionError("EOF")
        header += chunk
    (length,) = struct.unpack(">I", header)
    payload = b""
    while len(payload) < length:
        chunk = sock.recv(length - len(payload))
        if not chunk:
            raise ConnectionError("EOF")
        payload += chunk
    return protocol.decode_frame(payload)


def read_replies(sock, count):
    return {reply["id"]: reply for reply in
            (read_reply(sock) for _ in range(count))}


def query_frame(rid, alpha=0.5, deadline_ms=None, nodes=None, edges=None):
    frame = {
        "id": rid,
        "kind": "query",
        "nodes": dict(FIGURE1_NODES if nodes is None else nodes),
        "edges": [list(e) for e in (FIGURE1_EDGES if edges is None else edges)],
        "alpha": alpha,
    }
    if deadline_ms is not None:
        frame["deadline_ms"] = deadline_ms
    return frame


# ----------------------------------------------------------------------
# Protocol
# ----------------------------------------------------------------------


class TestProtocol:
    def test_frame_roundtrip(self):
        message = {"id": 1, "kind": "query", "nodes": {"a": "X"}}
        frame = protocol.encode_frame(message)
        (length,) = struct.unpack(">I", frame[:4])
        assert length == len(frame) - 4
        assert protocol.decode_frame(frame[4:]) == message

    def test_decode_rejects_non_object(self):
        with pytest.raises(NetError):
            protocol.decode_frame(b"[1, 2]")
        with pytest.raises(NetError):
            protocol.decode_frame(b"not json")

    def test_read_frame_clean_eof(self):
        async def run():
            reader = asyncio.StreamReader()
            reader.feed_eof()
            return await protocol.read_frame(reader)

        assert asyncio.run(run()) is None

    def test_read_frame_torn_header(self):
        async def run():
            reader = asyncio.StreamReader()
            reader.feed_data(b"\x00\x00")
            reader.feed_eof()
            return await protocol.read_frame(reader)

        with pytest.raises(NetError, match="torn frame header"):
            asyncio.run(run())

    def test_read_frame_torn_payload(self):
        async def run():
            reader = asyncio.StreamReader()
            reader.feed_data(b"\x00\x00\x00\x08abc")
            reader.feed_eof()
            return await protocol.read_frame(reader)

        with pytest.raises(NetError, match="torn frame payload"):
            asyncio.run(run())

    def test_read_frame_implausible_length(self):
        async def run():
            reader = asyncio.StreamReader()
            reader.feed_data(b"\xff\xff\xff\xff")
            return await protocol.read_frame(reader)

        with pytest.raises(NetError, match="exceeds"):
            asyncio.run(run())

    def test_query_graph_from_spec_validation(self):
        query = protocol.query_graph_from_spec(
            {"nodes": {"a": "X", "b": "Y"}, "edges": [["a", "b"]]}
        )
        assert isinstance(query, QueryGraph)
        with pytest.raises(QueryError):
            protocol.query_graph_from_spec({"nodes": {}})
        with pytest.raises(QueryError):
            protocol.query_graph_from_spec({"edges": []})
        with pytest.raises(QueryError):
            protocol.query_graph_from_spec(
                {"nodes": {"a": "X"}, "edges": [["a"]]}
            )


# ----------------------------------------------------------------------
# Server: request path, admission, fairness, deadlines
# ----------------------------------------------------------------------


class TestServerRoundtrip:
    def test_query_matches_inprocess_oracle(self, figure1_peg):
        engine = QueryEngine(figure1_peg, max_length=2, beta=0.1)
        oracle = protocol.serialize_matches(
            engine.query(
                QueryGraph(FIGURE1_NODES, FIGURE1_EDGES), 0.3
            ).matches
        )
        service = QueryService(engine, num_workers=2)
        with start_server(service) as handle:
            with QueryClient(*handle.address) as client:
                reply = client.query(FIGURE1_NODES, FIGURE1_EDGES, alpha=0.3)
                assert reply["ok"] is True
                assert reply["num_matches"] == len(oracle)
                assert reply["matches"] == oracle
                # served twice (second hits the result cache): still
                # byte-identical on the wire
                assert client.query(
                    FIGURE1_NODES, FIGURE1_EDGES, alpha=0.3
                )["matches"] == oracle
        service.close()

    def test_ping_and_stats(self):
        handle, _, service = gated_server()
        try:
            with QueryClient(*handle.address) as client:
                assert client.ping() is True
                stats = client.stats()
                assert stats["net_connections"] == 1
                assert stats["requests"] == 0
        finally:
            handle.stop(close_service=True)

    def test_bad_request_typed_error_not_counted(self):
        handle, _, service = gated_server()
        try:
            with QueryClient(*handle.address) as client:
                with pytest.raises(RemoteError) as excinfo:
                    client.query({}, [], alpha=0.5)
                assert excinfo.value.code == "BAD_REQUEST"
                with pytest.raises(RemoteError) as excinfo:
                    client.query(FIGURE1_NODES, FIGURE1_EDGES, alpha=7.0)
                assert excinfo.value.code == "BAD_REQUEST"
                with pytest.raises(RemoteError) as excinfo:
                    client.request({"kind": "mystery"})
                assert excinfo.value.code == "BAD_REQUEST"
            # malformed requests never reach the service counters
            assert service.stats.requests == 0
        finally:
            handle.stop(close_service=True)

    def test_deadline_watchdog_answers_while_evaluation_runs(self):
        gate = threading.Event()
        handle, engine, service = gated_server(gate)
        try:
            with QueryClient(*handle.address) as client:
                start = time.monotonic()
                with pytest.raises(RemoteError) as excinfo:
                    client.query(
                        FIGURE1_NODES, FIGURE1_EDGES,
                        alpha=0.5, deadline_ms=150,
                    )
                elapsed = time.monotonic() - start
                assert excinfo.value.code == ERROR_DEADLINE
                # answered at the deadline, not when the engine unblocks
                assert elapsed < 5.0
                assert service.stats.deadline_exceeded >= 1
            gate.set()  # release the stuck evaluation; its result is
            # discarded by the finished entry, not resent
            wait_until(lambda: len(engine.calls) == 1)
        finally:
            gate.set()
            handle.stop(close_service=True)


class TestAdmissionControl:
    def test_load_shedding_bounded_queue(self):
        gate = threading.Event()
        handle, engine, service = gated_server(
            gate, max_pending=2, max_inflight=1, per_client_inflight=16
        )
        server = handle.server
        try:
            first = connect_raw(handle.address)
            # stage the sends so the dispatcher settles between frames:
            # 1 dispatched (blocked on the gate) + 2 pending = at bound
            send_frames(first, [query_frame(0, alpha=0.10)])
            wait_until(lambda: server._inflight_total == 1
                       and server._pending_total == 0)
            send_frames(first, [query_frame(1, alpha=0.11)])
            wait_until(lambda: server._pending_total == 1)
            send_frames(first, [query_frame(2, alpha=0.12)])
            wait_until(lambda: server._pending_total == 2)
            second = connect_raw(handle.address)
            send_frames(second, [query_frame(10, alpha=0.9),
                                 query_frame(11, alpha=0.91)])
            rejected = read_replies(second, 2)
            for rid in (10, 11):
                assert rejected[rid]["ok"] is False
                assert rejected[rid]["error"]["type"] == ERROR_REJECTED
            gate.set()
            admitted = read_replies(first, 3)
            assert all(reply["ok"] for reply in admitted.values())
            wait_until(lambda: service.stats.completed == 3)
            # exact reconciliation on the drained service
            assert service.stats.shed == 2
            assert service.stats.rejected == 2
            assert service.stats.requests == (
                service.stats.completed + service.stats.rejected
            )
            first.close()
            second.close()
        finally:
            gate.set()
            handle.stop(close_service=True)

    def test_per_client_inflight_cap(self):
        gate = threading.Event()
        handle, engine, service = gated_server(
            gate, max_pending=64, max_inflight=1, per_client_inflight=2
        )
        try:
            sock = connect_raw(handle.address)
            send_frames(sock, [query_frame(i, alpha=0.1 + i / 100)
                               for i in range(4)])
            # ids 2 and 3 exceed the cap and bounce immediately
            capped = read_replies(sock, 2)
            assert set(capped) == {2, 3}
            assert all(
                reply["error"]["type"] == ERROR_REJECTED
                for reply in capped.values()
            )
            gate.set()
            served = read_replies(sock, 2)
            assert set(served) == {0, 1}
            assert all(reply["ok"] for reply in served.values())
            sock.close()
        finally:
            gate.set()
            handle.stop(close_service=True)

    def test_round_robin_fairness_across_clients(self):
        gate = threading.Event()
        handle, engine, service = gated_server(
            gate, max_pending=64, max_inflight=1, per_client_inflight=16
        )
        server = handle.server
        try:
            heavy = connect_raw(handle.address)
            send_frames(heavy, [query_frame(0, alpha=0.10)])
            wait_until(lambda: server._inflight_total == 1)
            send_frames(heavy, [query_frame(1, alpha=0.11),
                                query_frame(2, alpha=0.12)])
            wait_until(lambda: server._pending_total == 2)
            light = connect_raw(handle.address)
            send_frames(light, [query_frame(100, alpha=0.9)])
            wait_until(lambda: server._pending_total == 3)
            gate.set()
            heavy_replies = read_replies(heavy, 3)
            light_reply = read_reply(light)
            assert all(r["ok"] for r in heavy_replies.values())
            assert light_reply["ok"]
            # round-robin: the light client's single request was
            # dispatched before the heavy client's backlog drained
            order = [alpha for alpha, _ in engine.calls]
            assert order.index(0.9) < order.index(0.12)
            heavy.close()
            light.close()
        finally:
            gate.set()
            handle.stop(close_service=True)


# ----------------------------------------------------------------------
# Drain: live updates and shutdown
# ----------------------------------------------------------------------


class TestDrain:
    def test_apply_updates_holds_queued_requests(self):
        gate = threading.Event()
        handle, engine, service = gated_server(
            gate, max_pending=64, max_inflight=1, drain_policy="hold"
        )
        server = handle.server
        try:
            sock = connect_raw(handle.address)
            send_frames(sock, [query_frame(0, alpha=0.5)])
            wait_until(lambda: server._inflight_total == 1)
            applied = []
            updater = threading.Thread(
                target=lambda: applied.append(handle.apply_updates([]))
            )
            updater.start()
            wait_until(lambda: server._draining)
            # a request arriving mid-drain is held, not rejected
            send_frames(sock, [query_frame(1, alpha=0.6)])
            wait_until(lambda: server._pending_total == 1)
            gate.set()
            replies = read_replies(sock, 2)
            updater.join(timeout=10)
            assert not updater.is_alive()
            assert applied == [{"applied": 0}]
            assert replies[0]["ok"] and replies[1]["ok"]
            # the held request evaluated against the post-update graph
            assert dict(engine.calls)[0.6] == 1
            assert dict(engine.calls)[0.5] == 0
            sock.close()
        finally:
            gate.set()
            handle.stop(close_service=True)

    def test_apply_updates_shed_policy_rejects_queued(self):
        gate = threading.Event()
        handle, engine, service = gated_server(
            gate, max_pending=64, max_inflight=1, drain_policy="shed"
        )
        server = handle.server
        try:
            sock = connect_raw(handle.address)
            send_frames(sock, [query_frame(0, alpha=0.5),
                               query_frame(1, alpha=0.6)])
            wait_until(lambda: server._inflight_total == 1
                       and server._pending_total == 1)
            updater = threading.Thread(target=handle.apply_updates, args=([],))
            updater.start()
            wait_until(lambda: server._draining)
            gate.set()
            replies = read_replies(sock, 2)
            updater.join(timeout=10)
            assert replies[0]["ok"] is True
            assert replies[1]["ok"] is False
            assert replies[1]["error"]["type"] == ERROR_REJECTED
            assert service.stats.rejected == 1
            assert service.stats.requests == (
                service.stats.completed + service.stats.rejected
            )
            sock.close()
        finally:
            gate.set()
            handle.stop(close_service=True)

    def test_stop_hard_cutoff_resolves_inflight(self):
        gate = threading.Event()
        handle, engine, service = gated_server(gate)
        try:
            sock = connect_raw(handle.address)
            send_frames(sock, [query_frame(0, alpha=0.5)])
            wait_until(lambda: handle.server._inflight_total == 1)
            stopper = threading.Thread(
                target=handle.stop, kwargs={"drain_timeout": 0.2}
            )
            stopper.start()
            # the stuck evaluation cannot complete, yet the client gets
            # a typed reply at the cutoff instead of a dead socket
            reply = read_reply(sock)
            assert reply["id"] == 0
            assert reply["ok"] is False
            assert reply["error"]["type"] == ERROR_UNAVAILABLE
            stopper.join(timeout=10)
            assert not stopper.is_alive()
            sock.close()
        finally:
            gate.set()
            handle.stop(close_service=True)

    def test_service_close_nowait_resolves_net_futures(self):
        gate = threading.Event()
        handle, engine, service = gated_server(gate, max_inflight=2)
        server = handle.server
        try:
            sock = connect_raw(handle.address)
            # one running (gated), one queued inside the service executor
            send_frames(sock, [query_frame(0, alpha=0.5),
                               query_frame(1, alpha=0.6)])
            wait_until(lambda: server._inflight_total == 2)
            service.close(wait=False)
            # both futures resolve with errors -> both net replies
            # arrive as typed UNAVAILABLE; no dangling connection
            replies = read_replies(sock, 2)
            for rid in (0, 1):
                assert replies[rid]["ok"] is False
                assert replies[rid]["error"]["type"] == ERROR_UNAVAILABLE
            sock.close()
        finally:
            gate.set()
            handle.stop()


# ----------------------------------------------------------------------
# Overload (satellite: 2x capacity offered load)
# ----------------------------------------------------------------------


class TestOverload:
    def test_double_capacity_sheds_and_reconciles(self):
        class SlowEngine(GatedEngine):
            def query(self, query, alpha, options=None):
                time.sleep(0.02)
                return super().query(query, alpha, options)

        engine = SlowEngine()
        service = QueryService(engine, num_workers=1, cache_size=0)
        # capacity: 1 in flight + 2 pending = 3 concurrent requests
        handle = start_server(
            service, max_pending=2, max_inflight=1, per_client_inflight=16
        )
        outcomes = []
        lock = threading.Lock()

        def hammer(tid):
            with QueryClient(*handle.address, max_retries=0) as client:
                for i in range(6):
                    try:
                        reply = client.query(
                            FIGURE1_NODES, FIGURE1_EDGES,
                            alpha=0.3 + (tid * 6 + i) * 1e-3,
                        )
                        with lock:
                            outcomes.append("ok" if reply["ok"] else "?")
                    except RemoteError as exc:
                        assert exc.code == ERROR_REJECTED
                        with lock:
                            outcomes.append("rejected")

        try:
            # 6 concurrent clients >= 2x the 3-slot capacity
            threads = [
                threading.Thread(target=hammer, args=(tid,))
                for tid in range(6)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)
            assert not any(thread.is_alive() for thread in threads)
            assert len(outcomes) == 36
            assert "?" not in outcomes
            # overload was actually shed, and admitted requests all ran
            assert outcomes.count("rejected") >= 1
            assert service.stats.shed >= 1
            wait_until(lambda: service.stats.in_flight == 0)
            snap = service.stats_snapshot()
            assert snap["requests"] == 36
            assert snap["completed"] == outcomes.count("ok")
            assert snap["rejected"] == outcomes.count("rejected")
            assert snap["requests"] == snap["completed"] + snap["rejected"]
        finally:
            handle.stop(close_service=True)


# ----------------------------------------------------------------------
# Client: retry, timeouts, breaker
# ----------------------------------------------------------------------


def _dead_port() -> int:
    sock = socket.socket()
    sock.bind(("127.0.0.1", 0))
    port = sock.getsockname()[1]
    sock.close()
    return port


class TestCircuitBreaker:
    def test_transitions(self):
        breaker = CircuitBreaker(threshold=2, cooldown=0.05)
        assert breaker.state == "closed"
        breaker.record_failure()
        assert breaker.state == "closed"
        breaker.record_failure()
        assert breaker.state == "open"
        assert breaker.allow() is False
        time.sleep(0.06)
        assert breaker.allow() is True  # half-open probe
        assert breaker.state == "half-open"
        assert breaker.allow() is False  # only one probe at a time
        breaker.record_failure()
        assert breaker.state == "open"
        time.sleep(0.06)
        assert breaker.allow() is True
        breaker.record_success()
        assert breaker.state == "closed"

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            CircuitBreaker(threshold=0)


class TestClientRetry:
    def test_connection_refused_retries_then_raises(self):
        client = QueryClient(
            "127.0.0.1", _dead_port(),
            max_retries=2, backoff_base=0.001, breaker_threshold=10,
        )
        with pytest.raises(NetError):
            client.ping()
        assert client.retries == 2

    def test_retry_recovers_from_dropped_connection(self):
        injector = faults.install(faults.FaultInjector(seed=1))
        # the server refuses exactly one connection, then behaves
        injector.add("net.accept", "drop", max_fires=1)
        handle, engine, service = gated_server()
        try:
            client = QueryClient(
                *handle.address, max_retries=2, backoff_base=0.001,
            )
            assert client.ping() is True
            assert client.retries == 1
            client.close()
        finally:
            handle.stop(close_service=True)

    def test_application_errors_never_retried(self):
        handle, engine, service = gated_server()
        try:
            with QueryClient(*handle.address, max_retries=3) as client:
                with pytest.raises(RemoteError):
                    client.query({}, [], alpha=0.5)
                assert client.retries == 0
                assert client.breaker.state == "closed"
        finally:
            handle.stop(close_service=True)

    def test_timeout_not_retried(self):
        gate = threading.Event()
        handle, engine, service = gated_server(gate)
        try:
            client = QueryClient(
                *handle.address, request_timeout=0.2, max_retries=3,
            )
            with pytest.raises(NetTimeout):
                client.query(FIGURE1_NODES, FIGURE1_EDGES, alpha=0.5)
            assert client.retries == 0
            client.close()
        finally:
            gate.set()
            handle.stop(close_service=True)

    def test_breaker_fails_fast_on_dead_server(self):
        client = QueryClient(
            "127.0.0.1", _dead_port(),
            max_retries=0, backoff_base=0.001,
            breaker_threshold=1, breaker_cooldown=0.1,
        )
        with pytest.raises(NetError):
            client.ping()
        # breaker open: fail fast, no connect attempt
        start = time.perf_counter()
        with pytest.raises(CircuitOpenError):
            client.ping()
        assert time.perf_counter() - start < 0.05
        time.sleep(0.12)
        # half-open probe fails -> open again
        with pytest.raises(NetError):
            client.ping()
        with pytest.raises(CircuitOpenError):
            client.ping()
