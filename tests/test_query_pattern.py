"""Unit tests for the textual pattern parser."""

import pytest

from repro.query.pattern import parse_pattern
from repro.utils.errors import QueryError


class TestParsing:
    def test_simple_path(self):
        q = parse_pattern("(a:X)-(b:Y)-(c:Z)")
        assert q.num_nodes == 3
        assert q.num_edges == 2
        assert q.label("b") == "Y"
        assert q.has_edge("a", "b")
        assert q.has_edge("b", "c")
        assert not q.has_edge("a", "c")

    def test_multiple_clauses(self):
        q = parse_pattern("(a:X)-(b:Y); (b)-(c:X); (a)-(c)")
        assert q.num_edges == 3
        assert q.has_edge("a", "c")

    def test_cycle_via_repeated_mention(self):
        q = parse_pattern("(a:X)-(b:X)-(c:X)-(a)")
        assert q.num_edges == 3
        assert q.has_edge("c", "a")

    def test_single_node(self):
        q = parse_pattern("(only:L)")
        assert q.num_nodes == 1
        assert q.num_edges == 0

    def test_whitespace_insensitive(self):
        q = parse_pattern("  ( a : X )  -  ( b : Y )  ")
        assert q.label("a") == "X"
        assert q.has_edge("a", "b")

    def test_duplicate_edges_merged(self):
        q = parse_pattern("(a:X)-(b:Y); (b)-(a)")
        assert q.num_edges == 1

    def test_label_with_punctuation(self):
        q = parse_pattern("(a:Research-Lab)-(b:C4.5)")
        assert q.label("a") == "Research-Lab"
        assert q.label("b") == "C4.5"


class TestErrors:
    def test_empty_pattern(self):
        with pytest.raises(QueryError):
            parse_pattern("   ")

    def test_missing_label(self):
        with pytest.raises(QueryError, match="never received a label"):
            parse_pattern("(a)-(b:Y)")

    def test_conflicting_labels(self):
        with pytest.raises(QueryError, match="conflicting"):
            parse_pattern("(a:X)-(b:Y); (a:Z)-(b)")

    def test_dangling_dash(self):
        with pytest.raises(QueryError, match="dangling"):
            parse_pattern("(a:X)-")

    def test_self_loop(self):
        with pytest.raises(QueryError, match="self-loop"):
            parse_pattern("(a:X)-(a)")

    def test_garbage(self):
        with pytest.raises(QueryError):
            parse_pattern("a:X -> b:Y")

    def test_missing_separator(self):
        with pytest.raises(QueryError, match="expected '-'"):
            parse_pattern("(a:X)(b:Y)")


class TestEndToEnd:
    def test_parsed_query_is_runnable(self, figure1_peg):
        from repro.query import QueryEngine

        engine = QueryEngine(figure1_peg, max_length=2, beta=0.05)
        query = parse_pattern("(q1:r)-(q2:a)-(q3:i)")
        matches = engine.query(query, 0.15).matches
        assert len(matches) == 1
        assert matches[0].probability == pytest.approx(0.2025)
