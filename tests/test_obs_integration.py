"""Observability threaded through engine, index, delta, and service."""

from __future__ import annotations

from tests.conftest import small_random_peg

from repro.delta import AddEdge, UpdateLabelProbability
from repro.obs import Tracer, get_registry, render_trace
from repro.query.engine import QueryEngine, QueryOptions
from repro.query.query_graph import QueryGraph
from repro.query.topk import top_k_matches
from repro.service.service import QueryService


def _chain_query(labels, n=3):
    names = [chr(ord("a") + i) for i in range(n)]
    nodes = {name: labels[i % 2] for i, name in enumerate(names)}
    edges = [(names[i], names[i + 1]) for i in range(n - 1)]
    return QueryGraph(nodes, edges)


class TestEngineTracing:
    def test_trace_option_exports_stage_tree(self):
        peg = small_random_peg(seed=11)
        labels = sorted(peg.sigma)
        engine = QueryEngine(peg, max_length=2)
        query = _chain_query(labels, n=4)
        result = engine.query(query, 0.2, QueryOptions(trace=True))
        trace = result.trace
        assert trace is not None and trace["name"] == "query"
        assert trace["attributes"]["matches"] == len(result.matches)
        stages = [c["name"] for c in trace["children"]]
        assert stages[0] == "plan"
        assert "lookup" in stages
        lookup = trace["children"][stages.index("lookup")]
        partitions = [c for c in lookup["children"] if c["name"] == "partition"]
        assert len(partitions) == trace["children"][0]["attributes"]["partitions"]
        for p in partitions:
            assert "labels" in p["attributes"]
            assert p["attributes"]["raw"] >= p["attributes"]["pruned"]
        if result.matches:
            assert stages[-1] == "match"
        rendered = render_trace(trace)
        assert rendered.splitlines()[0].startswith("query")

    def test_trace_defaults_off_and_matches_are_identical(self):
        peg = small_random_peg(seed=11)
        labels = sorted(peg.sigma)
        engine = QueryEngine(peg, max_length=2)
        query = _chain_query(labels, n=3)
        plain = engine.query(query, 0.2)
        traced = engine.query(query, 0.2, QueryOptions(trace=True))
        assert plain.trace is None
        assert [m.probability for m in plain.matches] == [
            m.probability for m in traced.matches
        ]

    def test_sharded_lookup_reports_shard_fetches(self):
        peg = small_random_peg(seed=5)
        labels = sorted(peg.sigma)
        engine = QueryEngine(peg, max_length=1, num_shards=3)
        query = _chain_query(labels, n=3)
        result = engine.query(query, 0.3, QueryOptions(trace=True))
        lookup = [
            c for c in result.trace["children"] if c["name"] == "lookup"
        ][0]
        fetch_keys = [
            key
            for p in lookup["children"]
            for key in p["counters"]
            if key.startswith("shard_fetches[")
        ]
        assert fetch_keys, "partition spans must carry shard fetch counters"
        snap = get_registry().snapshot()
        shard_series = {
            k: v for k, v in snap.items()
            if k.startswith("repro_index_shard_fetches_total")
        }
        assert sum(shard_series.values()) >= len(fetch_keys)

    def test_query_metrics_recorded_in_registry(self):
        registry = get_registry()
        before = registry.snapshot().get("repro_queries_total", 0)
        peg = small_random_peg(seed=3)
        labels = sorted(peg.sigma)
        engine = QueryEngine(peg, max_length=1)
        engine.query(_chain_query(labels, n=3), 0.3)
        snap = registry.snapshot()
        assert snap["repro_queries_total"] == before + 1
        assert snap["repro_query_seconds_count"] >= 1
        assert snap["repro_query_stage_seconds{stage=reduction}_count"] >= 1

    def test_batch_trace_covers_plan_prefetch_and_queries(self):
        peg = small_random_peg(seed=9)
        labels = sorted(peg.sigma)
        engine = QueryEngine(peg, max_length=1)
        requests = [
            (_chain_query(labels, n=3), 0.3),
            (_chain_query(labels[::-1], n=3), 0.4),
        ]
        results = engine.query_batch(requests, QueryOptions(trace=True))
        for result in results:
            assert result.trace is not None
            assert result.trace["name"] == "query"

    def test_topk_probes_appear_under_trace(self):
        peg = small_random_peg(seed=13)
        labels = sorted(peg.sigma)
        engine = QueryEngine(peg, max_length=1)
        tracer = Tracer()
        with tracer.span("topk_session"):
            matches = top_k_matches(
                engine, _chain_query(labels, n=3), k=3, start_alpha=0.9
            )
        (root,) = tracer.roots()
        topk_spans = [
            c for c in root.to_dict()["children"] if c["name"] == "topk"
        ]
        assert topk_spans and topk_spans[0]["counters"]["probes"] >= 1
        assert len(matches) <= 3


class TestDeltaMetrics:
    def test_apply_and_compact_report_into_registry(self):
        registry = get_registry()
        before = registry.snapshot()
        peg = small_random_peg(seed=21)
        labels = sorted(peg.sigma)
        engine = QueryEngine(peg, max_length=1)
        entity = engine.peg.entities[0]
        refs = tuple(sorted(entity, key=repr))
        engine.apply_updates(
            [UpdateLabelProbability(refs, {labels[0]: 0.6, labels[1]: 0.4})]
        )
        snap = registry.snapshot()
        assert (
            snap["repro_delta_ops_applied_total"]
            == before.get("repro_delta_ops_applied_total", 0) + 1
        )
        assert snap["repro_delta_apply_seconds_count"] >= 1
        assert snap["repro_delta_absorb_seconds_count"] >= 1
        engine.compact_updates()
        snap = registry.snapshot()
        assert snap["repro_delta_compact_seconds_count"] >= 1
        assert snap["repro_delta_dirty_nodes"] == 0


class TestServiceObservability:
    def test_request_spans_nest_engine_stages(self):
        peg = small_random_peg(seed=7)
        labels = sorted(peg.sigma)
        engine = QueryEngine(peg, max_length=1)
        tracer = Tracer()
        with QueryService(engine, num_workers=2, tracer=tracer) as service:
            query = _chain_query(labels, n=3)
            service.query(query, 0.3)  # miss
            service.query(query, 0.3)  # hit
        spans = [r.to_dict() for r in tracer.roots()]
        outcomes = sorted(s["attributes"]["outcome"] for s in spans)
        assert outcomes == ["cache", "miss"]
        miss = [s for s in spans if s["attributes"]["outcome"] == "miss"][0]
        assert "queue_wait_ms" in miss["attributes"]
        (engine_span,) = miss["children"]
        assert engine_span["name"] == "query"
        assert {c["name"] for c in engine_span["children"]} >= {
            "plan", "lookup"
        }

    def test_stats_snapshot_merges_registry_series(self):
        peg = small_random_peg(seed=7)
        labels = sorted(peg.sigma)
        engine = QueryEngine(peg, max_length=1)
        with QueryService(engine, num_workers=1) as service:
            service.query(_chain_query(labels, n=3), 0.3)
            snap = service.stats_snapshot()
        assert snap["requests"] == 1
        assert snap["repro_service_requests_total{outcome=miss}"] >= 1
        assert snap["repro_service_queue_wait_seconds_count"] >= 1
        assert "repro_queries_total" in snap
