"""Unit and regression tests for repro.query.links.

Covers the vectorized builder's exact equivalence to the reference on
engine-served candidates, the link-structure cache's hit/miss/key
behaviour, and — the regression this PR locks down — versioned
invalidation: cached links must be dropped on ``apply_updates`` and
``compact_updates``, and a warm (stale) cache must never change the
answer on a mutated PEG, including under concurrent ``QueryService``
load.
"""

from __future__ import annotations

import random

from repro.delta import UpdateLabelProbability
from repro.query import QueryEngine, QueryOptions
from repro.query.engine import QueryResult
from repro.query.kpartite import build_candidate_links
from repro.query.links import (
    LinkStructureCache,
    build_candidate_links_vectorized,
)
from repro.query.query_graph import QueryGraph
from repro.service import QueryService
from tests.conftest import small_random_peg

ALPHA = 0.3
MAX_LENGTH = 2
BETA = 0.05


def make_engine(seed: int = 47) -> QueryEngine:
    peg = small_random_peg(seed=seed)
    return QueryEngine(peg, max_length=MAX_LENGTH, beta=BETA)


def make_query(peg, rotate: int = 0) -> QueryGraph:
    sigma = sorted(peg.sigma, key=repr)
    a = sigma[rotate % len(sigma)]
    b = sigma[(rotate + 1) % len(sigma)]
    return QueryGraph(
        {"a": a, "b": b, "c": a}, [("a", "b"), ("b", "c")]
    )


def match_keys(result: QueryResult):
    return sorted(
        (m.nodes, m.edges, round(m.probability, 9)) for m in result.matches
    )


def mutation_for(peg):
    """A label-probability revision on one live node of ``peg``."""
    sigma = sorted(peg.sigma, key=repr)
    node = next(n for n in peg.node_ids() if not peg.is_removed_id(n))
    refs = tuple(sorted(peg.entity_of(node), key=repr))
    return UpdateLabelProbability(refs, {sigma[0]: 0.6, sigma[1]: 0.4})


class TestWarmCacheHits:
    def test_second_build_is_all_hits(self):
        engine = make_engine()
        query = make_query(engine.peg)
        cold = engine.query(query, ALPHA)
        warm = engine.query(query, ALPHA)
        assert cold.link_stats["backend"] == "vectorized"
        assert cold.link_stats["cache_misses"] > 0
        assert cold.link_stats["cache_hits"] == 0
        assert warm.link_stats["cache_hits"] > 0
        assert warm.link_stats["cache_misses"] == 0
        assert warm.link_stats["pairs"] == cold.link_stats["pairs"]
        assert match_keys(warm) == match_keys(cold)

    def test_warm_hits_surface_in_stats_snapshot(self):
        engine = make_engine()
        query = make_query(engine.peg)
        engine.query(query, ALPHA)
        engine.query(query, ALPHA)
        snapshot = engine.planner.stats_snapshot()
        assert snapshot["link_cache_hits"] > 0
        assert snapshot["link_cache_misses"] > 0
        assert snapshot["link_cache_size"] == len(engine.link_cache)
        with QueryService(engine, num_workers=1) as service:
            service.query(query, ALPHA)
            service_snapshot = service.stats_snapshot()
        assert service_snapshot["link_cache_hits"] > 0

    def test_use_link_cache_false_bypasses_cache(self):
        engine = make_engine()
        query = make_query(engine.peg)
        options = QueryOptions(use_link_cache=False)
        first = engine.query(query, ALPHA, options)
        second = engine.query(query, ALPHA, options)
        for result in (first, second):
            assert result.link_stats["cache_hits"] == 0
            assert result.link_stats["cache_misses"] == 0
        assert len(engine.link_cache) == 0
        assert match_keys(second) == match_keys(first)

    def test_python_link_backend_agrees_and_skips_cache(self):
        engine = make_engine()
        query = make_query(engine.peg)
        vectorized = engine.query(query, ALPHA)
        python = engine.query(
            query, ALPHA, QueryOptions(link_backend="python")
        )
        assert python.link_stats["backend"] == "python"
        assert python.link_stats["pairs"] == vectorized.link_stats["pairs"]
        assert match_keys(python) == match_keys(vectorized)


class TestCacheKeying:
    def test_fingerprint_distinguishes_candidate_contents(self):
        """Same pair signature, different candidates -> no false hit."""
        engine = make_engine()
        query = make_query(engine.peg)
        decomposition, _ = engine.planner.plan(query, ALPHA, QueryOptions())
        from repro.query.candidates import CandidateFinder

        finder = CandidateFinder(
            engine.peg, query, ALPHA,
            index=engine.index, context=engine.context,
        )
        candidates = {
            i: finder.find(path)[0]
            for i, path in enumerate(decomposition.paths)
        }
        cache = LinkStructureCache()
        build_candidate_links_vectorized(
            engine.peg, decomposition, candidates, ALPHA, cache=cache
        )
        trimmed = dict(candidates)
        trimmed[0] = candidates[0][:-1]
        result = build_candidate_links_vectorized(
            engine.peg, decomposition, trimmed, ALPHA, cache=cache
        )
        assert result.stats["cache_hits"] == 0
        reference = build_candidate_links(
            engine.peg, decomposition, trimmed, ALPHA
        )
        assert result.pair_lists() == reference

    def test_graph_version_participates_in_key(self):
        engine = make_engine()
        query = make_query(engine.peg)
        decomposition, _ = engine.planner.plan(query, ALPHA, QueryOptions())
        from repro.query.candidates import CandidateFinder

        finder = CandidateFinder(
            engine.peg, query, ALPHA,
            index=engine.index, context=engine.context,
        )
        candidates = {
            i: finder.find(path)[0]
            for i, path in enumerate(decomposition.paths)
        }
        cache = LinkStructureCache()
        build_candidate_links_vectorized(
            engine.peg, decomposition, candidates, ALPHA,
            cache=cache, graph_version=0,
        )
        rebuilt = build_candidate_links_vectorized(
            engine.peg, decomposition, candidates, ALPHA,
            cache=cache, graph_version=1,
        )
        assert rebuilt.stats["cache_hits"] == 0
        assert rebuilt.stats["cache_misses"] > 0


class TestInvalidation:
    def test_apply_updates_drops_cached_links(self):
        engine = make_engine()
        query = make_query(engine.peg)
        engine.query(query, ALPHA)
        assert len(engine.link_cache) > 0
        engine.apply_updates([mutation_for(engine.peg)])
        # The overlay's invalidation listener cleared the cache (the
        # graph_version bump would re-key entries regardless).
        assert len(engine.link_cache) == 0
        stale = engine.query(query, ALPHA)
        assert stale.link_stats["cache_misses"] > 0
        cold = QueryEngine(engine.peg, max_length=MAX_LENGTH, beta=BETA)
        assert match_keys(stale) == match_keys(cold.query(query, ALPHA))

    def test_compact_updates_clears_link_cache(self):
        engine = make_engine()
        query = make_query(engine.peg)
        engine.apply_updates([mutation_for(engine.peg)])
        engine.query(query, ALPHA)
        assert len(engine.link_cache) > 0
        engine.compact_updates()
        assert len(engine.link_cache) == 0
        compacted = engine.query(query, ALPHA)
        cold = QueryEngine(engine.peg, max_length=MAX_LENGTH, beta=BETA)
        assert match_keys(compacted) == match_keys(cold.query(query, ALPHA))

    def test_stale_cache_agrees_under_concurrent_service_load(self):
        """Warm caches + live updates + concurrent submits stay exact.

        A service warms the link cache across several query shapes,
        absorbs a mutation batch mid-stream (drained, version-bumped,
        link cache cleared), then answers the same shapes concurrently;
        every post-update answer must equal a cold engine's on the
        mutated PEG.
        """
        engine = make_engine(seed=48)
        rng = random.Random(7)
        queries = [make_query(engine.peg, rotate=r) for r in range(3)]
        alphas = (0.25, ALPHA)
        requests = [(q, a) for q in queries for a in alphas]
        with QueryService(engine, num_workers=4, cache_size=0) as service:
            # Warm every link-cache entry under concurrent load.
            futures = [
                service.submit(q, a)
                for q, a in rng.sample(requests, len(requests)) * 2
            ]
            for future in futures:
                future.result()
            assert len(engine.link_cache) > 0
            service.apply_updates([mutation_for(engine.peg)])
            assert len(engine.link_cache) == 0
            futures = {
                (qi, a): service.submit(queries[qi], a)
                for qi, _ in enumerate(queries) for a in alphas
            }
            cold = QueryEngine(engine.peg, max_length=MAX_LENGTH, beta=BETA)
            for (qi, a), future in futures.items():
                expected = match_keys(cold.query(queries[qi], a))
                assert match_keys(future.result()) == expected, (qi, a)
            snapshot = service.stats_snapshot()
            assert snapshot["link_cache_hits"] > 0
            assert snapshot["link_cache_misses"] > 0
