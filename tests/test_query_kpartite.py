"""Unit tests for repro.query.kpartite (reduction by join-candidates)."""

import pytest

from repro.index import build_context, build_path_index
from repro.peg import build_peg
from repro.pgd import pgd_from_edge_list
from repro.query.candidates import CandidateFinder
from repro.query.decompose import decompose_query
from repro.query.kpartite import CandidateKPartiteGraph
from repro.query.query_graph import QueryGraph
from repro.query.baselines import direct_matches
from tests.conftest import small_random_peg


def build_kpartite(peg, query, alpha, use_context=True, max_length=2,
                   parallel=False):
    index = build_path_index(peg, max_length=max_length, beta=0.05)
    context = build_context(peg)
    decomposition = decompose_query(
        query, index.estimate_cardinality, alpha, max_length
    )
    finder = CandidateFinder(
        peg, query, alpha, index=index, context=context,
        use_context=use_context,
    )
    candidates = {
        i: finder.find(path)[0] for i, path in enumerate(decomposition.paths)
    }
    kpartite = CandidateKPartiteGraph(
        peg, decomposition, candidates, alpha, parallel=parallel
    )
    return decomposition, kpartite


@pytest.fixture
def chain_peg():
    return build_peg(
        pgd_from_edge_list(
            node_labels={
                "x1": "a", "x2": "a",
                "y1": "b", "y2": "b",
                "z1": "c", "z2": "c",
            },
            edges=[
                ("x1", "y1", 0.9),
                ("y1", "z1", 0.8),
                ("x2", "y2", 0.9),
                # y2 has no 'c' neighbor: its path candidates die in
                # reduction by structure.
            ],
        )
    )


def chain_query():
    return QueryGraph(
        {"u": "a", "v": "b", "w": "c"}, [("u", "v"), ("v", "w")]
    )


class TestStructureReduction:
    def test_dangling_candidates_removed(self, chain_peg):
        decomposition, kpartite = build_kpartite(
            chain_peg, chain_query(), alpha=0.1, use_context=False,
            max_length=1,
        )
        if len(decomposition.paths) < 2:
            pytest.skip("decomposed into a single path; nothing to reduce")
        stats = kpartite.reduce(use_upperbounds=False)
        # Only the x1-y1-z1 chain survives in every partition.
        assert all(count == 1 for count in stats.final_sizes)

    def test_w1_weights_multiply_to_prle(self, chain_peg):
        """Product of w1 over a consistent vertex tuple = Prle of match."""
        decomposition, kpartite = build_kpartite(
            chain_peg, chain_query(), alpha=0.1, use_context=False,
            max_length=1,
        )
        kpartite.reduce()
        product = 1.0
        for i in range(kpartite.k):
            alive = list(kpartite.alive_vertices(i))
            assert len(alive) == 1
            product *= alive[0][1].w1
        # Full match probability: labels all certain, edges 0.9 * 0.8.
        assert product == pytest.approx(0.9 * 0.8)


class TestUpperboundReduction:
    def test_threshold_prunes_weak_vertices(self, chain_peg):
        decomposition, kpartite = build_kpartite(
            chain_peg, chain_query(), alpha=0.75, use_context=False,
            max_length=1,
        )
        stats = kpartite.reduce()
        # max match probability is 0.72 < 0.75: everything dies.
        assert kpartite.search_space_size() == 0
        assert stats.upperbound_removed + stats.structure_removed > 0

    def test_upperbounds_keep_qualifying_matches(self):
        """No candidate participating in an above-threshold match dies."""
        peg = small_random_peg(seed=31, num_references=60)
        sigma = sorted(peg.sigma)
        query = QueryGraph(
            {"a": sigma[0], "b": sigma[1], "c": sigma[2], "d": sigma[0]},
            [("a", "b"), ("b", "c"), ("c", "d")],
        )
        alpha = 0.25
        decomposition, kpartite = build_kpartite(peg, query, alpha)
        kpartite.reduce()
        surviving = [
            {v.candidate.nodes for _, v in kpartite.alive_vertices(i)}
            for i in range(kpartite.k)
        ]
        for match in direct_matches(peg, query, alpha):
            mapping = dict(match.mapping)
            for i, path in enumerate(decomposition.paths):
                nodes = tuple(peg.id_of(mapping[q]) for q in path.nodes)
                assert nodes in surviving[i], (match, path)

    def test_vectors_monotone_and_bounded(self, chain_peg):
        decomposition, kpartite = build_kpartite(
            chain_peg, chain_query(), alpha=0.1, use_context=False,
            max_length=1,
        )
        kpartite.reduce()
        for i in range(kpartite.k):
            for _, vertex in kpartite.alive_vertices(i):
                assert all(0.0 <= entry <= 1.0 for entry in vertex.vector)
                assert vertex.vector[i] == pytest.approx(vertex.w1)


class TestReductionStats:
    def test_search_space_progression_monotone(self):
        peg = small_random_peg(seed=32, num_references=60)
        sigma = sorted(peg.sigma)
        query = QueryGraph(
            {"a": sigma[0], "b": sigma[1], "c": sigma[0]},
            [("a", "b"), ("b", "c")],
        )
        _, kpartite = build_kpartite(peg, query, alpha=0.3)
        stats = kpartite.reduce()
        assert stats.initial_search_space >= stats.after_structure_search_space
        assert stats.after_structure_search_space >= stats.final_search_space

    def test_parallel_reduction_equivalent(self):
        peg = small_random_peg(seed=33, num_references=60)
        sigma = sorted(peg.sigma)
        query = QueryGraph(
            {"a": sigma[0], "b": sigma[1], "c": sigma[0]},
            [("a", "b"), ("b", "c")],
        )
        _, serial = build_kpartite(peg, query, alpha=0.3)
        serial.reduce()
        _, parallel = build_kpartite(peg, query, alpha=0.3, parallel=True)
        parallel.reduce()
        for i in range(serial.k):
            alive_serial = {v.candidate.nodes for _, v in serial.alive_vertices(i)}
            alive_parallel = {
                v.candidate.nodes for _, v in parallel.alive_vertices(i)
            }
            assert alive_serial == alive_parallel

    def test_structure_only_weaker_than_both(self):
        peg = small_random_peg(seed=34, num_references=60)
        sigma = sorted(peg.sigma)
        query = QueryGraph(
            {"a": sigma[0], "b": sigma[1], "c": sigma[0]},
            [("a", "b"), ("b", "c")],
        )
        _, structure_only = build_kpartite(peg, query, alpha=0.4)
        s1 = structure_only.reduce(use_upperbounds=False)
        _, both = build_kpartite(peg, query, alpha=0.4)
        s2 = both.reduce()
        assert s2.final_search_space <= s1.final_search_space


def build_vectorized(peg, query, alpha, use_context=True, max_length=2):
    from repro.query.reduction import VectorizedKPartiteGraph

    index = build_path_index(peg, max_length=max_length, beta=0.05)
    context = build_context(peg)
    decomposition = decompose_query(
        query, index.estimate_cardinality, alpha, max_length
    )
    finder = CandidateFinder(
        peg, query, alpha, index=index, context=context,
        use_context=use_context,
    )
    candidates = {
        i: finder.find(path)[0] for i, path in enumerate(decomposition.paths)
    }
    return decomposition, VectorizedKPartiteGraph(
        peg, decomposition, candidates, alpha
    )


class TestVectorizedBackend:
    """The numpy backend must mirror the Python reference exactly."""

    def _compare(self, peg, query, alpha, **kwargs):
        _, python = build_kpartite(peg, query, alpha, **kwargs)
        _, vectorized = build_vectorized(peg, query, alpha, **kwargs)
        # Identical w1/w2 before any reduction (bit-exact scoring).
        for i in range(python.k):
            for vid, vertex in enumerate(python.partitions[i]):
                assert vectorized.w1[i][vid] == vertex.w1, (i, vid)
                assert vectorized.w2[i][vid] == vertex.w2, (i, vid)
        stats_py = python.reduce()
        stats_vec = vectorized.reduce()
        assert stats_vec.initial_sizes == stats_py.initial_sizes
        assert stats_vec.after_structure_sizes == stats_py.after_structure_sizes
        assert stats_vec.final_sizes == stats_py.final_sizes
        assert stats_vec.structure_removed == stats_py.structure_removed
        assert stats_vec.upperbound_removed == stats_py.upperbound_removed
        for i in range(python.k):
            assert (
                vectorized.alive_vertex_ids(i) == python.alive_vertex_ids(i)
            ), i
            for vid in vectorized.alive_vertex_ids(i):
                for j in range(python.k):
                    if i == j:
                        continue
                    assert vectorized.linked(i, vid, j) == \
                        python.linked(i, vid, j), (i, vid, j)
        return python, vectorized

    def test_chain_agreement(self, chain_peg):
        for alpha in (0.1, 0.5, 0.75):
            self._compare(
                chain_peg, chain_query(), alpha, use_context=False,
                max_length=1,
            )

    def test_random_graph_agreement(self):
        for seed in (41, 42, 43):
            peg = small_random_peg(seed=seed, num_references=60)
            sigma = sorted(peg.sigma)
            query = QueryGraph(
                {"a": sigma[0], "b": sigma[1], "c": sigma[0]},
                [("a", "b"), ("b", "c")],
            )
            self._compare(peg, query, alpha=0.3)

    def test_interface_methods(self, chain_peg):
        _, vectorized = build_vectorized(
            chain_peg, chain_query(), alpha=0.1, use_context=False,
            max_length=1,
        )
        vectorized.reduce()
        counts = vectorized.alive_counts()
        assert vectorized.search_space_size() == pytest.approx(
            float(counts[0]) * float(counts[1]) if len(counts) == 2
            else float(counts[0])
        )
        for i in range(vectorized.k):
            for vid in vectorized.alive_vertex_ids(i):
                assert vectorized.is_alive(i, vid)
                assert vectorized.candidate_of(i, vid) is not None


class TestReductionStatsProduct:
    def test_empty_sizes_report_zero_search_space(self):
        from repro.query.kpartite import ReductionStats

        stats = ReductionStats()
        assert stats.initial_search_space == 0.0
        assert stats.after_structure_search_space == 0.0
        assert stats.final_search_space == 0.0

    def test_nonempty_sizes_multiply(self):
        from repro.query.kpartite import ReductionStats

        stats = ReductionStats(
            initial_sizes=(3, 4), after_structure_sizes=(2, 2),
            final_sizes=(0, 2),
        )
        assert stats.initial_search_space == 12.0
        assert stats.after_structure_search_space == 4.0
        assert stats.final_search_space == 0.0


def build_candidates(peg, query, alpha, use_context=True, max_length=2):
    """Decomposition + per-partition candidates (no k-partite graph)."""
    index = build_path_index(peg, max_length=max_length, beta=0.05)
    context = build_context(peg)
    decomposition = decompose_query(
        query, index.estimate_cardinality, alpha, max_length
    )
    finder = CandidateFinder(
        peg, query, alpha, index=index, context=context,
        use_context=use_context,
    )
    candidates = {
        i: finder.find(path)[0] for i, path in enumerate(decomposition.paths)
    }
    return decomposition, candidates


class TestLinkBuilderEdgeCases:
    """Edge cases shared by both link builders (reference = vectorized)."""

    def test_single_partition_decomposition_empty_links(self, chain_peg):
        from repro.query.kpartite import build_candidate_links
        from repro.query.links import build_candidate_links_vectorized

        # A single-edge query decomposes into exactly one path.
        query = QueryGraph({"u": "a", "v": "b"}, [("u", "v")])
        decomposition, candidates = build_candidates(
            chain_peg, query, alpha=0.1, use_context=False, max_length=2,
        )
        assert len(decomposition.paths) == 1
        reference = build_candidate_links(
            chain_peg, decomposition, candidates, 0.1
        )
        vectorized = build_candidate_links_vectorized(
            chain_peg, decomposition, candidates, 0.1
        )
        assert reference == {}
        assert vectorized.pair_lists() == {}
        assert vectorized.num_pairs() == 0
        # A single-partition k-partite graph still reduces fine.
        kpartite = CandidateKPartiteGraph(
            chain_peg, decomposition, candidates, 0.1
        )
        stats = kpartite.reduce()
        assert stats.structure_removed == 0

    def test_zero_candidate_partition(self, chain_peg):
        from repro.query.kpartite import build_candidate_links
        from repro.query.links import build_candidate_links_vectorized

        decomposition, candidates = build_candidates(
            chain_peg, chain_query(), alpha=0.1, use_context=False,
            max_length=1,
        )
        assert len(decomposition.paths) >= 2
        candidates[0] = []
        reference = build_candidate_links(
            chain_peg, decomposition, candidates, 0.1
        )
        vectorized = build_candidate_links_vectorized(
            chain_peg, decomposition, candidates, 0.1
        )
        assert vectorized.pair_lists() == reference
        for pair, pairs in reference.items():
            if 0 in pair:
                assert pairs == []
        # Both backends survive the empty partition end to end.
        python = CandidateKPartiteGraph(
            chain_peg, decomposition, candidates, 0.1, links=reference
        )
        assert python.reduce().final_sizes[0] == 0
        from repro.query.reduction import VectorizedKPartiteGraph

        vec = VectorizedKPartiteGraph(
            chain_peg, decomposition, candidates, 0.1, links=vectorized
        )
        assert vec.reduce().final_sizes[0] == 0

    def test_alpha_exactly_at_joined_probability_boundary(self, chain_peg):
        import numpy as np

        from repro.query.join_candidates import joined_probability
        from repro.query.kpartite import build_candidate_links
        from repro.query.links import build_candidate_links_vectorized

        decomposition, candidates = build_candidates(
            chain_peg, chain_query(), alpha=0.05, use_context=False,
            max_length=1,
        )
        loose = build_candidate_links(
            chain_peg, decomposition, candidates, 0.05
        )
        (i, j), pairs = next(
            (pair, ps) for pair, ps in sorted(loose.items()) if ps
        )
        vid, uid = pairs[0]
        boundary = joined_probability(
            chain_peg, decomposition, i, candidates[i][vid],
            j, candidates[j][uid],
        )
        just_above = float(np.nextafter(boundary, 2.0))
        for alpha, expect_kept in ((boundary, True), (just_above, False)):
            reference = build_candidate_links(
                chain_peg, decomposition, candidates, alpha
            )
            vectorized = build_candidate_links_vectorized(
                chain_peg, decomposition, candidates, alpha
            )
            assert vectorized.pair_lists() == reference, alpha
            assert ((vid, uid) in reference[(i, j)]) is expect_kept, alpha

    def test_boundary_filtering_through_cache_milli_bucket(self, chain_peg):
        """Two alphas in one milli-bucket share a cache entry yet filter
        exactly: the entry stores pre-filter probabilities and retrieval
        applies the caller's exact threshold."""
        import numpy as np

        from repro.index.builder import _milli
        from repro.query.join_candidates import joined_probability
        from repro.query.links import (
            LinkStructureCache,
            build_candidate_links_vectorized,
        )

        decomposition, candidates = build_candidates(
            chain_peg, chain_query(), alpha=0.05, use_context=False,
            max_length=1,
        )
        cache = LinkStructureCache()
        cold = build_candidate_links_vectorized(
            chain_peg, decomposition, candidates, 0.05, cache=cache
        )
        (i, j), pairs = next(
            (pair, ps) for pair, ps in sorted(cold.pair_lists().items())
            if ps
        )
        vid, uid = pairs[0]
        boundary = joined_probability(
            chain_peg, decomposition, i, candidates[i][vid],
            j, candidates[j][uid],
        )
        just_above = float(np.nextafter(boundary, 2.0))
        assert _milli(boundary) == _milli(just_above)
        at = build_candidate_links_vectorized(
            chain_peg, decomposition, candidates, boundary, cache=cache
        )
        above = build_candidate_links_vectorized(
            chain_peg, decomposition, candidates, just_above, cache=cache
        )
        assert at.stats["cache_misses"] > 0  # 0.05 lives in another bucket
        assert above.stats["cache_hits"] > 0
        assert above.stats["cache_misses"] == 0
        assert (vid, uid) in at.pair_lists()[(i, j)]
        assert (vid, uid) not in above.pair_lists()[(i, j)]

    def test_num_threads_clamped_to_one(self, chain_peg):
        decomposition, candidates = build_candidates(
            chain_peg, chain_query(), alpha=0.1, use_context=False,
            max_length=1,
        )
        for requested in (0, -3):
            kpartite = CandidateKPartiteGraph(
                chain_peg, decomposition, candidates, 0.1,
                parallel=True, num_threads=requested,
            )
            assert kpartite.num_threads == 1
            kpartite.reduce()  # the clamped pool must still reduce
