"""Unit tests for repro.index.context (c, ppu, fpu tables)."""

import pytest

from repro.index.context import build_context
from repro.peg import build_peg
from repro.pgd import pgd_from_edge_list


def fs(*items):
    return frozenset(items)


@pytest.fixture
def star_peg():
    """The Figure-3 style example: a hub v1 with labeled neighbors."""
    return build_peg(
        pgd_from_edge_list(
            node_labels={
                "v1": "c",
                "n1": {"a": 0.9, "b": 0.1},
                "n2": {"a": 0.8, "b": 0.2},
                "n3": "a",
                "n4": {"a": 1.0},
                "n5": "b",
            },
            edges=[
                ("v1", "n1", 0.2),
                ("v1", "n2", 0.9),
                ("v1", "n3", 0.2),
                ("v1", "n4", 0.3),
                ("v1", "n5", 1.0),
            ],
        )
    )


class TestContextTables:
    def test_cardinality(self, star_peg):
        context = build_context(star_peg)
        hub = star_peg.id_of(fs("v1"))
        # neighbors that can be 'a': n1, n2, n3, n4; 'b': n1, n2, n5
        assert context.cardinality(hub, "a") == 4
        assert context.cardinality(hub, "b") == 3
        assert context.cardinality(hub, "missing") == 0

    def test_partial_upperbound(self, star_peg):
        context = build_context(star_peg)
        hub = star_peg.id_of(fs("v1"))
        # best edge probability into an 'a'-capable neighbor: n2 at 0.9
        assert context.partial_upperbound(hub, "a") == pytest.approx(0.9)
        # best into 'b': n5 at 1.0
        assert context.partial_upperbound(hub, "b") == pytest.approx(1.0)

    def test_full_upperbound(self, star_peg):
        context = build_context(star_peg)
        hub = star_peg.id_of(fs("v1"))
        # full bound weighs the label: max over neighbors of P(l)·P(e):
        # n1: 0.9*0.2=0.18, n2: 0.8*0.9=0.72, n3: 1*0.2, n4: 1*0.3
        assert context.full_upperbound(hub, "a") == pytest.approx(0.72)
        # b: n1 0.1*0.2, n2 0.2*0.9, n5 1*1 -> 1.0
        assert context.full_upperbound(hub, "b") == pytest.approx(1.0)

    def test_fpu_never_exceeds_ppu(self, star_peg):
        context = build_context(star_peg)
        for node in star_peg.node_ids():
            for label in context.sigma:
                assert context.full_upperbound(node, label) <= \
                    context.partial_upperbound(node, label) + 1e-12

    def test_leaf_sees_hub(self, star_peg):
        context = build_context(star_peg)
        leaf = star_peg.id_of(fs("n3"))
        assert context.cardinality(leaf, "c") == 1
        assert context.partial_upperbound(leaf, "c") == pytest.approx(0.2)

    def test_as_rows(self, star_peg):
        context = build_context(star_peg)
        rows = context.as_rows(star_peg.id_of(fs("v1")))
        assert rows["a"]["c"] == 4
        assert rows["a"]["ppu"] == pytest.approx(0.9)
        assert rows["a"]["fpu"] == pytest.approx(0.72)


class TestReferenceSharingExcluded:
    def test_conflicting_neighbors_not_counted(self):
        peg = build_peg(
            pgd_from_edge_list(
                node_labels={"x": "a", "y": "b", "z": "b"},
                edges=[("x", "y", 1.0), ("x", "z", 1.0), ("y", "z", 1.0)],
                reference_sets=[(("x", "y"), 0.5)],
            )
        )
        context = build_context(peg)
        # {x, y} merged entity neighbors {z} only; singleton {x}'s
        # neighborhood excludes nothing it conflicts with ({y} is fine,
        # the merged {x,y} shares reference x so it is excluded).
        merged = peg.id_of(frozenset({"x", "y"}))
        single_x = peg.id_of(frozenset({"x"}))
        assert context.cardinality(merged, "b") == 1  # only {z}
        # {x}'s b-neighbors: {y} and {z} but NOT {x,y} (shares x).
        assert context.cardinality(single_x, "b") == 2


class TestConditionalContext:
    def test_uses_max_over_own_labels(self):
        peg = build_peg(
            pgd_from_edge_list(
                node_labels={"u": {"a": 0.5, "b": 0.5}, "w": "c"},
                edges=[("u", "w", {("a", "c"): 0.9, ("b", "c"): 0.2})],
            )
        )
        context = build_context(peg)
        node_u = peg.id_of(frozenset({"u"}))
        # w's edge probability depends on u's (unknown) label; the bound
        # maximizes over it: 0.9.
        assert context.partial_upperbound(node_u, "c") == pytest.approx(0.9)
        assert context.full_upperbound(node_u, "c") == pytest.approx(0.9)


class TestSparseIdSpace:
    """Regression: tables must stay addressable by raw node id after
    live merges tombstone ids and the id space goes sparse."""

    def _merged_peg(self):
        from repro.datasets import SyntheticConfig, generate_synthetic_pgd
        from repro.delta import AddEntity, MergeEntities
        from repro.query import QueryEngine

        peg = build_peg(
            generate_synthetic_pgd(
                SyntheticConfig(num_references=10, num_labels=2, seed=8)
            )
        )
        engine = QueryEngine(peg, max_length=2, beta=0.05)
        sigma = sorted(peg.sigma, key=repr)
        engine.apply_updates([
            AddEntity(("ctx-a",), {sigma[0]: 1.0}, 0.9),
            AddEntity(("ctx-b",), {sigma[1]: 1.0}, 0.8),
        ])
        engine.apply_updates([MergeEntities(("ctx-a",), ("ctx-b",))])
        return peg, engine, sigma

    def test_rows_sized_by_id_space_after_merge(self):
        peg, engine, sigma = self._merged_peg()
        context = build_context(peg)
        removed = [n for n in peg.node_ids() if peg.is_removed_id(n)]
        assert removed, "merge must tombstone ids for this regression"
        # Every id in the (sparse) id space reads without error; the
        # merged node's fresh id sits past the tombstones.
        for node in peg.node_ids():
            for label in sigma:
                context.cardinality(node, label)
                context.partial_upperbound(node, label)
                context.full_upperbound(node, label)
        # Tombstoned rows are explicit zeros.
        for node in removed:
            for label in sigma:
                assert context.cardinality(node, label) == 0
                assert context.full_upperbound(node, label) == 0.0

    def test_live_rows_match_direct_recomputation(self):
        peg, engine, sigma = self._merged_peg()
        context = build_context(peg)
        for node in peg.node_ids():
            if peg.is_removed_id(node):
                continue
            for label in sigma:
                expected = sum(
                    1
                    for nbr in peg.neighbor_ids(node)
                    if not peg.shares_references_id(node, nbr)
                    and label in peg.possible_labels_id(nbr)
                )
                assert context.cardinality(node, label) == expected, (
                    node, label,
                )
