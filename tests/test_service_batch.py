"""Batched serving: grouped evaluation, dedup, and concurrency stress.

The stress test drives :meth:`QueryService.submit_batch` under mixed
batch/single traffic from many threads and asserts the service neither
deadlocks nor loses a request: every future resolves to the correct
result, the stats counters add up to exactly the number of logical
requests observed, and the in-flight gauge returns to zero.
"""

from __future__ import annotations

import threading

import pytest

from repro.peg import build_peg
from repro.query import QueryEngine, QueryGraph
from repro.service import QueryService
from repro.utils.errors import ServiceError

from tests.conftest import small_random_peg


@pytest.fixture(scope="module")
def serving_setup():
    peg = small_random_peg(seed=5)
    engine = QueryEngine(peg, max_length=2, beta=0.1, num_shards=3)
    sigma = sorted(peg.sigma, key=repr)
    queries = [
        QueryGraph({"u": sigma[i % len(sigma)], "v": sigma[(i + 1) % len(sigma)]},
                   [("u", "v")])
        for i in range(3)
    ]
    queries.append(
        QueryGraph(
            {"a": sigma[0], "b": sigma[1], "c": sigma[0]},
            [("a", "b"), ("b", "c")],
        )
    )
    return engine, queries


def match_keys(result):
    return sorted(
        (m.nodes, m.edges, round(m.probability, 9)) for m in result.matches
    )


class TestSubmitBatch:
    def test_batch_results_match_individual(self, serving_setup):
        engine, queries = serving_setup
        requests = [(query, 0.3) for query in queries]
        with QueryService(engine, num_workers=2, cache_size=0) as service:
            expected = [engine.query(query, alpha) for query, alpha in requests]
            results = service.query_batch(requests)
            for got, want in zip(results, expected):
                assert match_keys(got) == match_keys(want)

    def test_batch_counters_and_dedup(self, serving_setup):
        engine, queries = serving_setup
        requests = [(query, 0.3) for query in queries]
        # Duplicates inside one batch collapse onto the batch leader.
        doubled = requests + requests
        with QueryService(engine, num_workers=2) as service:
            service.query_batch(doubled)
            snap = service.stats_snapshot()
            assert snap["requests"] == len(doubled)
            assert snap["misses"] == len(requests)
            assert snap["deduplicated"] == len(requests)
            assert snap["in_flight"] == 0
            # A second submission is all cache hits.
            service.query_batch(doubled)
            snap = service.stats_snapshot()
            assert snap["hits"] == len(doubled)
            assert snap["requests"] == 2 * len(doubled)

    def test_empty_batch(self, serving_setup):
        engine, _ = serving_setup
        with QueryService(engine, num_workers=1) as service:
            assert service.submit_batch([]) == []

    def test_invalid_request_does_not_poison_batch(self, serving_setup):
        from repro.utils.errors import QueryError

        engine, queries = serving_setup
        requests = [
            (queries[0], 0.3),
            (queries[1], 1.5),   # invalid threshold
            (queries[2], 0.3),
        ]
        with QueryService(engine, num_workers=2, cache_size=0) as service:
            futures = service.submit_batch(requests)
            with pytest.raises(QueryError):
                futures[1].result(timeout=30)
            # The valid co-batched requests still resolve normally.
            assert match_keys(futures[0].result(timeout=30)) == match_keys(
                engine.query(queries[0], 0.3)
            )
            assert match_keys(futures[2].result(timeout=30)) == match_keys(
                engine.query(queries[2], 0.3)
            )

    def test_malformed_query_does_not_leak_inflight(self, serving_setup):
        from repro.utils.errors import QueryError

        engine, queries = serving_setup
        requests = [
            (queries[0], 0.3),
            (None, 0.3),         # request_key would blow up on this
            (queries[1], 0.3),
        ]
        with QueryService(engine, num_workers=2, cache_size=0) as service:
            futures = service.submit_batch(requests)
            with pytest.raises(QueryError):
                futures[1].result(timeout=30)
            futures[0].result(timeout=30)
            futures[2].result(timeout=30)
            # Nothing stays registered: an identical follow-up request
            # must evaluate (not attach to a dead future) and resolve.
            assert service._inflight == {}
            follow_up = service.submit(queries[0], 0.3)
            assert match_keys(follow_up.result(timeout=30)) == match_keys(
                engine.query(queries[0], 0.3)
            )

    def test_closed_service_rejects_batches(self, serving_setup):
        engine, queries = serving_setup
        service = QueryService(engine, num_workers=1)
        service.close()
        with pytest.raises(ServiceError):
            service.submit_batch([(queries[0], 0.3)])


class TestMixedTrafficStress:
    """submit_batch and submit interleaved from many threads."""

    NUM_BATCH_THREADS = 4
    NUM_SINGLE_THREADS = 4
    ROUNDS = 6

    def test_no_deadlock_and_consistent_stats(self, serving_setup):
        engine, queries = serving_setup
        alphas = (0.25, 0.4)
        reference = {
            (i, alpha): match_keys(engine.query(query, alpha))
            for i, query in enumerate(queries)
            for alpha in alphas
        }
        # cache_size=0 keeps every request on the miss/dedup path, the
        # most contended one.
        service = QueryService(engine, num_workers=3, cache_size=0)
        start_gate = threading.Event()
        failures: list = []
        submitted = []
        submitted_lock = threading.Lock()

        def record(count):
            with submitted_lock:
                submitted.append(count)

        def batch_worker(offset):
            start_gate.wait(timeout=5)
            try:
                for round_num in range(self.ROUNDS):
                    alpha = alphas[(round_num + offset) % len(alphas)]
                    requests = [(query, alpha) for query in queries]
                    futures = service.submit_batch(requests)
                    record(len(requests))
                    for i, future in enumerate(futures):
                        got = match_keys(future.result(timeout=60))
                        if got != reference[(i, alpha)]:
                            failures.append((offset, round_num, i, alpha))
            except Exception as exc:  # pragma: no cover - failure path
                failures.append(exc)

        def single_worker(offset):
            start_gate.wait(timeout=5)
            try:
                for round_num in range(self.ROUNDS):
                    i = (round_num + offset) % len(queries)
                    alpha = alphas[round_num % len(alphas)]
                    future = service.submit(queries[i], alpha)
                    record(1)
                    got = match_keys(future.result(timeout=60))
                    if got != reference[(i, alpha)]:
                        failures.append((offset, round_num, i, alpha))
            except Exception as exc:  # pragma: no cover - failure path
                failures.append(exc)

        threads = [
            threading.Thread(target=batch_worker, args=(t,))
            for t in range(self.NUM_BATCH_THREADS)
        ] + [
            threading.Thread(target=single_worker, args=(t,))
            for t in range(self.NUM_SINGLE_THREADS)
        ]
        for thread in threads:
            thread.start()
        start_gate.set()
        for thread in threads:
            thread.join(timeout=120)
        alive = [t for t in threads if t.is_alive()]
        try:
            assert not alive, f"{len(alive)} workers deadlocked"
            assert not failures, failures[:5]
            total = sum(submitted)
            expected_total = (
                self.NUM_BATCH_THREADS * self.ROUNDS * len(queries)
                + self.NUM_SINGLE_THREADS * self.ROUNDS
            )
            assert total == expected_total
            snap = service.stats_snapshot()
            # Every logical request is observed exactly once: as a hit
            # (impossible here: cache disabled), a miss, or a dedup.
            assert snap["hits"] == 0
            assert snap["misses"] + snap["deduplicated"] == total
            assert snap["in_flight"] == 0
            assert snap["errors"] == 0
        finally:
            service.close()
