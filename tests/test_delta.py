"""Live-update subsystem: mutation log, overlay index, versioned caches."""

from __future__ import annotations

import random

import pytest

from repro.delta import (
    AddEdge,
    AddEntity,
    DeltaOverlayIndex,
    MergeEntities,
    MutationLog,
    UpdateEdgeDistribution,
    UpdateLabelProbability,
    apply_mutations,
    op_from_json,
    op_to_json,
)
from repro.datasets import random_query
from repro.pgd import BernoulliEdge, ConditionalEdge
from repro.peg import build_peg
from repro.query import QueryEngine, QueryGraph
from repro.service import QueryService
from repro.utils.errors import DeltaError, IndexError_, ServiceError
from tests.conftest import small_random_peg


def match_keys(matches):
    return sorted(
        (m.nodes, m.edges, round(m.probability, 9)) for m in matches
    )


def path_keys(paths):
    return sorted((p.nodes, round(p.prle, 12), round(p.prn, 12)) for p in paths)


def all_sequences(engine_a, engine_b):
    """Union of canonical sequences both indexes know about."""
    def sequences(index):
        base = index.base if isinstance(index, DeltaOverlayIndex) else index
        return set(base.histograms)

    return sequences(engine_a.index) | sequences(engine_b.index)


def assert_index_agrees(engine, rebuilt, alphas=(0.1, 0.3, 0.6)):
    """Overlay lookups must equal a from-scratch rebuild, sequence by
    sequence."""
    for seq in all_sequences(engine, rebuilt):
        for alpha in alphas:
            got = path_keys(engine.index.lookup_canonical(seq, alpha))
            want = path_keys(rebuilt.index.lookup_canonical(seq, alpha))
            assert got == want, (seq, alpha)


def singleton_ids(peg):
    """Live node ids whose identity component has exactly one entity."""
    return [
        node
        for node in peg.node_ids()
        if not peg.is_removed_id(node)
        and len(peg.component_of(peg.entity_of(node)).entities) == 1
    ]


def refs(peg, node_id):
    return tuple(sorted(peg.entity_of(node_id), key=repr))


@pytest.fixture
def peg():
    return small_random_peg(seed=1234, num_references=40)


@pytest.fixture
def engine(peg):
    return QueryEngine(peg, max_length=2, beta=0.05)


class TestMutationOps:
    def test_json_round_trip(self):
        ops = [
            AddEntity(("x", "y"), {"A": 0.6, "B": 0.4}, 0.9),
            AddEdge(("x",), ("y",), BernoulliEdge(0.8)),
            UpdateLabelProbability(("x",), {"A": 1.0}),
            UpdateEdgeDistribution(
                ("x",), ("y",),
                ConditionalEdge({("A", "B"): 0.7}, default=0.1),
            ),
            MergeEntities(("x",), ("y",), {"A": 1.0}, 0.5),
            MergeEntities(("x",), ("y",)),
        ]
        for op in ops:
            assert op_from_json(op_to_json(op)) == op

    def test_malformed_specs_rejected(self):
        with pytest.raises(DeltaError):
            op_from_json({"op": "no_such_op"})
        with pytest.raises(DeltaError):
            op_from_json({"nodes": {}})
        with pytest.raises(DeltaError):
            op_from_json({"op": "add_entity", "refs": [1]})
        with pytest.raises(DeltaError):
            op_from_json(
                {"op": "add_edge", "refs_a": [1], "refs_b": [2],
                 "edge": "high"}
            )


class TestMutationLog:
    def test_append_replay_and_reopen(self, tmp_path):
        path = str(tmp_path / "mutations.log")
        ops = [
            AddEntity(("f1",), {"A": 1.0}),
            UpdateLabelProbability(("f1",), {"A": 0.5, "B": 0.5}),
        ]
        with MutationLog(path) as log:
            assert log.append_all(ops) == [0, 1]
            assert len(log) == 2
        with MutationLog(path) as log:
            assert len(log) == 2
            entries = log.replay()
            assert [e.seq for e in entries] == [0, 1]
            assert [e.op for e in entries] == ops
            assert log.append(ops[0]) == 2
            assert [e.seq for e in log.replay(after=1)] == [2]

    def test_torn_tail_recovery(self, tmp_path):
        """A crash mid-append must not poison replay on reopen."""
        path = str(tmp_path / "mutations.log")
        ops = [
            AddEntity(("f1",), {"A": 1.0}),
            UpdateLabelProbability(("f1",), {"A": 0.5, "B": 0.5}),
        ]
        with MutationLog(path) as log:
            log.append_all(ops)
        # Simulate the crash: a record header without its payload.
        with open(path, "ab") as handle:
            handle.write(b"\x00\x00\x01\x00" + b"partial")
        with MutationLog(path) as log:
            assert log.truncated is True
            assert len(log) == 2
            entries = log.replay()  # terminates cleanly, no raise
            assert [e.op for e in entries] == ops
            # the torn bytes were truncated away, so appends continue
            # the sequence on a well-formed log
            assert log.append(ops[0]) == 2
        with MutationLog(path) as log:
            assert log.truncated is False
            assert [e.seq for e in log.replay()] == [0, 1, 2]

    def test_clean_log_not_flagged_truncated(self, tmp_path):
        path = str(tmp_path / "mutations.log")
        with MutationLog(path) as log:
            log.append(AddEntity(("f1",), {"A": 1.0}))
        with MutationLog(path) as log:
            assert log.truncated is False

    def test_replay_is_idempotent(self, tmp_path, peg, engine):
        sigma = sorted(peg.sigma, key=repr)
        anchor = singleton_ids(peg)[0]
        log = MutationLog(str(tmp_path / "mutations.log"))
        ops = [
            AddEntity(("fresh-a",), {sigma[0]: 1.0}, 0.9),
            AddEdge(refs(peg, anchor), ("fresh-a",), BernoulliEdge(0.7)),
        ]
        summary = apply_mutations(engine, ops, log=log)
        assert summary["applied"] == 2
        assert engine.graph_version == 1
        assert engine.applied_mutation_seq == 1
        before = {
            seq: path_keys(engine.index.lookup_canonical(seq, 0.1))
            for seq in engine.index.base.histograms
        }

        # Replaying the whole log over the same engine applies nothing.
        replayed = apply_mutations(engine, log.replay())
        assert replayed["applied"] == 0
        assert replayed["skipped"] == 2
        assert engine.graph_version == 1
        for seq, want in before.items():
            assert path_keys(engine.index.lookup_canonical(seq, 0.1)) == want

        # A cold engine over the same (already mutated) PEG replays the
        # log as a no-op too: its graph already contains the changes,
        # so replay must be guarded by the high-water mark, which a
        # warm-started engine restores by applying the log exactly once.
        log.close()


class TestOverlayLookup:
    def test_fall_through_without_mutations(self, peg, engine):
        overlay = DeltaOverlayIndex(engine.index, peg)
        for seq in engine.index.histograms:
            assert path_keys(overlay.lookup_canonical(seq, 0.1)) == path_keys(
                engine.index.lookup_canonical(seq, 0.1)
            )
        assert overlay.num_paths() == engine.index.num_paths()
        assert overlay.dirty_nodes == frozenset()
        assert overlay.delta_path_count() == 0

    def test_clean_sequences_keep_base_results(self, peg, engine):
        """Paths that avoid dirty nodes are served verbatim from base."""
        base = engine.index
        base_content = {
            seq: path_keys(base.lookup_canonical(seq, 0.1))
            for seq in base.histograms
        }
        sigma = sorted(peg.sigma, key=repr)
        engine.apply_updates(
            [AddEntity(("island",), {sigma[0]: 1.0}, 0.8)]
        )
        overlay = engine.index
        assert isinstance(overlay, DeltaOverlayIndex)
        (island_id,) = overlay.dirty_nodes
        for seq, want in base_content.items():
            got = overlay.lookup_canonical(seq, 0.1)
            kept = [p for p in want if island_id not in p[0]]
            extra = [k for k in path_keys(got) if island_id in k[0]]
            assert sorted(set(path_keys(got)) - set(extra)) == kept

    def test_overlays_do_not_nest(self, peg, engine):
        overlay = DeltaOverlayIndex(engine.index, peg)
        with pytest.raises(DeltaError):
            DeltaOverlayIndex(overlay, peg)

    def test_estimate_includes_delta(self, peg, engine):
        sigma = sorted(peg.sigma, key=repr)
        anchor = singleton_ids(peg)[0]
        label = sigma[0]
        engine.apply_updates([
            AddEntity(("fresh-b",), {label: 1.0}, 1.0),
            AddEdge(refs(peg, anchor), ("fresh-b",), BernoulliEdge(1.0)),
        ])
        seq = (label,)
        estimate = engine.index.estimate_cardinality(seq, 0.9)
        base_estimate = engine.index.base.estimate_cardinality(seq, 0.9)
        assert estimate >= base_estimate + 1


class TestApplyAndCompact:
    def test_each_op_kind_matches_rebuild(self, peg, engine):
        sigma = sorted(peg.sigma, key=repr)
        ids = singleton_ids(peg)
        a, b = ids[0], ids[1]
        # A pair without an existing edge, for add_edge.
        c = next(
            i for i in ids[2:]
            if a not in peg.neighbor_ids(i) and i != a
        )
        existing_edge = next(
            (i, j) for i in ids for j in peg.neighbor_ids(i) if i < j
        )
        ops = [
            AddEntity(("n-1",), {sigma[0]: 0.6, sigma[1]: 0.4}, 0.9),
            AddEdge(refs(peg, a), ("n-1",), BernoulliEdge(0.75)),
            UpdateLabelProbability(refs(peg, b), {sigma[1]: 1.0}),
            UpdateEdgeDistribution(
                refs(peg, existing_edge[0]),
                refs(peg, existing_edge[1]),
                BernoulliEdge(0.2),
            ),
            MergeEntities(refs(peg, a), refs(peg, c)),
        ]
        summary = engine.apply_updates(ops)
        assert summary["applied"] == len(ops)
        assert summary["graph_version"] == 1

        rebuilt = QueryEngine(peg, max_length=2, beta=0.05)
        assert_index_agrees(engine, rebuilt)
        stats = engine.compact_updates()
        assert stats["sequences_rewritten"] > 0
        assert not isinstance(engine.index, DeltaOverlayIndex)
        assert_index_agrees(engine, rebuilt)
        # Histograms trued up: path counts match the rebuild exactly.
        assert engine.index.num_paths() == rebuilt.index.num_paths()

    def test_sharded_compact_matches_rebuild(self, peg):
        engine = QueryEngine(peg, max_length=2, beta=0.05, num_shards=3)
        sigma = sorted(peg.sigma, key=repr)
        anchor = singleton_ids(peg)[0]
        engine.apply_updates([
            AddEntity(("s-1",), {sigma[0]: 1.0}, 0.9),
            AddEdge(refs(peg, anchor), ("s-1",), BernoulliEdge(0.8)),
        ])
        rebuilt = QueryEngine(peg, max_length=2, beta=0.05, num_shards=3)
        assert_index_agrees(engine, rebuilt)
        engine.compact_updates()
        assert_index_agrees(engine, rebuilt)
        assert engine.index.num_paths() == rebuilt.index.num_paths()

    def test_save_offline_requires_compaction(self, tmp_path, peg, engine):
        sigma = sorted(peg.sigma, key=repr)
        engine.apply_updates([AddEntity(("u-1",), {sigma[0]: 1.0})])
        with pytest.raises(IndexError_):
            engine.save_offline(str(tmp_path / "bundle"))
        engine.compact_updates()
        engine.save_offline(str(tmp_path / "bundle"))
        reopened = QueryEngine.from_saved(peg, str(tmp_path / "bundle"))
        assert_index_agrees(engine, reopened)

    def test_invalid_ops_rejected(self, peg, engine):
        sigma = sorted(peg.sigma, key=repr)
        anchor = singleton_ids(peg)[0]
        existing = refs(peg, anchor)
        with pytest.raises(DeltaError):
            engine.apply_updates(
                [UpdateLabelProbability(("nope",), {sigma[0]: 1.0})]
            )
        with pytest.raises(DeltaError):
            engine.apply_updates(
                [AddEntity(existing, {sigma[0]: 1.0})]
            )
        neighbor = peg.neighbor_ids(anchor)[0]
        with pytest.raises(DeltaError):
            engine.apply_updates(
                [AddEdge(existing, refs(peg, neighbor), BernoulliEdge(0.5))]
            )
        non_neighbor = next(
            i for i in singleton_ids(peg)
            if i != anchor and i not in peg.neighbor_ids(anchor)
        )
        with pytest.raises(DeltaError):
            engine.apply_updates([
                UpdateEdgeDistribution(
                    existing, refs(peg, non_neighbor), BernoulliEdge(0.5)
                )
            ])

    def test_merge_requires_singleton_components(self, peg, engine):
        shared = next(
            (
                node
                for node in peg.node_ids()
                if len(peg.component_of(peg.entity_of(node)).entities) > 1
            ),
            None,
        )
        assert shared is not None, "fixture should have uncertain components"
        other = singleton_ids(peg)[0]
        with pytest.raises(DeltaError):
            engine.apply_updates(
                [MergeEntities(refs(peg, shared), refs(peg, other))]
            )

    def test_merged_entity_cannot_be_mutated_again(self, peg, engine):
        sigma = sorted(peg.sigma, key=repr)
        ids = singleton_ids(peg)
        a, b = ids[0], ids[1]
        refs_a = refs(peg, a)
        engine.apply_updates([MergeEntities(refs_a, refs(peg, b))])
        with pytest.raises(DeltaError):
            engine.apply_updates(
                [UpdateLabelProbability(refs_a, {sigma[0]: 1.0})]
            )


class TestServiceVersioning:
    def test_cache_never_serves_pre_mutation_results(self, peg):
        engine = QueryEngine(peg, max_length=2, beta=0.05)
        sigma = sorted(peg.sigma, key=repr)
        query = QueryGraph({"a": sigma[0], "b": sigma[1]}, [("a", "b")])
        with QueryService(engine, num_workers=2) as service:
            before = service.query(query, 0.2)
            # Second call is a cache hit.
            assert service.query(query, 0.2) is before
            assert service.stats_snapshot()["hits"] == 1

            # Raise one endpoint label to certainty: match set changes.
            target = next(
                node
                for node in singleton_ids(peg)
                if peg.label_probability_id(node, sigma[0]) > 0.0
            )
            service.apply_updates(
                [UpdateLabelProbability(refs(peg, target), {sigma[0]: 1.0})]
            )
            after = service.query(query, 0.2)
            assert after is not before
            rebuilt = QueryEngine(peg, max_length=2, beta=0.05)
            assert match_keys(after.matches) == match_keys(
                rebuilt.query(query, 0.2).matches
            )

    def test_process_executor_rejects_live_updates(self, tmp_path, peg):
        snapshot = str(tmp_path / "bundle")
        service = QueryService.build(
            peg, max_length=1, beta=0.2, snapshot_dir=snapshot,
            executor="process", num_workers=1,
        )
        try:
            with pytest.raises(ServiceError):
                service.apply_updates([AddEntity(("p-1",), {"x": 1.0})])
        finally:
            service.close()

    def test_updates_visible_under_concurrent_load(self, peg):
        engine = QueryEngine(peg, max_length=2, beta=0.05)
        sigma = sorted(peg.sigma, key=repr)
        rng = random.Random(7)
        queries = [
            random_query(2, 1, sigma, seed=rng.randrange(2**31))
            for _ in range(6)
        ]
        with QueryService(engine, num_workers=4, cache_size=64) as service:
            futures = [service.submit(q, 0.2) for q in queries for _ in (0, 1)]
            target = singleton_ids(peg)[0]
            service.apply_updates(
                [UpdateLabelProbability(refs(peg, target), {sigma[0]: 1.0})]
            )
            for future in futures:
                future.result(timeout=30)
            rebuilt = QueryEngine(peg, max_length=2, beta=0.05)
            for query in queries:
                assert match_keys(service.query(query, 0.2).matches) == \
                    match_keys(rebuilt.query(query, 0.2).matches)


class TestReviewRegressions:
    def test_invalid_merge_existence_leaves_graph_untouched(self, peg, engine):
        """Validation must precede tombstoning (no half-applied merges)."""
        ids = singleton_ids(peg)
        a, b = ids[0], ids[1]
        with pytest.raises(DeltaError):
            engine.apply_updates([
                MergeEntities(refs(peg, a), refs(peg, b),
                              existence_probability=1.5)
            ])
        assert not peg.is_removed_id(a) and not peg.is_removed_id(b)
        assert engine.graph_version == 0
        assert not isinstance(engine.index, DeltaOverlayIndex)

    def test_rejected_op_is_not_logged(self, tmp_path, peg, engine):
        """A failing op must not poison the durable log for replay."""
        sigma = sorted(peg.sigma, key=repr)
        log = MutationLog(str(tmp_path / "mutations.log"))
        good = AddEntity(("log-1",), {sigma[0]: 1.0}, 0.9)
        bad = UpdateLabelProbability(("missing",), {sigma[0]: 1.0})
        good2 = AddEntity(("log-2",), {sigma[0]: 1.0}, 0.9)
        with pytest.raises(DeltaError):
            engine.apply_updates([good, bad, good2], log=log)
        # Only the successfully applied prefix was logged; a fresh
        # engine replays it cleanly.
        assert len(log) == 1
        other_peg = small_random_peg(seed=1234, num_references=40)
        other = QueryEngine(other_peg, max_length=2, beta=0.05)
        summary = apply_mutations(other, log.replay())
        assert summary["applied"] == 1
        log.close()

    def test_admission_waits_for_apply(self, peg):
        """No evaluation may overlap graph surgery, even for requests
        admitted mid-update."""
        import threading

        engine = QueryEngine(peg, max_length=2, beta=0.05)
        sigma = sorted(peg.sigma, key=repr)
        query = QueryGraph({"a": sigma[0], "b": sigma[1]}, [("a", "b")])
        in_apply = threading.Event()
        release_apply = threading.Event()
        original_apply = engine.apply_updates

        def slow_apply(ops, log=None):
            in_apply.set()
            release_apply.wait(timeout=10)
            return original_apply(ops, log=log)

        engine.apply_updates = slow_apply
        target = singleton_ids(peg)[0]
        with QueryService(engine, num_workers=2) as service:
            applier = threading.Thread(
                target=service.apply_updates,
                args=([UpdateLabelProbability(
                    refs(peg, target), {sigma[0]: 1.0}
                )],),
            )
            applier.start()
            assert in_apply.wait(timeout=10)
            # A submit issued while the update is in progress must not
            # be admitted (and must not evaluate) until it completes.
            admitted = []
            submitter = threading.Thread(
                target=lambda: admitted.append(service.submit(query, 0.2))
            )
            submitter.start()
            submitter.join(timeout=0.3)
            assert submitter.is_alive(), "admission should block during apply"
            assert service._inflight == {}
            release_apply.set()
            applier.join(timeout=10)
            submitter.join(timeout=10)
            assert not submitter.is_alive()
            result = admitted[0].result(timeout=30)
            rebuilt = QueryEngine(peg, max_length=2, beta=0.05)
            assert match_keys(result.matches) == match_keys(
                rebuilt.query(query, 0.2).matches
            )


class TestDeltaAwareEstimates:
    """Pre-compaction estimates subtract the stale counts lookups observe."""

    def test_lookup_teaches_estimate_about_masked_paths(self, peg, engine):
        # Find a sequence with indexed paths through a mutable node.
        base = engine.index
        target_seq = None
        for seq in sorted(base.histograms, key=repr):
            paths = base.lookup_canonical(seq, base.beta)
            if paths:
                target_seq = seq
                victim = paths[0].nodes[0]
                break
        if target_seq is None:
            pytest.skip("index holds no paths for this fixture")
        sigma = sorted(peg.sigma, key=repr)
        engine.apply_updates([
            UpdateLabelProbability(refs(peg, victim), {sigma[0]: 1.0})
        ])
        overlay = engine.index
        assert isinstance(overlay, DeltaOverlayIndex)
        alpha = overlay.beta
        naive = overlay.estimate_cardinality(target_seq, alpha)
        true_count = len(overlay.lookup_canonical(target_seq, alpha))
        informed = overlay.estimate_cardinality(target_seq, alpha)
        # After the lookup recorded the masked count, the estimate can
        # only have moved toward the true overlay-served cardinality.
        assert abs(informed - true_count) <= abs(naive - true_count) + 1e-9

    def test_stale_counts_cleared_by_refresh_and_compact(self, peg, engine):
        sigma = sorted(peg.sigma, key=repr)
        anchor = singleton_ids(peg)[0]
        engine.apply_updates([
            UpdateLabelProbability(refs(peg, anchor), {sigma[0]: 1.0})
        ])
        overlay = engine.index
        for seq in sorted(overlay.base.histograms, key=repr):
            overlay.lookup_canonical(seq, overlay.beta)
        assert overlay._stale_counts
        engine.apply_updates([
            AddEntity(("stale-x",), {sigma[0]: 1.0}, 0.9)
        ])
        # absorb() refreshed the delta: old memos describe a stale dirty set
        assert not overlay._stale_counts
        overlay.lookup_canonical(
            sorted(overlay.base.histograms, key=repr)[0], overlay.beta
        )
        engine.compact_updates()
        assert not overlay._stale_counts
