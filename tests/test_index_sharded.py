"""Sharded path index: partitioning invariants and builder equivalence.

The property-based section pins down the shard-partitioning contract:

* :func:`~repro.index.sharded.shard_for_sequence` is deterministic,
  orientation-invariant, and in range;
* every indexed canonical sequence lives in **exactly one** shard;
* the union of per-shard lookups equals the unsharded lookup;
* cardinality estimates sum correctly across shards (every non-owning
  shard contributes exactly zero).
"""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.index import (
    PathIndexProtocol,
    ShardedPathIndex,
    build_path_index,
    build_sharded_path_index,
    canonical_sequence,
    shard_for_sequence,
)
from repro.utils.errors import IndexError_

from tests.conftest import small_random_peg

MAX_LENGTH = 2
BETA = 0.1
NUM_SHARDS = 4

_LABELS = st.one_of(
    st.integers(min_value=-5, max_value=5),
    st.text(alphabet="abcxyz", min_size=0, max_size=4),
    st.booleans(),
)
_SEQUENCES = st.lists(_LABELS, min_size=1, max_size=5).map(tuple)


# ----------------------------------------------------------------------
# shard_for_sequence properties
# ----------------------------------------------------------------------


class TestShardHash:
    @given(seq=_SEQUENCES, num_shards=st.integers(min_value=1, max_value=16))
    def test_in_range_and_deterministic(self, seq, num_shards):
        shard = shard_for_sequence(seq, num_shards)
        assert 0 <= shard < num_shards
        assert shard_for_sequence(seq, num_shards) == shard

    @given(seq=_SEQUENCES, num_shards=st.integers(min_value=1, max_value=16))
    def test_orientation_invariant(self, seq, num_shards):
        reverse = tuple(reversed(seq))
        assert shard_for_sequence(seq, num_shards) == shard_for_sequence(
            reverse, num_shards
        )
        assert shard_for_sequence(
            canonical_sequence(seq), num_shards
        ) == shard_for_sequence(seq, num_shards)

    def test_stable_across_runs(self):
        # Pinned values: the hash must not depend on PYTHONHASHSEED or
        # the process — a change here breaks every saved sharded bundle.
        assert shard_for_sequence(("a", "b"), 4) == shard_for_sequence(
            ("b", "a"), 4
        )
        assert shard_for_sequence((0, 1, 0), 1) == 0

    def test_rejects_bad_shard_count(self):
        with pytest.raises(IndexError_):
            shard_for_sequence(("a",), 0)


# ----------------------------------------------------------------------
# Partitioning invariants of a built index
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def indexes():
    peg = small_random_peg(seed=11)
    unsharded = build_path_index(peg, max_length=MAX_LENGTH, beta=BETA)
    sharded = build_sharded_path_index(
        peg, NUM_SHARDS, max_length=MAX_LENGTH, beta=BETA
    )
    return unsharded, sharded


def _lookup_keys(index, seq, alpha):
    return sorted(
        (path.nodes, round(path.probability, 12))
        for path in index.lookup(seq, alpha)
    )


class TestPartitioningInvariants:
    def test_is_a_path_index(self, indexes):
        _, sharded = indexes
        assert isinstance(sharded, PathIndexProtocol)
        assert sharded.num_shards == NUM_SHARDS

    def test_no_sequence_in_two_shards(self, indexes):
        _, sharded = indexes
        seen: dict = {}
        for shard_id, shard in enumerate(sharded.shards):
            for seq in shard.histograms:
                assert seq not in seen, (
                    f"sequence {seq!r} stored in shards {seen[seq]} "
                    f"and {shard_id}"
                )
                seen[seq] = shard_id
                assert shard_id == sharded.shard_for(seq)
        # ... and the store contents agree with the histograms.
        for shard_id, shard in enumerate(sharded.shards):
            for seq in shard.store.label_sequences():
                assert sharded.shard_for(seq) == shard_id

    def test_shards_cover_every_sequence(self, indexes):
        unsharded, sharded = indexes
        assert set(unsharded.histograms) == set(sharded.histograms)
        assert unsharded.num_paths() == sharded.num_paths()
        assert unsharded.num_sequences() == sharded.num_sequences()

    @pytest.mark.parametrize("alpha", [BETA, 0.25, 0.6, 0.95])
    def test_union_of_shard_lookups_equals_unsharded(self, indexes, alpha):
        unsharded, sharded = indexes
        for seq in unsharded.histograms:
            expected = _lookup_keys(unsharded, seq, alpha)
            assert _lookup_keys(sharded, seq, alpha) == expected
            # The union over *all* shards is the same set: non-owning
            # shards contribute nothing.
            union = []
            for shard in sharded.shards:
                union.extend(
                    (path.nodes, round(path.probability, 12))
                    for path in shard.lookup(seq, alpha)
                )
            assert sorted(union) == expected

    @pytest.mark.parametrize("alpha", [BETA, 0.3, 0.7])
    def test_estimate_cardinality_sums_across_shards(self, indexes, alpha):
        unsharded, sharded = indexes
        for seq in unsharded.histograms:
            expected = unsharded.estimate_cardinality(seq, alpha)
            total = sum(
                shard.estimate_cardinality(seq, alpha)
                for shard in sharded.shards
            )
            assert total == pytest.approx(expected)
            assert sharded.estimate_cardinality(seq, alpha) == pytest.approx(
                expected
            )

    def test_unindexed_sequence_everywhere_empty(self, indexes):
        unsharded, sharded = indexes
        ghost = ("no-such-label", "really-not")
        assert sharded.lookup(ghost, 0.5) == []
        assert sharded.estimate_cardinality(ghost, 0.5) == 0.0
        assert unsharded.lookup(ghost, 0.5) == []


# ----------------------------------------------------------------------
# Builder shapes and validation
# ----------------------------------------------------------------------


class TestShardedBuilder:
    def test_parallel_build_matches_serial(self, indexes, tmp_path):
        peg = small_random_peg(seed=11)
        unsharded, _ = indexes
        parallel = build_sharded_path_index(
            peg,
            3,
            max_length=MAX_LENGTH,
            beta=BETA,
            directory=str(tmp_path),
            num_processes=2,
        )
        assert parallel.num_paths() == unsharded.num_paths()
        for seq in unsharded.histograms:
            assert _lookup_keys(parallel, seq, 0.3) == _lookup_keys(
                unsharded, seq, 0.3
            )

    def test_single_shard_equals_unsharded(self, indexes):
        peg = small_random_peg(seed=11)
        unsharded, _ = indexes
        single = build_sharded_path_index(
            peg, 1, max_length=MAX_LENGTH, beta=BETA
        )
        assert single.num_shards == 1
        assert single.num_paths() == unsharded.num_paths()

    def test_parallel_build_requires_directory(self):
        peg = small_random_peg(seed=11)
        with pytest.raises(IndexError_, match="directory"):
            build_sharded_path_index(
                peg, 2, max_length=1, beta=0.5, num_processes=2
            )

    def test_rejects_mismatched_shards(self, indexes):
        unsharded, _ = indexes
        peg = small_random_peg(seed=11)
        other = build_path_index(peg, max_length=1, beta=0.5)
        with pytest.raises(IndexError_, match="share max_length"):
            ShardedPathIndex([unsharded, other])

    def test_rebuild_clears_stale_state(self, indexes, tmp_path):
        """Rebuilding into a used directory must not inherit anything."""
        import os

        peg = small_random_peg(seed=11)
        unsharded, _ = indexes
        directory = str(tmp_path)
        build_sharded_path_index(
            peg, 4, max_length=MAX_LENGTH, beta=BETA, directory=directory
        )
        # Simulate a crashed parallel build: leftover spill data that a
        # naive rebuild would merge in as duplicates.
        spill = tmp_path / "spill"
        spill.mkdir()
        (spill / "part-000-shard-000.pkl").write_bytes(b"stale")
        rebuilt = build_sharded_path_index(
            peg, 2, max_length=MAX_LENGTH, beta=BETA, directory=directory
        )
        assert rebuilt.num_paths() == unsharded.num_paths()
        assert not spill.exists()
        # The shard-02/shard-03 stores of the 4-shard build are gone.
        leftover = [
            name for name in os.listdir(directory)
            if name.startswith("shard-")
        ]
        assert sorted(leftover) == ["shard-00", "shard-01"]
        for seq in unsharded.histograms:
            assert _lookup_keys(rebuilt, seq, 0.3) == _lookup_keys(
                unsharded, seq, 0.3
            )

    def test_stats_aggregate(self, indexes):
        unsharded, sharded = indexes
        stats = sharded.stats()
        assert stats["num_shards"] == NUM_SHARDS
        assert stats["paths"] == unsharded.num_paths()
        assert sum(stats["paths_per_shard"]) == stats["paths"]
