"""Unit tests for repro.datasets.synthetic."""

import pytest

from repro.datasets.synthetic import (
    SyntheticConfig,
    generate_synthetic_pgd,
    preferential_attachment_edges,
    skewed_edge_probability,
    zipf_label_distribution,
)
from repro.peg import build_peg
from repro.utils.errors import ModelError
from repro.utils.rng import ensure_rng


class TestPreferentialAttachment:
    def test_edge_count(self):
        edges = preferential_attachment_edges(100, 3, ensure_rng(0))
        # seed clique C(4,2)=6 edges + 96 nodes * 3 edges
        assert len(edges) == 6 + 96 * 3

    def test_no_duplicates_or_self_loops(self):
        edges = preferential_attachment_edges(100, 3, ensure_rng(1))
        seen = set()
        for a, b in edges:
            assert a != b
            key = frozenset((a, b))
            assert key not in seen
            seen.add(key)

    def test_skewed_degrees(self):
        """Preferential attachment produces hubs."""
        edges = preferential_attachment_edges(500, 2, ensure_rng(2))
        degree: dict = {}
        for a, b in edges:
            degree[a] = degree.get(a, 0) + 1
            degree[b] = degree.get(b, 0) + 1
        degrees = sorted(degree.values(), reverse=True)
        assert degrees[0] > 5 * (sum(degrees) / len(degrees))

    def test_too_few_nodes_rejected(self):
        with pytest.raises(ModelError):
            preferential_attachment_edges(3, 3, ensure_rng(0))

    def test_reproducible(self):
        assert preferential_attachment_edges(50, 2, ensure_rng(7)) == \
            preferential_attachment_edges(50, 2, ensure_rng(7))


class TestProbabilityGenerators:
    def test_zipf_label_distribution_normalized(self):
        labels = ("a", "b", "c", "d")
        for seed in range(5):
            dist = zipf_label_distribution(labels, ensure_rng(seed))
            assert sum(p for _, p in dist.items()) == pytest.approx(1.0)

    def test_zipf_skew_present(self):
        """Across many draws the largest mass should clearly dominate."""
        labels = tuple("abcde")
        rng = ensure_rng(3)
        maxima = [
            max(p for _, p in zipf_label_distribution(labels, rng).items())
            for _ in range(200)
        ]
        assert sum(maxima) / len(maxima) > 1.5 / len(labels)

    def test_edge_probability_range_and_skew(self):
        rng = ensure_rng(4)
        draws = [skewed_edge_probability(rng) for _ in range(500)]
        assert all(0.0 < p < 1.0 for p in draws)
        assert sum(draws) / len(draws) > 0.5  # skewed toward existence


class TestGenerateSyntheticPgd:
    def test_paper_ratios(self):
        config = SyntheticConfig(num_references=200, seed=0)
        pgd = generate_synthetic_pgd(config)
        stats = pgd.stats()
        assert stats["references"] == 200
        # relations ~ 5x references (clique seed makes it slightly off)
        assert stats["edges"] == pytest.approx(1000, rel=0.05)

    def test_uncertainty_fraction(self):
        config = SyntheticConfig(num_references=400, uncertainty=0.2, seed=1)
        pgd = generate_synthetic_pgd(config)
        uncertain_nodes = sum(
            1
            for ref in pgd.references
            if len(pgd.label_distribution(ref).support) > 1
        )
        assert uncertain_nodes == pytest.approx(0.2 * 400, rel=0.35)

    def test_fully_certain_graph(self):
        config = SyntheticConfig(num_references=100, uncertainty=0.0, seed=2)
        pgd = generate_synthetic_pgd(config)
        for ref in pgd.references:
            assert len(pgd.label_distribution(ref).support) == 1
        for _, dist in pgd.edges():
            assert dist.probability() == 1.0

    def test_reference_set_shape(self):
        config = SyntheticConfig(
            num_references=300, groups=5, group_size=4, pairs_per_group=4,
            seed=3,
        )
        pgd = generate_synthetic_pgd(config)
        declared = pgd.declared_sets()
        assert 0 < len(declared) <= 20
        assert all(len(s) == 2 for s in declared)

    def test_component_size_bounded_by_group_size(self):
        config = SyntheticConfig(num_references=300, groups=8, seed=4)
        peg = build_peg(generate_synthetic_pgd(config))
        assert peg.stats()["max_component_refs"] <= config.group_size

    def test_reproducibility(self):
        a = generate_synthetic_pgd(SyntheticConfig(num_references=100, seed=9))
        b = generate_synthetic_pgd(SyntheticConfig(num_references=100, seed=9))
        assert a.stats() == b.stats()
        for ref in a.references:
            assert a.label_distribution(ref) == b.label_distribution(ref)

    def test_config_xor_overrides(self):
        with pytest.raises(ModelError):
            generate_synthetic_pgd(
                SyntheticConfig(num_references=100), num_references=50
            )

    def test_overrides_form(self):
        pgd = generate_synthetic_pgd(num_references=100, seed=5)
        assert pgd.stats()["references"] == 100

    def test_invalid_uncertainty(self):
        with pytest.raises(ModelError):
            generate_synthetic_pgd(num_references=100, uncertainty=1.5)
