"""Unit tests for repro.storage.btree, including dict-equivalence checks."""

import random

import pytest

from repro.storage.btree import BPlusTree
from repro.utils.errors import StorageError


@pytest.fixture
def tree(tmp_path):
    with BPlusTree(str(tmp_path / "t.btree")) as t:
        yield t


class TestBasics:
    def test_empty_get(self, tree):
        assert tree.get(b"missing") is None
        assert len(tree) == 0

    def test_put_get(self, tree):
        tree.put(b"k1", b"v1")
        assert tree.get(b"k1") == b"v1"
        assert len(tree) == 1

    def test_replace(self, tree):
        tree.put(b"k", b"old")
        tree.put(b"k", b"new")
        assert tree.get(b"k") == b"new"
        assert len(tree) == 1

    def test_non_bytes_rejected(self, tree):
        with pytest.raises(StorageError):
            tree.put("k", b"v")

    def test_oversized_entry_rejected(self, tree):
        with pytest.raises(StorageError):
            tree.put(b"k", b"v" * 5000)


class TestSplitsAndScans:
    def test_many_inserts_force_splits(self, tree):
        items = {f"key{i:05d}".encode(): f"val{i}".encode() for i in range(2000)}
        for key, value in items.items():
            tree.put(key, value)
        assert len(tree) == 2000
        for key, value in items.items():
            assert tree.get(key) == value

    def test_range_scan_sorted(self, tree):
        keys = [f"{i:04d}".encode() for i in range(500)]
        for key in keys:
            tree.put(key, key)
        scanned = [k for k, _ in tree.range(b"0100", b"0200")]
        assert scanned == keys[100:200]

    def test_range_open_end(self, tree):
        for i in range(50):
            tree.put(f"{i:02d}".encode(), b"x")
        scanned = [k for k, _ in tree.range(b"45")]
        assert scanned == [f"{i}".encode() for i in range(45, 50)]

    def test_items_complete_and_ordered(self, tree):
        rng = random.Random(5)
        keys = [bytes([rng.randrange(256) for _ in range(8)]) for _ in range(800)]
        for key in keys:
            tree.put(key, b"v")
        scanned = [k for k, _ in tree.items()]
        assert scanned == sorted(set(keys))

    def test_matches_dict_random_ops(self, tree):
        rng = random.Random(11)
        reference = {}
        for _ in range(3000):
            key = f"{rng.randrange(400):04d}".encode()
            value = str(rng.random()).encode()
            tree.put(key, value)
            reference[key] = value
        assert len(tree) == len(reference)
        for key, value in reference.items():
            assert tree.get(key) == value
        assert [k for k, _ in tree.items()] == sorted(reference)


class TestPersistence:
    def test_reopen(self, tmp_path):
        path = str(tmp_path / "p.btree")
        with BPlusTree(path) as tree:
            for i in range(300):
                tree.put(f"{i:04d}".encode(), str(i).encode())
        with BPlusTree(path) as reopened:
            assert len(reopened) == 300
            assert reopened.get(b"0123") == b"123"
            scanned = [k for k, _ in reopened.range(b"0290")]
            assert len(scanned) == 10

    def test_wrong_magic_rejected(self, tmp_path):
        path = tmp_path / "bad.btree"
        path.write_bytes(b"JUNK" + b"\x00" * 8188)
        with pytest.raises(StorageError):
            BPlusTree(str(path))

    def test_size_grows_with_splits(self, tmp_path):
        path = str(tmp_path / "g.btree")
        with BPlusTree(path) as tree:
            empty = tree.size_bytes()
            for i in range(2000):
                tree.put(f"{i:06d}".encode(), b"v" * 32)
            assert tree.size_bytes() > empty
