"""Integration tests: all four matchers agree on randomized workloads.

The strongest correctness statement in the suite: the optimized engine
(every option combination), the direct backtracking matcher, the SQL
baseline and — where feasible — the exhaustive possible-world oracle
return exactly the same match sets with exactly the same probabilities.
"""

import pytest

from repro.datasets import SyntheticConfig, generate_synthetic_pgd, random_query
from repro.peg import build_peg
from repro.query import (
    QueryEngine,
    QueryGraph,
    QueryOptions,
    direct_matches,
    exhaustive_matches,
)
from repro.relational import sql_baseline_matches


def match_keys(matches):
    return {(m.nodes, m.edges, round(m.probability, 9)) for m in matches}


class TestTinyGraphsAgainstExhaustive:
    """On tiny PEGs the possible-world oracle itself is feasible."""

    @pytest.mark.parametrize("seed", range(4))
    def test_engine_equals_worlds(self, seed):
        config = SyntheticConfig(
            num_references=8,
            edges_per_node=1,
            num_labels=2,
            uncertainty=0.5,
            groups=1,
            group_size=2,
            pairs_per_group=1,
            seed=seed,
        )
        peg = build_peg(generate_synthetic_pgd(config))
        engine = QueryEngine(peg, max_length=2, beta=0.05)
        sigma = sorted(peg.sigma)
        query = QueryGraph(
            {"u": sigma[0], "v": sigma[-1]}, [("u", "v")]
        )
        for alpha in (0.1, 0.4):
            optimized = engine.query(query, alpha).matches
            oracle = exhaustive_matches(peg, query, alpha)
            assert match_keys(optimized) == match_keys(oracle), (seed, alpha)


class TestMidSizeAgainstDirect:
    @pytest.fixture(scope="class")
    def setup(self):
        config = SyntheticConfig(
            num_references=150,
            edges_per_node=3,
            num_labels=3,
            uncertainty=0.4,
            groups=10,
            seed=77,
        )
        peg = build_peg(generate_synthetic_pgd(config))
        engine = QueryEngine(peg, max_length=3, beta=0.1)
        return peg, engine

    @pytest.mark.parametrize("query_seed", range(6))
    def test_random_queries(self, setup, query_seed):
        peg, engine = setup
        sigma = sorted(peg.sigma)
        num_nodes = 3 + query_seed % 3
        num_edges = min(
            num_nodes + query_seed % 2, num_nodes * (num_nodes - 1) // 2
        )
        query = random_query(num_nodes, num_edges, sigma, seed=query_seed)
        for alpha in (0.2, 0.5):
            optimized = engine.query(query, alpha).matches
            oracle = direct_matches(peg, query, alpha)
            assert match_keys(optimized) == match_keys(oracle), (
                query_seed,
                alpha,
            )

    def test_all_option_combinations_agree(self, setup):
        peg, engine = setup
        sigma = sorted(peg.sigma)
        query = random_query(4, 5, sigma, seed=123)
        alpha = 0.3
        reference = match_keys(direct_matches(peg, query, alpha))
        for decomposition in ("greedy", "random"):
            for context in (True, False):
                for structure in (True, False):
                    for upperbounds in (True, False):
                        options = QueryOptions(
                            decomposition=decomposition,
                            use_context_pruning=context,
                            use_structure_reduction=structure,
                            use_upperbound_reduction=upperbounds,
                            seed=1,
                        )
                        result = engine.query(query, alpha, options)
                        assert match_keys(result.matches) == reference, options

    def test_sql_baseline_agrees(self, setup):
        peg, engine = setup
        sigma = sorted(peg.sigma)
        query = random_query(3, 3, sigma, seed=200)
        alpha = 0.4
        assert match_keys(sql_baseline_matches(peg, query, alpha)) == \
            match_keys(engine.query(query, alpha).matches)

    def test_index_length_invariance(self, setup):
        """The answer set must not depend on the index path length L."""
        peg, _ = setup
        sigma = sorted(peg.sigma)
        query = random_query(4, 5, sigma, seed=321)
        alpha = 0.3
        answers = []
        for max_length in (1, 2, 3):
            engine = QueryEngine(peg, max_length=max_length, beta=0.1)
            answers.append(match_keys(engine.query(query, alpha).matches))
        assert answers[0] == answers[1] == answers[2]

    def test_beta_invariance(self, setup):
        """The answer set must not depend on the index threshold beta."""
        peg, _ = setup
        sigma = sorted(peg.sigma)
        query = random_query(4, 4, sigma, seed=55)
        alpha = 0.5
        answers = []
        for beta in (0.1, 0.3, 0.5):
            engine = QueryEngine(peg, max_length=2, beta=beta)
            answers.append(match_keys(engine.query(query, alpha).matches))
        assert answers[0] == answers[1] == answers[2]


class TestConditionalIntegration:
    """Correlated-edge PEGs through the full pipeline (Section 5.3)."""

    @pytest.fixture(scope="class")
    def conditional_setup(self):
        from repro.datasets import generate_dblp_pgd

        peg = build_peg(generate_dblp_pgd(num_authors=120, seed=5))
        engine = QueryEngine(peg, max_length=2, beta=0.05)
        return peg, engine

    @pytest.mark.parametrize("alpha", [0.1, 0.3])
    def test_chain_queries(self, conditional_setup, alpha):
        peg, engine = conditional_setup
        query = QueryGraph(
            {"a": "DB", "b": "ML", "c": "DB"},
            [("a", "b"), ("b", "c")],
        )
        assert match_keys(engine.query(query, alpha).matches) == \
            match_keys(direct_matches(peg, query, alpha))

    def test_triangle_query(self, conditional_setup):
        peg, engine = conditional_setup
        query = QueryGraph(
            {"a": "DB", "b": "DB", "c": "SE"},
            [("a", "b"), ("b", "c"), ("a", "c")],
        )
        assert match_keys(engine.query(query, 0.1).matches) == \
            match_keys(direct_matches(peg, query, 0.1))
