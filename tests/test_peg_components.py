"""Unit tests for repro.peg.components."""

import pytest

from repro.peg.components import IdentityComponent, partition_into_components
from repro.utils.errors import ModelError


def fs(*items):
    return frozenset(items)


class TestPartition:
    def test_disjoint_singletons(self):
        potentials = {fs("a"): 1.0, fs("b"): 1.0}
        components = partition_into_components(potentials)
        assert len(components) == 2
        assert {refs for refs, _ in components} == {fs("a"), fs("b")}

    def test_pair_links_references(self):
        potentials = {
            fs("a"): 1.0, fs("b"): 1.0, fs("c"): 1.0, fs("a", "b"): 0.5
        }
        components = partition_into_components(potentials)
        by_refs = {refs: entities for refs, entities in components}
        assert fs("a", "b") in by_refs
        assert set(by_refs[fs("a", "b")]) == {fs("a"), fs("b"), fs("a", "b")}
        assert fs("c") in by_refs

    def test_chained_pairs_form_one_component(self):
        potentials = {
            fs("a"): 1.0, fs("b"): 1.0, fs("c"): 1.0,
            fs("a", "b"): 0.5, fs("b", "c"): 0.5,
        }
        components = partition_into_components(potentials)
        assert len(components) == 1
        refs, entities = components[0]
        assert refs == fs("a", "b", "c")
        assert len(entities) == 5

    def test_deterministic(self):
        potentials = {fs(i): 1.0 for i in range(20)}
        potentials[fs(3, 7)] = 0.5
        assert partition_into_components(potentials) == \
            partition_into_components(potentials)


class TestIdentityComponent:
    def make_pair_component(self, p_pair=0.6, p_single=0.8):
        potentials = {
            fs("a"): p_single, fs("b"): p_single, fs("a", "b"): p_pair
        }
        return IdentityComponent(0, fs("a", "b"), potentials.keys(), potentials)

    def test_trivial_detection(self):
        trivial = IdentityComponent(0, fs("a"), [fs("a")], {fs("a"): 1.0})
        assert trivial.is_trivial
        assert trivial.existence_probability(fs("a")) == 1.0
        assert not self.make_pair_component().is_trivial

    def test_single_marginals_sum_per_reference(self):
        component = self.make_pair_component()
        # Reference "a" lives in exactly one chosen set per configuration:
        p_merged = component.existence_probability(fs("a", "b"))
        p_a = component.existence_probability(fs("a"))
        assert p_merged + p_a == pytest.approx(1.0)

    def test_joint_marginal_of_conflicting_entities_is_zero(self):
        component = self.make_pair_component()
        assert component.existence_marginal([fs("a"), fs("a", "b")]) == 0.0

    def test_joint_marginal_of_compatible_entities(self):
        component = self.make_pair_component()
        both_singles = component.existence_marginal([fs("a"), fs("b")])
        assert both_singles == pytest.approx(
            component.existence_probability(fs("a"))
        )

    def test_empty_marginal_is_one(self):
        assert self.make_pair_component().existence_marginal([]) == 1.0

    def test_unknown_entity_rejected(self):
        component = self.make_pair_component()
        with pytest.raises(ModelError):
            component.existence_probability(fs("zz"))
        with pytest.raises(ModelError):
            component.existence_marginal([fs("zz")])

    def test_marginal_cache_consistency(self):
        component = self.make_pair_component()
        first = component.existence_marginal([fs("a"), fs("b")])
        second = component.existence_marginal([fs("b"), fs("a")])
        assert first == second
