"""Unit tests of the observability primitives (repro.obs)."""

from __future__ import annotations

import json
import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.obs.metrics import MetricsRegistry, get_registry
from repro.obs.trace import (
    NULL_SPAN,
    NULL_TRACER,
    Span,
    Tracer,
    current_span,
    render_trace,
    use_span,
)


class TestSpan:
    def test_context_manager_builds_tree(self):
        with Span("root") as root:
            root.set("alpha", 0.5)
            with root.child("stage") as stage:
                stage.incr("fetches")
                stage.incr("fetches", 2)
        exported = root.to_dict()
        assert exported["name"] == "root"
        assert exported["attributes"]["alpha"] == 0.5
        assert exported["elapsed"] >= 0.0
        (child,) = exported["children"]
        assert child["name"] == "stage"
        assert child["counters"]["fetches"] == 3

    def test_current_span_follows_the_stack(self):
        assert current_span() is NULL_SPAN
        with Span("outer") as outer:
            assert current_span() is outer
            with outer.child("inner") as inner:
                assert current_span() is inner
            assert current_span() is outer
        assert current_span() is NULL_SPAN

    def test_exception_marks_error_and_unwinds(self):
        with pytest.raises(ValueError):
            with Span("boom") as span:
                raise ValueError("nope")
        assert current_span() is NULL_SPAN
        exported = span.to_dict()
        assert exported["status"] == "error"
        assert "ValueError" in exported["attributes"]["exception"]

    def test_begin_finish_lifecycle_without_stack(self):
        span = Span("request").begin()
        assert current_span() is NULL_SPAN  # begin() does not push
        span.finish(error=True)
        assert span.to_dict()["status"] == "error"

    def test_use_span_reattaches_on_another_thread(self):
        span = Span("request").begin()
        seen = {}

        def worker():
            with use_span(span):
                seen["current"] = current_span()
                with span.child("stage"):
                    pass
            seen["after"] = current_span()

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
        assert seen["current"] is span
        assert seen["after"] is NULL_SPAN
        span.finish()
        assert [c["name"] for c in span.to_dict()["children"]] == ["stage"]

    def test_null_span_is_inert_and_cheap(self):
        assert not NULL_SPAN
        assert not NULL_SPAN.enabled
        assert NULL_SPAN.child("x") is NULL_SPAN
        NULL_SPAN.set("k", 1)
        NULL_SPAN.incr("c")
        with NULL_SPAN as span:
            assert current_span() is NULL_SPAN
            assert span is NULL_SPAN

    def test_to_json_round_trips(self):
        with Span("root") as root:
            root.set("k", "v")
        parsed = json.loads(root.to_json())
        assert parsed["name"] == "root"
        assert parsed["attributes"]["k"] == "v"


class TestTracer:
    def test_span_nests_under_ambient_parent(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner"):
                pass
        assert [r.name for r in tracer.roots()] == ["outer"]
        assert [c["name"] for c in outer.to_dict()["children"]] == ["inner"]

    def test_root_retention_is_bounded(self):
        tracer = Tracer(max_roots=3)
        for i in range(5):
            with tracer.span(f"s{i}"):
                pass
        assert [r.name for r in tracer.roots()] == ["s2", "s3", "s4"]
        tracer.clear()
        assert tracer.roots() == []

    def test_null_tracer_returns_null_span(self):
        assert NULL_TRACER.span("x") is NULL_SPAN
        assert NULL_TRACER.export() == []


class TestRenderTrace:
    def test_renders_tree_with_attrs_and_counters(self):
        with Span("query") as root:
            root.set("alpha", 0.5)
            with root.child("lookup") as lookup:
                lookup.incr("fetches", 2)
                with lookup.child("partition"):
                    pass
            with root.child("match"):
                pass
        text = render_trace(root)
        lines = text.splitlines()
        assert lines[0].startswith("query")
        assert "alpha=0.5" in lines[0]
        assert any(l.startswith("|- lookup") and "fetches=2" in l
                   for l in lines)
        assert any("`- partition" in l for l in lines)
        assert lines[-1].startswith("`- match")


class TestMetrics:
    def test_counter_and_gauge(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        gauge = registry.gauge("g")
        gauge.set(7.0)
        gauge.dec(2.0)
        assert gauge.value == 5.0

    def test_get_or_create_returns_same_handle(self):
        registry = MetricsRegistry()
        assert registry.counter("x", shard="0") is registry.counter(
            "x", shard="0"
        )
        assert registry.counter("x", shard="0") is not registry.counter(
            "x", shard="1"
        )
        with pytest.raises(ValueError):
            registry.gauge("x", shard="0")  # kind conflict

    def test_histogram_quantiles_are_accurate(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h_seconds", low=1e-4, high=10.0)
        values = [i / 1000.0 for i in range(1, 1001)]  # 1ms .. 1s
        for v in values:
            histogram.observe(v)
        assert histogram.count == 1000
        assert histogram.sum == pytest.approx(sum(values))
        for q, true in ((0.50, 0.5), (0.95, 0.95), (0.99, 0.99)):
            assert histogram.quantile(q) == pytest.approx(true, rel=0.10)
        # log-bucketing keeps relative error far below the gate above
        assert histogram.quantile(0.5) == pytest.approx(0.5, rel=0.02)

    def test_histogram_min_max_clamp(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h")
        histogram.observe(0.25)
        assert histogram.quantile(0.0) == pytest.approx(0.25)
        assert histogram.quantile(1.0) == pytest.approx(0.25)

    def test_snapshot_flattens_all_instruments(self):
        registry = MetricsRegistry()
        registry.counter("a_total").inc(2)
        registry.gauge("b", kind="x").set(1.5)
        registry.histogram("c_seconds").observe(0.5)
        snap = registry.snapshot()
        assert snap["a_total"] == 2
        assert snap["b{kind=x}"] == 1.5
        assert snap["c_seconds_count"] == 1
        assert snap["c_seconds_p50"] == pytest.approx(0.5, rel=0.2)

    def test_prometheus_rendering(self):
        registry = MetricsRegistry()
        registry.counter("req_total", outcome="ok").inc(3)
        registry.histogram("lat_seconds").observe(0.01)
        text = registry.render_prometheus()
        assert "# TYPE req_total counter" in text
        assert 'req_total{outcome="ok"} 3' in text
        assert "# TYPE lat_seconds histogram" in text
        assert 'lat_seconds_bucket{le="+Inf"} 1' in text
        assert "lat_seconds_count 1" in text

    def test_disabled_registry_records_nothing(self):
        registry = MetricsRegistry(enabled=False)
        counter = registry.counter("c_total")
        counter.inc(10)
        registry.histogram("h").observe(1.0)
        assert counter.value == 0
        assert registry.snapshot()["h_count"] == 0

    def test_reset_zeroes_in_place(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total")
        counter.inc(3)
        histogram = registry.histogram("h")
        histogram.observe(1.0)
        registry.reset()
        assert counter.value == 0  # same handle, zeroed
        assert histogram.count == 0

    def test_process_registry_is_a_singleton(self):
        assert get_registry() is get_registry()


class TestConcurrency:
    """Satellite: no lost increments, well-formed trees across threads."""

    def test_counter_increments_are_not_lost(self):
        registry = MetricsRegistry()
        counter = registry.counter("stress_total")
        histogram = registry.histogram("stress_seconds")
        threads, per_thread = 8, 5000

        def hammer():
            for _ in range(per_thread):
                counter.inc()
                histogram.observe(0.001)

        pool = [threading.Thread(target=hammer) for _ in range(threads)]
        for t in pool:
            t.start()
        for t in pool:
            t.join()
        assert counter.value == threads * per_thread
        assert histogram.count == threads * per_thread

    def test_span_trees_stay_well_formed_across_worker_pool(self):
        """One request span per task, engine-style children attached from
        pool threads via use_span; every exported tree must contain
        exactly its own children and every stack must unwind clean."""
        tracer = Tracer(max_roots=64)

        def request(i):
            span = tracer.span(f"request-{i}").begin()
            with use_span(span):
                for j in range(3):
                    with current_span().child(f"stage-{j}") as stage:
                        stage.incr("work")
            span.finish()
            assert current_span() is NULL_SPAN
            return span

        with ThreadPoolExecutor(max_workers=6) as pool:
            spans = list(pool.map(request, range(24)))
        assert len(tracer.roots()) == 24
        for i, span in enumerate(spans):
            exported = span.to_dict()
            assert exported["name"] == f"request-{i}"
            assert [c["name"] for c in exported["children"]] == [
                "stage-0", "stage-1", "stage-2"
            ]
            assert all(
                c["counters"]["work"] == 1 for c in exported["children"]
            )
