"""Unit tests for the relational substrate and the SQL baseline."""

import pytest

from repro.query import QueryGraph, direct_matches
from repro.relational import (
    RowLimitExceeded,
    Table,
    distinct,
    hash_join,
    nested_loop_join,
    project,
    select,
    sql_baseline_matches,
)
from repro.utils.errors import QueryError
from tests.conftest import small_random_peg


class TestTable:
    def test_basic(self):
        t = Table(("a", "b"), [(1, 2), (3, 4)])
        assert len(t) == 2
        assert t.position("b") == 1
        assert t.column_values("a") == [1, 3]

    def test_duplicate_columns_rejected(self):
        with pytest.raises(QueryError):
            Table(("a", "a"), [])

    def test_arity_checked(self):
        with pytest.raises(QueryError):
            Table(("a", "b"), [(1,)])
        t = Table(("a",), [])
        with pytest.raises(QueryError):
            t.append((1, 2))

    def test_unknown_column(self):
        with pytest.raises(QueryError):
            Table(("a",), []).position("z")


class TestOperators:
    def test_select(self):
        t = Table(("a",), [(1,), (2,), (3,)])
        assert select(t, lambda row: row[0] > 1).rows == [(2,), (3,)]

    def test_project_with_computed(self):
        t = Table(("a", "b"), [(2, 3)])
        result = project(t, ("a",), {"product": lambda row: row[0] * row[1]})
        assert result.columns == ("a", "product")
        assert result.rows == [(2, 6)]

    def test_nested_loop_join(self):
        left = Table(("a",), [(1,), (2,)])
        right = Table(("b",), [(2,), (3,)])
        result = nested_loop_join(left, right, lambda l, r: l[0] <= r[0])
        assert sorted(result.rows) == [(1, 2), (1, 3), (2, 2), (2, 3)]

    def test_hash_join_matches_nested_loop(self):
        left = Table(("a", "x"), [(1, "p"), (2, "q"), (2, "r")])
        right = Table(("b", "y"), [(2, "s"), (2, "t"), (3, "u")])
        hashed = hash_join(left, right, ["a"], ["b"])
        nested = nested_loop_join(left, right, lambda l, r: l[0] == r[0])
        assert sorted(hashed.rows) == sorted(nested.rows)

    def test_join_column_collision_rejected(self):
        t = Table(("a",), [])
        with pytest.raises(QueryError):
            hash_join(t, t, ["a"], ["a"])

    def test_distinct(self):
        t = Table(("a",), [(1,), (1,), (2,)])
        assert distinct(t).rows == [(1,), (2,)]

    def test_key_count_mismatch(self):
        with pytest.raises(QueryError):
            hash_join(Table(("a",), []), Table(("b",), []), ["a"], [])


class TestSqlBaseline:
    def match_keys(self, matches):
        return {(m.nodes, m.edges, round(m.probability, 9)) for m in matches}

    @pytest.mark.parametrize("seed", [0, 1])
    @pytest.mark.parametrize("alpha", [0.2, 0.5])
    def test_agrees_with_direct(self, seed, alpha):
        peg = small_random_peg(seed=seed, num_references=50)
        sigma = sorted(peg.sigma)
        query = QueryGraph(
            {"a": sigma[0], "b": sigma[1], "c": sigma[2]},
            [("a", "b"), ("b", "c")],
        )
        assert self.match_keys(sql_baseline_matches(peg, query, alpha)) == \
            self.match_keys(direct_matches(peg, query, alpha))

    def test_triangle_agrees(self, figure1_peg):
        query = QueryGraph(
            {"u": "i", "v": "a", "w": "i"},
            [("u", "v"), ("v", "w")],
        )
        assert self.match_keys(
            sql_baseline_matches(figure1_peg, query, 0.05)
        ) == self.match_keys(direct_matches(figure1_peg, query, 0.05))

    def test_row_limit_enforced(self):
        peg = small_random_peg(seed=2, num_references=60)
        sigma = sorted(peg.sigma)
        query = QueryGraph(
            {"a": sigma[0], "b": sigma[1], "c": sigma[0], "d": sigma[1]},
            [("a", "b"), ("b", "c"), ("c", "d")],
        )
        with pytest.raises(RowLimitExceeded):
            sql_baseline_matches(peg, query, 0.2, row_limit=10)

    def test_single_node_query(self, figure1_peg):
        query = QueryGraph({"u": "a"}, [])
        assert self.match_keys(
            sql_baseline_matches(figure1_peg, query, 0.5)
        ) == self.match_keys(direct_matches(figure1_peg, query, 0.5))
