"""Unit tests for repro.pgm.factor."""

import numpy as np
import pytest

from repro.pgm.factor import Factor, product
from repro.utils.errors import ModelError


def bernoulli(var, p):
    return Factor.from_distribution(var, {True: p, False: 1 - p})


class TestConstruction:
    def test_from_distribution(self):
        f = Factor.from_distribution("x", {"a": 0.3, "b": 0.7})
        assert f.get({"x": "a"}) == pytest.approx(0.3)
        assert f.get({"x": "b"}) == pytest.approx(0.7)

    def test_from_function(self):
        f = Factor.from_function(
            ("x", "y"),
            {"x": (0, 1), "y": (0, 1)},
            lambda a: 1.0 if a["x"] == a["y"] else 0.0,
        )
        assert f.get({"x": 0, "y": 0}) == 1.0
        assert f.get({"x": 0, "y": 1}) == 0.0

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ModelError):
            Factor(("x",), {"x": (0, 1)}, [0.5])

    def test_rejects_negative_values(self):
        with pytest.raises(ModelError):
            Factor(("x",), {"x": (0, 1)}, [-0.1, 1.1])

    def test_rejects_duplicate_variables(self):
        with pytest.raises(ModelError):
            Factor(("x", "x"), {"x": (0, 1)}, np.ones((2, 2)))

    def test_rejects_empty_domain(self):
        with pytest.raises(ModelError):
            Factor(("x",), {"x": ()}, np.ones(0))


class TestAlgebra:
    def test_multiply_disjoint(self):
        f = bernoulli("x", 0.2).multiply(bernoulli("y", 0.5))
        assert f.get({"x": True, "y": True}) == pytest.approx(0.1)
        assert f.get({"x": False, "y": False}) == pytest.approx(0.4)

    def test_multiply_shared_variable(self):
        f = bernoulli("x", 0.2)
        g = Factor.from_function(
            ("x", "y"),
            {"x": (True, False), "y": (True, False)},
            lambda a: 0.9 if a["x"] == a["y"] else 0.1,
        )
        joint = f.multiply(g)
        assert joint.get({"x": True, "y": True}) == pytest.approx(0.2 * 0.9)
        assert joint.get({"x": False, "y": True}) == pytest.approx(0.8 * 0.1)

    def test_multiply_is_commutative(self):
        f = bernoulli("x", 0.3)
        g = bernoulli("y", 0.6)
        fg = f.multiply(g)
        gf = g.multiply(f)
        for assignment in fg.assignments():
            assert fg.get(assignment) == pytest.approx(gf.get(assignment))

    def test_incompatible_domains_rejected(self):
        f = Factor(("x",), {"x": (0, 1)}, [0.5, 0.5])
        g = Factor(("x",), {"x": (0, 1, 2)}, [0.2, 0.3, 0.5])
        with pytest.raises(ModelError):
            f.multiply(g)

    def test_marginalize(self):
        joint = bernoulli("x", 0.2).multiply(bernoulli("y", 0.5))
        marginal = joint.marginalize(["y"])
        assert marginal.get({"x": True}) == pytest.approx(0.2)
        assert marginal.get({"x": False}) == pytest.approx(0.8)

    def test_marginalize_unknown_variable(self):
        with pytest.raises(ModelError):
            bernoulli("x", 0.5).marginalize(["z"])

    def test_marginalize_all_rejected(self):
        with pytest.raises(ModelError):
            bernoulli("x", 0.5).marginalize(["x"])

    def test_reduce_evidence(self):
        joint = bernoulli("x", 0.2).multiply(bernoulli("y", 0.5))
        reduced = joint.reduce({"y": True})
        assert reduced.variables == ("x",)
        assert reduced.get({"x": True}) == pytest.approx(0.1)

    def test_reduce_bad_value(self):
        with pytest.raises(ModelError):
            bernoulli("x", 0.5).reduce({"x": "maybe"})

    def test_normalize(self):
        f = Factor(("x",), {"x": (0, 1)}, [2.0, 6.0]).normalize()
        assert f.get({"x": 0}) == pytest.approx(0.25)
        assert f.partition == pytest.approx(1.0)

    def test_normalize_zero_mass_rejected(self):
        with pytest.raises(ModelError):
            Factor(("x",), {"x": (0, 1)}, [0.0, 0.0]).normalize()

    def test_product_function(self):
        f = product([bernoulli("x", 0.5), bernoulli("y", 0.5), bernoulli("z", 0.5)])
        assert f.partition == pytest.approx(1.0)
        assert len(f.variables) == 3

    def test_product_empty_rejected(self):
        with pytest.raises(ModelError):
            product([])

    def test_broadcast_axis_order(self):
        """Multiplying factors with permuted variable orders stays correct."""
        f = Factor.from_function(
            ("x", "y"),
            {"x": (0, 1), "y": (0, 1, 2)},
            lambda a: a["x"] * 10 + a["y"] + 1,
        )
        g = Factor.from_function(
            ("y", "x"),
            {"x": (0, 1), "y": (0, 1, 2)},
            lambda a: a["y"] * 100 + a["x"] + 1,
        )
        joint = f.multiply(g)
        for assignment in joint.assignments():
            expected = f.get(assignment) * g.get(assignment)
            assert joint.get(assignment) == pytest.approx(expected)
