"""Unit tests for repro.storage.recordlog."""

import pytest

from repro.storage.recordlog import RecordLog
from repro.utils.errors import StorageError


class TestRecordLog:
    def test_append_read_roundtrip(self, tmp_path):
        with RecordLog(str(tmp_path / "log.bin")) as log:
            pointer = log.append(b"hello world")
            assert log.read(*pointer) == b"hello world"

    def test_multiple_records(self, tmp_path):
        with RecordLog(str(tmp_path / "log.bin")) as log:
            pointers = [log.append(bytes([i]) * (i + 1)) for i in range(20)]
            for i, pointer in enumerate(pointers):
                assert log.read(*pointer) == bytes([i]) * (i + 1)

    def test_empty_record(self, tmp_path):
        with RecordLog(str(tmp_path / "log.bin")) as log:
            pointer = log.append(b"")
            assert log.read(*pointer) == b""

    def test_persistence(self, tmp_path):
        path = str(tmp_path / "log.bin")
        with RecordLog(path) as log:
            pointer = log.append(b"durable")
        with RecordLog(path) as reopened:
            assert reopened.read(*pointer) == b"durable"
            # appends continue after the existing data
            second = reopened.append(b"more")
            assert reopened.read(*second) == b"more"
            assert reopened.read(*pointer) == b"durable"

    def test_length_mismatch_detected(self, tmp_path):
        with RecordLog(str(tmp_path / "log.bin")) as log:
            offset, length = log.append(b"abcdef")
            with pytest.raises(StorageError):
                log.read(offset, length + 1)

    def test_bad_offset_rejected(self, tmp_path):
        with RecordLog(str(tmp_path / "log.bin")) as log:
            log.append(b"x")
            with pytest.raises(StorageError):
                log.read(10_000, 5)

    def test_non_bytes_rejected(self, tmp_path):
        with RecordLog(str(tmp_path / "log.bin")) as log:
            with pytest.raises(StorageError):
                log.append("not bytes")

    def test_size_bytes_grows(self, tmp_path):
        with RecordLog(str(tmp_path / "log.bin")) as log:
            before = log.size_bytes()
            log.append(b"12345")
            assert log.size_bytes() == before + 4 + 5


class TestReadView:
    def test_zero_copy_roundtrip(self, tmp_path):
        with RecordLog(str(tmp_path / "log.bin")) as log:
            pointer = log.append(b"hello world")
            view = log.read_view(*pointer)
            assert isinstance(view, memoryview)
            assert view == b"hello world"
            assert bytes(view) == log.read(*pointer)

    def test_view_after_append_remaps(self, tmp_path):
        with RecordLog(str(tmp_path / "log.bin")) as log:
            first = log.append(b"a" * 100)
            assert log.read_view(*first) == b"a" * 100
            second = log.append(b"b" * 100)
            # The second record lies past the first mapping's size.
            assert log.read_view(*second) == b"b" * 100
            assert log.read_view(*first) == b"a" * 100

    def test_view_survives_close(self, tmp_path):
        log = RecordLog(str(tmp_path / "log.bin"))
        pointer = log.append(b"payload")
        view = log.read_view(*pointer)
        log.close()  # must not raise despite the exported view
        assert view == b"payload"

    def test_view_length_mismatch_detected(self, tmp_path):
        with RecordLog(str(tmp_path / "log.bin")) as log:
            offset, length = log.append(b"abcdef")
            with pytest.raises(StorageError):
                log.read_view(offset, length + 1)
            with pytest.raises(StorageError):
                log.read_view(10_000, 5)

    def test_view_of_empty_record(self, tmp_path):
        with RecordLog(str(tmp_path / "log.bin")) as log:
            pointer = log.append(b"")
            assert log.read_view(*pointer) == b""


class TestTornTailRecovery:
    """A process dying mid-append leaves a torn trailing record."""

    def _write_then_tear(self, path, keep=2, tear_bytes=3):
        with RecordLog(path) as log:
            pointers = [log.append(f"rec{i}".encode()) for i in range(keep)]
        with open(path, "r+b") as handle:
            handle.seek(0, 2)
            end = handle.tell()
            # Simulate a torn append: some header/payload bytes landed,
            # the rest never made it to disk.
            handle.write(b"\x00\x00\x00\x09" + b"par"[: max(0, tear_bytes - 4)])
        return pointers, end

    def test_strict_scan_raises_on_torn_tail(self, tmp_path):
        path = str(tmp_path / "log.bin")
        self._write_then_tear(path)
        with RecordLog(path) as log:
            with pytest.raises(StorageError):
                list(log.records())

    def test_tolerant_scan_stops_cleanly_and_flags(self, tmp_path):
        path = str(tmp_path / "log.bin")
        pointers, valid_end = self._write_then_tear(path)
        with RecordLog(path) as log:
            records = list(log.records(tolerate_truncation=True))
            assert [payload for _, payload in records] == [b"rec0", b"rec1"]
            assert log.truncated_tail is True
            assert log.valid_end == valid_end

    def test_torn_header_only(self, tmp_path):
        path = str(tmp_path / "log.bin")
        with RecordLog(path) as log:
            log.append(b"whole")
        with open(path, "ab") as handle:
            handle.write(b"\x00\x00")  # 2 of 4 header bytes
        with RecordLog(path) as log:
            records = list(log.records(tolerate_truncation=True))
            assert [payload for _, payload in records] == [b"whole"]
            assert log.truncated_tail is True

    def test_clean_log_not_flagged(self, tmp_path):
        path = str(tmp_path / "log.bin")
        with RecordLog(path) as log:
            log.append(b"one")
            assert list(log.records(tolerate_truncation=True))
            assert log.truncated_tail is False
            assert log.valid_end == log.size_bytes()

    def test_truncate_to_makes_log_appendable(self, tmp_path):
        path = str(tmp_path / "log.bin")
        pointers, valid_end = self._write_then_tear(path)
        with RecordLog(path) as log:
            list(log.records(tolerate_truncation=True))
            log.truncate_to(log.valid_end)
            fresh = log.append(b"after-recovery")
            assert log.read(*fresh) == b"after-recovery"
            # the surviving records and the new one all scan strictly
            payloads = [payload for _, payload in log.records()]
            assert payloads == [b"rec0", b"rec1", b"after-recovery"]

    def test_truncate_to_validates_range(self, tmp_path):
        with RecordLog(str(tmp_path / "log.bin")) as log:
            log.append(b"x")
            with pytest.raises(StorageError):
                log.truncate_to(log.size_bytes() + 10)
            with pytest.raises(StorageError):
                log.truncate_to(-1)
