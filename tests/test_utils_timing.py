"""Unit tests for repro.obs.timing."""

import time

from repro.obs.timing import StageTimings, Timer


class TestTimer:
    def test_measures_elapsed(self):
        with Timer() as timer:
            time.sleep(0.01)
        assert timer.elapsed >= 0.009

    def test_resets_between_uses(self):
        timer = Timer()
        with timer:
            pass
        first = timer.elapsed
        with timer:
            time.sleep(0.005)
        assert timer.elapsed >= first


class TestStageTimings:
    def test_record_accumulates(self):
        timings = StageTimings()
        timings.record("a", 1.0)
        timings.record("a", 0.5)
        timings.record("b", 2.0)
        assert timings.stages["a"] == 1.5
        assert timings.total == 3.5

    def test_context_manager_records(self):
        timings = StageTimings()
        with timings.time("stage"):
            time.sleep(0.005)
        assert timings.stages["stage"] >= 0.004

    def test_as_dict_is_copy(self):
        timings = StageTimings()
        timings.record("a", 1.0)
        snapshot = timings.as_dict()
        snapshot["a"] = 99.0
        assert timings.stages["a"] == 1.0
