"""Unit and concurrency tests for the query-serving subsystem."""

from __future__ import annotations

import threading
import time

import pytest

from repro.peg import build_peg
from repro.pgd import pgd_from_edge_list
from repro.query import QueryEngine, QueryGraph, QueryOptions
from repro.service import QueryService, ResultCache, ServiceStats, request_key
from repro.utils.errors import (
    DeadlineExceeded,
    QueryError,
    ServiceError,
    ServiceUnavailable,
)


@pytest.fixture
def peg(figure1_pgd):
    return build_peg(figure1_pgd)


def figure1_query(a="u", b="v"):
    return QueryGraph({a: "i", b: "a"}, [(a, b)])


class FakeEngine:
    """Scriptable engine double: records calls, can block or raise."""

    def __init__(self, delay=0.0, gate=None, fail=False):
        self.calls = 0
        self.delay = delay
        self.gate = gate
        self.fail = fail
        self._lock = threading.Lock()

    def query(self, query, alpha, options=None):
        with self._lock:
            self.calls += 1
        if self.gate is not None:
            self.gate.wait(timeout=5)
        if self.delay:
            time.sleep(self.delay)
        if self.fail:
            raise QueryError("scripted failure")
        return ("result", query.signature(), alpha)


class TestResultCache:
    def test_put_get_and_lru_eviction(self):
        evicted = []
        cache = ResultCache(capacity=2, on_evict=evicted.append)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refreshes "a"
        cache.put("c", 3)           # evicts "b", the LRU entry
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3
        assert evicted == [1]

    def test_zero_capacity_disables(self):
        cache = ResultCache(capacity=0)
        cache.put("a", 1)
        assert cache.get("a") is None
        assert len(cache) == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            ResultCache(capacity=-1)


class TestServiceStats:
    def test_counters_and_quantiles(self):
        stats = ServiceStats(latency_window=8)
        stats.record_miss()
        stats.record_done(0.010)
        stats.record_hit(0.001)
        stats.record_dedup()
        stats.record_eviction(2)
        snap = stats.snapshot()
        assert snap["hits"] == 1
        assert snap["misses"] == 1
        assert snap["deduplicated"] == 1
        assert snap["evictions"] == 2
        assert snap["requests"] == 3
        assert snap["in_flight"] == 0
        assert 0.0 < snap["latency_p50"] <= snap["latency_p95"] <= 0.010

    def test_error_counted_without_latency(self):
        stats = ServiceStats()
        stats.record_miss()
        stats.record_done(1.0, error=True)
        snap = stats.snapshot()
        assert snap["errors"] == 1
        assert snap["latency_p50"] == 0.0

    def test_error_latency_tracked_in_its_own_quantiles(self):
        # Regression: record_done(error=True) used to drop the sample
        # entirely, hiding slow failures from every latency view.
        stats = ServiceStats()
        stats.record_miss()
        stats.record_done(0.5, error=True)
        snap = stats.snapshot()
        assert snap["error_latency_p50"] == 0.5
        assert snap["error_latency_p95"] == 0.5
        assert snap["latency_p50"] == 0.0  # success window untouched

    def test_attached_done_reconciles_completed_with_requests(self):
        # Regression: record_dedup never produced a completion, so
        # requests and completed diverged forever on a drained service.
        stats = ServiceStats()
        stats.record_miss()
        stats.record_dedup()
        stats.record_dedup()
        stats.record_done(0.010)
        stats.record_attached_done(0.011)
        stats.record_attached_done(0.012, error=True)
        snap = stats.snapshot()
        assert snap["requests"] == 3
        assert snap["completed"] == 3
        assert snap["attached"] == 2
        # The leader's failure is the only countable error; a follower
        # attached to it must not double-count.
        assert snap["errors"] == 0

    def test_requests_and_hit_rate_consistent_under_concurrency(self):
        # Regression: requests/hit_rate read three counters without the
        # lock, so a reader could see a torn sum.
        stats = ServiceStats()
        per_thread = 2000

        def hammer():
            for _ in range(per_thread):
                stats.record_hit(0.001)
                stats.record_miss()
                stats.record_done(0.002)
                stats.record_dedup()
                stats.record_attached_done(0.002)

        readers_ok = []

        def read():
            for _ in range(per_thread):
                total = stats.requests
                rate = stats.hit_rate()
                readers_ok.append(total >= 0 and 0.0 <= rate <= 1.0)

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        threads += [threading.Thread(target=read) for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert all(readers_ok)
        snap = stats.snapshot()
        assert snap["requests"] == 4 * per_thread * 3
        assert snap["completed"] == snap["requests"]
        assert stats.hit_rate() == pytest.approx(1 / 3)


class TestRequestKey:
    def test_isomorphic_queries_share_key(self):
        options = QueryOptions()
        key_a = request_key(figure1_query("u", "v"), 0.5, options)
        key_b = request_key(figure1_query("x", "y"), 0.5, options)
        assert key_a == key_b

    def test_execution_knobs_ignored(self):
        q = figure1_query()
        base = request_key(q, 0.5, QueryOptions())
        tuned = request_key(
            q, 0.5, QueryOptions(parallel_reduction=True, num_threads=16)
        )
        assert base == tuned

    def test_result_relevant_fields_distinguish(self):
        q = figure1_query()
        base = request_key(q, 0.5, QueryOptions())
        assert request_key(q, 0.4, QueryOptions()) != base
        assert request_key(
            q, 0.5, QueryOptions(use_context_pruning=False)
        ) != base


class TestCacheAndSingleFlight:
    def test_cache_hit_returns_same_result(self):
        engine = FakeEngine()
        with QueryService(engine, num_workers=2) as service:
            first = service.query(figure1_query(), 0.5)
            second = service.query(figure1_query("a", "b"), 0.5)  # renamed
        assert second is first
        assert engine.calls == 1
        snap = service.stats.snapshot()
        assert snap["hits"] == 1 and snap["misses"] == 1

    def test_distinct_alpha_not_shared(self):
        engine = FakeEngine()
        with QueryService(engine, num_workers=2) as service:
            service.query(figure1_query(), 0.5)
            service.query(figure1_query(), 0.6)
        assert engine.calls == 2

    def test_single_flight_dedup(self):
        gate = threading.Event()
        engine = FakeEngine(gate=gate)
        with QueryService(engine, num_workers=2) as service:
            leader = service.submit(figure1_query(), 0.5)
            followers = [
                service.submit(figure1_query(f"n{i}", f"m{i}"), 0.5)
                for i in range(3)
            ]
            assert all(f is leader for f in followers)
            assert service.stats.in_flight == 1
            gate.set()
            result = leader.result(timeout=5)
        assert engine.calls == 1
        snap = service.stats.snapshot()
        assert snap["deduplicated"] == 3
        assert snap["misses"] == 1
        assert snap["in_flight"] == 0
        assert result[0] == "result"

    def test_dedup_requests_converge_on_drained_service(self):
        # Regression: deduplicated requests never counted a completion,
        # so requests and completed could not converge after a drain.
        gate = threading.Event()
        engine = FakeEngine(gate=gate)
        with QueryService(engine, num_workers=2, cache_size=0) as service:
            leader = service.submit(figure1_query(), 0.5)
            for i in range(3):
                service.submit(figure1_query(f"n{i}", f"m{i}"), 0.5)
            gate.set()
            leader.result(timeout=5)
            deadline = time.time() + 5
            while time.time() < deadline:
                snap = service.stats.snapshot()
                if snap["completed"] == snap["requests"]:
                    break
                time.sleep(0.005)  # attached callbacks may still be firing
        snap = service.stats.snapshot()
        assert snap["requests"] == 4
        assert snap["completed"] == 4
        assert snap["attached"] == 3
        assert snap["errors"] == 0

    def test_dedup_converges_when_close_fails_the_leader(self):
        # close(wait=False) resolves the leader's future with
        # ServiceError; the attached followers' completions must still
        # be counted through that resolution.
        gate = threading.Event()
        engine = FakeEngine(gate=gate)
        service = QueryService(engine, num_workers=1, cache_size=0)
        blocker = service.submit(figure1_query(), 0.5)
        queued = service.submit(figure1_query("x", "y"), 0.3)
        follower = service.submit(figure1_query("p", "q"), 0.3)
        assert follower is queued
        service.close(wait=False)
        gate.set()
        with pytest.raises((ServiceError, QueryError)):
            follower.result(timeout=5)
        try:
            blocker.result(timeout=5)
        except (ServiceError, QueryError):
            pass
        deadline = time.time() + 5
        while time.time() < deadline:
            snap = service.stats.snapshot()
            if snap["completed"] == snap["requests"]:
                break
            time.sleep(0.005)
        snap = service.stats.snapshot()
        assert snap["requests"] == 3
        assert snap["completed"] == 3
        assert snap["attached"] == 1

    def test_eviction_counted_in_stats(self):
        engine = FakeEngine()
        queries = [
            QueryGraph({"a": f"label{i}"}, []) for i in range(3)
        ]
        with QueryService(engine, num_workers=1, cache_size=2) as service:
            for query in queries:
                service.query(query, 0.5)
        assert service.stats.snapshot()["evictions"] == 1

    def test_cache_disabled(self):
        engine = FakeEngine()
        with QueryService(engine, num_workers=1, cache_size=0) as service:
            service.query(figure1_query(), 0.5)
            service.query(figure1_query(), 0.5)
        assert engine.calls == 2

    def test_error_propagates_and_is_not_cached(self):
        engine = FakeEngine(fail=True)
        with QueryService(engine, num_workers=1) as service:
            with pytest.raises(QueryError):
                service.query(figure1_query(), 0.5)
            engine.fail = False
            result = service.query(figure1_query(), 0.5)
        assert result[0] == "result"
        snap = service.stats.snapshot()
        assert snap["errors"] == 1
        assert snap["misses"] == 2
        assert snap["in_flight"] == 0

    def test_closed_service_rejects(self):
        service = QueryService(FakeEngine(), num_workers=1)
        service.close()
        with pytest.raises(ServiceError):
            service.submit(figure1_query(), 0.5)

    def test_bad_construction_rejected(self):
        with pytest.raises(ServiceError):
            QueryService(FakeEngine(), num_workers=0)
        with pytest.raises(ServiceError):
            QueryService(FakeEngine(), executor="fiber")
        with pytest.raises(ServiceError):
            QueryService(FakeEngine(), executor="process")  # no snapshot


class TestConcurrentServing:
    def test_many_clients_agree_with_direct_engine(self, peg):
        engine = QueryEngine(peg, max_length=2, beta=0.05)
        query = figure1_query()
        expected = engine.query(query, 0.4)
        with QueryService(engine, num_workers=4) as service:
            results = []
            errors = []

            def client(i):
                try:
                    renamed = figure1_query(f"u{i}", f"v{i}")
                    results.append(service.query(renamed, 0.4, timeout=30))
                except Exception as exc:  # pragma: no cover - diagnostic
                    errors.append(exc)

            threads = [
                threading.Thread(target=client, args=(i,)) for i in range(8)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        assert not errors
        assert len(results) == 8
        expected_probs = sorted(m.probability for m in expected.matches)
        for result in results:
            assert sorted(
                m.probability for m in result.matches
            ) == pytest.approx(expected_probs)
        snap = service.stats.snapshot()
        assert snap["requests"] == 8
        assert snap["misses"] == 1

    def test_query_many_preserves_order(self, peg):
        engine = QueryEngine(peg, max_length=2, beta=0.05)
        queries = [
            QueryGraph({"x": "i", "y": "a"}, [("x", "y")]),
            QueryGraph({"x": "r", "y": "a"}, [("x", "y")]),
            QueryGraph({"p": "a", "q": "i"}, [("p", "q")]),  # iso to [0]
        ]
        with QueryService(engine, num_workers=3) as service:
            results = service.query_many(queries, 0.4)
        assert len(results) == 3
        assert results[2] is results[0]


class TestSnapshotRoundTrip:
    def test_build_snapshot_restore_serve(self, peg, tmp_path):
        snapshot = str(tmp_path / "bundle")
        query = figure1_query()
        with QueryService.build(
            peg, max_length=2, beta=0.05, snapshot_dir=snapshot,
            num_workers=2,
        ) as cold:
            assert not cold.warm_started
            cold_result = cold.query(query, 0.4)

        with QueryService.from_snapshot(peg, snapshot, num_workers=2) as warm:
            assert warm.warm_started
            warm_result = warm.query(query, 0.4)
        assert sorted(
            m.probability for m in warm_result.matches
        ) == pytest.approx(
            sorted(m.probability for m in cold_result.matches)
        )

    def test_open_builds_then_restores(self, peg, tmp_path):
        snapshot = str(tmp_path / "bundle")
        with QueryService.open(
            peg, snapshot, max_length=1, beta=0.05, num_workers=1
        ) as first:
            assert not first.warm_started
        with QueryService.open(peg, snapshot, num_workers=1) as second:
            assert second.warm_started

    def test_process_pool_round_trip(self, peg, tmp_path):
        snapshot = str(tmp_path / "bundle")
        engine = QueryEngine(peg, max_length=1, beta=0.05)
        engine.save_offline(snapshot)
        expected = engine.query(figure1_query(), 0.4)
        with QueryService.from_snapshot(
            peg, snapshot, num_workers=1, executor="process"
        ) as service:
            result = service.query(figure1_query(), 0.4, timeout=60)
        assert sorted(
            m.probability for m in result.matches
        ) == pytest.approx(sorted(m.probability for m in expected.matches))


class TestExports:
    def test_top_level_exports(self):
        import repro

        assert repro.QueryService is QueryService
        assert repro.ResultCache is ResultCache
        assert repro.ServiceStats is ServiceStats


class TestCloseLifecycle:
    def test_submit_after_close_raises(self):
        service = QueryService(FakeEngine(), num_workers=1)
        service.close()
        with pytest.raises(ServiceError):
            service.submit(figure1_query(), 0.5)
        with pytest.raises(ServiceError):
            service.submit_batch([(figure1_query(), 0.5)])

    def test_close_is_idempotent(self):
        service = QueryService(FakeEngine(), num_workers=1)
        service.close()
        service.close()
        service.close(wait=False)

    def test_close_under_load_leaves_no_hanging_waiters(self):
        gate = threading.Event()
        engine = FakeEngine(gate=gate)
        service = QueryService(engine, num_workers=1, cache_size=0)
        # Two distinct requests: the first occupies the only worker
        # (blocked on the gate), the second sits in the executor queue;
        # a third deduplicates against the first.
        first = service.submit(figure1_query(), 0.5)
        queued = service.submit(figure1_query(), 0.4)
        follower = service.submit(figure1_query("p", "q"), 0.5)

        closer = threading.Thread(target=service.close, args=(False,))
        closer.start()
        gate.set()
        closer.join(timeout=10)
        assert not closer.is_alive()

        for future in (first, queued, follower):
            assert future.done() or future.result(timeout=10) is not None
        # The queued task was cancelled: its waiter got ServiceError,
        # not a hang; the single-flight table is empty.
        with pytest.raises(ServiceError):
            queued.result(timeout=1)
        assert service._inflight == {}

        with pytest.raises(ServiceError):
            service.submit(figure1_query(), 0.5)

    def test_racing_submits_get_service_error_not_runtime_error(self):
        engine = FakeEngine(delay=0.005)
        service = QueryService(engine, num_workers=2, cache_size=0)
        errors = []
        done = []

        def hammer(i):
            try:
                future = service.submit(figure1_query(f"a{i}", f"b{i}"), 0.5)
                try:
                    future.result(timeout=10)
                    done.append(i)
                except ServiceError:
                    done.append(i)
            except ServiceError:
                done.append(i)
            except Exception as exc:  # pragma: no cover - the regression
                errors.append(exc)

        threads = [
            threading.Thread(target=hammer, args=(i,)) for i in range(16)
        ]
        for index, thread in enumerate(threads):
            thread.start()
            if index == 4:
                service.close(wait=False)
        for thread in threads:
            thread.join(timeout=10)
        assert not errors
        assert len(done) == 16
        assert service._inflight == {}


class TestDeadlines:
    def test_expired_deadline_resolves_with_clean_error(self):
        with QueryService(FakeEngine(), num_workers=1, cache_size=0) as service:
            future = service.submit(
                figure1_query(), 0.5, deadline=time.monotonic() - 0.01
            )
            with pytest.raises(DeadlineExceeded):
                future.result(timeout=10)
            assert service.stats.deadline_exceeded == 1
            # the request still completed (as an error): counters reconcile
            assert service.stats.requests == service.stats.completed

    def test_future_deadline_does_not_interfere(self):
        with QueryService(FakeEngine(), num_workers=1, cache_size=0) as service:
            future = service.submit(
                figure1_query(), 0.5, deadline=time.monotonic() + 30.0
            )
            assert future.result(timeout=10) is not None
            assert service.stats.deadline_exceeded == 0

    def test_queued_expired_request_never_evaluates(self):
        gate = threading.Event()
        engine = FakeEngine(gate=gate)
        with QueryService(engine, num_workers=1, cache_size=0) as service:
            blocker = service.submit(figure1_query(), 0.5)
            # distinct alpha: a distinct request key (same-shape queries
            # would deduplicate against the blocker)
            expired = service.submit(
                figure1_query(), 0.4,
                deadline=time.monotonic() + 0.01,
            )
            time.sleep(0.05)  # let the deadline lapse while queued
            gate.set()
            assert blocker.result(timeout=10) is not None
            with pytest.raises(DeadlineExceeded):
                expired.result(timeout=10)
            # only the blocker reached the engine
            assert engine.calls == 1


class TestBoundedAdmissionWait:
    def test_invalid_max_admission_wait_rejected(self):
        with pytest.raises(ServiceError):
            QueryService(FakeEngine(), max_admission_wait=0)
        with pytest.raises(ServiceError):
            QueryService(FakeEngine(), max_admission_wait=-1.0)

    def test_admission_pause_times_out_cleanly(self):
        service = QueryService(
            FakeEngine(), num_workers=1, cache_size=0,
            max_admission_wait=0.05,
        )
        try:
            with service._gate:
                service._applying = True
            start = time.perf_counter()
            with pytest.raises(ServiceUnavailable):
                service.submit(figure1_query(), 0.5)
            assert time.perf_counter() - start < 5.0
            assert service.stats.rejected == 1
            assert service.stats.requests == service.stats.rejected
            with service._gate:
                service._applying = False
                service._apply_done.notify_all()
            # the pause lifted: submits are admitted again
            assert service.submit(figure1_query(), 0.5).result(timeout=10)
        finally:
            service.close()

    def test_no_hang_under_concurrent_update_and_query_load(self):
        class UpdatableEngine(FakeEngine):
            def __init__(self, hold):
                super().__init__()
                self.hold = hold
                self.graph_version = 0

            def apply_updates(self, ops, log=None):
                assert self.hold.wait(timeout=10)
                self.graph_version += 1
                return {"applied": len(ops)}

        hold = threading.Event()
        service = QueryService(
            UpdatableEngine(hold), num_workers=2, cache_size=0,
            max_admission_wait=0.1,
        )
        try:
            updater = threading.Thread(
                target=service.apply_updates, args=([],)
            )
            updater.start()
            deadline = time.monotonic() + 5.0
            while not service._applying:  # wait for the pause to engage
                assert time.monotonic() < deadline
                time.sleep(0.005)
            outcomes = []

            def query(i):
                try:
                    service.submit(
                        figure1_query(f"x{i}", f"y{i}"), 0.5
                    ).result(timeout=10)
                    outcomes.append("ok")
                except ServiceUnavailable:
                    outcomes.append("unavailable")

            threads = [
                threading.Thread(target=query, args=(i,)) for i in range(4)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=10)
            # the stuck update must not hang the submitters: every one
            # resolved, with a clean typed error
            assert not any(thread.is_alive() for thread in threads)
            assert outcomes == ["unavailable"] * 4
            hold.set()
            updater.join(timeout=10)
            assert not updater.is_alive()
            assert service.submit(figure1_query(), 0.5).result(timeout=10)
        finally:
            hold.set()
            service.close()
