"""Unit tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import ensure_rng, spawn_rngs


class TestEnsureRng:
    def test_int_seed_is_reproducible(self):
        a = ensure_rng(7).random(5)
        b = ensure_rng(7).random(5)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        assert not np.array_equal(ensure_rng(1).random(5), ensure_rng(2).random(5))

    def test_generator_passthrough(self):
        rng = np.random.default_rng(3)
        assert ensure_rng(rng) is rng

    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)


class TestSpawnRngs:
    def test_count(self):
        children = spawn_rngs(5, 4)
        assert len(children) == 4

    def test_children_are_independent_streams(self):
        children = spawn_rngs(5, 2)
        assert not np.array_equal(children[0].random(8), children[1].random(8))

    def test_reproducible_from_seed(self):
        first = [rng.random(3).tolist() for rng in spawn_rngs(11, 3)]
        second = [rng.random(3).tolist() for rng in spawn_rngs(11, 3)]
        assert first == second

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(1, -1)

    def test_zero_count(self):
        assert spawn_rngs(1, 0) == []
