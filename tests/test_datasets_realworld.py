"""Unit tests for the DBLP-like and IMDB-like generators."""

import pytest

from repro.datasets.dblp import DBLP_AREAS, generate_dblp_pgd
from repro.datasets.imdb import IMDB_GENRES, generate_imdb_pgd
from repro.peg import build_peg


class TestDblpGenerator:
    @pytest.fixture(scope="class")
    def dblp(self):
        return generate_dblp_pgd(num_authors=150, seed=0)

    def test_alphabet(self, dblp):
        assert dblp.sigma == frozenset(DBLP_AREAS)

    def test_edges_are_conditional(self, dblp):
        assert dblp.has_conditional_edges
        for _, dist in dblp.edges():
            assert dist.conditional

    def test_cpt_structure(self, dblp):
        """Same-area probability p, cross-area 0.8 p, p in [0.5, 1]."""
        for _, dist in dblp.edges():
            same = dist.probability("DB", "DB")
            cross = dist.probability("DB", "ML")
            assert 0.5 <= same <= 1.0
            assert cross == pytest.approx(0.8 * same)

    def test_duplicates_create_reference_sets(self, dblp):
        declared = dblp.declared_sets()
        assert len(declared) >= 1
        assert all(len(s) == 2 for s in declared)

    def test_peg_builds(self, dblp):
        peg = build_peg(dblp)
        assert peg.conditional
        assert peg.num_nodes > 150  # originals + duplicates + merged

    def test_reproducible(self):
        a = generate_dblp_pgd(num_authors=80, seed=3)
        b = generate_dblp_pgd(num_authors=80, seed=3)
        assert a.stats() == b.stats()


class TestImdbGenerator:
    @pytest.fixture(scope="class")
    def imdb(self):
        return generate_imdb_pgd(num_actors=150, seed=0)

    def test_alphabet(self, imdb):
        assert imdb.sigma == frozenset(IMDB_GENRES)

    def test_edges_are_independent(self, imdb):
        assert not imdb.has_conditional_edges

    def test_edge_probability_range(self, imdb):
        for _, dist in imdb.edges():
            assert 0.4 <= dist.probability() <= 1.0

    def test_identity_uncertainty_present(self, imdb):
        declared = imdb.declared_sets()
        assert len(declared) == int(150 * 0.015)

    def test_genre_distributions_concentrated(self, imdb):
        dominant_masses = [
            max(p for _, p in imdb.label_distribution(ref).items())
            for ref in imdb.references
        ]
        assert sum(dominant_masses) / len(dominant_masses) > 0.7

    def test_peg_builds_with_components(self, imdb):
        peg = build_peg(imdb)
        stats = peg.stats()
        assert stats["nontrivial_components"] == len(imdb.declared_sets())
        assert stats["max_component_refs"] == 2
