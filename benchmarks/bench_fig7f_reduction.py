"""Figure 7(f): reduction by structure vs reduction by upperbounds.

Paper: a 5-node cycle query (high diameter) at α = 0.1 on 100k graphs
whose uncertainty is swept 20%–80%; each method's reduction is its
resulting search-space size divided by the size just before the joint
reduction starts. Expected shape: both reductions strengthen with
uncertainty; the upperbound pass adds the most on top of structure for
short path lengths (message passing imports distant information they
lack); at L=3 structure alone often already converges.
"""

import pytest

from benchmarks import harness
from repro.query import QueryGraph, QueryOptions

ALPHA = 0.1
UNCERTAINTIES = (0.2, 0.4, 0.6, 0.8)


def cycle_query(sigma):
    labels = {f"c{i}": sigma[i % len(sigma)] for i in range(5)}
    edges = [(f"c{i}", f"c{(i + 1) % 5}") for i in range(5)]
    return QueryGraph(labels, edges)


@pytest.mark.parametrize("max_length", harness.PATH_LENGTHS)
@pytest.mark.parametrize("uncertainty", UNCERTAINTIES)
def test_reduction_contributions(benchmark, uncertainty, max_length):
    engine = harness.synthetic_engine(
        uncertainty=uncertainty, max_length=max_length, beta=0.1
    )
    query = cycle_query(sorted(engine.peg.sigma))

    structure_only = QueryOptions(use_upperbound_reduction=False)

    def run_both():
        return (
            engine.query(query, ALPHA, structure_only),
            engine.query(query, ALPHA),
        )

    st_result, full_result = benchmark.pedantic(
        run_both, rounds=2, iterations=1
    )

    def ratio(result):
        before = result.search_space_context
        if before <= 0:
            return 1.0
        return result.search_space_final / before

    harness.report(
        "fig7f_reduction",
        "# uncertainty L structure_ratio structure+upperbound_ratio",
        [(uncertainty, max_length,
          f"{ratio(st_result):.3e}", f"{ratio(full_result):.3e}")],
    )
    benchmark.extra_info["structure_ratio"] = ratio(st_result)
    benchmark.extra_info["full_ratio"] = ratio(full_result)
