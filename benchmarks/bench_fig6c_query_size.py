"""Figure 6(c): online running time vs query size.

Paper: q(3,3) … q(15,60) on the 100k graph, α = 0.7, comparing the
optimized approach at L = 1, 2, 3 against the Random-decomposition and
No-search-space-reduction baselines (both at L = 3). Expected shape:
optimized L=3 wins overall; L=2 beats L=1 on small queries; the ablated
baselines trail the optimized configuration.

Scale substitution: 400-reference graph; each measurement averages
three random queries of the given size (paper averages five).
"""

import pytest

from benchmarks import harness
from repro.query import QueryOptions

ALPHA = 0.7
QUERY_SIZES = [(3, 3), (5, 10), (7, 21), (9, 36), (11, 44), (13, 52), (15, 60)]

VARIANTS = {
    "optimized-L1": (1, None),
    "optimized-L2": (2, None),
    "optimized-L3": (3, None),
    "random-decomp-L3": (3, QueryOptions(decomposition="random", seed=3)),
    "no-ss-reduction-L3": (
        3,
        QueryOptions(
            use_structure_reduction=False, use_upperbound_reduction=False
        ),
    ),
}


@pytest.mark.parametrize("variant", list(VARIANTS))
@pytest.mark.parametrize("size", QUERY_SIZES, ids=lambda s: f"q{s[0]}-{s[1]}")
def test_query_size(benchmark, size, variant):
    max_length, options = VARIANTS[variant]
    engine = harness.synthetic_engine(max_length=max_length, beta=0.5)
    queries = harness.synthetic_queries(engine.peg, *size)

    results = benchmark.pedantic(
        lambda: harness.run_queries(engine, queries, ALPHA, options),
        rounds=2,
        iterations=1,
    )
    matches = sum(len(r.matches) for r in results)
    benchmark.extra_info["matches"] = matches
    harness.report(
        "fig6c_query_size",
        "# nodes edges variant seconds_per_query matches",
        [(size[0], size[1], variant,
          f"{benchmark.stats.stats.mean / len(queries):.5f}", matches)],
    )
