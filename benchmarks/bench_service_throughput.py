"""Serving-layer benchmark: cache-hit latency and worker throughput.

Not a paper figure — this measures the serving subsystem added on top
of the reproduction (``repro.service``):

* cache-hit latency must be at least an order of magnitude below cold
  evaluation on a repeated workload (it is typically 2-3 orders),
* a multi-worker service must out-serve a single worker on a mixed
  workload of distinct queries — *given CPUs to scale onto*: the pool
  measurement uses processes that warm-start from the snapshot, and on
  a single-core host the ratio is pinned near 1.0 by hardware, so the
  strict assertion only applies when >= 2 CPUs are available,
* on a duplicate-heavy workload, the full service (result cache +
  single-flight dedup) must out-serve the same pool with caching
  disabled.

Run with ``PYTHONPATH=src python -m pytest benchmarks/bench_service_throughput.py -v``
or via the CLI twin: ``python -m repro bench-serve``.
"""

import pytest

from benchmarks import harness
from repro.service.bench import run_serve_benchmark


@pytest.fixture(scope="module")
def report(tmp_path_factory):
    return run_serve_benchmark(
        str(tmp_path_factory.mktemp("snapshot")),
        num_references=120,
        max_length=2,
        beta=0.1,
        num_distinct=6,
        copies=6,
        multi_workers=4,
        seed=harness.SEED,
    )


def test_cache_hit_latency_10x(report):
    harness.report(
        "service_throughput",
        "measurement  value",
        [
            ("cold_ms", round(report.cold_seconds * 1e3, 3)),
            ("hit_ms", round(report.hit_seconds * 1e3, 3)),
            ("hit_speedup", round(report.hit_speedup, 1)),
        ],
    )
    assert report.hit_speedup >= 10.0


def test_multi_worker_throughput(report):
    harness.report(
        "service_throughput",
        "measurement  value",
        [
            ("cpus", report.cpus),
            ("single_worker_qps", round(report.single_worker_qps, 1)),
            (
                f"workers_{report.multi_workers}_qps",
                round(report.multi_worker_qps, 1),
            ),
        ],
    )
    if report.cpus < 2:
        pytest.skip(
            "single-CPU host: worker scaling is hardware-bound "
            f"(measured {report.single_worker_qps:.0f} qps single vs "
            f"{report.multi_worker_qps:.0f} qps multi)"
        )
    assert report.multi_worker_qps > report.single_worker_qps


def test_cached_service_out_serves_uncached(report):
    harness.report(
        "service_throughput",
        "measurement  value",
        [
            ("cached_qps", round(report.cached_qps, 1)),
            ("uncached_qps", round(report.uncached_qps, 1)),
        ],
    )
    assert report.cached_qps > report.uncached_qps
