"""Figure 7(b): online running time vs input graph size (10-node queries).

Same sweep as Figure 7(a) with q(10,20) and q(10,40).
"""

import pytest

from benchmarks import harness

ALPHA = 0.7
QUERIES = [(10, 20), (10, 40)]


@pytest.mark.parametrize("max_length", harness.PATH_LENGTHS)
@pytest.mark.parametrize("size", QUERIES, ids=lambda s: f"q{s[0]}-{s[1]}")
@pytest.mark.parametrize("graph_size", harness.GRAPH_SIZES)
def test_graph_size_q10(benchmark, graph_size, size, max_length):
    engine = harness.synthetic_engine(
        num_references=graph_size, max_length=max_length, beta=0.5
    )
    queries = harness.synthetic_queries(engine.peg, *size)

    results = benchmark.pedantic(
        lambda: harness.run_queries(engine, queries, ALPHA),
        rounds=2,
        iterations=1,
    )
    matches = sum(len(r.matches) for r in results)
    harness.report(
        "fig7b_graph_size_q10",
        "# graph_size nodes edges L seconds_per_query matches",
        [(graph_size, size[0], size[1], max_length,
          f"{benchmark.stats.stats.mean / len(queries):.5f}", matches)],
    )
