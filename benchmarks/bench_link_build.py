"""Candidate-link building benchmark: vectorized vs Python builder.

Measures the link-construction stage PR 7 vectorized, on the same
synthetic candidate workload as ``bench_reduction_core.py`` (ring+chords
PEG, 4-node chain query, three partitions):

* **cold build** — :func:`repro.query.links.build_candidate_links_vectorized`
  with an empty :class:`~repro.query.links.LinkStructureCache` against
  the pure-Python reference
  (:func:`repro.query.kpartite.build_candidate_links`),
* **warm build** — the same call against a populated cache (every
  partition pair must report as a cache hit),
* **total online cost** — link build plus k-partite construction plus
  ``reduce()``, Python end to end against vectorized end to end; this
  is the number the CI gate enforces, because a fast link build that
  slowed reduction down would be a regression.

The script exits non-zero when the builders disagree on the link
structure (exact list equality), when the two reduction runs disagree
on sizes/removals/survivors, when a warm build is not pure cache hits,
or when the total vectorized path misses the speedup floor (5x large,
2x ``--smoke``). Results are written as ``BENCH_links.json``; with
``--trajectory`` a per-version copy goes to
``benchmarks/results/BENCH_links-v<version>.json`` for
``benchmarks/summarize.py``'s perf-trajectory table.

Usage::

    PYTHONPATH=src python benchmarks/bench_link_build.py --trajectory  # large
    PYTHONPATH=src python benchmarks/bench_link_build.py --smoke       # CI
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

if __package__ in (None, ""):  # allow running without PYTHONPATH=src
    sys.path.insert(
        0, os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
    )
    sys.path.insert(0, os.path.dirname(os.path.dirname(__file__)))

from benchmarks.bench_reduction_core import ALPHA, build_candidate_workload
from repro import __version__
from repro.query.kpartite import CandidateKPartiteGraph, build_candidate_links
from repro.query.links import LinkStructureCache, build_candidate_links_vectorized
from repro.query.reduction import PegProbabilityArrays, VectorizedKPartiteGraph


def _best(fn, repeats: int) -> tuple:
    """Best-of-``repeats`` wall time and the last return value."""
    best = float("inf")
    value = None
    for _ in range(repeats):
        started = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - started)
    return best, value


def _reduce_stats(graph):
    stats = graph.reduce()
    return (
        stats.initial_sizes,
        stats.after_structure_sizes,
        stats.final_sizes,
        stats.structure_removed,
        stats.upperbound_removed,
        tuple(graph.alive_vertex_ids(i) for i in range(graph.k)),
    )


def bench_links(num_nodes: int, repeats: int) -> dict:
    peg, decomposition, candidates, reference, _ = build_candidate_workload(
        num_nodes
    )
    total_vertices = sum(len(c) for c in candidates.values())
    arrays = PegProbabilityArrays(peg)

    # Python reference builder (re-timed here with best-of semantics; the
    # workload helper's single-shot timing is discarded).
    py_build, _ = _best(
        lambda: build_candidate_links(peg, decomposition, candidates, ALPHA),
        repeats,
    )

    # Vectorized cold: fresh cache every repeat, so every pair misses.
    cold_build, cold_links = _best(
        lambda: build_candidate_links_vectorized(
            peg, decomposition, candidates, ALPHA,
            arrays=arrays, cache=LinkStructureCache(),
        ),
        repeats,
    )
    if cold_links.pair_lists() != reference:
        raise SystemExit("FAIL: vectorized links differ from the reference")
    if cold_links.stats["cache_hits"] != 0:
        raise SystemExit("FAIL: cold build reported cache hits")

    # Vectorized warm: one shared cache, populated by the first build.
    cache = LinkStructureCache()
    build_candidate_links_vectorized(
        peg, decomposition, candidates, ALPHA, arrays=arrays, cache=cache
    )
    warm_build, warm_links = _best(
        lambda: build_candidate_links_vectorized(
            peg, decomposition, candidates, ALPHA, arrays=arrays, cache=cache
        ),
        repeats,
    )
    partition_pairs = warm_links.stats["cache_hits"]
    if partition_pairs == 0 or warm_links.stats["cache_misses"] != 0:
        raise SystemExit("FAIL: warm build was not pure cache hits")
    if warm_links.pair_lists() != reference:
        raise SystemExit("FAIL: warm cached links differ from the reference")

    # End-to-end online cost: build links, build the k-partite graph,
    # reduce. Reduction outcomes must agree exactly across the paths.
    def python_total():
        links = build_candidate_links(peg, decomposition, candidates, ALPHA)
        graph = CandidateKPartiteGraph(
            peg, decomposition, candidates, ALPHA, links=links
        )
        return _reduce_stats(graph)

    def vectorized_total(warm_cache=None):
        links = build_candidate_links_vectorized(
            peg, decomposition, candidates, ALPHA,
            arrays=arrays,
            cache=warm_cache if warm_cache is not None
            else LinkStructureCache(),
        )
        graph = VectorizedKPartiteGraph(
            peg, decomposition, candidates, ALPHA, links=links, arrays=arrays
        )
        return _reduce_stats(graph)

    py_total, py_outcome = _best(python_total, repeats)
    vec_total, vec_outcome = _best(vectorized_total, repeats)
    warm_total, warm_outcome = _best(
        lambda: vectorized_total(warm_cache=cache), repeats
    )
    agreement = py_outcome == vec_outcome == warm_outcome

    num_links = sum(len(pairs) for pairs in reference.values())
    return {
        "total_vertices": total_vertices,
        "partition_pairs": partition_pairs,
        "links": num_links,
        "fallback_pairs": cold_links.stats["fallback_pairs"],
        "python_build_seconds": py_build,
        "vectorized_build_seconds": cold_build,
        "warm_build_seconds": warm_build,
        "speedup_build": py_build / max(cold_build, 1e-12),
        "speedup_warm_build": py_build / max(warm_build, 1e-12),
        "python_total_seconds": py_total,
        "vectorized_total_seconds": vec_total,
        "warm_total_seconds": warm_total,
        "speedup_total": py_total / max(vec_total, 1e-12),
        "speedup_warm_total": py_total / max(warm_total, 1e-12),
        "agreement": agreement,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="small CI workload; exit 1 below a 2x total speedup",
    )
    parser.add_argument(
        "--out", default="BENCH_links.json",
        help="where to write the machine-readable results",
    )
    parser.add_argument(
        "--trajectory", action="store_true",
        help="also write benchmarks/results/BENCH_links-v<version>.json "
        "(the committed perf-trajectory point for this version)",
    )
    parser.add_argument(
        "--nodes", type=int, default=None,
        help="override the PEG size (nodes; candidates scale ~4x)",
    )
    parser.add_argument(
        "--repeats", type=int, default=None, help="best-of repeat count"
    )
    args = parser.parse_args(argv)

    num_nodes = args.nodes or (500 if args.smoke else 2500)
    repeats = args.repeats or (2 if args.smoke else 3)
    floor = 2.0 if args.smoke else 5.0

    links = bench_links(num_nodes, repeats)

    report = {
        "benchmark": "link_build",
        "repro_version": __version__,
        "mode": "smoke" if args.smoke else "large",
        "workload": {
            "nodes": num_nodes,
            "alpha": ALPHA,
            "repeats": repeats,
        },
        "links": links,
    }
    outputs = [args.out]
    if args.trajectory:
        outputs.append(
            os.path.join(
                os.path.dirname(os.path.abspath(__file__)),
                "results",
                f"BENCH_links-v{__version__}.json",
            )
        )
    for out in outputs:
        with open(out, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")

    print(
        f"[links] {links['total_vertices']} candidate vertices, "
        f"{links['links']} links over {links['partition_pairs']} pairs: "
        f"python build {links['python_build_seconds']:.4f}s, vectorized "
        f"{links['vectorized_build_seconds']:.4f}s "
        f"({links['speedup_build']:.1f}x cold, "
        f"{links['speedup_warm_build']:.1f}x warm)"
    )
    print(
        f"[total] build+reduce: python {links['python_total_seconds']:.4f}s, "
        f"vectorized {links['vectorized_total_seconds']:.4f}s "
        f"({links['speedup_total']:.1f}x cold, "
        f"{links['speedup_warm_total']:.1f}x warm), agreement="
        f"{links['agreement']}"
    )
    print("wrote " + ", ".join(outputs))

    if not links["agreement"]:
        print("FAIL: reduction outcomes disagree across builders")
        return 1
    if not args.smoke and links["total_vertices"] < 10_000:
        print("FAIL: large workload must have >= 10k candidate vertices")
        return 1
    if links["speedup_total"] < floor:
        print(
            f"FAIL: total (build+reduce) speedup "
            f"{links['speedup_total']:.2f}x below the {floor:.0f}x floor"
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
