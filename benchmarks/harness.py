"""Shared infrastructure for the per-figure benchmark modules.

Every benchmark module regenerates one table/figure of the paper's
Section 6 at laptop scale. This module provides:

* cached PEG / engine constructors (building a PEG and its index is the
  expensive part; benchmarks measuring the *online* phase share them),
* the scaled-down parameter grids (the paper's 50k–1m references become
  100–800; all ratios — edges = 5x references, k = refs/1000 groups,
  s = r = 4, 20% uncertainty — are preserved),
* workload helpers (averaged random-query runs, Figure-8 patterns),
* a tiny reporter writing paper-style series to ``benchmarks/results/``.
"""

from __future__ import annotations

import functools
import os

from repro.datasets import (
    SyntheticConfig,
    generate_dblp_pgd,
    generate_imdb_pgd,
    generate_synthetic_pgd,
    pattern_query,
    random_query,
)
from repro.peg import build_peg
from repro.query import QueryEngine, QueryOptions

#: Base seed for every synthetic artifact; change to resample the study.
SEED = 7

#: Scaled-down graph sizes standing in for the paper's 50k/100k/500k/1m.
GRAPH_SIZES = (100, 200, 400, 800)

#: Index thresholds swept in the offline experiments (Figure 6a/6b).
OFFLINE_BETAS = (0.9, 0.7, 0.5, 0.3)

#: Index path lengths, as in the paper.
PATH_LENGTHS = (1, 2, 3)

#: Query seeds averaged per measurement (the paper averages 5 queries).
QUERY_SEEDS = (0, 1, 2)

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


# ----------------------------------------------------------------------
# Cached builders
# ----------------------------------------------------------------------


@functools.lru_cache(maxsize=None)
def synthetic_peg(num_references: int = 400, uncertainty: float = 0.2,
                  seed: int = SEED):
    """Cached synthetic PEG with the paper's parameter ratios."""
    config = SyntheticConfig(
        num_references=num_references,
        uncertainty=uncertainty,
        seed=seed,
    )
    return build_peg(generate_synthetic_pgd(config))


@functools.lru_cache(maxsize=None)
def synthetic_engine(
    num_references: int = 400,
    uncertainty: float = 0.2,
    max_length: int = 3,
    beta: float = 0.5,
    seed: int = SEED,
) -> QueryEngine:
    """Cached engine (offline phase included) over a synthetic PEG."""
    return QueryEngine(
        synthetic_peg(num_references, uncertainty, seed),
        max_length=max_length,
        beta=beta,
    )


@functools.lru_cache(maxsize=None)
def dblp_peg(num_authors: int = 400, seed: int = SEED):
    return build_peg(generate_dblp_pgd(num_authors=num_authors, seed=seed))


@functools.lru_cache(maxsize=None)
def dblp_engine(max_length: int, num_authors: int = 400) -> QueryEngine:
    return QueryEngine(
        dblp_peg(num_authors), max_length=max_length, beta=0.05
    )


@functools.lru_cache(maxsize=None)
def imdb_peg(num_actors: int = 400, seed: int = SEED):
    return build_peg(generate_imdb_pgd(num_actors=num_actors, seed=seed))


@functools.lru_cache(maxsize=None)
def imdb_engine(max_length: int, num_actors: int = 400) -> QueryEngine:
    return QueryEngine(
        imdb_peg(num_actors), max_length=max_length, beta=0.05
    )


# ----------------------------------------------------------------------
# Workloads
# ----------------------------------------------------------------------


def synthetic_queries(peg, num_nodes: int, num_edges: int, seeds=QUERY_SEEDS):
    """The averaged random-query workload of the synthetic experiments."""
    sigma = sorted(peg.sigma)
    return [
        random_query(num_nodes, num_edges, sigma, seed=seed)
        for seed in seeds
    ]


def run_queries(engine: QueryEngine, queries, alpha: float,
                options: QueryOptions | None = None):
    """Run a query batch; returns the list of results (used under timing)."""
    return [engine.query(query, alpha, options) for query in queries]


#: Figure-8 pattern labels for the DBLP experiment (mixing areas, as the
#: paper's collaboration patterns do).
DBLP_PATTERN_LABELS = {
    "BF1": {"n0": "SE", "n1": "DB", "n2": "ML", "n3": "DB", "n4": "ML"},
    "BF2": {
        "n0": "SE", "n1": "DB", "n2": "ML", "n3": "DB",
        "n4": "DB", "n5": "ML", "n6": "DB",
    },
    "GR": {"n0": "DB", "n1": "DB", "n2": "ML", "n3": "ML"},
    "ST": {"n0": "SE", "n1": "DB", "n2": "DB", "n3": "ML", "n4": "ML"},
    "TR": {
        "n0": "DB", "n1": "ML", "n2": "ML",
        "n3": "DB", "n4": "DB", "n5": "SE", "n6": "SE",
    },
}


def dblp_pattern(name: str):
    return pattern_query(name, DBLP_PATTERN_LABELS[name])


def imdb_pattern(name: str, genre: str = "Drama"):
    """IMDB patterns use one genre for all nodes (co-starring cliques)."""
    return pattern_query(name, genre)


# ----------------------------------------------------------------------
# Reporting
# ----------------------------------------------------------------------


#: Report files already initialized by this process (truncate on first
#: touch so each pytest session regenerates its own series, then append).
_initialized_reports: set = set()


def report(name: str, header: str, rows) -> str:
    """Write a paper-style series to ``benchmarks/results/<name>.txt``.

    The first write of a process truncates the file and emits the header;
    subsequent writes append rows only. Returns the formatted text so
    callers may print it.
    """
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    lines = []
    if name not in _initialized_reports:
        _initialized_reports.add(name)
        mode = "w"
        lines.append(header)
    else:
        mode = "a"
    for row in rows:
        lines.append("  ".join(str(cell) for cell in row))
    text = "\n".join(lines) + "\n"
    with open(path, mode, encoding="utf-8") as handle:
        handle.write(text)
    return text


# ----------------------------------------------------------------------
# Smoke entry point
# ----------------------------------------------------------------------


def smoke(num_references: int = GRAPH_SIZES[0]) -> dict:
    """End-to-end canary on the smallest synthetic graph.

    Builds the PEG and its index, runs one small query workload, and
    returns a summary. CI invokes this module as a script to catch
    breakage of the benchmark plumbing without paying for a full sweep.
    """
    engine = synthetic_engine(
        num_references=num_references, max_length=2, beta=0.5
    )
    queries = synthetic_queries(engine.peg, 3, 2, seeds=(0,))
    results = run_queries(engine, queries, alpha=0.5)
    return {
        "references": num_references,
        "index_paths": engine.index.num_paths(),
        "queries": len(results),
        "matches": sum(len(r.matches) for r in results),
        "online_seconds": round(sum(r.total_seconds for r in results), 4),
    }


if __name__ == "__main__":
    for key, value in smoke().items():
        print(f"{key:16s}{value}")
