"""Overload gate: a saturated server sheds load, admitted latency holds.

The serving tier's overload contract (ISSUE 8): at 2x capacity offered
load the server answers the excess with typed ``REJECTED`` replies
instead of queueing without bound, and the requests it *does* admit
keep a p95 latency within :data:`MAX_P95_RATIO` (3x) of the unloaded
p95 — bounded queues convert overload into shed requests, not into
unbounded tail latency. On a drained service the counters reconcile
exactly: ``requests == completed + rejected``.

Two phases over the same synthetic PEG and query mix:

* **unloaded** — one client, sequential requests against a server with
  roomy bounds; per-request wall-clock from the client side.
* **overloaded** — a deliberately tiny server (one evaluation slot,
  one pending slot: Python evaluations share the GIL, so concurrency
  beyond one worker only inflates latency) hammered by concurrent
  clients at twice its capacity. Admitted-reply latencies feed the
  gated p95; rejects are counted, never timed.

Results are written as machine-readable ``BENCH_net.json`` (CI uploads
it as a build artifact); with ``--trajectory`` the same report is also
written to ``benchmarks/results/BENCH_net-v<version>.json`` for the
perf-trajectory table of ``benchmarks/summarize.py``.

Queue-wait ratios are noise-sensitive on shared CI runners; the gate
re-runs the measurement up to two extra times before failing.

Usage::

    PYTHONPATH=src python benchmarks/bench_service_overload.py --trajectory
    PYTHONPATH=src python benchmarks/bench_service_overload.py --smoke   # CI
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import threading
import time

if __package__ in (None, ""):  # allow running without PYTHONPATH=src
    sys.path.insert(
        0, os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
    )

from repro import __version__
from repro.datasets import SyntheticConfig, generate_synthetic_pgd
from repro.net import QueryClient, start_server
from repro.peg import build_peg
from repro.query import QueryEngine
from repro.service import QueryService
from repro.utils.errors import RemoteError

#: The gate: overloaded admitted-request p95 within this factor of the
#: unloaded p95.
MAX_P95_RATIO = 3.0

ALPHA_BASE = 0.3


def _quantile(values: list, q: float) -> float:
    ordered = sorted(values)
    if not ordered:
        return 0.0
    rank = max(0, min(len(ordered) - 1, int(round(q * (len(ordered) - 1)))))
    return ordered[rank]


def build_engine(num_references: int) -> QueryEngine:
    config = SyntheticConfig(
        num_references=num_references,
        num_labels=4,
        uncertainty=0.4,
        seed=20260808,
    )
    peg = build_peg(generate_synthetic_pgd(config))
    return QueryEngine(peg, max_length=2, beta=0.1)


def query_spec(peg):
    labels = sorted(peg.sigma, key=repr)
    return (
        {"a": labels[0], "b": labels[1]},
        [("a", "b")],
    )


def run_unloaded(engine_refs: int, requests: int) -> dict:
    """Sequential requests against a roomy server; client-side timings."""
    engine = build_engine(engine_refs)
    nodes, edges = query_spec(engine.peg)
    service = QueryService(engine, num_workers=1, cache_size=0)
    handle = start_server(service, max_pending=64)
    latencies = []
    try:
        with QueryClient(*handle.address, max_retries=0) as client:
            for i in range(requests):
                started = time.perf_counter()
                reply = client.query(
                    nodes, edges, alpha=ALPHA_BASE + i * 1e-4
                )
                latencies.append(time.perf_counter() - started)
                assert reply["ok"]
    finally:
        handle.stop(close_service=True)
    return {
        "requests": requests,
        "p50_ms": _quantile(latencies, 0.50) * 1e3,
        "p95_ms": _quantile(latencies, 0.95) * 1e3,
    }


def run_overloaded(
    engine_refs: int, clients: int, per_client: int
) -> dict:
    """2x-capacity hammering of a one-slot server; reconciled counters.

    Capacity is ``max_inflight + max_pending = 2`` concurrent requests;
    ``clients`` concurrent threads offer at least twice that.
    """
    engine = build_engine(engine_refs)
    nodes, edges = query_spec(engine.peg)
    service = QueryService(engine, num_workers=1, cache_size=0)
    handle = start_server(
        service, max_pending=1, max_inflight=1, per_client_inflight=8
    )
    latencies: list = []
    rejected = [0]
    lock = threading.Lock()

    def hammer(tid: int) -> None:
        with QueryClient(*handle.address, max_retries=0) as client:
            for i in range(per_client):
                alpha = ALPHA_BASE + (tid * per_client + i) * 1e-4
                started = time.perf_counter()
                try:
                    reply = client.query(nodes, edges, alpha=alpha)
                    elapsed = time.perf_counter() - started
                    assert reply["ok"]
                    with lock:
                        latencies.append(elapsed)
                except RemoteError as exc:
                    assert exc.code == "REJECTED", exc.code
                    with lock:
                        rejected[0] += 1

    try:
        threads = [
            threading.Thread(target=hammer, args=(tid,))
            for tid in range(clients)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        deadline = time.monotonic() + 30
        while service.stats.in_flight and time.monotonic() < deadline:
            time.sleep(0.01)
        snap = service.stats_snapshot()
    finally:
        handle.stop(close_service=True)
    offered = clients * per_client
    return {
        "clients": clients,
        "offered": offered,
        "completed": len(latencies),
        "rejected": rejected[0],
        "p50_ms": _quantile(latencies, 0.50) * 1e3,
        "p95_ms": _quantile(latencies, 0.95) * 1e3,
        "service": {
            "requests": snap["requests"],
            "completed": snap["completed"],
            "rejected": snap["rejected"],
            "shed": snap["shed"],
        },
        "reconciles": snap["requests"]
        == snap["completed"] + snap["rejected"],
    }


def run_once(engine_refs: int, requests: int, clients: int,
             per_client: int) -> dict:
    unloaded = run_unloaded(engine_refs, requests)
    overloaded = run_overloaded(engine_refs, clients, per_client)
    ratio = overloaded["p95_ms"] / max(unloaded["p95_ms"], 1e-9)
    return {
        "unloaded": unloaded,
        "overloaded": overloaded,
        "p95_ratio": ratio,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="small CI workload; exit 1 when the overloaded p95 exceeds "
        f"{MAX_P95_RATIO:.0f}x the unloaded p95, nothing is shed, or "
        "the counters fail to reconcile",
    )
    parser.add_argument(
        "--out", default="BENCH_net.json",
        help="where to write the machine-readable results",
    )
    parser.add_argument(
        "--trajectory", action="store_true",
        help="also write benchmarks/results/BENCH_net-v<version>.json "
        "(the committed perf-trajectory point for this version)",
    )
    parser.add_argument(
        "--refs", type=int, default=None,
        help="override the synthetic PEG size (references)",
    )
    args = parser.parse_args(argv)

    engine_refs = args.refs or (300 if args.smoke else 600)
    requests = 30 if args.smoke else 80
    clients, per_client = (4, 12) if args.smoke else (6, 25)

    result = run_once(engine_refs, requests, clients, per_client)
    attempts = 1
    while result["p95_ratio"] > MAX_P95_RATIO and attempts < 3:
        attempts += 1
        result = run_once(engine_refs, requests, clients, per_client)
    result["attempts"] = attempts

    report = {
        "benchmark": "service_overload",
        "repro_version": __version__,
        "mode": "smoke" if args.smoke else "large",
        "workload": {
            "references": engine_refs,
            "unloaded_requests": requests,
            "clients": clients,
            "per_client": per_client,
            "max_p95_ratio": MAX_P95_RATIO,
        },
        **result,
    }
    outputs = [args.out]
    if args.trajectory:
        outputs.append(
            os.path.join(
                os.path.dirname(os.path.abspath(__file__)),
                "results",
                f"BENCH_net-v{__version__}.json",
            )
        )
    for out in outputs:
        with open(out, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")

    unloaded, overloaded = result["unloaded"], result["overloaded"]
    print(
        f"[unloaded]   {unloaded['requests']} sequential requests: "
        f"p50 {unloaded['p50_ms']:.2f}ms, p95 {unloaded['p95_ms']:.2f}ms"
    )
    print(
        f"[overloaded] {overloaded['offered']} offered over "
        f"{overloaded['clients']} clients vs 2-slot capacity: "
        f"{overloaded['completed']} completed, "
        f"{overloaded['rejected']} rejected "
        f"({overloaded['service']['shed']} shed); admitted p50 "
        f"{overloaded['p50_ms']:.2f}ms, p95 {overloaded['p95_ms']:.2f}ms"
    )
    print(
        f"[gate] p95 ratio {result['p95_ratio']:.2f}x "
        f"(limit {MAX_P95_RATIO:.0f}x), counters "
        f"{'reconcile' if overloaded['reconciles'] else 'DO NOT reconcile'}"
        f", {attempts} attempt(s)"
    )
    print("wrote " + ", ".join(outputs))

    failed = False
    if result["p95_ratio"] > MAX_P95_RATIO:
        print(
            f"FAIL: admitted p95 {result['p95_ratio']:.2f}x unloaded "
            f"exceeds {MAX_P95_RATIO:.0f}x"
        )
        failed = True
    if overloaded["rejected"] == 0 or overloaded["service"]["shed"] == 0:
        print("FAIL: 2x-capacity load shed nothing — bounds not enforced")
        failed = True
    if not overloaded["reconciles"]:
        print(
            "FAIL: requests != completed + rejected "
            f"({overloaded['service']})"
        )
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
