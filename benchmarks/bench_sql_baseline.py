"""Section 6.2.1, baseline 4: the SQL implementation comparison.

Paper: a q(5,7) query at α = 0.7 on the 100k graph answers in under a
second with the optimized engine while the MySQL formulation "never
finishes in a month". We reproduce the gap at laptop scale: the
optimized engine and the direct backtracking matcher are timed, and the
relational-join plan is run under an intermediate-row budget that plays
the role of the paper's timeout — on anything beyond the smallest
configuration it blows the budget (reported as DNF).
"""

import pytest

from benchmarks import harness
from repro.query import direct_matches
from repro.relational import RowLimitExceeded, sql_baseline_matches

ALPHA = 0.7
ROW_LIMIT = 500_000


@pytest.mark.parametrize("graph_size", (100, 200, 400))
def test_optimized_engine(benchmark, graph_size):
    engine = harness.synthetic_engine(
        num_references=graph_size, max_length=3, beta=0.5
    )
    queries = harness.synthetic_queries(engine.peg, 5, 7)
    results = benchmark.pedantic(
        lambda: harness.run_queries(engine, queries, ALPHA),
        rounds=2,
        iterations=1,
    )
    harness.report(
        "sql_baseline",
        "# graph_size method seconds_per_query note",
        [(graph_size, "optimized-L3",
          f"{benchmark.stats.stats.mean / len(queries):.5f}", "-")],
    )
    assert all(r is not None for r in results)


@pytest.mark.parametrize("graph_size", (100, 200, 400))
def test_direct_backtracking(benchmark, graph_size):
    engine = harness.synthetic_engine(
        num_references=graph_size, max_length=3, beta=0.5
    )
    peg = engine.peg
    queries = harness.synthetic_queries(peg, 5, 7)
    benchmark.pedantic(
        lambda: [direct_matches(peg, q, ALPHA) for q in queries],
        rounds=2,
        iterations=1,
    )
    harness.report(
        "sql_baseline",
        "# graph_size method seconds_per_query note",
        [(graph_size, "direct-backtracking",
          f"{benchmark.stats.stats.mean / len(queries):.5f}", "-")],
    )


@pytest.mark.parametrize("graph_size", (100, 200, 400))
def test_sql_joins(benchmark, graph_size):
    engine = harness.synthetic_engine(
        num_references=graph_size, max_length=3, beta=0.5
    )
    peg = engine.peg
    queries = harness.synthetic_queries(peg, 5, 7)
    outcome = {"dnf": 0}

    def run_sql():
        for query in queries:
            try:
                sql_baseline_matches(peg, query, ALPHA, row_limit=ROW_LIMIT)
            except RowLimitExceeded:
                outcome["dnf"] += 1

    benchmark.pedantic(run_sql, rounds=1, iterations=1)
    note = f"DNF {outcome['dnf']}/{len(queries)}" if outcome["dnf"] else "-"
    benchmark.extra_info["dnf"] = outcome["dnf"]
    harness.report(
        "sql_baseline",
        "# graph_size method seconds_per_query note",
        [(graph_size, "sql-joins",
          f"{benchmark.stats.stats.mean / len(queries):.5f}", note)],
    )
