"""Live-update benchmark: delta-overlay maintenance vs full rebuild.

Measures the cost model the :mod:`repro.delta` subsystem promises:

* **apply throughput** — mutation batches absorbed per second by a
  running engine (PEG surgery + dirty-neighborhood re-enumeration +
  context rebuild), against the offline-rebuild time the same batch
  would otherwise cost,
* **overlay lookup overhead** — online query latency through the
  :class:`~repro.delta.overlay.DeltaOverlayIndex` (dirty-node masking +
  delta union) relative to a freshly rebuilt index,
* **compaction** — the cost of folding the delta back into the base
  stores, after which lookups are overhead-free again.

A correctness spot check (overlay vs rebuild match sets) runs inside
the benchmark: a fast wrong answer must fail, not impress. Results are
written as machine-readable ``BENCH_delta.json``; with ``--trajectory``
a versioned copy goes under ``benchmarks/results/`` for the
perf-trajectory table in ``benchmarks/summarize.py``. With ``--smoke``
(the CI gate) the script exits non-zero when absorbing a mutation
batch is not faster than rebuilding the offline phase from scratch —
the whole point of the subsystem.

Usage::

    PYTHONPATH=src python benchmarks/bench_delta_updates.py --trajectory
    PYTHONPATH=src python benchmarks/bench_delta_updates.py --smoke
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
import time

if __package__ in (None, ""):  # allow running without PYTHONPATH=src
    sys.path.insert(
        0, os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
    )

from repro import __version__
from repro.datasets import SyntheticConfig, generate_synthetic_pgd, random_query
from repro.delta import AddEdge, AddEntity, UpdateLabelProbability
from repro.peg import build_peg
from repro.pgd import BernoulliEdge
from repro.query import QueryEngine

ALPHA = 0.3
MAX_LENGTH = 2
BETA = 0.05


def _build_peg(num_references: int):
    config = SyntheticConfig(
        num_references=num_references,
        edges_per_node=2,
        num_labels=4,
        uncertainty=0.3,
        groups=max(1, num_references // 20),
        seed=20260730,
    )
    return build_peg(generate_synthetic_pgd(config))


def _random_dist(rng: random.Random, sigma) -> dict:
    chosen = rng.sample(sigma, rng.randint(1, min(3, len(sigma))))
    weights = [rng.uniform(0.1, 1.0) for _ in chosen]
    total = sum(weights)
    return {label: w / total for label, w in zip(chosen, weights)}


def _mutation_batches(rng: random.Random, peg, sigma, num_batches: int,
                      batch_size: int) -> list:
    """Mixed update/add batches addressing the live graph."""
    batches = []
    fresh = 0
    live = [n for n in peg.node_ids() if not peg.is_removed_id(n)]
    for _ in range(num_batches):
        batch = []
        for _ in range(batch_size):
            roll = rng.random()
            if roll < 0.6:
                node = rng.choice(live)
                batch.append(
                    UpdateLabelProbability(
                        tuple(sorted(peg.entity_of(node), key=repr)),
                        _random_dist(rng, sigma),
                    )
                )
            elif roll < 0.8:
                fresh += 1
                batch.append(
                    AddEntity(
                        (f"bench-dyn-{fresh}",),
                        _random_dist(rng, sigma),
                        rng.uniform(0.6, 1.0),
                    )
                )
            else:
                anchor = rng.choice(live)
                fresh += 1
                batch.append(AddEntity(
                    (f"bench-dyn-{fresh}",),
                    _random_dist(rng, sigma),
                    rng.uniform(0.6, 1.0),
                ))
                batch.append(AddEdge(
                    tuple(sorted(peg.entity_of(anchor), key=repr)),
                    (f"bench-dyn-{fresh}",),
                    BernoulliEdge(rng.uniform(0.4, 1.0)),
                ))
        batches.append(batch)
    return batches


def _query_workload(rng: random.Random, sigma, count: int) -> list:
    queries = []
    for _ in range(count):
        num_nodes = rng.choice((2, 3))
        num_edges = 1 if num_nodes == 2 else rng.choice((2, 3))
        queries.append(
            random_query(num_nodes, num_edges, sigma,
                         seed=rng.randrange(2**31))
        )
    return queries


def _time_queries(engine, queries) -> float:
    start = time.perf_counter()
    for query in queries:
        engine.query(query, ALPHA)
    return time.perf_counter() - start


def match_keys(matches):
    return sorted(
        (m.nodes, m.edges, round(m.probability, 9)) for m in matches
    )


def run(num_references: int, num_batches: int, batch_size: int,
        num_queries: int) -> dict:
    rng = random.Random(4173)
    peg = _build_peg(num_references)
    sigma = sorted(peg.sigma, key=repr)

    build_start = time.perf_counter()
    engine = QueryEngine(peg, max_length=MAX_LENGTH, beta=BETA)
    rebuild_seconds = time.perf_counter() - build_start

    queries = _query_workload(rng, sigma, num_queries)
    baseline_query_seconds = _time_queries(engine, queries)

    batches = _mutation_batches(rng, peg, sigma, num_batches, batch_size)
    total_ops = sum(len(batch) for batch in batches)
    # The first-batch time is the headline number: the delta a serving
    # system absorbs between compactions. Later batches pay for the
    # *cumulative* dirty neighborhood (the overlay re-enumerates it in
    # full), so the total also shows how cost grows until a compaction
    # resets it.
    apply_start = time.perf_counter()
    engine.apply_updates(batches[0])
    first_batch_seconds = time.perf_counter() - apply_start
    for batch in batches[1:]:
        engine.apply_updates(batch)
    apply_seconds = time.perf_counter() - apply_start

    overlay_query_seconds = _time_queries(engine, queries)

    rebuilt = QueryEngine(peg, max_length=MAX_LENGTH, beta=BETA)
    agreement = all(
        match_keys(engine.query(q, ALPHA).matches)
        == match_keys(rebuilt.query(q, ALPHA).matches)
        for q in queries
    )

    compact_start = time.perf_counter()
    compact_stats = engine.compact_updates()
    compact_seconds = time.perf_counter() - compact_start
    compacted_query_seconds = _time_queries(engine, queries)

    apply_per_batch = apply_seconds / max(1, num_batches)
    return {
        "nodes": peg.num_nodes,
        "rebuild_seconds": rebuild_seconds,
        "apply": {
            "batches": num_batches,
            "ops": total_ops,
            "seconds_total": apply_seconds,
            "seconds_per_batch": apply_per_batch,
            "seconds_first_batch": first_batch_seconds,
            "ops_per_second": total_ops / apply_seconds
            if apply_seconds else float("inf"),
            "speedup_vs_rebuild": rebuild_seconds / first_batch_seconds
            if first_batch_seconds else float("inf"),
        },
        "lookup": {
            "queries": len(queries),
            "baseline_seconds": baseline_query_seconds,
            "overlay_seconds": overlay_query_seconds,
            "compacted_seconds": compacted_query_seconds,
            "overlay_overhead_ratio": (
                overlay_query_seconds / baseline_query_seconds
                if baseline_query_seconds else float("inf")
            ),
        },
        "compact": dict(compact_stats, seconds=compact_seconds),
        "agreement": agreement,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="small workload + CI gate: applying a batch must beat a rebuild",
    )
    parser.add_argument(
        "--out", default="BENCH_delta.json",
        help="where to write the machine-readable results",
    )
    parser.add_argument(
        "--trajectory", action="store_true",
        help="also write benchmarks/results/BENCH_delta-v<version>.json "
        "(the committed perf-trajectory point for this version)",
    )
    parser.add_argument(
        "--size", type=int, default=None,
        help="override the synthetic graph size (references)",
    )
    args = parser.parse_args(argv)

    num_references = args.size or (120 if args.smoke else 400)
    num_batches = 4 if args.smoke else 10
    batch_size = 2 if args.smoke else 3
    num_queries = 10 if args.smoke else 25

    results = run(num_references, num_batches, batch_size, num_queries)
    report = {
        "benchmark": "delta_updates",
        "repro_version": __version__,
        "mode": "smoke" if args.smoke else "large",
        "workload": {
            "references": num_references,
            "batches": num_batches,
            "batch_size": batch_size,
            "queries": num_queries,
            "alpha": ALPHA,
        },
        "delta": results,
    }
    outputs = [args.out]
    if args.trajectory:
        outputs.append(
            os.path.join(
                os.path.dirname(os.path.abspath(__file__)),
                "results",
                f"BENCH_delta-v{__version__}.json",
            )
        )
    for out in outputs:
        with open(out, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")

    apply = results["apply"]
    lookup = results["lookup"]
    print(
        f"[apply]   {apply['ops']} ops in {apply['batches']} batches: "
        f"first batch {apply['seconds_first_batch']:.4f}s vs rebuild "
        f"{results['rebuild_seconds']:.4f}s "
        f"({apply['speedup_vs_rebuild']:.1f}x), "
        f"{apply['seconds_per_batch']:.4f}s/batch cumulative, "
        f"{apply['ops_per_second']:.0f} ops/s"
    )
    print(
        f"[lookup]  {lookup['queries']} queries: baseline "
        f"{lookup['baseline_seconds']:.4f}s, overlay "
        f"{lookup['overlay_seconds']:.4f}s "
        f"({lookup['overlay_overhead_ratio']:.2f}x), post-compact "
        f"{lookup['compacted_seconds']:.4f}s"
    )
    print(
        f"[compact] {results['compact']['sequences_rewritten']} sequences "
        f"in {results['compact']['seconds']:.4f}s; agreement="
        f"{results['agreement']}"
    )
    print("wrote " + ", ".join(outputs))

    if not results["agreement"]:
        print("FAIL: overlay results disagree with a from-scratch rebuild")
        return 1
    if args.smoke and apply["speedup_vs_rebuild"] < 1.0:
        print("FAIL: absorbing a mutation batch is slower than a rebuild")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
