"""Benchmark-suite configuration.

Report files under ``benchmarks/results/`` are truncated on first write
by each pytest session (see :func:`benchmarks.harness.report`), so
chunked runs of individual modules refresh only their own series.
"""
