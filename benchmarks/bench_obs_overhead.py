"""Observability overhead gate: disabled-mode cost must stay under 5%.

The obs subsystem (:mod:`repro.obs`) is threaded through the engine's
hot path: every query resolves an ambient span, creates stage children,
times stages, and records registry metrics. When no tracer is active
all span operations hit the null span and cost roughly one attribute
lookup each — this benchmark verifies that claim against the reduction
workload of :mod:`benchmarks.bench_reduction_core` and fails if the
instrumented-but-disabled path costs more than 5% over the bare one.

Two measurements:

* **macro** — the k-partite reduction loop (build + ``reduce()``) run
  bare, and run with the per-query obs work the engine's default path
  adds layered on top: the ambient-span resolution, the null-span
  stage children with their ``set``/``incr`` calls, the
  :class:`~repro.obs.timing.StageTimings` contexts, and the registry
  recordings of ``_record_query_metrics``. The gate is the ratio of
  best-of times.
* **micro** — nanoseconds per individual disabled-path operation
  (null-span child, ``current_span()``, disabled-registry observe,
  enabled counter inc), reported for context, not gated.

Results are written as machine-readable ``BENCH_obs.json`` (CI uploads
it as a build artifact); with ``--trajectory`` the same report is also
written to ``benchmarks/results/BENCH_obs-v<version>.json`` for the
perf-trajectory table of ``benchmarks/summarize.py``.

Timing ratios this close to 1.0 are noise-sensitive; the gate re-runs
the macro measurement up to two extra times before failing.

Usage::

    PYTHONPATH=src python benchmarks/bench_obs_overhead.py --trajectory  # large
    PYTHONPATH=src python benchmarks/bench_obs_overhead.py --smoke       # CI
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

if __package__ in (None, ""):  # allow running without PYTHONPATH=src
    sys.path.insert(
        0, os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
    )

from bench_reduction_core import ALPHA, build_candidate_workload

from repro import __version__
from repro.obs.metrics import MetricsRegistry, get_registry
from repro.obs.timing import StageTimings
from repro.obs.trace import NULL_SPAN, current_span
from repro.query.reduction import VectorizedKPartiteGraph

#: Overhead gate: instrumented-but-disabled must stay within this
#: factor of the bare loop.
MAX_OVERHEAD = 1.05

#: Stage keys the engine times per query (see ``StageTimings``).
STAGES = ("decompose", "candidates", "kpartite", "reduction", "matching")


def _simulate_disabled_obs(registry, histograms, counters) -> StageTimings:
    """Replay the obs work one default-mode engine query performs.

    Mirrors ``QueryEngine.query``/``_evaluate`` with no tracer active:
    ambient-span resolution, null-span stage children (each with the
    attribute/counter calls the real stages make), the stage-timing
    contexts, and the registry recordings of ``_record_query_metrics``.
    """
    timings = StageTimings()
    span = current_span()  # ambient resolution in _query_span
    span.set("alpha", ALPHA)
    span.set("graph_version", 0)
    with span.child("plan") as plan_span:
        plan_span.set("strategy", "greedy")
        plan_span.set("source", "greedy")
        plan_span.set("partitions", 3)
        plan_span.set("estimated_cost", 1.0)
    with timings.time("candidates"), span.child("lookup") as lookup_span:
        for i in range(3):
            with lookup_span.child("partition", index=i) as path_span:
                path_span.set("labels", "A-A")
                path_span.set("raw", 0)
                path_span.set("pruned", 0)
        if lookup_span.enabled:
            lookup_span.incr("store_reads", 0)
    with timings.time("kpartite"), span.child("link_build") as link_span:
        if link_span.enabled:
            link_span.set("backend", "vectorized")
    with timings.time("reduction"), span.child("reduce") as reduce_span:
        if reduce_span.enabled:
            reduce_span.set("rounds", 0)
    with timings.time("matching"), span.child("match") as match_span:
        if match_span.enabled:
            match_span.set("matches", 0)
    span.set("matches", 0)
    # _record_query_metrics: one query counter, one match counter, one
    # total histogram, one histogram per stage.
    counters[0].inc()
    counters[1].inc(0)
    histograms[0].observe(1e-4)
    for stage, histogram in zip(STAGES, histograms[1:]):
        histogram.observe(timings.stages.get(stage, 0.0))
    return timings


def bench_macro(num_nodes: int, repeats: int) -> dict:
    """Best-of reduction loop time, bare vs obs-layered."""
    peg, decomposition, candidates, links, _ = build_candidate_workload(
        num_nodes
    )
    total_vertices = sum(len(c) for c in candidates.values())
    registry = get_registry()
    histograms = [registry.histogram("repro_query_seconds")] + [
        registry.histogram("repro_query_stage_seconds", stage=stage)
        for stage in STAGES
    ]
    counters = [
        registry.counter("repro_queries_total"),
        registry.counter("repro_query_matches_total"),
    ]

    def run_bare() -> float:
        started = time.perf_counter()
        graph = VectorizedKPartiteGraph(
            peg, decomposition, candidates, ALPHA, links=links
        )
        graph.reduce()
        return time.perf_counter() - started

    def run_instrumented() -> float:
        started = time.perf_counter()
        _simulate_disabled_obs(registry, histograms, counters)
        graph = VectorizedKPartiteGraph(
            peg, decomposition, candidates, ALPHA, links=links
        )
        graph.reduce()
        return time.perf_counter() - started

    # Interleave the two variants so drift (thermal, page cache) hits
    # both equally; best-of discards the noisy tail.
    bare = instrumented = float("inf")
    for _ in range(repeats):
        bare = min(bare, run_bare())
        instrumented = min(instrumented, run_instrumented())
    return {
        "total_vertices": total_vertices,
        "bare_seconds": bare,
        "instrumented_seconds": instrumented,
        "overhead_ratio": instrumented / max(bare, 1e-12),
    }


def bench_micro(iterations: int) -> dict:
    """Nanoseconds per disabled-path obs operation."""
    disabled = MetricsRegistry(enabled=False)
    disabled_hist = disabled.histogram("bench_disabled_seconds")
    enabled = MetricsRegistry()
    enabled_counter = enabled.counter("bench_enabled_total")

    def per_op(fn) -> float:
        started = time.perf_counter()
        for _ in range(iterations):
            fn()
        return (time.perf_counter() - started) / iterations * 1e9

    return {
        "iterations": iterations,
        "null_span_child_ns": per_op(lambda: NULL_SPAN.child("stage")),
        "current_span_ns": per_op(current_span),
        "disabled_observe_ns": per_op(lambda: disabled_hist.observe(1e-3)),
        "enabled_counter_inc_ns": per_op(enabled_counter.inc),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="small CI workload; exit 1 when disabled-mode overhead "
        f"exceeds {MAX_OVERHEAD:.2f}x",
    )
    parser.add_argument(
        "--out", default="BENCH_obs.json",
        help="where to write the machine-readable results",
    )
    parser.add_argument(
        "--trajectory", action="store_true",
        help="also write benchmarks/results/BENCH_obs-v<version>.json "
        "(the committed perf-trajectory point for this version)",
    )
    parser.add_argument(
        "--nodes", type=int, default=None,
        help="override the PEG size (nodes; candidates scale ~4x)",
    )
    parser.add_argument(
        "--repeats", type=int, default=None, help="best-of repeat count"
    )
    args = parser.parse_args(argv)

    # 2500 nodes put ~30k candidate vertices through the reduction —
    # the workload the acceptance gate is defined on.
    num_nodes = args.nodes or (500 if args.smoke else 2500)
    repeats = args.repeats or (3 if args.smoke else 5)

    macro = bench_macro(num_nodes, repeats)
    attempts = 1
    while macro["overhead_ratio"] > MAX_OVERHEAD and attempts < 3:
        attempts += 1
        macro = bench_macro(num_nodes, repeats)
    macro["attempts"] = attempts
    micro = bench_micro(20_000 if args.smoke else 200_000)

    report = {
        "benchmark": "obs_overhead",
        "repro_version": __version__,
        "mode": "smoke" if args.smoke else "large",
        "workload": {
            "nodes": num_nodes,
            "alpha": ALPHA,
            "repeats": repeats,
            "max_overhead": MAX_OVERHEAD,
        },
        "macro": macro,
        "micro": micro,
    }
    outputs = [args.out]
    if args.trajectory:
        outputs.append(
            os.path.join(
                os.path.dirname(os.path.abspath(__file__)),
                "results",
                f"BENCH_obs-v{__version__}.json",
            )
        )
    for out in outputs:
        with open(out, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")

    print(
        f"[macro] {macro['total_vertices']} candidate vertices: bare "
        f"{macro['bare_seconds']:.4f}s, instrumented-disabled "
        f"{macro['instrumented_seconds']:.4f}s "
        f"({(macro['overhead_ratio'] - 1) * 100:+.2f}%, "
        f"{macro['attempts']} attempt(s))"
    )
    print(
        f"[micro] null-span child {micro['null_span_child_ns']:.0f}ns, "
        f"current_span {micro['current_span_ns']:.0f}ns, disabled "
        f"observe {micro['disabled_observe_ns']:.0f}ns, enabled counter "
        f"inc {micro['enabled_counter_inc_ns']:.0f}ns"
    )
    print("wrote " + ", ".join(outputs))

    if macro["overhead_ratio"] > MAX_OVERHEAD:
        print(
            f"FAIL: disabled-mode obs overhead "
            f"{macro['overhead_ratio']:.3f}x exceeds {MAX_OVERHEAD:.2f}x"
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
