"""Figure 6(e): online running time vs degree of uncertainty (5-node).

Paper: the fraction of uncertain references/relations/reference-sets is
swept from 20% to 80%; queries q(5,5) and q(5,9), α = 0.7. Expected
shape: L=3 always ahead; L=2 overtakes L=1 for uncertainty above 20%
(more uncertainty ⇒ better pruning from longer indexed paths).
"""

import pytest

from benchmarks import harness

ALPHA = 0.7
UNCERTAINTIES = (0.2, 0.4, 0.6, 0.8)
QUERIES = [(5, 5), (5, 9)]


@pytest.mark.parametrize("max_length", harness.PATH_LENGTHS)
@pytest.mark.parametrize("size", QUERIES, ids=lambda s: f"q{s[0]}-{s[1]}")
@pytest.mark.parametrize("uncertainty", UNCERTAINTIES)
def test_uncertainty_q5(benchmark, uncertainty, size, max_length):
    engine = harness.synthetic_engine(
        uncertainty=uncertainty, max_length=max_length, beta=0.5
    )
    queries = harness.synthetic_queries(engine.peg, *size)

    results = benchmark.pedantic(
        lambda: harness.run_queries(engine, queries, ALPHA),
        rounds=2,
        iterations=1,
    )
    matches = sum(len(r.matches) for r in results)
    harness.report(
        "fig6e_uncertainty_q5",
        "# uncertainty nodes edges L seconds_per_query matches",
        [(uncertainty, size[0], size[1], max_length,
          f"{benchmark.stats.stats.mean / len(queries):.5f}", matches)],
    )
