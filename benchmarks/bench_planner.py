"""Planner benchmark: plan caching, exact strategy, estimator feedback.

Measures what :mod:`repro.query.plan` promises for repeated-traffic
serving:

* **plan caching** — per-query planning time for a repeated workload
  with the cache on (hits skip candidate enumeration, per-candidate
  histogram estimation and the cover search entirely) vs re-planning
  every query from scratch, plus the end-to-end decompose-stage share
  of full evaluations on both settings,
* **exact strategy** — estimated-cost ratio of exact (bitmask-DP) plans
  against greedy plans over the workload (never above 1.0: exact is
  optimal for the same objective), with its planning-time premium,
* **estimator feedback** — after un-compacted live mutation batches
  drift the histograms, the mean absolute log-error of cardinality
  estimates before vs after the feedback loop has observed the
  workload once.

A correctness spot check runs inside: cached-plan and exact-strategy
evaluations must produce exactly the matches of the fresh greedy
baseline. Results go to ``BENCH_planner.json``; ``--trajectory``
writes a versioned copy under ``benchmarks/results/``. With
``--smoke`` (the CI gate) the script exits non-zero when cached
planning fails to beat re-planning, or when the spot check disagrees.

Usage::

    PYTHONPATH=src python benchmarks/bench_planner.py --trajectory
    PYTHONPATH=src python benchmarks/bench_planner.py --smoke
"""

from __future__ import annotations

import argparse
import json
import math
import os
import random
import sys
import time

if __package__ in (None, ""):  # allow running without PYTHONPATH=src
    sys.path.insert(
        0, os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
    )

from repro import __version__
from repro.datasets import SyntheticConfig, generate_synthetic_pgd, random_query
from repro.delta import AddEntity, UpdateLabelProbability
from repro.peg import build_peg
from repro.query import QueryEngine, QueryOptions

ALPHA = 0.3
MAX_LENGTH = 2
BETA = 0.05

PLAN_CACHED = QueryOptions()
PLAN_FRESH = QueryOptions(use_plan_cache=False, use_estimator_feedback=False)
# Feedback off like PLAN_FRESH: the exact-vs-greedy cost comparison (and
# its CI gate) must cost both strategies with the same estimator.
PLAN_EXACT = QueryOptions(
    decomposition="exact", use_plan_cache=False, use_estimator_feedback=False
)


def _build_engine(num_references: int) -> QueryEngine:
    config = SyntheticConfig(
        num_references=num_references,
        edges_per_node=2,
        num_labels=4,
        uncertainty=0.3,
        groups=max(1, num_references // 20),
        seed=20260730,
    )
    peg = build_peg(generate_synthetic_pgd(config))
    return QueryEngine(peg, max_length=MAX_LENGTH, beta=BETA)


def _workload(rng: random.Random, sigma, distinct: int, repeats: int) -> list:
    queries = []
    for _ in range(distinct):
        num_nodes = rng.choice((3, 3, 4))
        max_edges = num_nodes * (num_nodes - 1) // 2
        num_edges = rng.randint(num_nodes - 1, max_edges)
        queries.append(
            random_query(num_nodes, num_edges, sigma,
                         seed=rng.randrange(2**31))
        )
    return queries * repeats


def match_keys(matches):
    return sorted(
        (m.nodes, m.edges, round(m.probability, 9)) for m in matches
    )


def _time_planning(engine: QueryEngine, workload, options) -> float:
    start = time.perf_counter()
    for query in workload:
        engine.planner.plan(query, ALPHA, options)
    return time.perf_counter() - start


def _log_error(estimated: float, observed: int) -> float:
    return abs(math.log2((estimated + 1.0) / (observed + 1.0)))


def run(num_references: int, distinct: int, repeats: int,
        num_batches: int) -> dict:
    rng = random.Random(96117)
    engine = _build_engine(num_references)
    sigma = sorted(engine.peg.sigma, key=repr)
    workload = _workload(rng, sigma, distinct, repeats)

    # -- plan caching: planner-only timings ---------------------------
    replan_seconds = _time_planning(engine, workload, PLAN_FRESH)
    engine.planner.cache.clear()
    cold_seconds = _time_planning(engine, workload[:distinct], PLAN_CACHED)
    warm_seconds = _time_planning(engine, workload, PLAN_CACHED)
    planner_stats = engine.planner.stats_snapshot()

    # -- plan caching: end-to-end decompose share ---------------------
    def decompose_share(options):
        total = 0.0
        decompose = 0.0
        for query in workload:
            result = engine.query(query, ALPHA, options)
            total += result.total_seconds
            decompose += result.timings.get("decompose", 0.0)
        return decompose, total

    fresh_decompose, fresh_total = decompose_share(PLAN_FRESH)
    cached_decompose, cached_total = decompose_share(PLAN_CACHED)

    # -- exact strategy ----------------------------------------------
    exact_start = time.perf_counter()
    cost_ratios = []
    agreement = True
    for query in workload[:distinct]:
        exact_result = engine.query(query, ALPHA, PLAN_EXACT)
        greedy_result = engine.query(query, ALPHA, PLAN_FRESH)
        cached_result = engine.query(query, ALPHA, PLAN_CACHED)
        baseline = match_keys(greedy_result.matches)
        agreement = agreement and match_keys(
            exact_result.matches
        ) == baseline and match_keys(cached_result.matches) == baseline
        if greedy_result.plan.estimated_cost > 0:
            cost_ratios.append(
                exact_result.plan.estimated_cost
                / greedy_result.plan.estimated_cost
            )
    exact_seconds = time.perf_counter() - exact_start

    # -- estimator feedback under drift -------------------------------
    fresh = 0
    for _ in range(num_batches):
        batch = []
        for _ in range(4):
            if rng.random() < 0.5:
                fresh += 1
                chosen = rng.sample(sigma, 2)
                batch.append(AddEntity(
                    (f"plan-dyn-{fresh}",),
                    {chosen[0]: 0.6, chosen[1]: 0.4},
                    rng.uniform(0.6, 1.0),
                ))
            else:
                live = [
                    n for n in engine.peg.node_ids()
                    if not engine.peg.is_removed_id(n)
                ]
                node = rng.choice(live)
                chosen = rng.sample(sigma, 2)
                batch.append(UpdateLabelProbability(
                    tuple(sorted(engine.peg.entity_of(node), key=repr)),
                    {chosen[0]: 0.7, chosen[1]: 0.3},
                ))
        engine.apply_updates(batch)
    engine.planner.invalidate()
    # Capture the drifted estimates *before* any lookup runs: both the
    # overlay's stale-count memos and the feedback table learn from
    # lookups, so estimates collected after the first pass would
    # already be partially healed.
    probes = []
    for query in workload[:distinct]:
        decomposition, _ = engine.planner.plan(query, ALPHA, PLAN_CACHED)
        estimates = [
            engine.index.estimate_cardinality(
                query.label_sequence(path.nodes), ALPHA
            )
            for path in decomposition.paths
        ]
        probes.append((query, estimates))
    before_errors = []
    for query, estimates in probes:
        result = engine.query(query, ALPHA, PLAN_CACHED)
        for i, (_corrected, observed) in result.estimate_observations.items():
            before_errors.append(_log_error(estimates[i], observed))
    error_before = (
        sum(before_errors) / len(before_errors) if before_errors else 0.0
    )
    # Second pass: the estimation loop has now observed every sequence
    # once, so estimate_observations carries the corrected estimates.
    after_errors = []
    for query, _ in probes:
        result = engine.query(query, ALPHA, PLAN_CACHED)
        for estimated, observed in result.estimate_observations.values():
            after_errors.append(_log_error(estimated, observed))
    error_after = (
        sum(after_errors) / len(after_errors) if after_errors else 0.0
    )

    return {
        "nodes": engine.peg.num_nodes,
        "workload": {
            "distinct": distinct,
            "repeats": repeats,
            "requests": len(workload),
        },
        "planning": {
            "replan_seconds": replan_seconds,
            "cold_seconds": cold_seconds,
            "warm_seconds": warm_seconds,
            "cached_speedup": replan_seconds / warm_seconds
            if warm_seconds else float("inf"),
            "plan_cache_hits": planner_stats["plan_cache_hits"],
            "plan_cache_misses": planner_stats["plan_cache_misses"],
        },
        "end_to_end": {
            "fresh_decompose_seconds": fresh_decompose,
            "fresh_total_seconds": fresh_total,
            "cached_decompose_seconds": cached_decompose,
            "cached_total_seconds": cached_total,
            "decompose_speedup": fresh_decompose / cached_decompose
            if cached_decompose else float("inf"),
        },
        "exact": {
            "queries": distinct,
            "seconds": exact_seconds,
            "mean_cost_ratio_vs_greedy": (
                sum(cost_ratios) / len(cost_ratios) if cost_ratios else 1.0
            ),
        },
        "feedback": {
            "mutation_batches": num_batches,
            "mean_abs_log2_error_before": error_before,
            "mean_abs_log2_error_after": error_after,
        },
        "agreement": agreement,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="small workload + CI gate: cached planning must beat re-planning",
    )
    parser.add_argument(
        "--out", default="BENCH_planner.json",
        help="where to write the machine-readable results",
    )
    parser.add_argument(
        "--trajectory", action="store_true",
        help="also write benchmarks/results/BENCH_planner-v<version>.json "
        "(the committed perf-trajectory point for this version)",
    )
    parser.add_argument(
        "--size", type=int, default=None,
        help="override the synthetic graph size (references)",
    )
    args = parser.parse_args(argv)

    num_references = args.size or (120 if args.smoke else 400)
    distinct = 6 if args.smoke else 12
    repeats = 5 if args.smoke else 20
    num_batches = 2 if args.smoke else 5

    results = run(num_references, distinct, repeats, num_batches)
    report = {
        "benchmark": "planner",
        "repro_version": __version__,
        "mode": "smoke" if args.smoke else "large",
        "planner": results,
    }
    outputs = [args.out]
    if args.trajectory:
        outputs.append(
            os.path.join(
                os.path.dirname(os.path.abspath(__file__)),
                "results",
                f"BENCH_planner-v{__version__}.json",
            )
        )
    for out in outputs:
        with open(out, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")

    planning = results["planning"]
    end_to_end = results["end_to_end"]
    feedback = results["feedback"]
    print(
        f"[plan]     {results['workload']['requests']} requests "
        f"({results['workload']['distinct']} distinct): re-plan "
        f"{planning['replan_seconds']:.4f}s vs cached "
        f"{planning['warm_seconds']:.4f}s "
        f"({planning['cached_speedup']:.1f}x, "
        f"{planning['plan_cache_hits']} hits)"
    )
    print(
        f"[evaluate] decompose stage {end_to_end['fresh_decompose_seconds']:.4f}s"
        f" -> {end_to_end['cached_decompose_seconds']:.4f}s "
        f"({end_to_end['decompose_speedup']:.1f}x) of "
        f"{end_to_end['cached_total_seconds']:.4f}s total"
    )
    print(
        f"[exact]    mean cost ratio vs greedy "
        f"{results['exact']['mean_cost_ratio_vs_greedy']:.3f} "
        f"({results['exact']['seconds']:.4f}s for "
        f"{results['exact']['queries']} queries)"
    )
    print(
        f"[feedback] estimate |log2 error| {feedback['mean_abs_log2_error_before']:.3f}"
        f" -> {feedback['mean_abs_log2_error_after']:.3f} after "
        f"{feedback['mutation_batches']} un-compacted mutation batches"
    )
    print("wrote " + ", ".join(outputs))

    if not results["agreement"]:
        print("FAIL: planned evaluations disagree with the greedy baseline")
        return 1
    if results["exact"]["mean_cost_ratio_vs_greedy"] > 1.0 + 1e-9:
        print("FAIL: exact plans cost more than greedy plans")
        return 1
    if args.smoke and planning["cached_speedup"] < 1.0:
        print("FAIL: cached planning is slower than re-planning")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
