"""Figure 7(a): online running time vs input graph size (5-node queries).

Paper: graphs of 50k–1m references (300k–6m edges), q(5,5) and q(5,9),
α = 0.7. Expected shape: runtime grows with graph size; L=1 hits memory
limits on the largest graphs with the sparser query; L=3 stays ahead.

Scale substitution: 100–800 references (pure-Python constant factors),
same 5x edge ratio.
"""

import pytest

from benchmarks import harness

ALPHA = 0.7
QUERIES = [(5, 5), (5, 9)]


@pytest.mark.parametrize("max_length", harness.PATH_LENGTHS)
@pytest.mark.parametrize("size", QUERIES, ids=lambda s: f"q{s[0]}-{s[1]}")
@pytest.mark.parametrize("graph_size", harness.GRAPH_SIZES)
def test_graph_size_q5(benchmark, graph_size, size, max_length):
    engine = harness.synthetic_engine(
        num_references=graph_size, max_length=max_length, beta=0.5
    )
    queries = harness.synthetic_queries(engine.peg, *size)

    results = benchmark.pedantic(
        lambda: harness.run_queries(engine, queries, ALPHA),
        rounds=2,
        iterations=1,
    )
    matches = sum(len(r.matches) for r in results)
    harness.report(
        "fig7a_graph_size_q5",
        "# graph_size nodes edges L seconds_per_query matches",
        [(graph_size, size[0], size[1], max_length,
          f"{benchmark.stats.stats.mean / len(queries):.5f}", matches)],
    )
