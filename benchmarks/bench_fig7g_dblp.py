"""Figure 7(g): the DBLP collaboration patterns.

Paper: the Figure-8 patterns (BF1, BF2, GR, ST, TR) on the author
collaboration graph with *label-correlated* edge CPTs (same research
area ⇒ base probability p, different ⇒ 0.8 p), α = 0.1. Expected
shape: L=3 beats L=2 beats L=1 for every query except the tree.

Scale substitution: a 400-author synthetic DBLP look-alike generated
with the paper's statistics (see repro.datasets.dblp).
"""

import pytest

from benchmarks import harness
from repro.datasets.queries import PATTERN_NAMES

ALPHA = 0.1


@pytest.mark.parametrize("max_length", harness.PATH_LENGTHS)
@pytest.mark.parametrize("pattern", PATTERN_NAMES)
def test_dblp_patterns(benchmark, pattern, max_length):
    engine = harness.dblp_engine(max_length)
    query = harness.dblp_pattern(pattern)

    result = benchmark.pedantic(
        lambda: engine.query(query, ALPHA), rounds=2, iterations=1
    )
    benchmark.extra_info["matches"] = len(result.matches)
    harness.report(
        "fig7g_dblp",
        "# pattern L seconds matches",
        [(pattern, max_length,
          f"{benchmark.stats.stats.mean:.5f}", len(result.matches))],
    )
