"""Online-phase core benchmark: vectorized vs Python reduction backend.

Measures the three hot paths PR 3 vectorized, on one synthetic workload
large enough to be interpreter-bound:

* **reduction** — ``reduce()`` of the candidate k-partite graph, numpy
  whole-array backend (:mod:`repro.query.reduction`) against the
  incremental pure-Python reference (:mod:`repro.query.kpartite`), over
  the identical prebuilt link structure,
* **decode** — bulk ``np.frombuffer`` payload decoding
  (:func:`repro.index.paths.decode_paths`) against the record-by-record
  scalar decoder,
* **store reads** — ``DiskPathStore.get_bucket`` with mmap-backed
  zero-copy views against copying reads.

Results are written as machine-readable ``BENCH_reduction.json`` (see
``--out``; CI uploads it as a build artifact). With ``--trajectory``
the same report is *also* written to
``benchmarks/results/BENCH_reduction-v<version>.json`` — one file per
repro version, never overwritten by later versions — which is what
``benchmarks/summarize.py`` merges into the perf-trajectory table;
commit that copy so future PRs have a baseline to regress against. The
script exits non-zero when the backends disagree on the reduction
outcome, or — with ``--smoke``, the CI gate — when the vectorized
backend is not at least as fast as the Python backend.

Usage::

    PYTHONPATH=src python benchmarks/bench_reduction_core.py --trajectory  # large
    PYTHONPATH=src python benchmarks/bench_reduction_core.py --smoke       # CI
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
import tempfile
import time

if __package__ in (None, ""):  # allow running without PYTHONPATH=src
    sys.path.insert(
        0, os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
    )

from repro import __version__
from repro.index.paths import (
    IndexedPath,
    _decode_paths_scalar,
    decode_paths,
    decode_paths_above,
    encode_paths,
)
from repro.peg import build_peg
from repro.pgd import pgd_from_edge_list
from repro.query.candidates import CandidateFinder
from repro.query.decompose import decompose_query
from repro.query.kpartite import CandidateKPartiteGraph, build_candidate_links
from repro.query.query_graph import QueryGraph
from repro.query.reduction import VectorizedKPartiteGraph
from repro.storage.kvstore import DiskPathStore

#: Query threshold of the reduction workload — low enough to keep many
#: candidates, high enough that both reduction principles fire.
ALPHA = 0.15


def build_workload_peg(num_nodes: int, seed: int = 7):
    """Random ring+chords graph with uncertain labels and edges."""
    rng = random.Random(seed)
    node_labels = {
        f"n{i}": {"A": 0.85, "B": 0.15} for i in range(num_nodes)
    }
    edges = {(i, (i + 1) % num_nodes) for i in range(num_nodes)}
    while len(edges) < num_nodes * 2:
        a = rng.randrange(num_nodes)
        b = rng.randrange(num_nodes)
        if a != b and (a, b) not in edges and (b, a) not in edges:
            edges.add((a, b))
    # A wide edge-probability spread makes the perception-vector bounds
    # straddle alpha, so the upperbound pass runs real deletion rounds.
    edge_list = [
        (f"n{a}", f"n{b}", round(rng.uniform(0.4, 0.95), 3))
        for a, b in sorted(edges)
    ]
    return build_peg(pgd_from_edge_list(node_labels, edge_list))


def build_candidate_workload(num_nodes: int, seed: int = 7):
    """PEG + decomposition + candidates + links of the 4-node chain query.

    The chain decomposes into three length-1 paths (k = 3 partitions).
    Two partitions would make the upperbound pass a no-op — every
    surviving link already carries an exact pairwise probability >= α —
    so three are needed for multi-hop perception-vector propagation to
    delete vertices the structure pass cannot.
    """
    peg = build_workload_peg(num_nodes, seed)
    query = QueryGraph(
        {"u": "A", "v": "A", "w": "A", "x": "A"},
        [("u", "v"), ("v", "w"), ("w", "x")],
    )
    decomposition = decompose_query(
        query, estimator=lambda seq, alpha: 1.0, alpha=ALPHA, max_length=1
    )
    finder = CandidateFinder(
        peg, query, ALPHA, index=None, context=None, use_context=False
    )
    candidates = {
        i: finder.find(path)[0]
        for i, path in enumerate(decomposition.paths)
    }
    started = time.perf_counter()
    links = build_candidate_links(peg, decomposition, candidates, ALPHA)
    link_seconds = time.perf_counter() - started
    return peg, decomposition, candidates, links, link_seconds


def _time_backend(factory, repeats: int) -> tuple:
    """Best-of-``repeats`` construction and reduce() time of one backend."""
    best_build = best_reduce = float("inf")
    stats = None
    for _ in range(repeats):
        started = time.perf_counter()
        graph = factory()
        built = time.perf_counter()
        stats = graph.reduce()
        reduced = time.perf_counter()
        best_build = min(best_build, built - started)
        best_reduce = min(best_reduce, reduced - built)
    return best_build, best_reduce, stats, graph


def bench_reduction(num_nodes: int, repeats: int) -> dict:
    peg, decomposition, candidates, links, link_seconds = (
        build_candidate_workload(num_nodes)
    )
    total_vertices = sum(len(c) for c in candidates.values())

    py_build, py_reduce, py_stats, py_graph = _time_backend(
        lambda: CandidateKPartiteGraph(
            peg, decomposition, candidates, ALPHA, links=links
        ),
        repeats,
    )
    vec_build, vec_reduce, vec_stats, vec_graph = _time_backend(
        lambda: VectorizedKPartiteGraph(
            peg, decomposition, candidates, ALPHA, links=links
        ),
        repeats,
    )

    agreement = (
        py_stats.initial_sizes == vec_stats.initial_sizes
        and py_stats.after_structure_sizes == vec_stats.after_structure_sizes
        and py_stats.final_sizes == vec_stats.final_sizes
        and py_stats.structure_removed == vec_stats.structure_removed
        and py_stats.upperbound_removed == vec_stats.upperbound_removed
        and all(
            py_graph.alive_vertex_ids(i) == vec_graph.alive_vertex_ids(i)
            for i in range(py_graph.k)
        )
    )
    return {
        "total_vertices": total_vertices,
        "partition_sizes": list(py_stats.initial_sizes),
        "final_sizes": list(py_stats.final_sizes),
        "structure_removed": py_stats.structure_removed,
        "upperbound_removed": py_stats.upperbound_removed,
        "link_build_seconds": link_seconds,
        "python_build_seconds": py_build,
        "python_reduce_seconds": py_reduce,
        "vectorized_build_seconds": vec_build,
        "vectorized_reduce_seconds": vec_reduce,
        "speedup_reduce": py_reduce / max(vec_reduce, 1e-12),
        "speedup_total": (py_build + py_reduce)
        / max(vec_build + vec_reduce, 1e-12),
        "agreement": agreement,
    }


def bench_decode(num_paths: int, repeats: int) -> dict:
    rng = random.Random(13)
    paths = [
        IndexedPath(
            tuple(rng.randrange(2**31) for _ in range(4)),
            rng.random(),
            rng.random(),
        )
        for _ in range(num_paths)
    ]
    payload = encode_paths(paths)

    def best(fn):
        times = []
        for _ in range(repeats):
            started = time.perf_counter()
            fn()
            times.append(time.perf_counter() - started)
        return min(times)

    scalar = best(lambda: _decode_paths_scalar(payload))
    bulk = best(lambda: decode_paths(payload))
    filtered = best(lambda: decode_paths_above(payload, 0.5))
    return {
        "paths": num_paths,
        "scalar_decode_seconds": scalar,
        "bulk_decode_seconds": bulk,
        "bulk_decode_above_seconds": filtered,
        "speedup_decode": scalar / max(bulk, 1e-12),
    }


def bench_store_reads(num_paths: int, repeats: int) -> dict:
    rng = random.Random(17)
    paths = [
        IndexedPath(
            tuple(rng.randrange(2**31) for _ in range(4)),
            rng.random(),
            rng.random(),
        )
        for _ in range(num_paths)
    ]
    payload = encode_paths(paths)
    sequence = ("A", "A", "A", "A")
    results = {}
    for label, mmap_reads in (("mmap", True), ("copy", False)):
        with tempfile.TemporaryDirectory() as directory:
            with DiskPathStore(directory, mmap_reads=mmap_reads) as store:
                for bucket in range(330, 1000, 10):
                    store.put_bucket(sequence, bucket, payload)
                best = float("inf")
                for _ in range(repeats):
                    started = time.perf_counter()
                    for bucket in range(330, 1000, 10):
                        decode_paths_above(
                            store.get_bucket(sequence, bucket), 0.5
                        )
                    best = min(best, time.perf_counter() - started)
        results[f"{label}_read_decode_seconds"] = best
    results["paths_per_bucket"] = num_paths
    results["speedup_store_reads"] = (
        results["copy_read_decode_seconds"]
        / max(results["mmap_read_decode_seconds"], 1e-12)
    )
    return results


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="small CI workload; exit 1 if the vectorized backend is "
        "slower than the Python backend",
    )
    parser.add_argument(
        "--out", default="BENCH_reduction.json",
        help="where to write the machine-readable results",
    )
    parser.add_argument(
        "--trajectory", action="store_true",
        help="also write benchmarks/results/BENCH_reduction-v<version>"
        ".json (the committed perf-trajectory point for this version)",
    )
    parser.add_argument(
        "--nodes", type=int, default=None,
        help="override the PEG size (nodes; candidates scale ~4x)",
    )
    parser.add_argument(
        "--repeats", type=int, default=None, help="best-of repeat count"
    )
    args = parser.parse_args(argv)

    num_nodes = args.nodes or (500 if args.smoke else 2500)
    repeats = args.repeats or (2 if args.smoke else 3)

    reduction = bench_reduction(num_nodes, repeats)
    decode = bench_decode(2_000 if args.smoke else 50_000, repeats)
    store = bench_store_reads(500 if args.smoke else 5_000, repeats)

    report = {
        "benchmark": "reduction_core",
        "repro_version": __version__,
        "mode": "smoke" if args.smoke else "large",
        "workload": {
            "nodes": num_nodes,
            "alpha": ALPHA,
            "repeats": repeats,
        },
        "reduction": reduction,
        "decode": decode,
        "store_reads": store,
    }
    outputs = [args.out]
    if args.trajectory:
        outputs.append(
            os.path.join(
                os.path.dirname(os.path.abspath(__file__)),
                "results",
                f"BENCH_reduction-v{__version__}.json",
            )
        )
    for out in outputs:
        with open(out, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")

    print(
        f"[reduction] {reduction['total_vertices']} candidate vertices: "
        f"python reduce {reduction['python_reduce_seconds']:.4f}s, "
        f"vectorized reduce {reduction['vectorized_reduce_seconds']:.4f}s "
        f"({reduction['speedup_reduce']:.1f}x), agreement="
        f"{reduction['agreement']}"
    )
    print(
        f"[decode]    {decode['paths']} paths: scalar "
        f"{decode['scalar_decode_seconds']:.4f}s, bulk "
        f"{decode['bulk_decode_seconds']:.4f}s "
        f"({decode['speedup_decode']:.1f}x)"
    )
    print(
        f"[store]     copy {store['copy_read_decode_seconds']:.4f}s, mmap "
        f"{store['mmap_read_decode_seconds']:.4f}s "
        f"({store['speedup_store_reads']:.2f}x)"
    )
    print("wrote " + ", ".join(outputs))

    if not reduction["agreement"]:
        print("FAIL: backends disagree on the reduction outcome")
        return 1
    if not args.smoke and reduction["total_vertices"] < 10_000:
        print("FAIL: large workload must have >= 10k candidate vertices")
        return 1
    if args.smoke and reduction["speedup_reduce"] < 1.0:
        print("FAIL: vectorized backend slower than the Python backend")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
