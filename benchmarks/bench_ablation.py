"""Design ablations beyond the paper's explicit baselines.

DESIGN.md calls out four separable design choices; this bench isolates
each on a fixed workload (400-reference graph, q(5,7) and q(10,20),
α = 0.5, L = 3):

* context pruning on/off (Section 5.2.2),
* reduction by structure only vs structure + upperbounds (Section 5.2.4),
* greedy vs random decomposition (Section 5.2.1),
* thread-parallel vs serial reduction (GIL sanity check).
"""

import pytest

from benchmarks import harness
from repro.query import QueryOptions

ALPHA = 0.5
WORKLOADS = [(5, 7), (10, 20)]

ABLATIONS = {
    "full": QueryOptions(),
    "no-context": QueryOptions(use_context_pruning=False),
    "structure-only": QueryOptions(use_upperbound_reduction=False),
    "no-reduction": QueryOptions(
        use_structure_reduction=False, use_upperbound_reduction=False
    ),
    "random-decomposition": QueryOptions(decomposition="random", seed=11),
    "parallel-reduction": QueryOptions(parallel_reduction=True),
}


@pytest.mark.parametrize("ablation", list(ABLATIONS))
@pytest.mark.parametrize("size", WORKLOADS, ids=lambda s: f"q{s[0]}-{s[1]}")
def test_ablation(benchmark, size, ablation):
    engine = harness.synthetic_engine(max_length=3, beta=0.5)
    queries = harness.synthetic_queries(engine.peg, *size)
    options = ABLATIONS[ablation]

    results = benchmark.pedantic(
        lambda: harness.run_queries(engine, queries, ALPHA, options),
        rounds=2,
        iterations=1,
    )
    matches = sum(len(r.matches) for r in results)
    final_ss = sum(r.search_space_final for r in results)
    harness.report(
        "ablation",
        "# nodes edges ablation seconds_per_query matches final_search_space",
        [(size[0], size[1], ablation,
          f"{benchmark.stats.stats.mean / len(queries):.5f}",
          matches, f"{final_ss:.3e}")],
    )
