"""Figure 6(f): online running time vs degree of uncertainty (10-node).

Same sweep as Figure 6(e) with queries q(10,20) and q(10,40) — the
larger queries amplify the pruning benefit of longer indexed paths.
"""

import pytest

from benchmarks import harness

ALPHA = 0.7
UNCERTAINTIES = (0.2, 0.4, 0.6, 0.8)
QUERIES = [(10, 20), (10, 40)]


@pytest.mark.parametrize("max_length", harness.PATH_LENGTHS)
@pytest.mark.parametrize("size", QUERIES, ids=lambda s: f"q{s[0]}-{s[1]}")
@pytest.mark.parametrize("uncertainty", UNCERTAINTIES)
def test_uncertainty_q10(benchmark, uncertainty, size, max_length):
    engine = harness.synthetic_engine(
        uncertainty=uncertainty, max_length=max_length, beta=0.5
    )
    queries = harness.synthetic_queries(engine.peg, *size)

    results = benchmark.pedantic(
        lambda: harness.run_queries(engine, queries, ALPHA),
        rounds=2,
        iterations=1,
    )
    matches = sum(len(r.matches) for r in results)
    harness.report(
        "fig6f_uncertainty_q10",
        "# uncertainty nodes edges L seconds_per_query matches",
        [(uncertainty, size[0], size[1], max_length,
          f"{benchmark.stats.stats.mean / len(queries):.5f}", matches)],
    )
