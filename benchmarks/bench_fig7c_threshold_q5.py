"""Figure 7(c): online running time vs query threshold (5-node queries).

Paper: α swept over 0.3–0.9 on the 100k graph, q(5,5) and q(5,9).
Expected shape: all lengths speed up as α rises (smaller candidate
sets); short path lengths are the most threshold-sensitive, long ones
the most stable.

The engines are built with β = 0.3 so every α in the sweep is servable
from the index.
"""

import pytest

from benchmarks import harness

ALPHAS = (0.3, 0.5, 0.7, 0.9)
QUERIES = [(5, 5), (5, 9)]


@pytest.mark.parametrize("max_length", harness.PATH_LENGTHS)
@pytest.mark.parametrize("size", QUERIES, ids=lambda s: f"q{s[0]}-{s[1]}")
@pytest.mark.parametrize("alpha", ALPHAS)
def test_threshold_q5(benchmark, alpha, size, max_length):
    engine = harness.synthetic_engine(max_length=max_length, beta=0.3)
    queries = harness.synthetic_queries(engine.peg, *size)

    results = benchmark.pedantic(
        lambda: harness.run_queries(engine, queries, alpha),
        rounds=2,
        iterations=1,
    )
    matches = sum(len(r.matches) for r in results)
    harness.report(
        "fig7c_threshold_q5",
        "# alpha nodes edges L seconds_per_query matches",
        [(alpha, size[0], size[1], max_length,
          f"{benchmark.stats.stats.mean / len(queries):.5f}", matches)],
    )
