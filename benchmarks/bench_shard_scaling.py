"""Sharded-index scaling benchmark: parallel builds + batched queries.

Not a paper figure — this measures the sharding layer added on top of
the reproduction (``repro.index.sharded`` + batched execution):

* the offline build must get faster with parallel shard builds — *given
  CPUs to scale onto*: the map/reduce build uses a process pool whose
  workers warm-start with the pickled PEG, and on a single-core host
  the ratio is pinned near (or below) 1.0 by hardware, so the strict
  assertion only applies when >= 2 CPUs are available;
* the sharded and monolithic indexes must hold exactly the same paths
  (count parity is asserted here; exact per-lookup agreement is the
  differential harness's job);
* a batch of queries sharing candidate label sequences must issue
  strictly fewer store reads through
  :meth:`~repro.query.engine.QueryEngine.query_batch` than the same
  queries evaluated individually — asserted via the stores' read
  counters — while returning identical results.

Run with ``PYTHONPATH=src python -m pytest benchmarks/bench_shard_scaling.py -v``.
"""

import pytest

from benchmarks import harness
from repro.index import build_path_index, build_sharded_path_index
from repro.query import QueryEngine, QueryGraph
from repro.datasets import random_query
from repro.service.bench import available_cpus
from repro.obs.timing import Timer

NUM_REFERENCES = 600
MAX_LENGTH = 2
BETA = 0.1
NUM_SHARDS = 4


@pytest.fixture(scope="module")
def peg():
    return harness.synthetic_peg(NUM_REFERENCES)


def _best_of(runs: int, build) -> tuple:
    """Minimum wall-clock over ``runs`` builds (noise suppression)."""
    best_seconds = None
    index = None
    for _ in range(runs):
        with Timer() as timer:
            index = build()
        if best_seconds is None or timer.elapsed < best_seconds:
            best_seconds = timer.elapsed
    return best_seconds, index


def test_parallel_shard_build_scaling(peg, tmp_path_factory):
    cpus = available_cpus()
    processes = max(2, min(NUM_SHARDS, cpus))

    with Timer() as mono_timer:
        monolithic = build_path_index(peg, max_length=MAX_LENGTH, beta=BETA)

    # Best-of-2 on both sides: one noisy scheduler hiccup on a small
    # shared CI runner must not decide the comparison. Rebuilding into
    # the same directory also exercises the stale-state cleanup.
    serial_dir = str(tmp_path_factory.mktemp("serial"))
    serial_seconds, serial = _best_of(2, lambda: build_sharded_path_index(
        peg,
        NUM_SHARDS,
        max_length=MAX_LENGTH,
        beta=BETA,
        directory=serial_dir,
    ))

    parallel_dir = str(tmp_path_factory.mktemp("parallel"))
    parallel_seconds, parallel = _best_of(2, lambda: build_sharded_path_index(
        peg,
        NUM_SHARDS,
        max_length=MAX_LENGTH,
        beta=BETA,
        directory=parallel_dir,
        num_processes=processes,
    ))

    speedup = serial_seconds / max(parallel_seconds, 1e-9)
    harness.report(
        "shard_scaling",
        "measurement  value",
        [
            ("cpus", cpus),
            ("shards", NUM_SHARDS),
            ("build_processes", processes),
            ("monolithic_build_s", round(mono_timer.elapsed, 3)),
            ("serial_sharded_build_s", round(serial_seconds, 3)),
            ("parallel_sharded_build_s", round(parallel_seconds, 3)),
            ("parallel_speedup", round(speedup, 2)),
        ],
    )

    # Sharded construction (serial or parallel) must index exactly the
    # monolithic path set.
    assert serial.num_paths() == monolithic.num_paths()
    assert parallel.num_paths() == monolithic.num_paths()
    assert set(parallel.histograms) == set(monolithic.histograms)

    if cpus >= 2 and serial_seconds >= 0.4:
        # On a multi-CPU host the map/reduce build must beat the same
        # sharded build run serially. A serial baseline under 0.4s is
        # too small to amortize pool startup and is skipped — it means
        # the host is far faster than this workload, not that the
        # parallel build failed to scale.
        assert parallel_seconds < serial_seconds, (
            f"parallel sharded build ({parallel_seconds:.3f}s) did "
            f"not improve on the serial one ({serial_seconds:.3f}s) "
            f"with {cpus} CPUs"
        )


def _renamed(query: QueryGraph) -> QueryGraph:
    """The same pattern under fresh node names (isomorphic, not equal)."""
    mapping = {node: f"renamed_{i}" for i, node in enumerate(query.nodes)}
    return QueryGraph(
        {mapping[node]: query.label(node) for node in query.nodes},
        [
            tuple(mapping[node] for node in edge)
            for edge in map(tuple, query.edges)
        ],
    )


@pytest.fixture(scope="module")
def batch_workload(peg):
    sigma = sorted(peg.sigma, key=repr)
    queries = [random_query(3, 2, sigma, seed=seed) for seed in range(8)]
    # Node-renamed duplicates share every candidate label sequence with
    # their original — the batcher must fetch those once.
    queries += [
        _renamed(random_query(3, 2, sigma, seed=seed)) for seed in range(4)
    ]
    return [(query, 0.4) for query in queries]


def test_batched_queries_issue_fewer_store_reads(peg, batch_workload):
    engine = QueryEngine(
        peg, max_length=MAX_LENGTH, beta=BETA, num_shards=NUM_SHARDS
    )
    index = engine.index

    index.reset_store_read_count()
    individual = [
        engine.query(query, alpha) for query, alpha in batch_workload
    ]
    individual_reads = index.store_read_count()

    index.reset_store_read_count()
    batched = engine.query_batch(batch_workload)
    batched_reads = index.store_read_count()

    harness.report(
        "shard_scaling",
        "measurement  value",
        [
            ("workload_queries", len(batch_workload)),
            ("individual_store_reads", individual_reads),
            ("batched_store_reads", batched_reads),
        ],
    )

    def keys(result):
        return sorted(
            (m.nodes, m.edges, round(m.probability, 9))
            for m in result.matches
        )

    for one, many in zip(individual, batched):
        assert keys(one) == keys(many)
    assert batched_reads < individual_reads, (
        f"batched execution issued {batched_reads} store reads vs "
        f"{individual_reads} individually — batching must share fetches"
    )
