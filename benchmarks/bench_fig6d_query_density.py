"""Figure 6(d): online running time vs query density.

Paper: 15-node queries with 20–100 edges on the 100k graph, α = 0.7.
Expected shape: sparse queries (q(15,20)) are the hard case — L=1 runs
out of memory in the paper — while dense queries are highly selective;
optimized L=3 stays ahead of the ablated baselines.

Scale substitution: 400-reference graph, m capped at the complete-graph
bound for 15 nodes where applicable.
"""

import pytest

from benchmarks import harness
from repro.query import QueryOptions

ALPHA = 0.7
DENSITIES = [20, 40, 60, 80, 100]

VARIANTS = {
    "optimized-L1": (1, None),
    "optimized-L2": (2, None),
    "optimized-L3": (3, None),
    "random-decomp-L3": (3, QueryOptions(decomposition="random", seed=3)),
    "no-ss-reduction-L3": (
        3,
        QueryOptions(
            use_structure_reduction=False, use_upperbound_reduction=False
        ),
    ),
}


@pytest.mark.parametrize("variant", list(VARIANTS))
@pytest.mark.parametrize("num_edges", DENSITIES)
def test_query_density(benchmark, num_edges, variant):
    max_length, options = VARIANTS[variant]
    engine = harness.synthetic_engine(max_length=max_length, beta=0.5)
    queries = harness.synthetic_queries(engine.peg, 15, num_edges)

    results = benchmark.pedantic(
        lambda: harness.run_queries(engine, queries, ALPHA, options),
        rounds=2,
        iterations=1,
    )
    matches = sum(len(r.matches) for r in results)
    benchmark.extra_info["matches"] = matches
    harness.report(
        "fig6d_query_density",
        "# edges variant seconds_per_query matches",
        [(num_edges, variant,
          f"{benchmark.stats.stats.mean / len(queries):.5f}", matches)],
    )
