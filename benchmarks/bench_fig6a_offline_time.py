"""Figure 6(a): offline phase running time.

Paper: offline time vs (index threshold β, graph size) for L = 1, 2, 3.
Expected shape: time grows ~10–14x from L=1 to L=2 and ~7–30x from L=2
to L=3; lower β (more indexed paths) is slower; growth with graph size
is superlinear at higher L.

Scale substitution: graph sizes 100–400 references stand in for the
paper's 50k–1m (pure-Python constant factors; all workload ratios kept).
"""

import pytest

from benchmarks import harness
from repro.index import build_path_index

SIZES = (100, 200, 400)


@pytest.mark.parametrize("max_length", harness.PATH_LENGTHS)
@pytest.mark.parametrize("beta", harness.OFFLINE_BETAS)
@pytest.mark.parametrize("size", SIZES)
def test_offline_build_time(benchmark, size, beta, max_length):
    peg = harness.synthetic_peg(num_references=size)

    def build():
        return build_path_index(peg, max_length=max_length, beta=beta)

    index = benchmark.pedantic(build, rounds=1, iterations=1)
    benchmark.extra_info["paths"] = index.num_paths()
    benchmark.extra_info["size_bytes"] = index.size_bytes()
    harness.report(
        "fig6a_offline_time",
        "# size beta L seconds paths",
        [(size, beta, max_length,
          f"{benchmark.stats.stats.mean:.4f}", index.num_paths())],
    )
