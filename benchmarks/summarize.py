"""Summarize ``benchmarks/results/*.txt`` into one report.

Usage::

    python benchmarks/summarize.py            # print to stdout
    python benchmarks/summarize.py --out summary.txt

Each result file is a whitespace-separated series written by
:func:`benchmarks.harness.report`; this script groups rows into aligned
tables and prefixes each with the figure it regenerates, giving a
single artifact to diff against EXPERIMENTS.md.

Machine-readable benchmark runs (``BENCH_*.json``, e.g. from
``bench_reduction_core.py``) found at the repository root or under
``results/`` are additionally merged into one perf-trajectory table:
one column per run, one row per (flattened) metric.
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import sys

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: Figure captions, keyed by result-file stem.
CAPTIONS = {
    "fig6a_offline_time": "Figure 6(a) — offline phase running time",
    "fig6b_index_size": "Figure 6(b) — path index size",
    "fig6c_query_size": "Figure 6(c) — online time vs query size",
    "fig6d_query_density": "Figure 6(d) — online time vs query density",
    "fig6e_uncertainty_q5": "Figure 6(e) — uncertainty sweep (5-node)",
    "fig6f_uncertainty_q10": "Figure 6(f) — uncertainty sweep (10-node)",
    "fig7a_graph_size_q5": "Figure 7(a) — graph size sweep (5-node)",
    "fig7b_graph_size_q10": "Figure 7(b) — graph size sweep (10-node)",
    "fig7c_threshold_q5": "Figure 7(c) — threshold sweep (5-node)",
    "fig7d_threshold_q10": "Figure 7(d) — threshold sweep (10-node)",
    "fig7e_search_space": "Figure 7(e) — search-space progression",
    "fig7f_reduction": "Figure 7(f) — structure vs upperbound reduction",
    "fig7g_dblp": "Figure 7(g) — DBLP collaboration patterns",
    "fig7h_imdb": "Figure 7(h) — IMDB co-starring patterns",
    "sql_baseline": "SQL baseline comparison (§6.2.1)",
    "ablation": "Design ablations (DESIGN.md §3)",
}

#: Captions for machine-readable benchmark families (``BENCH_<family>``
#: stems, version suffixes stripped).
BENCH_CAPTIONS = {
    "BENCH_reduction": "Online-phase core: vectorized vs Python backend",
    "BENCH_links": "Candidate links: vectorized builder and link cache",
    "BENCH_delta": "Live updates: delta overlay vs full rebuild",
    "BENCH_planner": "Adaptive planner: plan cache, exact strategy, feedback",
    "BENCH_obs": "Observability: disabled-mode overhead and micro-costs",
    "BENCH_net": "Network serving: overload shedding and admitted-p95 gate",
}


def _format_table(lines: list) -> list:
    """Align whitespace-separated rows into columns."""
    rows = [line.split() for line in lines if line.strip()]
    if not rows:
        return []
    widths = [0] * max(len(row) for row in rows)
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    return [
        "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)).rstrip()
        for row in rows
    ]


def _flatten(value, prefix: str, row: dict) -> None:
    """Flatten nested dicts into dotted scalar keys (lists are skipped)."""
    if isinstance(value, dict):
        for key, sub in value.items():
            _flatten(sub, f"{prefix}.{key}" if prefix else str(key), row)
    elif isinstance(value, bool):
        row[prefix] = "yes" if value else "no"
    elif isinstance(value, float):
        row[prefix] = f"{value:.6g}"
    elif isinstance(value, (int, str)):
        row[prefix] = str(value).replace(" ", "_")


def _bench_family(stem: str) -> str:
    """Benchmark family of a run stem (version suffix stripped)."""
    return stem.split("-v")[0]


def bench_trajectory(paths=None) -> str:
    """Merge per-run ``BENCH_*.json`` files into trajectory tables.

    ``paths`` defaults to every ``BENCH_*.json`` at the repository root
    and under ``results/``. Runs are grouped into one table per
    benchmark *family* (``BENCH_delta``, ``BENCH_reduction``, ...;
    captions from :data:`BENCH_CAPTIONS`) so each table's metric rows
    stay dense — columns are that family's runs, rows the union of its
    flattened metric keys, with ``-`` for metrics a run lacks. Returns
    an empty string when no run files exist.
    """
    if paths is None:
        found = []
        for directory in (REPO_ROOT, RESULTS_DIR):
            found.extend(glob.glob(os.path.join(directory, "BENCH_*.json")))
        paths = sorted(set(found), key=os.path.basename)
    families: dict = {}
    for path in paths:
        with open(path, "r", encoding="utf-8") as handle:
            try:
                data = json.load(handle)
            except ValueError:
                continue
        row: dict = {}
        _flatten(data, "", row)
        stem = os.path.splitext(os.path.basename(path))[0]
        families.setdefault(_bench_family(stem), []).append((stem, row))
    if not families:
        return ""
    sections = []
    for family in sorted(families):
        runs = families[family]
        caption = BENCH_CAPTIONS.get(family, family)
        metrics = sorted({key for _, row in runs for key in row})
        lines = [" ".join(["metric"] + [label for label, _ in runs])]
        for metric in metrics:
            lines.append(
                " ".join([metric] + [row.get(metric, "-") for _, row in runs])
            )
        body = _format_table(lines)
        sections.append(
            "\n".join([f"== Performance trajectory — {caption}", *body])
        )
    return "\n\n".join(sections)


def summarize(results_dir: str = RESULTS_DIR) -> str:
    """Render every result series into one aligned report string."""
    sections = []
    paths = sorted(glob.glob(os.path.join(results_dir, "*.txt")))
    for path in paths:
        stem = os.path.splitext(os.path.basename(path))[0]
        caption = CAPTIONS.get(stem, stem)
        with open(path, "r", encoding="utf-8") as handle:
            lines = handle.read().splitlines()
        body = _format_table(lines)
        sections.append("\n".join([f"== {caption}", *body]))
    trajectory = bench_trajectory()
    if trajectory:
        sections.append(trajectory)
    if not sections:
        return (
            "no result series found; run "
            "`pytest benchmarks/ --benchmark-only` first\n"
        )
    return "\n\n".join(sections) + "\n"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out", default=None, help="write the summary to a file"
    )
    parser.add_argument(
        "--results", default=RESULTS_DIR, help="results directory"
    )
    args = parser.parse_args(argv)
    text = summarize(args.results)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"wrote {args.out}")
    else:
        print(text, end="")
    return 0


if __name__ == "__main__":
    sys.exit(main())
