"""Figure 6(b): path index size.

Paper: index size vs (β, graph size) for L = 1, 2, 3. Expected shape:
size multiplies by ~30x per unit of L (the index grows linearly with the
graph at L=1, quadratically at L=2, cubically at L=3) and grows as β
drops.

The timed quantity here is a representative index *lookup* (size is not
a timing); the regenerated figure values are the ``size_bytes`` /
``paths`` series written to ``benchmarks/results/fig6b_index_size.txt``.
"""

import functools

import pytest

from benchmarks import harness
from repro.index import build_path_index

SIZES = (100, 200, 400)


@functools.lru_cache(maxsize=None)
def cached_index(size, beta, max_length):
    peg = harness.synthetic_peg(num_references=size)
    return build_path_index(peg, max_length=max_length, beta=beta)


@pytest.mark.parametrize("max_length", harness.PATH_LENGTHS)
@pytest.mark.parametrize("beta", harness.OFFLINE_BETAS)
@pytest.mark.parametrize("size", SIZES)
def test_index_size_and_lookup(benchmark, size, beta, max_length):
    index = cached_index(size, beta, max_length)
    peg = harness.synthetic_peg(num_references=size)
    sigma = sorted(peg.sigma)
    sequence = tuple(sigma[i % len(sigma)] for i in range(max_length + 1))

    benchmark(lambda: index.lookup(sequence, max(beta, 0.7)))
    benchmark.extra_info["size_bytes"] = index.size_bytes()
    benchmark.extra_info["paths"] = index.num_paths()
    harness.report(
        "fig6b_index_size",
        "# size beta L bytes paths sequences",
        [(size, beta, max_length, index.size_bytes(), index.num_paths(),
          index.num_sequences())],
    )
