"""Figure 7(h): the IMDB co-starring patterns.

Paper: the same Figure-8 structures on the co-starring graph with
*independent* edge probabilities; every query node carries the same
genre label; α = 0.1. Expected shape: L=3 beats L=2 beats L=1.

Scale substitution: a 400-actor synthetic IMDB look-alike (see
repro.datasets.imdb). The threshold is raised to α = 0.25: our scaled
graph is far denser per label than the real IMDB, and at α = 0.1 the
answer sets explode into the thousands so match *generation* (identical
across L) dominates the timing; see EXPERIMENTS.md.
"""

import pytest

from benchmarks import harness
from repro.datasets.queries import PATTERN_NAMES

ALPHA = 0.25


@pytest.mark.parametrize("max_length", harness.PATH_LENGTHS)
@pytest.mark.parametrize("pattern", PATTERN_NAMES)
def test_imdb_patterns(benchmark, pattern, max_length):
    engine = harness.imdb_engine(max_length)
    query = harness.imdb_pattern(pattern, genre="Comedy")

    result = benchmark.pedantic(
        lambda: engine.query(query, ALPHA), rounds=2, iterations=1
    )
    benchmark.extra_info["matches"] = len(result.matches)
    harness.report(
        "fig7h_imdb",
        "# pattern L seconds matches",
        [(pattern, max_length,
          f"{benchmark.stats.stats.mean:.5f}", len(result.matches))],
    )
