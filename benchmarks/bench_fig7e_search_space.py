"""Figure 7(e): search-space progression through the pruning steps.

Paper: search-space size (product of candidate-list sizes) after (1)
the path-index lookup, (2) context pruning, (3) the joint k-partite
reduction, for L = 1, 2, 3 on 100k graphs at 20% and 80% uncertainty,
q(5,7), α = 0.7. Expected shape: the final reduction is effective at
every L but most dramatic for short paths; context pruning contributes
most for long paths; higher uncertainty shrinks every stage; the final
search space of L=3 is many orders of magnitude below L=1.
"""

import pytest

from benchmarks import harness

ALPHA = 0.7
UNCERTAINTIES = (0.2, 0.8)


@pytest.mark.parametrize("max_length", harness.PATH_LENGTHS)
@pytest.mark.parametrize("uncertainty", UNCERTAINTIES)
def test_search_space_progression(benchmark, uncertainty, max_length):
    engine = harness.synthetic_engine(
        uncertainty=uncertainty, max_length=max_length, beta=0.5
    )
    queries = harness.synthetic_queries(engine.peg, 5, 7)

    results = benchmark.pedantic(
        lambda: harness.run_queries(engine, queries, ALPHA),
        rounds=2,
        iterations=1,
    )
    rows = []
    for seed, result in zip(harness.QUERY_SEEDS, results):
        rows.append(
            (
                uncertainty,
                max_length,
                seed,
                f"{result.search_space_path:.3e}",
                f"{result.search_space_context:.3e}",
                f"{result.search_space_final:.3e}",
            )
        )
        benchmark.extra_info[f"ss_q{seed}"] = (
            result.search_space_path,
            result.search_space_context,
            result.search_space_final,
        )
    harness.report(
        "fig7e_search_space",
        "# uncertainty L query_seed ss_path ss_path_context ss_final",
        rows,
    )
