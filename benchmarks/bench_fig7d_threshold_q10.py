"""Figure 7(d): online running time vs query threshold (10-node queries).

Same sweep as Figure 7(c) with q(10,20) and q(10,40).
"""

import pytest

from benchmarks import harness

ALPHAS = (0.3, 0.5, 0.7, 0.9)
QUERIES = [(10, 20), (10, 40)]


@pytest.mark.parametrize("max_length", harness.PATH_LENGTHS)
@pytest.mark.parametrize("size", QUERIES, ids=lambda s: f"q{s[0]}-{s[1]}")
@pytest.mark.parametrize("alpha", ALPHAS)
def test_threshold_q10(benchmark, alpha, size, max_length):
    engine = harness.synthetic_engine(max_length=max_length, beta=0.3)
    queries = harness.synthetic_queries(engine.peg, *size)

    results = benchmark.pedantic(
        lambda: harness.run_queries(engine, queries, alpha),
        rounds=2,
        iterations=1,
    )
    matches = sum(len(r.matches) for r in results)
    harness.report(
        "fig7d_threshold_q10",
        "# alpha nodes edges L seconds_per_query matches",
        [(alpha, size[0], size[1], max_length,
          f"{benchmark.stats.stats.mean / len(queries):.5f}", matches)],
    )
