"""Quickstart: the paper's motivating example (Figure 1).

Builds the four-reference expert network of Section 2 — attribute
uncertainty on r1, edge uncertainty, and identity uncertainty between
the two "Chris Tucker" references — and answers the path query
(r)-(a)-(i) at a probability threshold.

Run:  python examples/quickstart.py
"""

from repro import QueryEngine, QueryGraph, build_peg, pgd_from_edge_list


def main() -> None:
    # --- reference-level data (Figure 1a) -----------------------------
    # r1: personal webpage, affiliation Industry 0.75 / Research 0.25
    # r2: professional network, Academia
    # r3: professional network, Research Lab ("Christopher Tucker")
    # r4: social network, Industry ("Chris Tucker")
    pgd = pgd_from_edge_list(
        node_labels={
            "r1": {"r": 0.25, "i": 0.75},
            "r2": "a",
            "r3": "r",
            "r4": "i",
        },
        edges=[
            ("r1", "r2", 0.9),
            ("r2", "r3", 1.0),
            ("r2", "r4", 0.5),
            ("r1", "r4", 1.0),
        ],
        # "Christopher Tucker" and "Chris Tucker" are the same person
        # with probability 0.8.
        reference_sets=[(("r3", "r4"), 0.8)],
    )

    # --- entity-level graph (Figures 1b/1c in one model) ---------------
    peg = build_peg(pgd)
    print("Probabilistic entity graph:", peg.stats())
    merged = frozenset({"r3", "r4"})
    print(
        "Pr(merged entity {r3, r4} exists) =",
        round(peg.existence_probability(merged), 3),
    )
    print(
        "merged label distribution:",
        {
            label: round(peg.label_probability(merged, label), 3)
            for label in peg.possible_labels(merged)
        },
    )

    # --- query: a path labeled (r, a, i), threshold 0.15 ----------------
    engine = QueryEngine(peg, max_length=2, beta=0.05)
    query = QueryGraph(
        {"q1": "r", "q2": "a", "q3": "i"},
        [("q1", "q2"), ("q2", "q3")],
    )
    result = engine.query(query, alpha=0.15)

    print(f"\nmatches with probability >= 0.15: {len(result.matches)}")
    for match in result.matches:
        rendered = " - ".join(
            f"{{{','.join(sorted(entity))}}}:{label}"
            for entity, label in match.nodes
        )
        print(f"  {rendered}   Pr = {match.probability:.4f}")
    print(
        "\nsearch space progression:",
        f"index={result.search_space_path:.0f}",
        f"context={result.search_space_context:.0f}",
        f"final={result.search_space_final:.0f}",
    )


if __name__ == "__main__":
    main()
