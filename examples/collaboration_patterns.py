"""Collaboration patterns on a DBLP-like network (Section 6.3, Fig 7g).

Generates the DBLP-like collaboration graph — three research areas,
label-correlated edge CPTs (same-area collaborations are more likely),
name-similarity reference sets — and evaluates the five Figure-8
patterns (BF1, BF2, GR, ST, TR) at threshold 0.1, comparing index path
lengths L = 1, 2, 3 as the paper does.

Run:  python examples/collaboration_patterns.py
"""

import time

from repro import QueryEngine, build_peg
from repro.datasets import generate_dblp_pgd, pattern_query
from repro.datasets.dblp import DBLP_AREAS

# Label assignments for the patterns, mixing areas like the paper's
# collaboration patterns do (D = DB, M = ML, S = SE in Figure 8).
PATTERN_LABELS = {
    "BF1": {"n0": "SE", "n1": "DB", "n2": "ML", "n3": "DB", "n4": "ML"},
    "BF2": {
        "n0": "SE", "n1": "DB", "n2": "ML", "n3": "DB",
        "n4": "DB", "n5": "ML", "n6": "DB",
    },
    "GR": {"n0": "DB", "n1": "DB", "n2": "ML", "n3": "ML"},
    "ST": {"n0": "SE", "n1": "DB", "n2": "DB", "n3": "ML", "n4": "ML"},
    "TR": {
        "n0": "DB", "n1": "ML", "n2": "ML",
        "n3": "DB", "n4": "DB", "n5": "SE", "n6": "SE",
    },
}

ALPHA = 0.1


def main() -> None:
    print("generating DBLP-like collaboration network...")
    pgd = generate_dblp_pgd(num_authors=500, edges_per_author=2, seed=11)
    peg = build_peg(pgd)
    print("PEG:", peg.stats(), "(conditional edges:", peg.conditional, ")")
    assert set(DBLP_AREAS) == set(peg.sigma)

    engines = {}
    for length in (1, 2, 3):
        start = time.perf_counter()
        engines[length] = QueryEngine(peg, max_length=length, beta=0.05)
        elapsed = time.perf_counter() - start
        stats = engines[length].index.stats()
        print(
            f"offline L={length}: {elapsed:6.2f}s, "
            f"{stats['paths']:7d} paths, {stats['size_bytes'] / 1024:8.1f} KiB"
        )

    print(f"\npattern queries at alpha = {ALPHA}:")
    header = f"{'query':6s}" + "".join(f"  L={length}(ms)" for length in (1, 2, 3))
    print(header + "   matches")
    for name, labels in PATTERN_LABELS.items():
        query = pattern_query(name, labels)
        timings = []
        counts = set()
        for length in (1, 2, 3):
            start = time.perf_counter()
            result = engines[length].query(query, alpha=ALPHA)
            timings.append((time.perf_counter() - start) * 1000)
            counts.add(len(result.matches))
        assert len(counts) == 1, "L must not change the answer set"
        row = f"{name:6s}" + "".join(f"  {t:8.1f}" for t in timings)
        print(row + f"   {counts.pop()}")


if __name__ == "__main__":
    main()
