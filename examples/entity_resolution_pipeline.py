"""End-to-end entity-resolution pipeline on an IMDB-like network.

Demonstrates the full workflow a practitioner would run:

1. start from raw co-starring records with duplicate actor entries,
2. propose reference sets from name similarity
   (:func:`repro.pgd.reference_sets_from_similarity`),
3. build the PEG and inspect identity components,
4. answer genre-pattern queries, and
5. contrast the optimized engine with the naive SQL-style baseline.

Run:  python examples/entity_resolution_pipeline.py
"""

import time

from repro import (
    QueryEngine,
    build_peg,
    reference_sets_from_similarity,
)
from repro.datasets import generate_imdb_pgd, pattern_query
from repro.datasets.imdb import IMDB_GENRES
from repro.pgd.builders import normalized_levenshtein
from repro.relational import RowLimitExceeded, sql_baseline_matches

ALPHA = 0.25


def demo_similarity_proposals() -> None:
    """Step 2 in isolation: name-similarity reference-set proposals."""
    names = {
        1: "Christopher Tucker",
        2: "Chris Tucker",
        3: "Kristofer Tucker",
        4: "Gerald Maya",
        5: "Geraldine Mayo",
    }
    proposals = reference_sets_from_similarity(
        names, normalized_levenshtein, threshold=0.55
    )
    print("similarity proposals (threshold 0.55):")
    for (ref_a, ref_b), probability in proposals:
        print(
            f"  {names[ref_a]!r} <-> {names[ref_b]!r}: "
            f"merge probability {probability:.2f}"
        )


def main() -> None:
    demo_similarity_proposals()

    print("\ngenerating IMDB-like co-starring network...")
    pgd = generate_imdb_pgd(num_actors=300, edges_per_actor=3, seed=23)
    peg = build_peg(pgd)
    print("PEG:", peg.stats())
    nontrivial = [c for c in peg.components if not c.is_trivial]
    print(f"identity components with real uncertainty: {len(nontrivial)}")
    if nontrivial:
        component = nontrivial[0]
        print("  example component configurations:")
        for cfg in component.configurations:
            rendered = " | ".join(
                "{" + ",".join(map(str, sorted(entity))) + "}"
                for entity in sorted(cfg.chosen, key=repr)
            )
            print(f"    Pr={cfg.probability:.3f}  {rendered}")

    engine = QueryEngine(peg, max_length=3, beta=0.05)
    print(f"\ngenre pattern queries (all nodes share one genre, alpha={ALPHA}):")
    for name in ("ST", "GR", "TR"):
        for genre in IMDB_GENRES[:2]:
            query = pattern_query(name, genre)
            start = time.perf_counter()
            result = engine.query(query, alpha=ALPHA)
            optimized_ms = (time.perf_counter() - start) * 1000
            print(
                f"  {name}/{genre:6s}: {len(result.matches):5d} matches, "
                f"optimized {optimized_ms:8.1f} ms"
            )

    print("\nSQL baseline comparison on the star pattern (Drama):")
    query = pattern_query("ST", "Drama")
    start = time.perf_counter()
    optimized = engine.query(query, alpha=0.3)
    optimized_ms = (time.perf_counter() - start) * 1000
    start = time.perf_counter()
    try:
        sql = sql_baseline_matches(peg, query, alpha=0.3, row_limit=3_000_000)
        sql_ms = (time.perf_counter() - start) * 1000
        assert len(sql) == len(optimized.matches)
        print(
            f"  optimized: {optimized_ms:8.1f} ms   "
            f"SQL joins: {sql_ms:10.1f} ms   "
            f"speedup: {sql_ms / max(optimized_ms, 1e-9):8.1f}x"
        )
    except RowLimitExceeded:
        sql_ms = (time.perf_counter() - start) * 1000
        print(
            f"  optimized: {optimized_ms:8.1f} ms   "
            f"SQL joins: DNF (row budget exceeded after {sql_ms:.0f} ms)"
        )


if __name__ == "__main__":
    main()
