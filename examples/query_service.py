"""Query serving: warm-start snapshots + concurrent cached querying.

The paper's offline/online split is a serving architecture: pay for the
PEG and path index once, answer many cheap queries forever after. This
example runs that lifecycle twice over a synthetic collaboration graph:

1. first launch — cold start: builds the offline phase and writes a
   snapshot bundle next to this script's temp directory,
2. second launch (simulated in-process) — warm start: restores the
   bundle in milliseconds instead of rebuilding,
3. serving — eight concurrent clients submit a workload with repeats
   and node-renamed duplicates; the service's canonical result cache
   and single-flight deduplication collapse the redundant work.

Run:  PYTHONPATH=src python examples/query_service.py
"""

import tempfile
import threading
import time

from repro import QueryGraph, QueryService, build_peg
from repro.datasets import SyntheticConfig, generate_synthetic_pgd
from repro.datasets.queries import random_query


def renamed(query: QueryGraph, prefix: str) -> QueryGraph:
    """The same pattern under fresh node ids (still cache-equal)."""
    mapping = {node: f"{prefix}{node}" for node in query.nodes}
    return QueryGraph(
        {mapping[node]: query.label(node) for node in query.nodes},
        [tuple(mapping[node] for node in edge) for edge in query.edges],
    )


def main() -> None:
    peg = build_peg(
        generate_synthetic_pgd(
            SyntheticConfig(num_references=150, uncertainty=0.2, seed=11)
        )
    )
    sigma = sorted(peg.sigma)

    with tempfile.TemporaryDirectory() as snapshot_dir:
        # --- cold start: offline phase + snapshot ----------------------
        started = time.perf_counter()
        service = QueryService.open(
            peg, snapshot_dir, max_length=2, beta=0.1, num_workers=4
        )
        print(
            f"cold start: {time.perf_counter() - started:.3f}s "
            f"(warm_started={service.warm_started})"
        )
        service.close()

        # --- warm start: restore the same offline phase ----------------
        started = time.perf_counter()
        service = QueryService.open(peg, snapshot_dir, num_workers=4)
        print(
            f"warm start: {time.perf_counter() - started:.3f}s "
            f"(warm_started={service.warm_started})"
        )

        # --- concurrent clients over a repetitive workload -------------
        def client(client_id: int) -> None:
            for i in range(6):
                # Every client asks the same three questions, each under
                # its own node ids — the canonical cache still
                # recognizes them.
                query = renamed(
                    random_query(3, 2, sigma, seed=i % 3), f"c{client_id}_"
                )
                result = service.query(query, alpha=0.5, timeout=60)
                if i == 0:
                    print(
                        f"  client {client_id}: query {i} -> "
                        f"{len(result.matches)} matches"
                    )

        with service:
            threads = [
                threading.Thread(target=client, args=(c,)) for c in range(8)
            ]
            started = time.perf_counter()
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            elapsed = time.perf_counter() - started

            snap = service.stats_snapshot()
            print(f"served {snap['requests']} requests in {elapsed:.3f}s")
            print(
                f"  cache hits {snap['hits']}, misses {snap['misses']}, "
                f"single-flight dedups {snap['deduplicated']}"
            )
            print(
                f"  p50 {snap['latency_p50'] * 1e3:.2f} ms, "
                f"p95 {snap['latency_p95'] * 1e3:.2f} ms"
            )


if __name__ == "__main__":
    main()
