"""Tour of the library features beyond the paper's core algorithm.

1. PGD interchange: build an uncertain graph, export to JSON, reload.
2. Transitive-closure merge constraints (the paper's future work).
3. The textual pattern language + EXPLAIN output.
4. Top-k matching without choosing a threshold.
5. Offline-bundle persistence: build the index once, reopen instantly.
6. networkx interop for off-the-shelf analytics.

Run:  python examples/advanced_features.py
"""

import os
import tempfile
import time

import networkx as nx

from repro import (
    PGD,
    QueryEngine,
    build_peg,
)
from repro.pgd import add_transitive_closure, load_pgd_json, save_pgd_json
from repro.peg import to_networkx
from repro.query import explain, parse_pattern, top_k_matches


def build_input() -> PGD:
    """A small team network with chained duplicate evidence."""
    pgd = PGD(merge="average")
    people = {
        "ann": "eng", "ann_k": "eng", "a_kim": "mgr",
        "bob": "mgr", "carol": "eng", "dave": "sci",
        "erin": "sci", "frank": "eng",
    }
    for person, role in people.items():
        pgd.add_reference(person, role)
    edges = [
        ("ann", "bob", 0.9), ("ann_k", "carol", 0.8),
        ("a_kim", "dave", 0.7), ("bob", "carol", 1.0),
        ("carol", "dave", 0.6), ("dave", "erin", 0.9),
        ("erin", "frank", 0.8), ("frank", "ann", 0.5),
    ]
    for left, right, prob in edges:
        pgd.add_edge(left, right, prob)
    # Two pieces of pairwise duplicate evidence that chain:
    # ann ~ ann_k and ann_k ~ a_kim.
    pgd.add_reference_set(("ann", "ann_k"), 0.7)
    pgd.add_reference_set(("ann_k", "a_kim"), 0.5)
    return pgd


def main() -> None:
    with tempfile.TemporaryDirectory() as workdir:
        # 1. JSON interchange ------------------------------------------
        pgd = build_input()
        json_path = os.path.join(workdir, "team.json")
        save_pgd_json(pgd, json_path)
        pgd = load_pgd_json(json_path)
        print(f"PGD round-tripped through {os.path.basename(json_path)}:",
              pgd.stats())

        # 2. transitive closure ----------------------------------------
        added = add_transitive_closure(pgd)
        print("closure added candidate entities:",
              [sorted(s) for s in added])
        peg = build_peg(pgd)
        triple = frozenset({"ann", "ann_k", "a_kim"})
        print(
            "Pr(all three mentions are one person) =",
            round(peg.existence_probability(triple), 3),
        )

        # 3. pattern language + EXPLAIN --------------------------------
        engine = QueryEngine(peg, max_length=2, beta=0.05)
        query = parse_pattern("(x:eng)-(y:mgr)-(z:eng)")
        result = engine.query(query, alpha=0.2)
        print("\n" + explain(result, max_matches=3))

        # 4. top-k without a threshold ---------------------------------
        chain = parse_pattern("(p:eng)-(q:sci)")
        top = top_k_matches(engine, chain, k=3, floor=0.01)
        print("\ntop-3 (eng)-(sci) pairs:")
        for match in top:
            rendered = " - ".join(
                "{" + ",".join(sorted(e)) + "}" for e, _ in match.nodes
            )
            print(f"  Pr={match.probability:.3f}  {rendered}")

        # 5. offline bundle --------------------------------------------
        bundle_dir = os.path.join(workdir, "offline")
        engine.save_offline(bundle_dir)
        start = time.perf_counter()
        reopened = QueryEngine.from_saved(peg, bundle_dir)
        reopen_ms = (time.perf_counter() - start) * 1000
        again = reopened.query(query, alpha=0.2)
        assert len(again.matches) == len(result.matches)
        print(f"\nreopened offline bundle in {reopen_ms:.1f} ms "
              f"({reopened.index.num_paths()} indexed paths)")

        # 6. networkx interop ------------------------------------------
        graph = to_networkx(peg)
        centrality = nx.degree_centrality(graph)
        hub, score = max(centrality.items(), key=lambda kv: kv[1])
        print(
            "most central entity:",
            "{" + ",".join(sorted(hub)) + "}",
            f"(degree centrality {score:.2f})",
        )


if __name__ == "__main__":
    main()
