"""Expert finder: multi-source integration at a realistic (small) scale.

The paper's motivating application: an organization integrates expert
profiles from a professional network, a social network, and personal
webpages. Extraction confidences become label distributions, link
predictions become edge probabilities, and name-similarity duplicates
become reference sets.

This example builds a ~300-reference network, asks three expert-search
patterns at different thresholds, and shows how the answers change when
the identity-merge evidence changes.

Run:  python examples/expert_finder.py
"""

from repro import (
    PGD,
    QueryEngine,
    QueryGraph,
    build_peg,
    pair_merge_potentials,
)
from repro.utils.rng import ensure_rng

AFFILIATIONS = ("a", "r", "i")  # Academia, Research lab, Industry


def build_network(merge_probability: float, seed: int = 7) -> PGD:
    """A synthetic three-source expert network with injected duplicates."""
    rng = ensure_rng(seed)
    pgd = PGD(merge="average")
    num_experts = 300
    for expert in range(num_experts):
        if rng.random() < 0.3:  # extraction was uncertain
            masses = rng.dirichlet([1.5, 1.0, 1.0])
            pgd.add_reference(
                expert,
                {
                    aff: float(mass)
                    for aff, mass in zip(AFFILIATIONS, masses)
                },
            )
        else:
            pgd.add_reference(
                expert, AFFILIATIONS[int(rng.integers(len(AFFILIATIONS)))]
            )
    # Collaboration edges: each expert knows a handful of earlier ones.
    for expert in range(1, num_experts):
        for _ in range(int(rng.integers(1, 4))):
            other = int(rng.integers(expert))
            if pgd.edge_distribution(expert, other) is None:
                confidence = float(rng.uniform(0.4, 1.0))
                pgd.add_edge(expert, other, confidence)
    # Ten duplicate profiles found by name similarity.
    pair_potential, singleton_potential = pair_merge_potentials(
        merge_probability
    )
    duplicates = rng.choice(num_experts, size=20, replace=False)
    for i in range(0, 20, 2):
        ref_a, ref_b = int(duplicates[i]), int(duplicates[i + 1])
        pgd.add_reference_set((ref_a, ref_b), pair_potential)
        pgd.set_singleton_potential(ref_a, singleton_potential)
        pgd.set_singleton_potential(ref_b, singleton_potential)
    pgd.validate()
    return pgd


def main() -> None:
    queries = {
        "research chain  (r)-(a)-(i)": QueryGraph(
            {"x": "r", "y": "a", "z": "i"}, [("x", "y"), ("y", "z")]
        ),
        "academia triangle (a)-(a)-(a)": QueryGraph(
            {"x": "a", "y": "a", "z": "a"},
            [("x", "y"), ("y", "z"), ("x", "z")],
        ),
        "industry star": QueryGraph(
            {"c": "i", "l1": "a", "l2": "r", "l3": "i"},
            [("c", "l1"), ("c", "l2"), ("c", "l3")],
        ),
    }
    for merge_probability in (0.5, 0.9):
        print(f"\n=== duplicate merge probability {merge_probability} ===")
        peg = build_peg(build_network(merge_probability))
        engine = QueryEngine(peg, max_length=2, beta=0.1)
        print("PEG:", peg.stats())
        for name, query in queries.items():
            for alpha in (0.3, 0.6):
                result = engine.query(query, alpha=alpha)
                timing = sum(result.timings.values())
                print(
                    f"  {name:34s} alpha={alpha}: "
                    f"{len(result.matches):4d} matches "
                    f"({timing * 1000:.1f} ms, final search space "
                    f"{result.search_space_final:.0f})"
                )
            if result.matches:
                best = result.matches[0]
                rendered = ", ".join(
                    f"{{{','.join(str(r) for r in sorted(entity, key=str))}}}"
                    for entity, _ in best.nodes
                )
                print(f"      best: {rendered}  Pr={best.probability:.3f}")


if __name__ == "__main__":
    main()
