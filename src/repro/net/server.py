"""The asyncio serving tier in front of :class:`~repro.service.QueryService`.

:class:`QueryServer` accepts length-prefixed JSON connections
(:mod:`repro.net.protocol`) and forwards admitted requests into the
in-process service's worker pool. What it adds over calling the
service directly is everything an *online* system needs under overload
and partial failure:

* **Bounded admission with explicit backpressure** — at most
  ``max_pending`` requests wait for dispatch and at most
  ``max_inflight`` occupy the service at once; past the bound new
  requests are *shed* with a typed ``REJECTED`` reply (the 429 of this
  protocol) instead of growing an unbounded queue. Sheds are counted
  in :class:`~repro.service.stats.ServiceStats` (``rejected``/``shed``)
  so ``requests == completed + rejected`` reconciles exactly on drain.
* **Per-client fairness** — dispatch round-robins across connections
  and each client is capped at ``per_client_inflight`` queued+running
  requests, so one chatty client cannot starve the rest.
* **Deadlines that cannot hang** — a request's ``deadline_ms``
  propagates into :meth:`QueryService.submit` (expired-in-queue
  requests are never evaluated) *and* arms a server-side watchdog that
  answers ``DEADLINE_EXCEEDED`` at the deadline even if the evaluation
  is still running; the late result is then discarded.
* **Graceful drain** — :meth:`apply_updates` stops dispatch, lets
  in-flight requests finish, applies the mutation batch through the
  service's admission-pause machinery, and resumes; queued requests
  are *held* across the update or *shed* with ``REJECTED``, by policy.
  :meth:`stop` drains the same way with a hard cutoff: whatever is
  still unresolved at the cutoff is answered ``UNAVAILABLE`` — no
  client is left waiting on a reply that will never come.
* **Fault sites** — ``net.accept``, ``net.read`` and ``net.write``
  let the chaos suite (:mod:`repro.testing.faults`) drop or delay
  connections mid-exchange and assert the correct-or-clean-error
  invariant end to end.

Use :func:`start_server` to run a server on its own event-loop thread
(the shape the CLI and the tests use); the asyncio API
(:meth:`QueryServer.start` / :meth:`QueryServer.stop`) is also public
for embedding into an existing loop.
"""

from __future__ import annotations

import asyncio
import itertools
import threading
import time
from collections import deque

from repro.net import protocol
from repro.obs.metrics import get_registry
from repro.testing import faults
from repro.utils.errors import (
    DeadlineExceeded,
    QueryError,
    ReproError,
    ServiceError,
)


class _Client:
    """Per-connection state: queue, in-flight count, serialized writes."""

    def __init__(self, cid: int, writer: asyncio.StreamWriter) -> None:
        self.cid = cid
        self.writer = writer
        self.queue: deque = deque()
        self.inflight = 0
        self.write_lock = asyncio.Lock()
        self.closed = False


class _Entry:
    """One admitted query request moving through the server."""

    __slots__ = (
        "request_id", "client", "query", "alpha", "deadline", "finished",
        "timer",
    )

    def __init__(self, request_id, client, query, alpha, deadline) -> None:
        self.request_id = request_id
        self.client = client
        self.query = query
        self.alpha = alpha
        #: Absolute ``time.monotonic()`` deadline, or ``None``.
        self.deadline = deadline
        #: Set exactly once, when the entry's slots are released and its
        #: reply (result, error, or watchdog expiry) is owned.
        self.finished = False
        #: The armed watchdog timer handle, if any.
        self.timer = None


class QueryServer:
    """Serves one :class:`~repro.service.QueryService` over asyncio TCP.

    Parameters
    ----------
    service:
        The in-process service evaluations run on. The server never
        closes it — the caller owns its lifecycle.
    host, port:
        Listen address; port 0 binds an ephemeral port (see
        :attr:`address` after :meth:`start`).
    max_pending:
        Bound on requests queued for dispatch across all clients.
        Overflow is shed with ``REJECTED``.
    max_inflight:
        Bound on requests concurrently submitted to the service
        (default ``2 * service.num_workers``): backpressure that keeps
        the service's internal executor queue from growing unboundedly
        behind the admission queue's back.
    per_client_inflight:
        Per-connection cap on queued+running requests (fairness).
    default_deadline_ms:
        Deadline applied to requests that carry none (``None`` = no
        deadline).
    drain_policy:
        What happens to queued requests while :meth:`apply_updates`
        drains: ``"hold"`` keeps them queued across the update (they
        run against the post-update graph), ``"shed"`` rejects them.
    drain_timeout:
        Hard cutoff, in seconds, :meth:`stop` waits for in-flight
        requests before answering the stragglers ``UNAVAILABLE``.
    """

    def __init__(
        self,
        service,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        max_pending: int = 64,
        max_inflight: int | None = None,
        per_client_inflight: int = 8,
        default_deadline_ms: float | None = None,
        drain_policy: str = "hold",
        drain_timeout: float = 10.0,
    ) -> None:
        if drain_policy not in ("hold", "shed"):
            raise ServiceError(
                f"drain_policy must be 'hold' or 'shed', got {drain_policy!r}"
            )
        if max_pending < 1:
            raise ServiceError(f"max_pending must be >= 1, got {max_pending}")
        if per_client_inflight < 1:
            raise ServiceError(
                f"per_client_inflight must be >= 1, got {per_client_inflight}"
            )
        self.service = service
        self.host = host
        self.port = port
        self.max_pending = int(max_pending)
        self.max_inflight = int(
            max_inflight if max_inflight is not None
            else 2 * service.num_workers
        )
        self.per_client_inflight = int(per_client_inflight)
        self.default_deadline_ms = default_deadline_ms
        self.drain_policy = drain_policy
        self.drain_timeout = float(drain_timeout)

        self._server: asyncio.AbstractServer | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._dispatch_task: asyncio.Task | None = None
        # All mutable serving state below is confined to the event
        # loop: only coroutines and call_soon_threadsafe callbacks may
        # touch it, which the ``lock-discipline`` checker enforces via
        # the ``event-loop`` pseudo-guard (sync methods touching these
        # must carry ``# loop-only``).
        self._clients: dict[int, _Client] = {}  # guarded-by: event-loop
        #: Round-robin order of client ids (rotated by the dispatcher).
        self._rr: deque = deque()  # guarded-by: event-loop
        self._cid_counter = itertools.count(1)
        self._pending_total = 0  # guarded-by: event-loop
        self._inflight_total = 0  # guarded-by: event-loop
        self._inflight_entries: set = set()  # guarded-by: event-loop
        self._reply_tasks: set = set()  # guarded-by: event-loop
        self._dispatch_wake: asyncio.Event | None = None
        self._idle: asyncio.Event | None = None
        self._draining = False  # guarded-by: event-loop
        self._closing = False  # guarded-by: event-loop
        self._stopped = False  # guarded-by: event-loop
        self._apply_lock: asyncio.Lock | None = None

        registry = get_registry()
        self._m_connections = registry.counter("repro_net_connections_total")
        self._m_requests = {
            outcome: registry.counter(
                "repro_net_requests_total", outcome=outcome
            )
            for outcome in ("ok", "error", "rejected", "deadline")
        }
        self._m_dropped = registry.counter(
            "repro_net_dropped_connections_total"
        )
        self._m_pending = registry.gauge("repro_net_pending")
        self._m_inflight = registry.gauge("repro_net_inflight")

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        """Bind the listen socket and start the dispatcher."""
        self._loop = asyncio.get_running_loop()
        self._dispatch_wake = asyncio.Event()
        self._idle = asyncio.Event()
        self._idle.set()
        self._apply_lock = asyncio.Lock()
        self._server = await asyncio.start_server(
            self._handle_conn, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._dispatch_task = self._loop.create_task(self._dispatch_loop())

    @property
    def address(self) -> tuple:
        """``(host, port)`` actually bound (port resolved if 0)."""
        return (self.host, self.port)

    async def stop(self, drain_timeout: float | None = None) -> None:
        """Drain and shut down; every pending request gets a reply.

        New connections are refused, queued requests are shed with
        ``UNAVAILABLE``, in-flight requests get ``drain_timeout``
        seconds (default: the constructor's) to complete, and whatever
        is still unresolved at the hard cutoff is answered
        ``UNAVAILABLE`` — the evaluation may still finish service-side,
        but no client is left hanging. Idempotent.
        """
        if self._closing:
            return
        self._closing = True
        timeout = (
            self.drain_timeout if drain_timeout is None else float(drain_timeout)
        )
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self._shed_queued(
            protocol.ERROR_UNAVAILABLE, "server shutting down"
        )
        try:
            await asyncio.wait_for(self._wait_idle(), timeout)
        except asyncio.TimeoutError:
            pass
        # Hard cutoff: answer the stragglers now. Their service futures
        # still resolve later and are discarded (entry.finished).
        for entry in list(self._inflight_entries):
            if self._finish_entry(entry):
                self._reply_error(
                    entry.client, entry.request_id,
                    protocol.ERROR_UNAVAILABLE,
                    "server shut down before the request completed",
                )
        self._stopped = True
        if self._dispatch_wake is not None:
            self._dispatch_wake.set()
        if self._dispatch_task is not None:
            try:
                await asyncio.wait_for(self._dispatch_task, 1.0)
            except (asyncio.TimeoutError, asyncio.CancelledError):
                self._dispatch_task.cancel()
        # Flush every in-progress reply before tearing sockets down —
        # including the UNAVAILABLE replies created just above. Bounded:
        # a peer that stopped reading must not wedge the shutdown.
        flush_deadline = self._loop.time() + 2.0
        while self._reply_tasks and self._loop.time() < flush_deadline:
            try:
                await asyncio.wait_for(
                    asyncio.gather(
                        *list(self._reply_tasks), return_exceptions=True
                    ),
                    flush_deadline - self._loop.time(),
                )
            except asyncio.TimeoutError:
                break
        for client in list(self._clients.values()):
            client.closed = True
            try:
                client.writer.close()
            except Exception:
                pass

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------

    async def _handle_conn(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        action = faults.fire("net.accept")
        if action is not None and action.kind == "delay":
            await asyncio.sleep(action.param)
            action = None
        if action is not None:  # drop / error: refuse the connection
            self._m_dropped.inc()
            writer.close()
            return
        client = _Client(next(self._cid_counter), writer)
        self._clients[client.cid] = client
        self._rr.append(client.cid)
        self._m_connections.inc()
        try:
            while not self._closing:
                action = faults.fire("net.read")
                if action is not None:
                    if action.kind == "delay":
                        await asyncio.sleep(action.param)
                    else:  # drop / error: tear the connection down
                        self._m_dropped.inc()
                        break
                frame = await protocol.read_frame(reader)
                if frame is None:
                    break
                await self._handle_request(client, frame)
        except (ConnectionError, OSError, ReproError):
            pass  # torn connection: the client's retry layer handles it
        finally:
            self._disconnect(client)

    def _disconnect(self, client: _Client) -> None:  # loop-only
        """Unregister a connection; queued-but-undispatched work is dropped.

        Entries already in flight keep running (their replies are
        discarded by the ``closed`` check); entries still queued were
        never counted in the service stats, so dropping them leaves
        the counters reconciled.
        """
        client.closed = True
        if client.cid in self._clients:
            del self._clients[client.cid]
            try:
                self._rr.remove(client.cid)
            except ValueError:
                pass
        while client.queue:
            client.queue.popleft()
            self._pending_total -= 1
            self._m_pending.dec()
        try:
            client.writer.close()
        except Exception:
            pass

    async def _handle_request(self, client: _Client, frame: dict) -> None:
        rid = frame.get("id")
        kind = frame.get("kind", "query")
        if kind == "ping":
            self._reply(client, {"id": rid, "ok": True, "pong": True})
            return
        if kind == "stats":
            snap = self.service.stats_snapshot()
            snap["net_pending"] = self._pending_total
            snap["net_inflight"] = self._inflight_total
            snap["net_connections"] = len(self._clients)
            self._reply(client, {"id": rid, "ok": True, "stats": snap})
            return
        if kind != "query":
            self._reply_error(
                client, rid, protocol.ERROR_BAD_REQUEST,
                f"unknown request kind {kind!r}",
            )
            return
        # Admission control. Order matters: shed on global overflow
        # before spending parse work, cap per-client before global
        # (a greedy client must hit its own limit, not everyone's).
        if self._closing:
            self._reply_error(
                client, rid, protocol.ERROR_UNAVAILABLE,
                "server shutting down",
            )
            return
        if self._draining and self.drain_policy == "shed":
            self.service.stats.record_rejected()
            self._m_requests["rejected"].inc()
            self._reply_error(
                client, rid, protocol.ERROR_REJECTED,
                "draining for a live update",
            )
            return
        if client.inflight + len(client.queue) >= self.per_client_inflight:
            self.service.stats.record_rejected()
            self._m_requests["rejected"].inc()
            self._reply_error(
                client, rid, protocol.ERROR_REJECTED,
                f"per-client in-flight cap ({self.per_client_inflight}) "
                "reached",
            )
            return
        if self._pending_total >= self.max_pending:
            self.service.stats.record_rejected(shed=True)
            self._m_requests["rejected"].inc()
            self._reply_error(
                client, rid, protocol.ERROR_REJECTED,
                f"admission queue full ({self.max_pending} pending)",
            )
            return
        try:
            query = protocol.query_graph_from_spec(frame)
            alpha = frame.get("alpha", 0.5)
            if not isinstance(alpha, (int, float)) or not 0.0 < alpha <= 1.0:
                raise QueryError(f"alpha must be in (0, 1], got {alpha!r}")
        except ReproError as exc:
            self._reply_error(
                client, rid, protocol.ERROR_BAD_REQUEST, str(exc)
            )
            return
        deadline_ms = frame.get("deadline_ms", self.default_deadline_ms)
        deadline = None
        if deadline_ms is not None:
            deadline = time.monotonic() + float(deadline_ms) / 1e3
        client.queue.append(_Entry(rid, client, query, float(alpha), deadline))
        self._pending_total += 1
        self._m_pending.inc()
        self._dispatch_wake.set()

    # ------------------------------------------------------------------
    # Dispatch (round-robin fairness, bounded in-flight)
    # ------------------------------------------------------------------

    def _next_entry(self) -> _Entry | None:  # loop-only
        """Pop the next dispatchable entry, round-robin across clients."""
        if self._inflight_total >= self.max_inflight:
            return None
        for _ in range(len(self._rr)):
            cid = self._rr[0]
            self._rr.rotate(-1)
            client = self._clients.get(cid)
            if client is None or not client.queue:
                continue
            if client.inflight >= self.per_client_inflight:
                continue
            return client.queue.popleft()
        return None

    async def _dispatch_loop(self) -> None:
        while not self._stopped:
            await self._dispatch_wake.wait()
            self._dispatch_wake.clear()
            while not self._draining and not self._closing:
                entry = self._next_entry()
                if entry is None:
                    break
                self._pending_total -= 1
                self._m_pending.dec()
                entry.client.inflight += 1
                self._inflight_total += 1
                self._m_inflight.inc()
                self._idle.clear()
                self._inflight_entries.add(entry)
                if entry.deadline is not None:
                    entry.timer = self._loop.call_later(
                        max(0.0, entry.deadline - time.monotonic()),
                        self._entry_expired, entry,
                    )
                # submit() can block briefly (admission gate during a
                # concurrent live update), so it runs on a thread to
                # keep the event loop responsive.
                await asyncio.to_thread(self._submit_entry, entry)

    def _submit_entry(self, entry: _Entry) -> None:
        """Thread-side: hand one entry to the service."""
        try:
            future = self.service.submit(
                entry.query, entry.alpha, deadline=entry.deadline
            )
        except ReproError as exc:
            self._loop.call_soon_threadsafe(self._entry_failed, entry, exc)
            return
        future.add_done_callback(
            lambda fut: self._loop.call_soon_threadsafe(
                self._entry_done, entry, fut
            )
        )

    # ------------------------------------------------------------------
    # Completion (loop-side)
    # ------------------------------------------------------------------

    def _finish_entry(self, entry: _Entry) -> bool:  # loop-only
        """Release an entry's slots exactly once; False if already done."""
        if entry.finished:
            return False
        entry.finished = True
        if entry.timer is not None:
            entry.timer.cancel()
        self._inflight_entries.discard(entry)
        entry.client.inflight -= 1
        self._inflight_total -= 1
        self._m_inflight.dec()
        if self._inflight_total == 0:
            self._idle.set()
        self._dispatch_wake.set()
        return True

    def _entry_done(self, entry: _Entry, future) -> None:
        if not self._finish_entry(entry):
            return  # the watchdog already answered; discard the late result
        if future.cancelled():
            self._m_requests["error"].inc()
            self._reply_error(
                entry.client, entry.request_id, protocol.ERROR_UNAVAILABLE,
                "service closed before the request ran",
            )
            return
        exc = future.exception()
        if exc is not None:
            code, message = self._classify(exc)
            self._m_requests[
                "deadline" if code == protocol.ERROR_DEADLINE else "error"
            ].inc()
            self._reply_error(entry.client, entry.request_id, code, message)
            return
        self._m_requests["ok"].inc()
        self._reply(
            entry.client,
            protocol.result_response(entry.request_id, future.result()),
        )

    def _entry_failed(self, entry: _Entry, exc: Exception) -> None:
        if not self._finish_entry(entry):
            return
        code, message = self._classify(exc)
        self._m_requests["error"].inc()
        self._reply_error(entry.client, entry.request_id, code, message)

    def _entry_expired(self, entry: _Entry) -> None:
        """Watchdog: the deadline passed with the evaluation still running."""
        if not self._finish_entry(entry):
            return
        self.service.stats.record_deadline_exceeded()
        self._m_requests["deadline"].inc()
        self._reply_error(
            entry.client, entry.request_id, protocol.ERROR_DEADLINE,
            "deadline expired before the evaluation completed",
        )

    @staticmethod
    def _classify(exc: Exception) -> tuple:
        """Map an evaluation failure to a wire error code."""
        if isinstance(exc, DeadlineExceeded):
            return protocol.ERROR_DEADLINE, str(exc)
        if isinstance(exc, ServiceError):
            # Covers ServiceUnavailable and the "service closed before
            # the request completed" errors close(wait=False) resolves
            # pending futures with.
            return protocol.ERROR_UNAVAILABLE, str(exc)
        if isinstance(exc, QueryError):
            return protocol.ERROR_QUERY, str(exc)
        return protocol.ERROR_INTERNAL, f"{type(exc).__name__}: {exc}"

    # ------------------------------------------------------------------
    # Replies
    # ------------------------------------------------------------------

    def _reply(self, client: _Client, payload: dict) -> None:  # loop-only
        if client.closed:
            return
        task = self._loop.create_task(self._send(client, payload))
        self._reply_tasks.add(task)
        task.add_done_callback(self._reply_tasks.discard)

    def _reply_error(self, client, request_id, code, message) -> None:
        self._reply(client, protocol.error_response(request_id, code, message))

    async def _send(self, client: _Client, payload: dict) -> None:
        action = faults.fire("net.write")
        if action is not None:
            if action.kind == "delay":
                await asyncio.sleep(action.param)
            else:  # drop / error: tear the connection down mid-reply
                self._m_dropped.inc()
                self._disconnect(client)
                return
        async with client.write_lock:
            if client.closed:
                return
            try:
                client.writer.write(protocol.encode_frame(payload))
                await client.writer.drain()
            except (ConnectionError, OSError):
                self._disconnect(client)

    # ------------------------------------------------------------------
    # Drain / live updates
    # ------------------------------------------------------------------

    async def _wait_idle(self) -> None:
        while self._inflight_total > 0:
            await self._idle.wait()

    def _shed_queued(self, code: str, message: str) -> None:  # loop-only
        """Reject every queued-but-undispatched request with ``code``."""
        for client in list(self._clients.values()):
            while client.queue:
                entry = client.queue.popleft()
                self._pending_total -= 1
                self._m_pending.dec()
                self.service.stats.record_rejected()
                self._m_requests["rejected"].inc()
                self._reply_error(client, entry.request_id, code, message)

    async def apply_updates(self, ops, log=None) -> dict:
        """Absorb a mutation batch with a graceful networked drain.

        Dispatch pauses, in-flight requests complete, queued requests
        are held (``drain_policy="hold"``) or shed with ``REJECTED``
        (``"shed"``), the batch is applied through
        :meth:`QueryService.apply_updates` (which re-keys every cache
        entry via the graph-version bump), and dispatch resumes — held
        requests then evaluate against the post-update graph.
        """
        if self._closing:
            raise ServiceError("server is shutting down")
        async with self._apply_lock:
            self._draining = True
            try:
                if self.drain_policy == "shed":
                    self._shed_queued(
                        protocol.ERROR_REJECTED, "draining for a live update"
                    )
                await self._wait_idle()
                return await asyncio.to_thread(
                    self.service.apply_updates, ops, log
                )
            finally:
                self._draining = False
                self._dispatch_wake.set()


class ServerHandle:
    """A :class:`QueryServer` running on its own event-loop thread.

    The synchronous façade the CLI and tests use: construction via
    :func:`start_server`, thread-safe :meth:`apply_updates` /
    :meth:`stop`, and context-manager cleanup.
    """

    def __init__(self, server: QueryServer, loop, thread) -> None:
        self.server = server
        self._loop = loop
        self._thread = thread
        self._stopped = False

    @property
    def address(self) -> tuple:
        return self.server.address

    @property
    def service(self):
        return self.server.service

    def apply_updates(self, ops, log=None) -> dict:
        """Drain, apply a mutation batch, resume (thread-safe)."""
        return asyncio.run_coroutine_threadsafe(
            self.server.apply_updates(ops, log=log), self._loop
        ).result()

    def stop(
        self,
        drain_timeout: float | None = None,
        close_service: bool = False,
    ) -> None:
        """Drain and stop the server; optionally close the service too."""
        if not self._stopped:
            self._stopped = True
            asyncio.run_coroutine_threadsafe(
                self.server.stop(drain_timeout), self._loop
            ).result()
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=10.0)
            if not self._loop.is_running():
                self._loop.close()
        if close_service:
            self.server.service.close()

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


def start_server(service, host: str = "127.0.0.1", port: int = 0,
                 **config) -> ServerHandle:
    """Start a :class:`QueryServer` on a dedicated event-loop thread.

    Returns once the listen socket is bound; ``handle.address`` carries
    the resolved port. ``config`` forwards to :class:`QueryServer`.
    """
    server = QueryServer(service, host, port, **config)
    loop = asyncio.new_event_loop()
    started = threading.Event()
    boot_error: list = []

    def _run() -> None:
        asyncio.set_event_loop(loop)
        try:
            loop.run_until_complete(server.start())
        except Exception as exc:  # bind failure etc.
            boot_error.append(exc)
            started.set()
            loop.close()
            return
        started.set()
        loop.run_forever()

    thread = threading.Thread(
        target=_run, name="repro-net-server", daemon=True
    )
    thread.start()
    started.wait()
    if boot_error:
        raise boot_error[0]
    return ServerHandle(server, loop, thread)
