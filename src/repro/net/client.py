"""Synchronous client for the network serving tier.

:class:`QueryClient` speaks the :mod:`repro.net.protocol` framing over
a plain TCP socket and wraps it in the reliability mechanics a caller
facing a faulty network needs:

* **Timeouts everywhere** — ``connect_timeout`` bounds dialing,
  ``request_timeout`` bounds each exchange; a stuck server surfaces as
  :class:`~repro.utils.errors.NetTimeout`, never a hang.
* **Bounded retry with backoff** — *connection* failures (refused,
  reset, torn frame, clean EOF mid-exchange) retry up to
  ``max_retries`` times with exponential backoff and jitter. Queries
  are read-only, so retrying after an ambiguous connection loss is
  safe by construction. Timeouts and *application* errors (a typed
  ``error`` reply, surfaced as
  :class:`~repro.utils.errors.RemoteError`) are never retried: the
  server made a decision — re-asking would turn backpressure into
  retry amplification, exactly the storm load shedding exists to
  prevent.
* **Circuit breaker** — after ``breaker_threshold`` consecutive
  transport failures the breaker opens and requests fail fast with
  :class:`~repro.utils.errors.CircuitOpenError` for
  ``breaker_cooldown`` seconds; then one half-open probe either closes
  it or re-opens it. A dead server costs one exception per cooldown,
  not ``max_retries`` connect timeouts per call.

The client is deliberately synchronous (one socket, one outstanding
request): the concurrency story lives server-side, and test/benchmark
load generators get parallelism by running one client per thread.
"""

from __future__ import annotations

import random
import socket
import threading
import time

from repro.net import protocol
from repro.utils.errors import (
    CircuitOpenError,
    NetError,
    NetTimeout,
    RemoteError,
)


class CircuitBreaker:
    """Closed → open → half-open breaker over consecutive failures.

    ``threshold`` consecutive transport failures open the breaker;
    while open, :meth:`allow` refuses until ``cooldown`` seconds pass,
    then admits a single half-open probe. A recorded success closes
    the breaker, a failure re-opens it for another cooldown.
    """

    def __init__(self, threshold: int = 5, cooldown: float = 1.0) -> None:
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        self.threshold = int(threshold)
        self.cooldown = float(cooldown)
        self._lock = threading.Lock()
        self._failures = 0  # guarded-by: _lock
        self._state = "closed"  # guarded-by: _lock
        self._opened_at = 0.0  # guarded-by: _lock

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    def allow(self) -> bool:
        """May a request proceed right now?"""
        with self._lock:
            if self._state == "closed":
                return True
            if self._state == "open":
                if time.monotonic() - self._opened_at >= self.cooldown:
                    self._state = "half-open"
                    return True
                return False
            # half-open: the single probe is already out
            return False

    def record_success(self) -> None:
        with self._lock:
            self._failures = 0
            self._state = "closed"

    def record_failure(self) -> None:
        with self._lock:
            self._failures += 1
            if self._state == "half-open" or self._failures >= self.threshold:
                self._state = "open"
                self._opened_at = time.monotonic()


class QueryClient:
    """Blocking protocol client with retry, timeouts and a breaker.

    Parameters
    ----------
    host, port:
        The server's listen address.
    connect_timeout, request_timeout:
        Seconds to bound dialing and each request/reply exchange.
    max_retries:
        Retries (beyond the first attempt) on connection failures.
    backoff_base, backoff_max, jitter:
        Retry ``n`` sleeps ``min(backoff_max, backoff_base * 2**n)``
        scaled by a random factor in ``[1, 1 + jitter]``.
    breaker_threshold, breaker_cooldown:
        Circuit breaker tuning (see :class:`CircuitBreaker`).
    seed:
        Seeds the jitter RNG for reproducible retry schedules in tests.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        connect_timeout: float = 5.0,
        request_timeout: float = 30.0,
        max_retries: int = 2,
        backoff_base: float = 0.05,
        backoff_max: float = 1.0,
        jitter: float = 0.5,
        breaker_threshold: int = 5,
        breaker_cooldown: float = 1.0,
        seed: int | None = None,
    ) -> None:
        self.host = host
        self.port = int(port)
        self.connect_timeout = float(connect_timeout)
        self.request_timeout = float(request_timeout)
        self.max_retries = int(max_retries)
        self.backoff_base = float(backoff_base)
        self.backoff_max = float(backoff_max)
        self.jitter = float(jitter)
        self.breaker = CircuitBreaker(breaker_threshold, breaker_cooldown)
        self._rng = random.Random(seed)
        self._sock: socket.socket | None = None  # guarded-by: _lock
        self._id_counter = 0  # guarded-by: _lock
        self._lock = threading.Lock()
        #: Transport-level retries performed (observability for tests).
        self.retries = 0  # guarded-by: _lock

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------

    def _connect(self) -> socket.socket:  # holds-lock: _lock
        if self._sock is None:
            sock = socket.create_connection(
                (self.host, self.port), timeout=self.connect_timeout
            )
            sock.settimeout(self.request_timeout)
            self._sock = sock
        return self._sock

    def _disconnect(self) -> None:  # holds-lock: _lock
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def _recv_exact(self, sock: socket.socket, count: int) -> bytes:
        chunks = []
        remaining = count
        while remaining:
            try:
                chunk = sock.recv(remaining)
            except socket.timeout as exc:
                raise NetTimeout(
                    f"no reply within {self.request_timeout}s"
                ) from exc
            if not chunk:
                raise NetError("connection closed mid-reply")
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    def _exchange(self, payload: dict) -> dict:
        sock = self._connect()
        sock.sendall(protocol.encode_frame(payload))
        header = self._recv_exact(sock, protocol.FRAME_HEADER.size)
        (length,) = protocol.FRAME_HEADER.unpack(header)
        if length > protocol.MAX_FRAME_BYTES:
            raise NetError(
                f"frame length {length} exceeds {protocol.MAX_FRAME_BYTES}"
            )
        return protocol.decode_frame(self._recv_exact(sock, length))

    def _backoff(self, attempt: int) -> float:
        base = min(self.backoff_max, self.backoff_base * (2 ** attempt))
        return base * (1.0 + self.jitter * self._rng.random())

    # ------------------------------------------------------------------
    # Requests
    # ------------------------------------------------------------------

    def request(self, payload: dict) -> dict:
        """One request/reply exchange with retry and the breaker.

        Returns the reply dict on ``ok: true``; raises
        :class:`~repro.utils.errors.RemoteError` carrying the typed
        code on ``ok: false``, :class:`~repro.utils.errors.NetTimeout`
        on a request timeout, :class:`~repro.utils.errors.NetError`
        when retries are exhausted, and
        :class:`~repro.utils.errors.CircuitOpenError` while the
        breaker is open.
        """
        with self._lock:
            if not self.breaker.allow():
                raise CircuitOpenError(
                    f"circuit open for {self.host}:{self.port}"
                )
            if "id" not in payload:
                self._id_counter += 1
                payload = dict(payload, id=self._id_counter)
        attempt = 0
        while True:
            # Each attempt's send+receive is one atomic hold of the
            # lock, but the backoff sleep happens with it released —
            # other threads' requests interleave between attempts
            # (distinct ids, one full exchange per hold) instead of
            # queueing behind this thread's entire retry schedule.
            with self._lock:
                try:
                    reply = self._exchange(payload)
                except NetTimeout:
                    # A timed-out request may still be executing
                    # server-side; retrying would double-spend capacity
                    # against an already-overloaded server.
                    self._disconnect()
                    self.breaker.record_failure()
                    raise
                except (ConnectionError, OSError, NetError) as exc:
                    self._disconnect()
                    self.breaker.record_failure()
                    if attempt >= self.max_retries:
                        raise NetError(
                            f"request failed after {attempt + 1} attempts: "
                            f"{exc}"
                        ) from exc
                    if not self.breaker.allow():
                        raise CircuitOpenError(
                            f"circuit opened for {self.host}:{self.port} "
                            f"after {exc}"
                        ) from exc
                    self.retries += 1
                    delay = self._backoff(attempt)
                else:
                    self.breaker.record_success()
                    if reply.get("ok"):
                        return reply
                    error = reply.get("error") or {}
                    raise RemoteError(
                        error.get("type", protocol.ERROR_INTERNAL),
                        error.get("message", "unknown server error"),
                    )
            time.sleep(delay)
            attempt += 1

    def query(
        self,
        nodes: dict,
        edges=(),
        alpha: float = 0.5,
        deadline_ms: float | None = None,
    ) -> dict:
        """Evaluate one query; returns the reply dict (``matches`` etc.)."""
        payload = {
            "kind": "query",
            "nodes": dict(nodes),
            "edges": [list(edge) for edge in edges],
            "alpha": alpha,
        }
        if deadline_ms is not None:
            payload["deadline_ms"] = float(deadline_ms)
        return self.request(payload)

    def ping(self) -> bool:
        """Round-trip a ``ping``; True if the server answered."""
        return bool(self.request({"kind": "ping"}).get("pong"))

    def stats(self) -> dict:
        """Fetch the server's service + net stats snapshot."""
        return self.request({"kind": "stats"})["stats"]

    def close(self) -> None:
        with self._lock:
            self._disconnect()

    def __enter__(self) -> "QueryClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
