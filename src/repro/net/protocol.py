"""The wire protocol of the network serving tier.

Frames are length-prefixed JSON: a 4-byte big-endian payload length
followed by a UTF-8 JSON object — the same framing discipline the
storage record log uses, over the same query-spec codec the CLI
``serve`` workload files speak (``{"nodes": {...}, "edges": [...],
"alpha": ...}``).

Requests
--------
::

    {"id": 7, "kind": "query", "nodes": {"a": "DB", "b": "ML"},
     "edges": [["a", "b"]], "alpha": 0.4, "deadline_ms": 500}
    {"id": 8, "kind": "ping"}
    {"id": 9, "kind": "stats"}

Responses
--------
::

    {"id": 7, "ok": true, "matches": [{"probability": 0.82,
     "nodes": [[[1, 4], "DB"], [[2], "ML"]]}], "num_matches": 1}
    {"id": 7, "ok": false,
     "error": {"type": "REJECTED", "message": "admission queue full"}}

Error types (``error.type``) are the serving tier's whole failure
vocabulary: ``REJECTED`` (load shed / fairness cap / drain policy),
``DEADLINE_EXCEEDED``, ``UNAVAILABLE`` (shutdown, admission-pause
timeout), ``BAD_REQUEST`` (malformed spec), ``QUERY_ERROR`` (invalid
query), ``INTERNAL`` (evaluation failure). A client therefore always
receives either a result or one of these typed errors — the chaos
suite's invariant.

Match serialization is deterministic: entity reference sets are sorted,
and the match list keeps the engine's deterministic emission order — so
a fault-free oracle reply and a chaos-run reply can be compared for
bit-identical equality.
"""

from __future__ import annotations

import asyncio
import json
import struct

from repro.query.query_graph import QueryGraph
from repro.utils.errors import NetError, QueryError

#: Frame header: payload byte length, big-endian u32.
FRAME_HEADER = struct.Struct(">I")

#: Upper bound on a single frame's payload; a corrupt length prefix
#: must not make a reader try to allocate gigabytes.
MAX_FRAME_BYTES = 64 * 1024 * 1024

#: Typed error codes carried in ``error.type``.
ERROR_REJECTED = "REJECTED"
ERROR_DEADLINE = "DEADLINE_EXCEEDED"
ERROR_UNAVAILABLE = "UNAVAILABLE"
ERROR_BAD_REQUEST = "BAD_REQUEST"
ERROR_QUERY = "QUERY_ERROR"
ERROR_INTERNAL = "INTERNAL"


def encode_frame(obj: dict) -> bytes:
    """Serialize one message as a length-prefixed JSON frame."""
    payload = json.dumps(obj, separators=(",", ":"), default=str).encode(
        "utf-8"
    )
    if len(payload) > MAX_FRAME_BYTES:
        raise NetError(
            f"frame payload of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte limit"
        )
    return FRAME_HEADER.pack(len(payload)) + payload


def decode_frame(payload: bytes) -> dict:
    """Parse one frame payload; the message must be a JSON object."""
    try:
        message = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise NetError(f"malformed frame payload: {exc}") from exc
    if not isinstance(message, dict):
        raise NetError(
            f"frame payload must be a JSON object, got {type(message).__name__}"
        )
    return message


async def read_frame(reader: asyncio.StreamReader) -> dict | None:
    """Read one frame from an asyncio stream.

    Returns ``None`` on a clean end-of-stream (the peer closed between
    frames); raises :class:`~repro.utils.errors.NetError` on a torn
    frame or an implausible length prefix.
    """
    try:
        header = await reader.readexactly(FRAME_HEADER.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise NetError("torn frame header") from exc
    (length,) = FRAME_HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise NetError(f"frame length {length} exceeds {MAX_FRAME_BYTES}")
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise NetError("torn frame payload") from exc
    return decode_frame(payload)


def query_graph_from_spec(spec: dict) -> QueryGraph:
    """Build a :class:`QueryGraph` from the shared JSON query spec.

    The codec of the CLI ``serve`` workload files and of the wire
    protocol's ``query`` requests: a ``"nodes"`` mapping of query-node
    name to label, plus optional ``"edges"`` pairs.
    """
    if not isinstance(spec, dict) or not isinstance(spec.get("nodes"), dict):
        raise QueryError(
            "query spec must be a JSON object with a 'nodes' mapping"
        )
    if not spec["nodes"]:
        raise QueryError("query spec 'nodes' mapping must not be empty")
    edges = []
    for edge in spec.get("edges", ()):
        if not isinstance(edge, (list, tuple)) or len(edge) != 2:
            raise QueryError(f"query spec edge must be a pair, got {edge!r}")
        edges.append(tuple(edge))
    return QueryGraph(spec["nodes"], edges)


def _json_ref(ref) -> object:
    """A JSON-stable rendering of one entity reference."""
    if isinstance(ref, (int, str, float, bool)):
        return ref
    return str(ref)


def serialize_matches(matches) -> list:
    """Deterministic JSON form of a result's match list.

    Each match becomes ``{"probability": p, "nodes": [[refs, label],
    ...]}`` with entity references sorted; the match order is the
    engine's (deterministic) emission order. Two evaluations of the
    same query against the same graph serialize bit-identically.
    """
    out = []
    for match in matches:
        out.append(
            {
                "probability": match.probability,
                "nodes": [
                    [sorted((_json_ref(r) for r in entity), key=repr),
                     str(label)]
                    for entity, label in match.nodes
                ],
            }
        )
    return out


def result_response(request_id, result) -> dict:
    """A successful ``query`` reply for ``result``."""
    matches = serialize_matches(result.matches)
    return {
        "id": request_id,
        "ok": True,
        "matches": matches,
        "num_matches": len(matches),
    }


def error_response(request_id, code: str, message: str) -> dict:
    """A typed error reply."""
    return {
        "id": request_id,
        "ok": False,
        "error": {"type": str(code), "message": str(message)},
    }
