"""Fault-tolerant network serving tier over the query service.

An asyncio TCP front end (:mod:`repro.net.server`) with bounded
admission, load shedding, per-client fairness, request deadlines and
graceful drain; a synchronous client (:mod:`repro.net.client`) with
timeouts, bounded retry and a circuit breaker; and the shared
length-prefixed JSON wire protocol (:mod:`repro.net.protocol`).
"""

from repro.net.client import CircuitBreaker, QueryClient
from repro.net.protocol import (
    ERROR_BAD_REQUEST,
    ERROR_DEADLINE,
    ERROR_INTERNAL,
    ERROR_QUERY,
    ERROR_REJECTED,
    ERROR_UNAVAILABLE,
)
from repro.net.server import QueryServer, ServerHandle, start_server

__all__ = [
    "CircuitBreaker",
    "QueryClient",
    "QueryServer",
    "ServerHandle",
    "start_server",
    "ERROR_BAD_REQUEST",
    "ERROR_DEADLINE",
    "ERROR_INTERNAL",
    "ERROR_QUERY",
    "ERROR_REJECTED",
    "ERROR_UNAVAILABLE",
]
