"""The append-only mutation log.

Every accepted PEG mutation is recorded — as ``(sequence number, op)``
— in a :class:`~repro.storage.recordlog.RecordLog` before it is applied,
giving live updates the classic write-ahead shape: a restarted process
warm-starts its engine from the last offline snapshot, then replays the
suffix of the log to catch up. Sequence numbers make replay idempotent:
:func:`repro.delta.apply_mutations` skips entries at or below the
engine's ``applied_mutation_seq`` high-water mark, so replaying the
whole log over an engine that already saw a prefix (or the whole log
twice) is a no-op for the overlap.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass

from repro.storage.recordlog import RecordLog
from repro.testing import faults
from repro.utils.errors import DeltaError


@dataclass(frozen=True)
class LoggedOp:
    """One log entry: a mutation plus its position in the log."""

    seq: int
    op: object


class MutationLog:
    """Durable, append-only sequence of typed PEG mutations.

    Parameters
    ----------
    path:
        File backing the log. An existing file is reopened and its
        entry count recovered by scanning the (self-delimiting)
        records, so appends continue the sequence.

    Crash safety
    ------------
    A process dying mid-append leaves a *torn* trailing record (partial
    header or short payload). Recovery tolerates it: the scan stops at
    the last complete record, the torn bytes are truncated away so the
    log is appendable again, and :attr:`truncated` is set so callers
    can surface the data loss (exactly the op that never finished
    committing — which, write-ahead, was never applied either). Replay
    therefore always terminates cleanly instead of raising mid-replay.
    """

    def __init__(self, path: str) -> None:
        self.path = str(path)
        self._log = RecordLog(self.path)
        self._next_seq = 0
        for _offset, _payload in self._log.records(tolerate_truncation=True):
            self._next_seq += 1
        #: Whether recovery found (and discarded) a torn trailing record.
        self.truncated = self._log.truncated_tail
        if self.truncated:
            self._log.truncate_to(self._log.valid_end)

    def __len__(self) -> int:
        return self._next_seq

    def append(self, op) -> int:
        """Record one mutation; returns its sequence number."""
        seq = self._next_seq
        self._log.append(
            pickle.dumps((seq, op), protocol=pickle.HIGHEST_PROTOCOL)
        )
        self._next_seq = seq + 1
        return seq

    def append_all(self, ops) -> list:
        """Record a batch (one flush); returns the sequence numbers."""
        seqs = [self.append(op) for op in ops]
        self.flush()
        return seqs

    def replay(self, after: int = -1) -> list:
        """All logged entries with ``seq > after``, as :class:`LoggedOp`.

        ``after=-1`` (the default) replays the whole log; pass an
        engine's ``applied_mutation_seq`` to fetch only the unseen
        suffix. A torn trailing record (only possible when the file was
        appended to externally after recovery) ends the replay cleanly
        at the last complete entry rather than raising mid-replay.
        """
        faults.check("log.replay")
        entries = []
        for _offset, payload in self._log.records(tolerate_truncation=True):
            try:
                seq, op = pickle.loads(bytes(payload))
            except Exception as exc:
                raise DeltaError(
                    f"corrupt mutation log entry in {self.path!r}: {exc}"
                ) from exc
            if seq > after:
                entries.append(LoggedOp(seq, op))
        if self._log.truncated_tail:
            self.truncated = True
        return entries

    def flush(self) -> None:
        self._log.flush()

    def close(self) -> None:
        self._log.close()

    def __enter__(self) -> "MutationLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
