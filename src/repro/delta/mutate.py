"""Applying mutation operations to a live PEG, tracking dirtied nodes.

:func:`apply_op` translates one typed operation
(:mod:`repro.delta.ops`) into the PEG's graph-surgery primitives and
returns the set of *dirty* node ids — the nodes whose incident paths
may have changed. The delta overlay
(:class:`~repro.delta.overlay.DeltaOverlayIndex`) uses exactly this
set: a stored path is affected by a mutation **iff** it contains a
dirty node, because under the supported operation set the probability
components of a path depend only on the labels, edges and existence
marginals of its own nodes (merges are restricted to single-entity
identity components, so no other entity's marginal ever moves).
"""

from __future__ import annotations

from repro.delta.ops import (
    AddEdge,
    AddEntity,
    MergeEntities,
    UpdateEdgeDistribution,
    UpdateLabelProbability,
)
from repro.pgd.distributions import LabelDistribution
from repro.peg.entity_graph import ProbabilisticEntityGraph
from repro.utils.errors import DeltaError, ModelError


def resolve_entity_id(peg: ProbabilisticEntityGraph, references) -> int:
    """Node id of the entity with this reference set; :class:`DeltaError`
    when unknown or already merged away."""
    entity = frozenset(references)
    try:
        node_id = peg.id_of(entity)
    except KeyError:
        raise DeltaError(
            f"no entity with references {sorted(entity, key=repr)}"
        ) from None
    if peg.is_removed_id(node_id):
        raise DeltaError(
            f"entity {sorted(entity, key=repr)} was merged away; address "
            "the merged entity instead"
        )
    return node_id


def _label_dist(probabilities) -> LabelDistribution:
    try:
        return LabelDistribution(probabilities)
    except ModelError as exc:
        raise DeltaError(f"invalid label distribution: {exc}") from exc


def apply_op(peg: ProbabilisticEntityGraph, op) -> frozenset:
    """Apply one mutation; returns the dirtied node ids."""
    try:
        if isinstance(op, AddEntity):
            node_id = peg.graph_add_entity(
                op.references,
                _label_dist(op.label_probabilities),
                op.existence_probability,
            )
            return frozenset((node_id,))
        if isinstance(op, AddEdge):
            id_a = resolve_entity_id(peg, op.references_a)
            id_b = resolve_entity_id(peg, op.references_b)
            peg.graph_add_edge(id_a, id_b, op.distribution)
            return frozenset((id_a, id_b))
        if isinstance(op, UpdateLabelProbability):
            node_id = resolve_entity_id(peg, op.references)
            peg.graph_update_label(node_id, _label_dist(op.label_probabilities))
            return frozenset((node_id,))
        if isinstance(op, UpdateEdgeDistribution):
            id_a = resolve_entity_id(peg, op.references_a)
            id_b = resolve_entity_id(peg, op.references_b)
            peg.graph_update_edge(id_a, id_b, op.distribution)
            return frozenset((id_a, id_b))
        if isinstance(op, MergeEntities):
            id_a = resolve_entity_id(peg, op.references_a)
            id_b = resolve_entity_id(peg, op.references_b)
            label_dist = (
                _label_dist(op.label_probabilities)
                if op.label_probabilities is not None
                else None
            )
            merged_id = peg.graph_merge_entities(
                id_a, id_b, label_dist, op.existence_probability
            )
            return frozenset((id_a, id_b, merged_id))
    except ModelError as exc:
        raise DeltaError(f"cannot apply {op.kind}: {exc}") from exc
    raise DeltaError(f"unknown mutation operation {op!r}")
