"""Typed mutation operations against a live probabilistic entity graph.

Each operation is a small frozen dataclass addressing entities by their
*reference sets* (not node ids) — reference sets are the PEG's stable
external identity, so a logged operation stays meaningful across
process restarts and index rebuilds. Edge distributions are the same
objects the PGD layer uses (:class:`~repro.pgd.distributions.BernoulliEdge`
/ :class:`~repro.pgd.distributions.ConditionalEdge`).

Operations round-trip through plain JSON dictionaries
(:func:`op_to_json` / :func:`op_from_json`) for the ``apply-updates``
CLI, and pickle cleanly for the binary
:class:`~repro.delta.log.MutationLog`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.pgd.distributions import BernoulliEdge, ConditionalEdge
from repro.utils.errors import DeltaError


@dataclass(frozen=True)
class AddEntity:
    """Add a new entity node with fresh references."""

    references: tuple
    label_probabilities: Mapping
    existence_probability: float = 1.0

    kind = "add_entity"


@dataclass(frozen=True)
class AddEdge:
    """Add an edge between two existing entities."""

    references_a: tuple
    references_b: tuple
    distribution: object

    kind = "add_edge"


@dataclass(frozen=True)
class UpdateLabelProbability:
    """Replace an entity's label distribution (a linkage revision)."""

    references: tuple
    label_probabilities: Mapping

    kind = "update_label_probability"


@dataclass(frozen=True)
class UpdateEdgeDistribution:
    """Replace the distribution of an existing edge."""

    references_a: tuple
    references_b: tuple
    distribution: object

    kind = "update_edge_distribution"


@dataclass(frozen=True)
class MergeEntities:
    """Merge two entities into one (an entity-resolution decision)."""

    references_a: tuple
    references_b: tuple
    label_probabilities: Mapping | None = None
    existence_probability: float | None = None

    kind = "merge_entities"


#: Every mutation type, keyed by its ``kind`` tag.
OP_TYPES = {
    op.kind: op
    for op in (
        AddEntity,
        AddEdge,
        UpdateLabelProbability,
        UpdateEdgeDistribution,
        MergeEntities,
    )
}


def _edge_to_json(dist) -> object:
    if isinstance(dist, BernoulliEdge):
        return dist.probability()
    if isinstance(dist, ConditionalEdge):
        return {
            "cpt": [[a, b, p] for (a, b), p in sorted(dist.items(), key=repr)],
            "default": dist.default,
        }
    raise DeltaError(f"unsupported edge distribution {dist!r}")


def _edge_from_json(value) -> object:
    if isinstance(value, (int, float)):
        return BernoulliEdge(float(value))
    if isinstance(value, dict) and "cpt" in value:
        cpt = {}
        for entry in value["cpt"]:
            if not isinstance(entry, (list, tuple)) or len(entry) != 3:
                raise DeltaError(
                    f"CPT entries must be [label, label, p] triples, "
                    f"got {entry!r}"
                )
            cpt[(entry[0], entry[1])] = float(entry[2])
        return ConditionalEdge(cpt, default=float(value.get("default", 0.0)))
    raise DeltaError(
        f"edge distribution must be a probability or a CPT object, "
        f"got {value!r}"
    )


def op_to_json(op) -> dict:
    """Plain-JSON form of one operation (the CLI's wire format)."""
    if isinstance(op, AddEntity):
        return {
            "op": op.kind,
            "refs": list(op.references),
            "labels": dict(op.label_probabilities),
            "existence": op.existence_probability,
        }
    if isinstance(op, (AddEdge, UpdateEdgeDistribution)):
        return {
            "op": op.kind,
            "refs_a": list(op.references_a),
            "refs_b": list(op.references_b),
            "edge": _edge_to_json(op.distribution),
        }
    if isinstance(op, UpdateLabelProbability):
        return {
            "op": op.kind,
            "refs": list(op.references),
            "labels": dict(op.label_probabilities),
        }
    if isinstance(op, MergeEntities):
        payload: dict = {
            "op": op.kind,
            "refs_a": list(op.references_a),
            "refs_b": list(op.references_b),
        }
        if op.label_probabilities is not None:
            payload["labels"] = dict(op.label_probabilities)
        if op.existence_probability is not None:
            payload["existence"] = op.existence_probability
        return payload
    raise DeltaError(f"unknown mutation operation {op!r}")


def op_from_json(spec: Mapping):
    """Parse one operation from its JSON form; raises :class:`DeltaError`."""
    if not isinstance(spec, Mapping) or "op" not in spec:
        raise DeltaError(
            f"a mutation spec must be an object with an 'op' tag, got {spec!r}"
        )
    kind = spec["op"]
    try:
        if kind == AddEntity.kind:
            return AddEntity(
                references=tuple(spec["refs"]),
                label_probabilities=dict(spec["labels"]),
                existence_probability=float(spec.get("existence", 1.0)),
            )
        if kind in (AddEdge.kind, UpdateEdgeDistribution.kind):
            op_type = OP_TYPES[kind]
            return op_type(
                references_a=tuple(spec["refs_a"]),
                references_b=tuple(spec["refs_b"]),
                distribution=_edge_from_json(spec["edge"]),
            )
        if kind == UpdateLabelProbability.kind:
            return UpdateLabelProbability(
                references=tuple(spec["refs"]),
                label_probabilities=dict(spec["labels"]),
            )
        if kind == MergeEntities.kind:
            labels = spec.get("labels")
            existence = spec.get("existence")
            return MergeEntities(
                references_a=tuple(spec["refs_a"]),
                references_b=tuple(spec["refs_b"]),
                label_probabilities=(
                    dict(labels) if labels is not None else None
                ),
                existence_probability=(
                    float(existence) if existence is not None else None
                ),
            )
    except KeyError as exc:
        raise DeltaError(
            f"mutation spec {spec!r} is missing field {exc}"
        ) from None
    raise DeltaError(
        f"unknown mutation kind {kind!r}; expected one of "
        f"{sorted(OP_TYPES)}"
    )
