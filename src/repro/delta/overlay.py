"""The delta-overlay index: serving lookups over a mutating PEG.

A built :class:`~repro.index.path_index.PathIndex` (or
:class:`~repro.index.sharded.ShardedPathIndex`) is immutable — it
reflects the PEG at offline-build time. :class:`DeltaOverlayIndex`
wraps such a base index and keeps it queryable *through* mutations
without a full rebuild, using the invariant established in
:mod:`repro.delta.mutate`: a stored path is affected by a mutation iff
it contains a dirty node.

* **Reads** answer the same
  :class:`~repro.index.protocol.PathIndexProtocol` contract: base
  results are filtered to drop paths through dirty nodes (stale), and a
  small in-memory *delta index* — the re-enumerated current paths
  through dirty nodes — is unioned in. The two sides are disjoint by
  construction, so no deduplication is needed.
* **Writes** (:meth:`absorb`) re-enumerate only the dirty
  neighborhood: every path containing a dirty node starts within
  ``max_length`` hops of one, so the re-enumeration seeds
  :meth:`~repro.index.builder.PathIndexBuilder.collect_buckets` with
  that BFS region instead of the whole graph.
* **Compaction** (:meth:`compact`) folds the delta back into the base
  stores — rewriting only the buckets whose path lists changed, with
  the same bucketing rule the builder uses — after which the overlay
  serves pure fall-through until the next mutation.
"""

from __future__ import annotations

from typing import Sequence

from repro.index.builder import PathIndexBuilder, _bucket_for, _milli
from repro.index.paths import decode_path_arrays, decode_paths, encode_paths
from repro.index.path_index import PathIndex, make_histogram
from repro.index.protocol import (
    PathIndexProtocol,
    canonical_sequence,
    is_palindrome,
)
from repro.index.sharded import ShardedPathIndex
from repro.obs.metrics import get_registry
from repro.obs.timing import Timer
from repro.obs.trace import current_span
from repro.peg.entity_graph import ProbabilisticEntityGraph
from repro.utils.errors import DeltaError

_REGISTRY = get_registry()
_ABSORB_SECONDS = _REGISTRY.histogram("repro_delta_absorb_seconds")
_COMPACT_SECONDS = _REGISTRY.histogram("repro_delta_compact_seconds")
_DIRTY_NODES = _REGISTRY.gauge("repro_delta_dirty_nodes")
_DELTA_PATHS = _REGISTRY.gauge("repro_delta_paths")
_MASKED_PATHS = _REGISTRY.counter("repro_delta_masked_paths_total")
_SEQUENCES_REWRITTEN = _REGISTRY.counter("repro_delta_sequences_rewritten_total")
_PATHS_DROPPED = _REGISTRY.counter("repro_delta_paths_dropped_total")
_PATHS_ADDED = _REGISTRY.counter("repro_delta_paths_added_total")

try:  # numpy speeds up the compaction touch-test; not a hard dependency
    import numpy as _np
except ImportError:  # pragma: no cover - the toolchain ships numpy
    _np = None


def _payload_touches(payload, dirty_array) -> bool:
    """Whether a bucket payload *may* contain a path through a dirty node.

    A vectorized membership test over the bulk-decoded node-id matrix —
    no :class:`~repro.index.paths.IndexedPath` objects are
    materialized. Payloads that cannot be bulk-decoded report ``True``
    (the caller's full decode then decides exactly)."""
    if _np is None or dirty_array is None:
        return True
    arrays = decode_path_arrays(payload)
    if arrays is None:
        return True
    nodes, _prle, _prn = arrays
    return bool(_np.isin(nodes, dirty_array).any())


class DeltaOverlayIndex(PathIndexProtocol):
    """Base index + in-memory delta for paths through dirty nodes.

    Parameters
    ----------
    base:
        The immutable offline index (monolithic or sharded).
    peg:
        The live PEG the base was built from — mutations are applied to
        it *before* :meth:`absorb` is called (:mod:`repro.delta` does
        both in order).
    """

    def __init__(
        self, base: PathIndexProtocol, peg: ProbabilisticEntityGraph
    ) -> None:
        if isinstance(base, DeltaOverlayIndex):
            raise DeltaError("delta overlays do not nest; reuse the overlay")
        self.base = base
        self.peg = peg
        self.max_length = base.max_length
        self.beta = base.beta
        self.gamma = base.gamma
        self._dirty: frozenset = frozenset()
        self._delta: dict = {}
        #: ``{(canonical sequence, milli-alpha): masked base-path
        #: count}`` learned from actual lookups — see
        #: :meth:`estimate_cardinality`.
        self._stale_counts: dict = {}
        #: Zero-argument callables fired after every :meth:`absorb` and
        #: :meth:`compact` — derived caches above the index (the
        #: engine's link-structure cache) invalidate through this hook.
        self._invalidation_listeners: list = []

    def add_invalidation_listener(self, listener) -> None:
        """Register a callable fired after every absorb/compact.

        Listeners must be idempotent; a listener registered twice is
        stored once.
        """
        if listener not in self._invalidation_listeners:
            self._invalidation_listeners.append(listener)

    def _notify_invalidation(self) -> None:
        for listener in self._invalidation_listeners:
            listener()

    # ------------------------------------------------------------------
    # Mutation maintenance
    # ------------------------------------------------------------------

    @property
    def dirty_nodes(self) -> frozenset:
        """Node ids whose base-index paths are currently masked."""
        return self._dirty

    def delta_path_count(self) -> int:
        """Paths currently served from the in-memory delta."""
        return sum(len(paths) for paths in self._delta.values())

    def absorb(self, dirty_ids) -> None:
        """Register newly dirtied nodes and refresh the delta index.

        The PEG must already reflect the mutation. The delta is rebuilt
        for the *cumulative* dirty set — earlier delta entries may have
        been invalidated by the newest mutation, so incremental patching
        of the delta itself would re-introduce exactly the staleness
        problem the overlay exists to solve.
        """
        self._dirty = self._dirty | frozenset(dirty_ids)
        with Timer() as timer:
            self._refresh()
        _ABSORB_SECONDS.observe(timer.elapsed)
        _DIRTY_NODES.set(len(self._dirty))
        _DELTA_PATHS.set(self.delta_path_count())
        self._notify_invalidation()

    def _dirty_region(self) -> list:
        """Start nodes that can reach a dirty node within ``max_length``."""
        region = set(self._dirty)
        frontier = set(self._dirty)
        for _ in range(self.max_length):
            reached: set = set()
            for node in frontier:
                reached.update(self.peg.neighbor_ids(node))
            frontier = reached - region
            if not frontier:
                break
            region |= frontier
        return sorted(region)

    def _refresh(self) -> None:
        # Masked-count memos describe the previous dirty set; the new
        # mutation may dirty (or clean) more base paths.
        self._stale_counts = {}
        if not self._dirty:
            self._delta = {}
            return
        builder = PathIndexBuilder(
            self.peg,
            max_length=self.max_length,
            beta=self.beta,
            gamma=self.gamma,
        )
        per_key, _counts = builder.collect_buckets(self._dirty_region())
        dirty = self._dirty
        delta: dict = {}
        for labels, buckets in per_key.items():
            paths = [
                path
                for bucket_paths in buckets.values()
                for path in bucket_paths
                if not dirty.isdisjoint(path.nodes)
            ]
            if paths:
                paths.sort(key=lambda p: (-p.probability, p.nodes))
                delta[labels] = tuple(paths)
        self._delta = delta

    # ------------------------------------------------------------------
    # Lookup protocol
    # ------------------------------------------------------------------

    def lookup_canonical(self, canonical_seq: tuple, alpha: float) -> list:
        dirty = self._dirty
        base_paths = self.base.lookup_canonical(canonical_seq, alpha)
        if dirty:
            kept = [
                path for path in base_paths if dirty.isdisjoint(path.nodes)
            ]
            masked = len(base_paths) - len(kept)
            # Record the exact number of masked base paths at this
            # (sequence, milli-threshold): estimate_cardinality uses it
            # to undo the stale portion of the base histogram.
            self._stale_counts[(canonical_seq, _milli(alpha))] = masked
            if masked:
                _MASKED_PATHS.inc(masked)
                span = current_span()
                if span.enabled:
                    span.incr("overlay_masked_paths", masked)
            base_paths = kept
        extra = self._delta.get(canonical_seq)
        if extra:
            before = len(base_paths)
            base_paths.extend(
                path for path in extra if path.probability >= alpha
            )
            added = len(base_paths) - before
            if added:
                span = current_span()
                if span.enabled:
                    span.incr("overlay_delta_paths", added)
        return base_paths

    def estimate_cardinality(self, label_seq: Sequence, alpha: float) -> float:
        """Base estimate, corrected for masked paths, plus the delta count.

        The base histogram still counts masked (stale) base paths — it
        is an estimator feeding decomposition ordering, not a
        correctness surface, and compaction trues it up. Pre-compaction
        the overlay is *delta-aware*: every lookup records how many
        base paths it masked for its (sequence, milli-threshold), and
        later estimates subtract that observed stale count before
        adding the exact in-memory delta count, so repeated query
        shapes see drift-free estimates without scanning the stores.
        """
        estimate = self.base.estimate_cardinality(label_seq, alpha)
        seq = tuple(label_seq)
        canonical = canonical_sequence(seq)
        palindrome = is_palindrome(seq) and len(seq) > 1
        stale = self._stale_counts.get((canonical, _milli(alpha)))
        if stale:
            if palindrome:
                stale *= 2
            estimate = max(0.0, estimate - stale)
        extra_paths = self._delta.get(canonical)
        if extra_paths:
            extra = sum(1 for p in extra_paths if p.probability >= alpha)
            if palindrome:
                extra *= 2
            estimate += extra
        return estimate

    # ------------------------------------------------------------------
    # Compaction
    # ------------------------------------------------------------------

    def _target_for(self, label_seq: tuple) -> PathIndex:
        if isinstance(self.base, ShardedPathIndex):
            return self.base.shard_of(label_seq)
        return self.base

    def _base_sequences(self) -> set:
        if isinstance(self.base, ShardedPathIndex):
            sequences: set = set()
            for shard in self.base.shards:
                sequences.update(shard.store.label_sequences())
            return sequences
        return set(self.base.store.label_sequences())

    def compact(self) -> dict:
        """Fold the delta into the base stores; returns compaction stats.

        Which sequences hold base paths through dirty nodes cannot be
        known from the *mutated* graph (their labels may be exactly
        what changed), so compaction scans every stored sequence — but
        unaffected ones are rejected with a vectorized node-membership
        test over the bulk-decoded payload (no path objects built), so
        the common localized-update case pays one array scan per
        bucket, not a rewrite. For every affected canonical sequence
        the full path list is rebuilt — surviving base paths plus
        delta paths — re-bucketed with the builder's rule, and written
        back bucket by bucket
        (previously used buckets that emptied are overwritten with an
        empty payload; stores are append-only, so compaction grows the
        record log rather than reclaiming it). Histograms are rebuilt
        from the new counts, so cardinality estimates are exact again.
        After compaction the overlay is clean: lookups fall through to
        the base untouched until the next :meth:`absorb`.
        """
        dirty = self._dirty
        stats = {
            "sequences_rewritten": 0,
            "paths_dropped": 0,
            "paths_added": 0,
        }
        if not dirty and not self._delta:
            return stats
        timer = Timer()
        timer.__enter__()
        sequences = self._base_sequences() | set(self._delta)
        dirty_array = (
            _np.fromiter(dirty, dtype=_np.int64, count=len(dirty))
            if _np is not None and dirty
            else None
        )
        touched_stores = []
        for seq in sorted(sequences, key=repr):
            target = self._target_for(seq)
            grid = target.grid()
            existing_buckets = list(target.store.scan_buckets(seq, 0))
            added = self._delta.get(seq, ())
            if not added and not any(
                _payload_touches(payload, dirty_array)
                for _bucket, payload in existing_buckets
            ):
                # Fast reject: no delta entries and no payload contains
                # a dirty node, so nothing to rewrite — the common case
                # for localized updates, skipped without materializing
                # a single path object.
                continue
            kept = []
            dropped = 0
            for _bucket, payload in existing_buckets:
                for path in decode_paths(payload):
                    if dirty.isdisjoint(path.nodes):
                        kept.append(path)
                    else:
                        dropped += 1
            if not dropped and not added:
                continue
            merged: dict = {}
            for path in list(kept) + list(added):
                bucket = _bucket_for(path.probability, grid)
                merged.setdefault(bucket, []).append(path)
            rewrite = set(merged) | {b for b, _ in existing_buckets}
            for bucket in sorted(rewrite):
                target.store.put_bucket(
                    seq, bucket, encode_paths(merged.get(bucket, []))
                )
            if merged:
                target.histograms[seq] = make_histogram(
                    grid, {b: len(paths) for b, paths in merged.items()}
                )
            else:
                target.histograms.pop(seq, None)
            if target.store not in touched_stores:
                touched_stores.append(target.store)
            stats["sequences_rewritten"] += 1
            stats["paths_dropped"] += dropped
            stats["paths_added"] += len(added)
        for store in touched_stores:
            store.flush()
        self._dirty = frozenset()
        self._delta = {}
        self._stale_counts = {}
        timer.__exit__(None, None, None)
        _COMPACT_SECONDS.observe(timer.elapsed)
        _SEQUENCES_REWRITTEN.inc(stats["sequences_rewritten"])
        _PATHS_DROPPED.inc(stats["paths_dropped"])
        _PATHS_ADDED.inc(stats["paths_added"])
        _DIRTY_NODES.set(0)
        _DELTA_PATHS.set(0)
        self._notify_invalidation()
        return stats

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def num_sequences(self) -> int:
        extra = sum(
            1 for seq in self._delta if seq not in self.base.histograms
        )
        return self.base.num_sequences() + extra

    def num_paths(self) -> int:
        """Base paths (including still-masked stale ones) plus delta paths.

        Exact accounting of masked paths would require scanning the
        base stores; compaction restores an exact count.
        """
        return self.base.num_paths() + self.delta_path_count()

    def size_bytes(self) -> int:
        return self.base.size_bytes()

    def stats(self) -> dict:
        info = dict(self.base.stats())
        info.update(
            {
                "overlay": True,
                "dirty_nodes": len(self._dirty),
                "delta_sequences": len(self._delta),
                "delta_paths": self.delta_path_count(),
            }
        )
        return info
