"""Live updates — absorbing PEG mutations without an offline rebuild.

The paper's offline/online split assumes a frozen probabilistic entity
graph; production graphs are not frozen. This package lets a running
:class:`~repro.query.engine.QueryEngine` (and the
:class:`~repro.service.QueryService` above it) absorb typed mutations —
new references, linkage-probability revisions, entity merges — while
staying queryable and exact:

* :mod:`repro.delta.ops` — the typed operations (``add_entity``,
  ``add_edge``, ``update_label_probability``,
  ``update_edge_distribution``, ``merge_entities``),
* :mod:`repro.delta.log` — the append-only
  :class:`~repro.delta.log.MutationLog` on
  :class:`~repro.storage.recordlog.RecordLog`, replayable idempotently,
* :mod:`repro.delta.mutate` — op application and dirty-node tracking,
* :mod:`repro.delta.overlay` — the
  :class:`~repro.delta.overlay.DeltaOverlayIndex` serving exact lookups
  through mutations, with :meth:`~repro.delta.overlay.DeltaOverlayIndex.compact`
  folding the delta back into the base stores.

:func:`apply_mutations` is the engine-level entry point; it bumps the
engine's ``graph_version`` so the serving layer's caches invalidate
themselves (the version is part of every request key).
"""

from __future__ import annotations

from repro.delta.log import LoggedOp, MutationLog
from repro.delta.mutate import apply_op, resolve_entity_id
from repro.delta.ops import (
    OP_TYPES,
    AddEdge,
    AddEntity,
    MergeEntities,
    UpdateEdgeDistribution,
    UpdateLabelProbability,
    op_from_json,
    op_to_json,
)
from repro.delta.overlay import DeltaOverlayIndex
from repro.obs.metrics import get_registry
from repro.obs.timing import Timer

_APPLY_SECONDS = get_registry().histogram("repro_delta_apply_seconds")
_OPS_APPLIED = get_registry().counter("repro_delta_ops_applied_total")

__all__ = [
    "AddEdge",
    "AddEntity",
    "DeltaOverlayIndex",
    "LoggedOp",
    "MergeEntities",
    "MutationLog",
    "OP_TYPES",
    "UpdateEdgeDistribution",
    "UpdateLabelProbability",
    "apply_mutations",
    "apply_op",
    "op_from_json",
    "op_to_json",
    "resolve_entity_id",
]


def apply_mutations(engine, ops, log: MutationLog | None = None) -> dict:
    """Apply a batch of mutations to a live engine; returns a summary.

    ``ops`` may mix plain operations and :class:`LoggedOp` entries
    (e.g. from :meth:`MutationLog.replay`); logged entries at or below
    the engine's ``applied_mutation_seq`` high-water mark are skipped,
    which is what makes replay idempotent. When ``log`` is given, every
    *plain* op is appended to it immediately after it applies
    successfully — a rejected op is never logged, so a replay of the
    log cannot re-fail at it and strand the entries behind it;
    already-logged entries are not re-logged.

    On success the engine's index is (re)wrapped in a
    :class:`DeltaOverlayIndex`, its context tables and cached
    probability arrays are rebuilt/invalidated, and ``graph_version``
    is bumped — exactly once per batch. If an op fails midway, the
    dirtied prefix is still absorbed and the version still bumped (the
    PEG has changed), then the error propagates.
    """
    from repro.index.context import build_context

    with Timer() as timer:
        summary = _apply_mutations(engine, ops, log, build_context)
    _APPLY_SECONDS.observe(timer.elapsed)
    _OPS_APPLIED.inc(summary["applied"])
    return summary


def _apply_mutations(engine, ops, log, build_context) -> dict:
    applied = 0
    skipped = 0
    dirty: set = set()
    error = None
    for entry in ops:
        if isinstance(entry, LoggedOp):
            if entry.seq <= engine.applied_mutation_seq:
                skipped += 1
                continue
            op, seq = entry.op, entry.seq
        else:
            op, seq = entry, None
        try:
            dirty |= apply_op(engine.peg, op)
        except Exception as exc:
            error = exc
            break
        applied += 1
        if seq is None and log is not None:
            seq = log.append(op)
        if seq is not None:
            engine.applied_mutation_seq = max(
                engine.applied_mutation_seq, seq
            )
    if log is not None:
        log.flush()
    if dirty:
        if not isinstance(engine.index, DeltaOverlayIndex):
            engine.index = DeltaOverlayIndex(engine.index, engine.peg)
        # Derived caches above the index invalidate through the
        # overlay's listener hook on every absorb/compact; registration
        # is idempotent, so re-registering per batch is safe.
        invalidate_links = getattr(engine, "invalidate_links", None)
        if invalidate_links is not None:
            engine.index.add_invalidation_listener(invalidate_links)
        engine.index.absorb(dirty)
        engine.context = build_context(engine.peg)
        engine._peg_arrays = None
        engine.graph_version += 1
    if error is not None:
        raise error
    return {
        "applied": applied,
        "skipped": skipped,
        "dirty_nodes": len(dirty),
        "graph_version": engine.graph_version,
    }
