"""Probabilistic Entity Graph (PEG) — Definition 2 and Section 4.

This package lifts a reference-level :class:`~repro.pgd.model.PGD` to the
entity level:

* :func:`~repro.peg.construct.build_peg` constructs the
  :class:`~repro.peg.entity_graph.ProbabilisticEntityGraph` ``G_U``:
  one node per reference set with merged label/edge distributions,
* identity uncertainty is captured by per-component configuration
  distributions (:mod:`repro.peg.components`), from which node-existence
  marginals ``Prn`` are computed,
* :mod:`repro.peg.possible_worlds` enumerates possible world graphs for
  small PEGs — the exact semantics of Eq. 8 and the test oracle for the
  optimized query engine.
"""

from repro.peg.entity_graph import ProbabilisticEntityGraph, Match
from repro.peg.components import IdentityComponent
from repro.peg.construct import build_peg
from repro.peg.possible_worlds import (
    enumerate_worlds,
    world_match_probability,
    PossibleWorld,
)
from repro.peg.serialize import save_peg, load_peg
from repro.peg.interop import to_networkx

__all__ = [
    "ProbabilisticEntityGraph",
    "Match",
    "IdentityComponent",
    "build_peg",
    "enumerate_worlds",
    "world_match_probability",
    "PossibleWorld",
    "save_peg",
    "load_peg",
    "to_networkx",
]
