"""The probabilistic entity graph ``G_U`` and match probability services.

``G_U`` (Section 4, "Finding Matches") has one node per reference set
``s`` with positive existence probability, labeled with the set ``L(s)``
of labels of non-zero probability, and an edge wherever the merged edge
existence probability is positive. All query processing operates on this
single graph; probabilities are computed from the attached component
distributions and merged label/edge distributions:

``Pr(M) = Prn(M) * Prle(M)``  (Eq. 11)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, Mapping, Tuple

from repro.pgd.distributions import LabelDistribution
from repro.peg.components import IdentityComponent
from repro.utils.errors import ModelError, QueryError

#: An entity is identified by its underlying frozen set of references.
Entity = FrozenSet


@dataclass(frozen=True)
class Match:
    """A probabilistic match: labeled entity nodes plus required edges.

    Attributes
    ----------
    nodes:
        Mapping ``entity -> matched label`` (stored as a sorted tuple of
        pairs so the match is hashable).
    edges:
        Frozenset of entity pairs (each a frozenset of two entities).
    mapping:
        A representative embedding ``query node -> entity`` (informational;
        two embeddings producing the same labeled subgraph are the same
        match).
    probability:
        ``Pr(M)`` per Eq. 11.
    """

    nodes: Tuple[Tuple[Entity, object], ...]
    edges: FrozenSet[FrozenSet[Entity]]
    mapping: Tuple[Tuple[object, Entity], ...]
    probability: float

    @property
    def label_of(self) -> dict:
        """Mapping ``entity -> label`` for this match."""
        return dict(self.nodes)

    def canonical_key(self) -> tuple:
        """Key identifying the labeled subgraph independent of embedding."""
        return (self.nodes, tuple(sorted(map(sorted, self.edges), key=repr)))


class ProbabilisticEntityGraph:
    """Entity-level uncertain graph with probability services.

    Built by :func:`repro.peg.construct.build_peg`; not constructed
    directly by applications.
    """

    def __init__(
        self,
        labels: Mapping[Entity, LabelDistribution],
        edges: Mapping[FrozenSet[Entity], object],
        components: Iterable[IdentityComponent],
        conditional: bool,
    ) -> None:
        self._labels = dict(labels)
        self._edges = dict(edges)
        self.components = tuple(components)
        self.conditional = conditional
        self._component_of: dict = {}
        for component in self.components:
            for entity in component.entities:
                if entity in self._labels:
                    self._component_of[entity] = component
        missing = [e for e in self._labels if e not in self._component_of]
        if missing:
            raise ModelError(
                f"{len(missing)} entities lack an identity component"
            )
        self._adjacency: dict = {entity: set() for entity in self._labels}
        for pair in self._edges:
            entity_a, entity_b = tuple(pair)
            self._adjacency[entity_a].add(entity_b)
            self._adjacency[entity_b].add(entity_a)
        self._build_id_view()

    def _build_id_view(self) -> None:
        """Build the integer-id fast path used by the index and query engine.

        Entities are frozensets (hashing them is expensive); the offline
        index and all online hot loops address nodes through dense integer
        ids instead.
        """
        self._entity_list = list(self._labels)
        self._id_of = {e: i for i, e in enumerate(self._entity_list)}
        self._component_index = [
            self._component_of[e].index for e in self._entity_list
        ]
        self._adj_ids = [
            tuple(sorted(self._id_of[n] for n in self._adjacency[e]))
            for e in self._entity_list
        ]
        self._edge_dist_by_id = {}
        for pair, dist in self._edges.items():
            entity_a, entity_b = tuple(pair)
            ida, idb = self._id_of[entity_a], self._id_of[entity_b]
            key = (ida, idb) if ida < idb else (idb, ida)
            self._edge_dist_by_id[key] = dist
        self._existence_by_id = [
            self._component_of[e].existence_probability(e)
            for e in self._entity_list
        ]
        self._label_dist_by_id = [self._labels[e] for e in self._entity_list]

    # ------------------------------------------------------------------
    # Integer-id fast path
    # ------------------------------------------------------------------

    def id_of(self, entity: Entity) -> int:
        """Dense integer id of an entity node."""
        return self._id_of[entity]

    def entity_of(self, node_id: int) -> Entity:
        """Entity (frozenset of references) for a node id."""
        return self._entity_list[node_id]

    def node_ids(self) -> range:
        """All node ids."""
        return range(len(self._entity_list))

    def neighbor_ids(self, node_id: int) -> tuple:
        """Sorted neighbor ids of ``node_id``."""
        return self._adj_ids[node_id]

    def degree(self, node_id: int) -> int:
        """Number of neighbors of ``node_id`` in ``G_U``."""
        return len(self._adj_ids[node_id])

    def possible_labels_id(self, node_id: int) -> tuple:
        """``L(v)`` for a node id."""
        return self._label_dist_by_id[node_id].support

    def label_probability_id(self, node_id: int, label) -> float:
        """``Pr(v.l = label)`` by node id."""
        return self._label_dist_by_id[node_id].probability(label)

    def existence_probability_id(self, node_id: int) -> float:
        """``Pr(v.n = T)`` by node id."""
        return self._existence_by_id[node_id]

    def component_index_id(self, node_id: int) -> int:
        """Identity-component index of a node id."""
        return self._component_index[node_id]

    def edge_distribution_id(self, id_a: int, id_b: int):
        """Merged edge distribution between two node ids, or ``None``."""
        key = (id_a, id_b) if id_a < id_b else (id_b, id_a)
        return self._edge_dist_by_id.get(key)

    def edge_ids(self):
        """Iterate ``((id_a, id_b), merged distribution)`` with ``id_a < id_b``.

        The bulk edge-probability tables of
        :class:`repro.query.reduction.PegProbabilityArrays` are built
        from this view.
        """
        return self._edge_dist_by_id.items()

    def edge_probability_id(self, id_a: int, id_b: int, label_a=None, label_b=None) -> float:
        """``Pr((a, b).e = T)`` by node ids (labels required when conditional)."""
        dist = self.edge_distribution_id(id_a, id_b)
        if dist is None:
            return 0.0
        if dist.conditional:
            if label_a is None or label_b is None:
                raise QueryError(
                    "conditional PEG requires endpoint labels for edge "
                    "probabilities; use edge_max_probability_id for bounds"
                )
            return dist.probability(label_a, label_b)
        return dist.probability()

    def edge_max_probability_id(self, id_a: int, id_b: int, label_a=None, label_b=None) -> float:
        """Upper bound of the edge probability, maximizing unknown labels."""
        dist = self.edge_distribution_id(id_a, id_b)
        if dist is None:
            return 0.0
        if dist.conditional:
            return dist.max_probability(label_a, label_b)
        return dist.probability()

    def shares_references_id(self, id_a: int, id_b: int) -> bool:
        """True if the two nodes' reference sets intersect.

        Nodes in different identity components never share references, so
        the common case is answered by an integer comparison.
        """
        if self._component_index[id_a] != self._component_index[id_b]:
            return False
        return bool(self._entity_list[id_a] & self._entity_list[id_b])

    def existence_marginal_ids(self, node_ids: Iterable[int]) -> float:
        """``Prn`` over node ids (grouped by component, exact within each)."""
        return self.existence_marginal(
            [self._entity_list[i] for i in node_ids]
        )

    # ------------------------------------------------------------------
    # Structure access
    # ------------------------------------------------------------------

    @property
    def entities(self) -> tuple:
        """All entity nodes (frozensets of references), insertion order."""
        return tuple(self._labels)

    @property
    def num_nodes(self) -> int:
        """Number of entity nodes in ``G_U``."""
        return len(self._labels)

    @property
    def num_edges(self) -> int:
        """Number of entity edges with positive probability."""
        return len(self._edges)

    @property
    def sigma(self) -> frozenset:
        """Label alphabet observed across all entity label distributions."""
        labels: set = set()
        for dist in self._labels.values():
            labels |= set(dist.support)
        return frozenset(labels)

    def neighbors(self, entity: Entity) -> frozenset:
        """Adjacent entities of ``entity`` in ``G_U``."""
        try:
            return frozenset(self._adjacency[entity])
        except KeyError:
            raise ModelError(f"unknown entity {sorted(entity, key=repr)}") from None

    def refs(self, entity: Entity) -> frozenset:
        """Underlying references of an entity node (the set itself)."""
        return frozenset(entity)

    def share_references(self, entity_a: Entity, entity_b: Entity) -> bool:
        """True if the two entities have a reference in common."""
        return bool(entity_a & entity_b)

    def has_edge(self, entity_a: Entity, entity_b: Entity) -> bool:
        """True when ``G_U`` has an edge between the two entities."""
        return frozenset((entity_a, entity_b)) in self._edges

    def edges(self):
        """Iterate over ``(frozenset({e1, e2}), merged distribution)``."""
        return self._edges.items()

    def possible_labels(self, entity: Entity) -> tuple:
        """``L(entity)`` — labels with non-zero merged probability."""
        return self._labels[entity].support

    def label_distribution(self, entity: Entity) -> LabelDistribution:
        """The merged label distribution of an entity node."""
        return self._labels[entity]

    def component_of(self, entity: Entity) -> IdentityComponent:
        """The identity component containing ``entity``."""
        return self._component_of[entity]

    # ------------------------------------------------------------------
    # Probabilities
    # ------------------------------------------------------------------

    def label_probability(self, entity: Entity, label) -> float:
        """``Pr(entity.l = label)`` (merged node-label factor, Eq. 2)."""
        return self._labels[entity].probability(label)

    def edge_probability(
        self, entity_a: Entity, entity_b: Entity, label_a=None, label_b=None
    ) -> float:
        """``Pr((a, b).e = T)``, conditioned on labels when the model is conditional.

        For the independent model the labels are ignored. For the
        conditional model (Section 5.3) both endpoint labels must be
        given; raises :class:`QueryError` otherwise.
        """
        dist = self._edges.get(frozenset((entity_a, entity_b)))
        if dist is None:
            return 0.0
        if dist.conditional:
            if label_a is None or label_b is None:
                raise QueryError(
                    "conditional PEG requires endpoint labels for edge "
                    "probabilities; use edge_max_probability for bounds"
                )
            return dist.probability(label_a, label_b)
        return dist.probability()

    def edge_max_probability(
        self, entity_a: Entity, entity_b: Entity, label_a=None, label_b=None
    ) -> float:
        """Upper bound of the edge probability over unknown endpoint labels.

        Implements the Section 5.3 adjustment used by ``ppu``/``fpu``:
        maximize the CPT over any label argument passed as ``None``.
        """
        dist = self._edges.get(frozenset((entity_a, entity_b)))
        if dist is None:
            return 0.0
        if dist.conditional:
            return dist.max_probability(label_a, label_b)
        return dist.probability()

    def existence_probability(self, entity: Entity) -> float:
        """``Pr(entity.n = T)`` — single-entity marginal of its component."""
        return self._component_of[entity].existence_probability(entity)

    def existence_marginal(self, entities: Iterable[Entity]) -> float:
        """``Prn`` for a set of entities: product of component marginals (Eq. 12).

        Entities are grouped by identity component; within a component the
        exact joint marginal is used, across components independence holds
        (Eq. 7). Returns zero when two entities share a reference.
        """
        by_component: dict = {}
        for entity in entities:
            component = self._component_of.get(entity)
            if component is None:
                raise ModelError(
                    f"unknown entity {sorted(entity, key=repr)}"
                )
            by_component.setdefault(component.index, (component, []))[1].append(
                entity
            )
        prob = 1.0
        for component, members in by_component.values():
            prob *= component.existence_marginal(members)
            if prob == 0.0:
                return 0.0
        return prob

    def match_probability(
        self,
        node_labels: Mapping[Entity, object],
        edges: Iterable[FrozenSet[Entity]],
    ) -> float:
        """``Pr(M) = Prn(M) * Prle(M)`` for a labeled subgraph (Eq. 11-13)."""
        prle = self.prle(node_labels, edges)
        if prle == 0.0:
            return 0.0
        return prle * self.existence_marginal(node_labels.keys())

    def prle(
        self,
        node_labels: Mapping[Entity, object],
        edges: Iterable[FrozenSet[Entity]],
    ) -> float:
        """Label-and-edge probability component ``Prle`` (Eq. 13)."""
        prob = 1.0
        for entity, label in node_labels.items():
            prob *= self.label_probability(entity, label)
            if prob == 0.0:
                return 0.0
        for pair in edges:
            entity_a, entity_b = tuple(pair)
            prob *= self.edge_probability(
                entity_a,
                entity_b,
                node_labels.get(entity_a),
                node_labels.get(entity_b),
            )
            if prob == 0.0:
                return 0.0
        return prob

    def stats(self) -> dict:
        """Summary counts for reports and tests."""
        nontrivial = [c for c in self.components if not c.is_trivial]
        return {
            "nodes": self.num_nodes,
            "edges": self.num_edges,
            "labels": len(self.sigma),
            "components": len(self.components),
            "nontrivial_components": len(nontrivial),
            "max_component_refs": max(
                (len(c.references) for c in self.components), default=0
            ),
            "conditional": self.conditional,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        s = self.stats()
        return (
            f"ProbabilisticEntityGraph(nodes={s['nodes']}, edges={s['edges']}, "
            f"components={s['components']}, conditional={s['conditional']})"
        )
