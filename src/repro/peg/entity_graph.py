"""The probabilistic entity graph ``G_U`` and match probability services.

``G_U`` (Section 4, "Finding Matches") has one node per reference set
``s`` with positive existence probability, labeled with the set ``L(s)``
of labels of non-zero probability, and an edge wherever the merged edge
existence probability is positive. All query processing operates on this
single graph; probabilities are computed from the attached component
distributions and merged label/edge distributions:

``Pr(M) = Prn(M) * Prle(M)``  (Eq. 11)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, Mapping, Tuple

from repro.pgd.distributions import LabelDistribution
from repro.peg.components import DynamicComponent, IdentityComponent
from repro.utils.errors import ModelError, QueryError

#: An entity is identified by its underlying frozen set of references.
Entity = FrozenSet


def _dist_max_probability(dist) -> float:
    """Upper bound of an edge distribution (used to pick merge winners)."""
    if dist.conditional:
        return dist.max_probability()
    return dist.probability()


@dataclass(frozen=True)
class Match:
    """A probabilistic match: labeled entity nodes plus required edges.

    Attributes
    ----------
    nodes:
        Mapping ``entity -> matched label`` (stored as a sorted tuple of
        pairs so the match is hashable).
    edges:
        Frozenset of entity pairs (each a frozenset of two entities).
    mapping:
        A representative embedding ``query node -> entity`` (informational;
        two embeddings producing the same labeled subgraph are the same
        match).
    probability:
        ``Pr(M)`` per Eq. 11.
    """

    nodes: Tuple[Tuple[Entity, object], ...]
    edges: FrozenSet[FrozenSet[Entity]]
    mapping: Tuple[Tuple[object, Entity], ...]
    probability: float

    @property
    def label_of(self) -> dict:
        """Mapping ``entity -> label`` for this match."""
        return dict(self.nodes)

    def canonical_key(self) -> tuple:
        """Key identifying the labeled subgraph independent of embedding."""
        return (self.nodes, tuple(sorted(map(sorted, self.edges), key=repr)))


class ProbabilisticEntityGraph:
    """Entity-level uncertain graph with probability services.

    Built by :func:`repro.peg.construct.build_peg`; not constructed
    directly by applications.
    """

    def __init__(
        self,
        labels: Mapping[Entity, LabelDistribution],
        edges: Mapping[FrozenSet[Entity], object],
        components: Iterable[IdentityComponent],
        conditional: bool,
    ) -> None:
        self._labels = dict(labels)
        self._edges = dict(edges)
        self.components = tuple(components)
        self.conditional = conditional
        self._component_of: dict = {}
        for component in self.components:
            for entity in component.entities:
                if entity in self._labels:
                    self._component_of[entity] = component
        missing = [e for e in self._labels if e not in self._component_of]
        if missing:
            raise ModelError(
                f"{len(missing)} entities lack an identity component"
            )
        self._adjacency: dict = {entity: set() for entity in self._labels}
        for pair in self._edges:
            entity_a, entity_b = tuple(pair)
            self._adjacency[entity_a].add(entity_b)
            self._adjacency[entity_b].add(entity_a)
        # Live-update bookkeeping: ids of tombstoned (merged-away)
        # entities, and every reference claimed by an identity component
        # (dynamic adds must use fresh references).
        self._removed_ids: set = set()
        self._refs_in_use: set = set()
        for component in self.components:
            self._refs_in_use |= component.references
        self._build_id_view()

    def _build_id_view(self) -> None:
        """Build the integer-id fast path used by the index and query engine.

        Entities are frozensets (hashing them is expensive); the offline
        index and all online hot loops address nodes through dense integer
        ids instead.
        """
        self._entity_list = list(self._labels)
        self._id_of = {e: i for i, e in enumerate(self._entity_list)}
        self._component_index = [
            self._component_of[e].index for e in self._entity_list
        ]
        self._adj_ids = [
            tuple(sorted(self._id_of[n] for n in self._adjacency[e]))
            for e in self._entity_list
        ]
        self._edge_dist_by_id = {}
        for pair, dist in self._edges.items():
            entity_a, entity_b = tuple(pair)
            ida, idb = self._id_of[entity_a], self._id_of[entity_b]
            key = (ida, idb) if ida < idb else (idb, ida)
            self._edge_dist_by_id[key] = dist
        self._existence_by_id = [
            self._component_of[e].existence_probability(e)
            for e in self._entity_list
        ]
        self._label_dist_by_id = [self._labels[e] for e in self._entity_list]

    # ------------------------------------------------------------------
    # Integer-id fast path
    # ------------------------------------------------------------------

    def id_of(self, entity: Entity) -> int:
        """Dense integer id of an entity node."""
        return self._id_of[entity]

    def entity_of(self, node_id: int) -> Entity:
        """Entity (frozenset of references) for a node id."""
        return self._entity_list[node_id]

    def node_ids(self) -> range:
        """All node ids."""
        return range(len(self._entity_list))

    def neighbor_ids(self, node_id: int) -> tuple:
        """Sorted neighbor ids of ``node_id``."""
        return self._adj_ids[node_id]

    def degree(self, node_id: int) -> int:
        """Number of neighbors of ``node_id`` in ``G_U``."""
        return len(self._adj_ids[node_id])

    def possible_labels_id(self, node_id: int) -> tuple:
        """``L(v)`` for a node id."""
        return self._label_dist_by_id[node_id].support

    def label_probability_id(self, node_id: int, label) -> float:
        """``Pr(v.l = label)`` by node id."""
        return self._label_dist_by_id[node_id].probability(label)

    def existence_probability_id(self, node_id: int) -> float:
        """``Pr(v.n = T)`` by node id."""
        return self._existence_by_id[node_id]

    def component_index_id(self, node_id: int) -> int:
        """Identity-component index of a node id."""
        return self._component_index[node_id]

    def edge_distribution_id(self, id_a: int, id_b: int):
        """Merged edge distribution between two node ids, or ``None``."""
        key = (id_a, id_b) if id_a < id_b else (id_b, id_a)
        return self._edge_dist_by_id.get(key)

    def edge_ids(self):
        """Iterate ``((id_a, id_b), merged distribution)`` with ``id_a < id_b``.

        The bulk edge-probability tables of
        :class:`repro.query.reduction.PegProbabilityArrays` are built
        from this view.
        """
        return self._edge_dist_by_id.items()

    def edge_probability_id(self, id_a: int, id_b: int, label_a=None, label_b=None) -> float:
        """``Pr((a, b).e = T)`` by node ids (labels required when conditional)."""
        dist = self.edge_distribution_id(id_a, id_b)
        if dist is None:
            return 0.0
        if dist.conditional:
            if label_a is None or label_b is None:
                raise QueryError(
                    "conditional PEG requires endpoint labels for edge "
                    "probabilities; use edge_max_probability_id for bounds"
                )
            return dist.probability(label_a, label_b)
        return dist.probability()

    def edge_max_probability_id(self, id_a: int, id_b: int, label_a=None, label_b=None) -> float:
        """Upper bound of the edge probability, maximizing unknown labels."""
        dist = self.edge_distribution_id(id_a, id_b)
        if dist is None:
            return 0.0
        if dist.conditional:
            return dist.max_probability(label_a, label_b)
        return dist.probability()

    def shares_references_id(self, id_a: int, id_b: int) -> bool:
        """True if the two nodes' reference sets intersect.

        Nodes in different identity components never share references, so
        the common case is answered by an integer comparison.
        """
        if self._component_index[id_a] != self._component_index[id_b]:
            return False
        return bool(self._entity_list[id_a] & self._entity_list[id_b])

    def existence_marginal_ids(self, node_ids: Iterable[int]) -> float:
        """``Prn`` over node ids (grouped by component, exact within each)."""
        return self.existence_marginal(
            [self._entity_list[i] for i in node_ids]
        )

    # ------------------------------------------------------------------
    # Live updates (graph surgery)
    # ------------------------------------------------------------------
    #
    # The ``graph_*`` methods mutate ``G_U`` in place while keeping the
    # entity view and the integer-id fast path consistent. Node ids are
    # *stable*: new entities take fresh ids at the end, merged-away
    # entities keep their id slot as a tombstone (existence probability
    # zero, no adjacency), so paths stored by an offline index remain
    # addressable. Callers go through :mod:`repro.delta`, which also
    # tracks the dirtied nodes for overlay index maintenance.

    def is_removed_id(self, node_id: int) -> bool:
        """True when the id belongs to a merged-away (tombstoned) entity."""
        return node_id in self._removed_ids

    def _live_id(self, node_id: int, role: str) -> int:
        if not 0 <= node_id < len(self._entity_list):
            raise ModelError(f"unknown {role} node id {node_id}")
        if node_id in self._removed_ids:
            raise ModelError(
                f"{role} node id {node_id} was merged away; it cannot be "
                "mutated further"
            )
        return node_id

    def _insert_entity(
        self, entity: Entity, label_dist: LabelDistribution, existence: float
    ) -> int:
        """Append one entity as its own :class:`DynamicComponent`."""
        component = DynamicComponent(len(self.components), entity, existence)
        self.components = self.components + (component,)
        self._labels[entity] = label_dist
        self._component_of[entity] = component
        self._adjacency[entity] = set()
        node_id = len(self._entity_list)
        self._entity_list.append(entity)
        self._id_of[entity] = node_id
        self._component_index.append(component.index)
        self._adj_ids.append(())
        self._existence_by_id.append(component.existence_probability(entity))
        self._label_dist_by_id.append(label_dist)
        return node_id

    def graph_add_entity(
        self,
        references: Iterable,
        label_dist: LabelDistribution,
        existence_probability: float = 1.0,
    ) -> int:
        """Add a new entity node; returns its (fresh) node id.

        The reference set must be disjoint from every existing identity
        component — overlapping references would require re-running
        entity resolution over the affected component, which is an
        offline operation.
        """
        entity = frozenset(references)
        if not entity:
            raise ModelError("entity reference set must not be empty")
        if entity in self._id_of:
            raise ModelError(
                f"entity {sorted(entity, key=repr)} already exists"
            )
        overlap = self._refs_in_use & entity
        if overlap:
            raise ModelError(
                f"references {sorted(overlap, key=repr)} already belong to "
                "an identity component; dynamic adds need fresh references"
            )
        node_id = self._insert_entity(entity, label_dist, existence_probability)
        self._refs_in_use |= entity
        return node_id

    def graph_add_edge(self, id_a: int, id_b: int, dist) -> None:
        """Add an edge between two live entity nodes."""
        id_a = self._live_id(id_a, "edge endpoint")
        id_b = self._live_id(id_b, "edge endpoint")
        if id_a == id_b:
            raise ModelError("an entity cannot have an edge to itself")
        entity_a, entity_b = self._entity_list[id_a], self._entity_list[id_b]
        if self.shares_references_id(id_a, id_b):
            raise ModelError(
                "entities sharing references never co-exist; an edge "
                "between them is meaningless"
            )
        pair = frozenset((entity_a, entity_b))
        if pair in self._edges:
            raise ModelError(
                "edge already exists; use update_edge_distribution"
            )
        self._set_edge(id_a, id_b, dist)

    def graph_update_edge(self, id_a: int, id_b: int, dist) -> None:
        """Replace the distribution of an existing edge."""
        id_a = self._live_id(id_a, "edge endpoint")
        id_b = self._live_id(id_b, "edge endpoint")
        pair = frozenset((self._entity_list[id_a], self._entity_list[id_b]))
        if pair not in self._edges:
            raise ModelError(
                f"no edge between node ids {id_a} and {id_b}; use add_edge"
            )
        self._set_edge(id_a, id_b, dist)

    def _set_edge(self, id_a: int, id_b: int, dist) -> None:
        entity_a, entity_b = self._entity_list[id_a], self._entity_list[id_b]
        self._edges[frozenset((entity_a, entity_b))] = dist
        self._adjacency[entity_a].add(entity_b)
        self._adjacency[entity_b].add(entity_a)
        key = (id_a, id_b) if id_a < id_b else (id_b, id_a)
        self._edge_dist_by_id[key] = dist
        if id_b not in self._adj_ids[id_a]:
            self._adj_ids[id_a] = tuple(sorted(self._adj_ids[id_a] + (id_b,)))
        if id_a not in self._adj_ids[id_b]:
            self._adj_ids[id_b] = tuple(sorted(self._adj_ids[id_b] + (id_a,)))
        self.conditional = self.conditional or bool(dist.conditional)

    def graph_update_label(self, node_id: int, label_dist: LabelDistribution) -> None:
        """Replace the label distribution of a live entity node."""
        node_id = self._live_id(node_id, "entity")
        entity = self._entity_list[node_id]
        self._labels[entity] = label_dist
        self._label_dist_by_id[node_id] = label_dist

    def _remove_entity(self, node_id: int) -> None:
        """Tombstone one entity: drop its edges, zero its existence."""
        entity = self._entity_list[node_id]
        for other in tuple(self._adjacency[entity]):
            other_id = self._id_of[other]
            self._edges.pop(frozenset((entity, other)), None)
            self._adjacency[other].discard(entity)
            key = (
                (node_id, other_id) if node_id < other_id
                else (other_id, node_id)
            )
            self._edge_dist_by_id.pop(key, None)
            self._adj_ids[other_id] = tuple(
                n for n in self._adj_ids[other_id] if n != node_id
            )
        del self._adjacency[entity]
        del self._labels[entity]
        del self._component_of[entity]
        self._adj_ids[node_id] = ()
        self._existence_by_id[node_id] = 0.0
        self._removed_ids.add(node_id)

    def graph_merge_entities(
        self,
        id_a: int,
        id_b: int,
        label_dist: LabelDistribution | None = None,
        existence_probability: float | None = None,
    ) -> int:
        """Merge two entity nodes into one; returns the merged node's id.

        Both entities must be the *sole* entity of their identity
        component (always true for dynamically added entities and for
        certain resolutions); merging inside a multi-entity component
        would change the other entities' marginals and requires an
        offline rebuild. The merged entity unions the reference sets,
        inherits the union of both adjacency lists (when both sides had
        an edge to the same neighbor, the distribution with the larger
        maximum probability wins; an edge between the two merged
        entities disappears), and defaults to the average of the two
        label distributions and the maximum of the two existence
        probabilities.
        """
        id_a = self._live_id(id_a, "merge source")
        id_b = self._live_id(id_b, "merge source")
        if id_a == id_b:
            raise ModelError("cannot merge an entity with itself")
        entity_a, entity_b = self._entity_list[id_a], self._entity_list[id_b]
        for entity, node_id in ((entity_a, id_a), (entity_b, id_b)):
            component = self._component_of[entity]
            if len(component.entities) != 1:
                raise ModelError(
                    f"entity at node id {node_id} shares an identity "
                    "component with other entities; merging inside an "
                    "uncertain component requires an offline rebuild"
                )
        # Resolve and validate every input *before* the first
        # tombstone: a failure past that point would leave the graph
        # half-mutated with the overlay never told about the dirt.
        if label_dist is None:
            from repro.pgd.merge import average_labels

            label_dist = average_labels(
                [self._labels[entity_a], self._labels[entity_b]]
            )
        if existence_probability is None:
            existence_probability = max(
                self._existence_by_id[id_a], self._existence_by_id[id_b]
            )
        elif not 0.0 <= existence_probability <= 1.0:
            raise ModelError(
                "existence probability must be in [0, 1], got "
                f"{existence_probability}"
            )
        # Capture surviving neighbor edges before tombstoning.
        inherited: dict = {}
        for source in (entity_a, entity_b):
            for other in self._adjacency[source]:
                if other == entity_a or other == entity_b:
                    continue
                dist = self._edges[frozenset((source, other))]
                previous = inherited.get(other)
                if previous is None or (
                    _dist_max_probability(dist)
                    > _dist_max_probability(previous)
                ):
                    inherited[other] = dist
        self._remove_entity(id_a)
        self._remove_entity(id_b)
        merged = entity_a | entity_b
        merged_id = self._insert_entity(
            merged, label_dist, existence_probability
        )
        for other, dist in sorted(
            inherited.items(), key=lambda kv: self._id_of[kv[0]]
        ):
            self._set_edge(merged_id, self._id_of[other], dist)
        return merged_id

    # ------------------------------------------------------------------
    # Structure access
    # ------------------------------------------------------------------

    @property
    def entities(self) -> tuple:
        """All entity nodes (frozensets of references), insertion order."""
        return tuple(self._labels)

    @property
    def num_nodes(self) -> int:
        """Number of entity nodes in ``G_U``."""
        return len(self._labels)

    @property
    def num_edges(self) -> int:
        """Number of entity edges with positive probability."""
        return len(self._edges)

    @property
    def sigma(self) -> frozenset:
        """Label alphabet observed across all entity label distributions."""
        labels: set = set()
        for dist in self._labels.values():
            labels |= set(dist.support)
        return frozenset(labels)

    def neighbors(self, entity: Entity) -> frozenset:
        """Adjacent entities of ``entity`` in ``G_U``."""
        try:
            return frozenset(self._adjacency[entity])
        except KeyError:
            raise ModelError(f"unknown entity {sorted(entity, key=repr)}") from None

    def refs(self, entity: Entity) -> frozenset:
        """Underlying references of an entity node (the set itself)."""
        return frozenset(entity)

    def share_references(self, entity_a: Entity, entity_b: Entity) -> bool:
        """True if the two entities have a reference in common."""
        return bool(entity_a & entity_b)

    def has_edge(self, entity_a: Entity, entity_b: Entity) -> bool:
        """True when ``G_U`` has an edge between the two entities."""
        return frozenset((entity_a, entity_b)) in self._edges

    def edges(self):
        """Iterate over ``(frozenset({e1, e2}), merged distribution)``."""
        return self._edges.items()

    def possible_labels(self, entity: Entity) -> tuple:
        """``L(entity)`` — labels with non-zero merged probability."""
        return self._labels[entity].support

    def label_distribution(self, entity: Entity) -> LabelDistribution:
        """The merged label distribution of an entity node."""
        return self._labels[entity]

    def component_of(self, entity: Entity) -> IdentityComponent:
        """The identity component containing ``entity``."""
        return self._component_of[entity]

    # ------------------------------------------------------------------
    # Probabilities
    # ------------------------------------------------------------------

    def label_probability(self, entity: Entity, label) -> float:
        """``Pr(entity.l = label)`` (merged node-label factor, Eq. 2)."""
        return self._labels[entity].probability(label)

    def edge_probability(
        self, entity_a: Entity, entity_b: Entity, label_a=None, label_b=None
    ) -> float:
        """``Pr((a, b).e = T)``, conditioned on labels when the model is conditional.

        For the independent model the labels are ignored. For the
        conditional model (Section 5.3) both endpoint labels must be
        given; raises :class:`QueryError` otherwise.
        """
        dist = self._edges.get(frozenset((entity_a, entity_b)))
        if dist is None:
            return 0.0
        if dist.conditional:
            if label_a is None or label_b is None:
                raise QueryError(
                    "conditional PEG requires endpoint labels for edge "
                    "probabilities; use edge_max_probability for bounds"
                )
            return dist.probability(label_a, label_b)
        return dist.probability()

    def edge_max_probability(
        self, entity_a: Entity, entity_b: Entity, label_a=None, label_b=None
    ) -> float:
        """Upper bound of the edge probability over unknown endpoint labels.

        Implements the Section 5.3 adjustment used by ``ppu``/``fpu``:
        maximize the CPT over any label argument passed as ``None``.
        """
        dist = self._edges.get(frozenset((entity_a, entity_b)))
        if dist is None:
            return 0.0
        if dist.conditional:
            return dist.max_probability(label_a, label_b)
        return dist.probability()

    def existence_probability(self, entity: Entity) -> float:
        """``Pr(entity.n = T)`` — single-entity marginal of its component."""
        return self._component_of[entity].existence_probability(entity)

    def existence_marginal(self, entities: Iterable[Entity]) -> float:
        """``Prn`` for a set of entities: product of component marginals (Eq. 12).

        Entities are grouped by identity component; within a component the
        exact joint marginal is used, across components independence holds
        (Eq. 7). Returns zero when two entities share a reference.
        """
        by_component: dict = {}
        for entity in entities:
            component = self._component_of.get(entity)
            if component is None:
                raise ModelError(
                    f"unknown entity {sorted(entity, key=repr)}"
                )
            by_component.setdefault(component.index, (component, []))[1].append(
                entity
            )
        prob = 1.0
        for component, members in by_component.values():
            prob *= component.existence_marginal(members)
            if prob == 0.0:
                return 0.0
        return prob

    def match_probability(
        self,
        node_labels: Mapping[Entity, object],
        edges: Iterable[FrozenSet[Entity]],
    ) -> float:
        """``Pr(M) = Prn(M) * Prle(M)`` for a labeled subgraph (Eq. 11-13)."""
        prle = self.prle(node_labels, edges)
        if prle == 0.0:
            return 0.0
        return prle * self.existence_marginal(node_labels.keys())

    def prle(
        self,
        node_labels: Mapping[Entity, object],
        edges: Iterable[FrozenSet[Entity]],
    ) -> float:
        """Label-and-edge probability component ``Prle`` (Eq. 13)."""
        prob = 1.0
        for entity, label in node_labels.items():
            prob *= self.label_probability(entity, label)
            if prob == 0.0:
                return 0.0
        for pair in edges:
            entity_a, entity_b = tuple(pair)
            prob *= self.edge_probability(
                entity_a,
                entity_b,
                node_labels.get(entity_a),
                node_labels.get(entity_b),
            )
            if prob == 0.0:
                return 0.0
        return prob

    def stats(self) -> dict:
        """Summary counts for reports and tests."""
        nontrivial = [c for c in self.components if not c.is_trivial]
        return {
            "nodes": self.num_nodes,
            "edges": self.num_edges,
            "labels": len(self.sigma),
            "components": len(self.components),
            "nontrivial_components": len(nontrivial),
            "max_component_refs": max(
                (len(c.references) for c in self.components), default=0
            ),
            "conditional": self.conditional,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        s = self.stats()
        return (
            f"ProbabilisticEntityGraph(nodes={s['nodes']}, edges={s['edges']}, "
            f"components={s['components']}, conditional={s['conditional']})"
        )
