"""PEG persistence: save a constructed entity graph for offline reuse.

Building a PEG involves exact-cover enumeration and merge-function
evaluation over the whole reference graph; production pipelines build it
once and query it many times. This module provides versioned pickle
round-tripping with a header check so stale or foreign files fail fast.
"""

from __future__ import annotations

import pickle

from repro.peg.entity_graph import ProbabilisticEntityGraph
from repro.utils.errors import ModelError

#: Format version; bump when the PEG's pickled layout changes.
FORMAT_VERSION = 1
_MAGIC = "repro-peg"


def save_peg(peg: ProbabilisticEntityGraph, path: str) -> None:
    """Serialize ``peg`` to ``path`` (versioned pickle)."""
    payload = {
        "magic": _MAGIC,
        "version": FORMAT_VERSION,
        "peg": peg,
    }
    with open(path, "wb") as handle:
        pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)


def load_peg(path: str) -> ProbabilisticEntityGraph:
    """Load a PEG previously written by :func:`save_peg`.

    Raises :class:`ModelError` for foreign files or incompatible
    versions rather than returning corrupt state.
    """
    with open(path, "rb") as handle:
        try:
            payload = pickle.load(handle)
        except (pickle.UnpicklingError, EOFError) as exc:
            raise ModelError(f"{path!r} is not a PEG file") from exc
    if not isinstance(payload, dict) or payload.get("magic") != _MAGIC:
        raise ModelError(f"{path!r} is not a PEG file")
    if payload.get("version") != FORMAT_VERSION:
        raise ModelError(
            f"PEG file version {payload.get('version')} is not supported "
            f"(expected {FORMAT_VERSION})"
        )
    peg = payload["peg"]
    if not isinstance(peg, ProbabilisticEntityGraph):
        raise ModelError(f"{path!r} does not contain a PEG")
    return peg
