"""Possible-world enumeration — the exact semantics of Eq. 8.

Only feasible for small PEGs (the world count is exponential in the
number of uncertain elements), but invaluable as a ground-truth oracle:
integration and property tests validate both ``match_probability`` and
the entire optimized query engine against results computed here.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import FrozenSet, Iterable, Iterator, Mapping, Tuple

from repro.peg.entity_graph import Entity, ProbabilisticEntityGraph
from repro.utils.errors import ModelError

#: Safety cap on the number of worlds enumerate_worlds may generate.
DEFAULT_WORLD_LIMIT = 2_000_000


@dataclass(frozen=True)
class PossibleWorld:
    """One labeled possible world graph with its probability."""

    labels: Tuple[Tuple[Entity, object], ...]
    edges: FrozenSet[FrozenSet[Entity]]
    probability: float

    @property
    def entities(self) -> frozenset:
        """Entities existing in this world."""
        return frozenset(entity for entity, _ in self.labels)

    @property
    def label_of(self) -> dict:
        """Mapping ``entity -> label`` of this world."""
        return dict(self.labels)


def enumerate_worlds(
    peg: ProbabilisticEntityGraph,
    limit: int = DEFAULT_WORLD_LIMIT,
) -> Iterator[PossibleWorld]:
    """Yield every possible world graph of ``peg`` with positive probability.

    Worlds are produced by composing, in order:

    1. one configuration per identity component (node existence),
    2. one label per existing entity (node labels),
    3. one existence decision per candidate edge between existing
       entities (edge existence, conditioned on labels when the PEG is
       conditional).

    Raises :class:`ModelError` when the world count would exceed ``limit``.
    """
    _check_world_budget(peg, limit)
    config_lists = [component.configurations for component in peg.components]
    entity_set = set(peg.entities)
    for chosen_configs in itertools.product(*config_lists):
        prob_n = 1.0
        existing = []
        for cfg in chosen_configs:
            prob_n *= cfg.probability
            existing.extend(e for e in cfg.chosen if e in entity_set)
        if prob_n == 0.0:
            continue
        existing.sort(key=repr)
        yield from _expand_labels_and_edges(peg, existing, prob_n)


def _expand_labels_and_edges(
    peg: ProbabilisticEntityGraph, existing: list, prob_n: float
) -> Iterator[PossibleWorld]:
    label_options = [
        [(entity, label, peg.label_probability(entity, label))
         for label in peg.possible_labels(entity)]
        for entity in existing
    ]
    candidate_edges = [
        pair for pair, _ in peg.edges() if pair <= set(existing)
    ]
    for labeling in itertools.product(*label_options):
        prob_l = prob_n
        label_of = {}
        for entity, label, p in labeling:
            prob_l *= p
            label_of[entity] = label
        if prob_l == 0.0:
            continue
        edge_options = []
        for pair in candidate_edges:
            entity_a, entity_b = tuple(pair)
            p_edge = peg.edge_probability(
                entity_a, entity_b, label_of[entity_a], label_of[entity_b]
            )
            options = []
            if p_edge > 0.0:
                options.append((pair, True, p_edge))
            if p_edge < 1.0:
                options.append((pair, False, 1.0 - p_edge))
            edge_options.append(options)
        labels_tuple = tuple(
            sorted(label_of.items(), key=lambda kv: repr(kv[0]))
        )
        for decisions in itertools.product(*edge_options):
            prob = prob_l
            present = set()
            for pair, exists, p in decisions:
                prob *= p
                if exists:
                    present.add(pair)
            if prob > 0.0:
                yield PossibleWorld(
                    labels=labels_tuple,
                    edges=frozenset(present),
                    probability=prob,
                )


def _check_world_budget(peg: ProbabilisticEntityGraph, limit: int) -> None:
    estimate = 1
    for component in peg.components:
        if component.configurations is None:
            raise ModelError(
                "possible worlds cannot be enumerated: component "
                f"{component.index} uses approximate marginals"
            )
        estimate *= max(1, len(component.configurations))
        if estimate > limit:
            raise ModelError(
                f"possible-world count exceeds limit {limit}; "
                "enumerate_worlds is only intended for small PEGs"
            )
    for entity in peg.entities:
        estimate *= max(1, len(peg.possible_labels(entity)))
        if estimate > limit:
            raise ModelError(
                f"possible-world count exceeds limit {limit}; "
                "enumerate_worlds is only intended for small PEGs"
            )
    estimate *= 2 ** peg.num_edges
    if estimate > limit:
        raise ModelError(
            f"possible-world count exceeds limit {limit}; "
            "enumerate_worlds is only intended for small PEGs"
        )


def world_match_probability(
    peg: ProbabilisticEntityGraph,
    node_labels: Mapping[Entity, object],
    edges: Iterable[FrozenSet[Entity]],
    limit: int = DEFAULT_WORLD_LIMIT,
) -> float:
    """Exact ``Pr(M)`` by summing over all worlds containing the match.

    This is the literal Definition 4: the sum of the probabilities of all
    possible worlds in which every match node exists with its required
    label and every match edge is present. Used by tests to validate
    :meth:`ProbabilisticEntityGraph.match_probability`.
    """
    required_edges = {frozenset(pair) for pair in edges}
    total = 0.0
    for world in enumerate_worlds(peg, limit=limit):
        label_of = world.label_of
        if all(
            entity in label_of and label_of[entity] == label
            for entity, label in node_labels.items()
        ) and required_edges <= world.edges:
            total += world.probability
    return total
