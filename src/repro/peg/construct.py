"""PGD → PEG transformation (Definition 2 applied, offline step 1).

Builds the entity-level graph: merges label distributions per reference
set (Eq. 2), merges edge distributions per entity pair (Eq. 3 / Eq. 9),
partitions node-existence variables into identity components, and
precomputes their configuration distributions.
"""

from __future__ import annotations

from typing import FrozenSet

from repro.pgd.model import PGD
from repro.peg.components import IdentityComponent, partition_into_components
from repro.peg.entity_graph import ProbabilisticEntityGraph
from repro.utils.errors import ModelError


def build_peg(
    pgd: PGD,
    drop_impossible: bool = True,
    exact_component_limit: int = 16,
    approx_samples: int = 4000,
) -> ProbabilisticEntityGraph:
    """Construct the probabilistic entity graph from a PGD.

    Parameters
    ----------
    pgd:
        The reference-level description.
    drop_impossible:
        When true (default), entities whose existence probability is zero
        are removed from ``G_U`` — they cannot appear in any possible
        world, so no match can use them.
    exact_component_limit:
        Identity components with at most this many references use exact
        configuration enumeration; larger ones switch to Monte Carlo
        marginal estimation (the paper's approximate-inference fallback).
    approx_samples:
        Sample count for approximate components.
    """
    pgd.validate()
    set_potentials = pgd.reference_sets()

    # --- identity components and their configuration distributions -----
    components = []
    for index, (refs, entity_sets) in enumerate(
        partition_into_components(set_potentials)
    ):
        potentials = {e: set_potentials[e] for e in entity_sets}
        components.append(
            IdentityComponent(
                index,
                refs,
                entity_sets,
                potentials,
                exact_limit=exact_component_limit,
                approx_samples=approx_samples,
            )
        )

    # --- node label distributions (Eq. 2) ------------------------------
    labels = {}
    existence = {}
    for component in components:
        for entity in component.entities:
            p_exist = component.existence_probability(entity)
            existence[entity] = p_exist
            if drop_impossible and p_exist <= 0.0:
                continue
            member_labels = [pgd.label_distribution(r) for r in entity]
            labels[entity] = pgd.merge.labels(member_labels)

    # --- entity edge distributions (Eq. 3 / Eq. 9) ----------------------
    # For each declared reference edge, attribute it to every pair of
    # disjoint entities containing its endpoints, then merge per pair.
    containing: dict = {}
    for entity in labels:
        for ref in entity:
            containing.setdefault(ref, []).append(entity)

    pair_inputs: dict = {}
    for ref_pair, dist in pgd.edges():
        ref_1, ref_2 = tuple(ref_pair)
        for entity_1 in containing.get(ref_1, ()):
            for entity_2 in containing.get(ref_2, ()):
                if entity_1 == entity_2 or (entity_1 & entity_2):
                    continue
                key = frozenset((entity_1, entity_2))
                pair_inputs.setdefault(key, []).append(dist)

    edges = {}
    for key, dists in pair_inputs.items():
        merged = pgd.merge.edges(dists)
        if _max_edge_probability(merged) > 0.0:
            edges[key] = merged

    if not labels:
        raise ModelError("PEG has no entities with positive existence probability")

    return ProbabilisticEntityGraph(
        labels=labels,
        edges=edges,
        components=components,
        conditional=pgd.has_conditional_edges,
    )


def _max_edge_probability(dist) -> float:
    if dist.conditional:
        return dist.max_probability()
    return dist.probability()
