"""Identity-uncertainty components and their existence marginals.

The node-existence variables ``s.n`` partition into Markov-network
components induced by shared references (Eq. 7). Each
:class:`IdentityComponent` holds the exact distribution over its legal
configurations (exact covers of its references, see
:mod:`repro.pgm.configurations`) and answers marginal queries
``Pr(all entities in E exist)`` with memoization — the quantities the
offline phase precomputes and ``Prn`` (Eq. 12) multiplies together.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Mapping, Sequence, Tuple

from repro.pgm.configurations import (
    ComponentConfiguration,
    enumerate_exact_covers,
)
from repro.pgm.sampling import ComponentSampler
from repro.utils.errors import ModelError

#: Components with more references than this switch from exact
#: configuration enumeration to Monte Carlo marginal estimation (the
#: paper's "approximate inference" fallback for large components).
DEFAULT_EXACT_LIMIT = 16


class IdentityComponent:
    """One connected component of the node-existence Markov network.

    Small components (the common case, and the paper's assumption) carry
    the exact normalized distribution over their legal configurations;
    components with more than ``exact_limit`` references fall back to a
    seeded importance sampler (:class:`~repro.pgm.sampling.ComponentSampler`),
    in which case :attr:`configurations` is ``None`` and all marginals
    are consistent estimates.
    """

    def __init__(
        self,
        index: int,
        references: Iterable,
        entities: Iterable[FrozenSet],
        set_potentials: Mapping[FrozenSet, float],
        exact_limit: int = DEFAULT_EXACT_LIMIT,
        approx_samples: int = 4000,
    ) -> None:
        self.index = index
        self.references = frozenset(references)
        self.entities = tuple(sorted((frozenset(e) for e in entities), key=repr))
        self._marginal_cache: dict = {}
        if len(self.references) <= exact_limit:
            self._sampler = None
            self.configurations: Tuple[ComponentConfiguration, ...] | None = (
                enumerate_exact_covers(
                    self.references, self.entities, set_potentials
                )
            )
            # Single-entity marginals are needed constantly (index build,
            # pruning); precompute them eagerly.
            for entity in self.entities:
                self._marginal_cache[frozenset((entity,))] = sum(
                    cfg.probability
                    for cfg in self.configurations
                    if entity in cfg.chosen
                )
        else:
            self.configurations = None
            # Deterministic per-component seed so results are stable.
            self._sampler = ComponentSampler(
                self.references,
                self.entities,
                set_potentials,
                num_samples=approx_samples,
                seed=0xC0FFEE + index,
            )
            for entity in self.entities:
                self._marginal_cache[frozenset((entity,))] = (
                    self._sampler.existence_probability(entity)
                )

    @property
    def is_exact(self) -> bool:
        """True when marginals come from exact enumeration."""
        return self.configurations is not None

    @property
    def is_trivial(self) -> bool:
        """True when the component has exactly one legal configuration."""
        return self.is_exact and len(self.configurations) == 1

    def existence_probability(self, entity: FrozenSet) -> float:
        """``Pr(entity.n = T)`` — marginal over the component distribution."""
        key = frozenset((frozenset(entity),))
        try:
            return self._marginal_cache[key]
        except KeyError:
            raise ModelError(
                f"entity {sorted(entity, key=repr)} is not in component {self.index}"
            ) from None

    def existence_marginal(self, entities: Iterable[FrozenSet]) -> float:
        """``Pr(all entities in `entities` exist simultaneously)``.

        Entities sharing a reference never co-occur in a configuration,
        so the marginal is zero for such inputs — matches with
        reference-sharing nodes are pruned automatically.
        """
        key = frozenset(frozenset(e) for e in entities)
        if not key:
            return 1.0
        cached = self._marginal_cache.get(key)
        if cached is not None:
            return cached
        unknown = [e for e in key if e not in set(self.entities)]
        if unknown:
            raise ModelError(
                f"entities {sorted(map(sorted, unknown))} are not in "
                f"component {self.index}"
            )
        if self.configurations is not None:
            marginal = sum(
                cfg.probability
                for cfg in self.configurations
                if key <= cfg.chosen
            )
        else:
            marginal = self._sampler.existence_marginal(key)
        self._marginal_cache[key] = marginal
        return marginal

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        mode = (
            f"configurations={len(self.configurations)}"
            if self.is_exact
            else "approximate"
        )
        return (
            f"IdentityComponent(index={self.index}, "
            f"references={len(self.references)}, entities={len(self.entities)}, "
            f"{mode})"
        )


class DynamicComponent:
    """A single-entity identity component created by a live update.

    Entities added (or produced by merges) after the offline phase get
    their own component with an explicitly supplied existence
    probability instead of a configuration distribution — dynamic
    updates require fresh, non-overlapping reference sets (enforced by
    :meth:`repro.peg.entity_graph.ProbabilisticEntityGraph.graph_add_entity`),
    so there is never a joint distribution to maintain. The class
    mirrors the :class:`IdentityComponent` surface the rest of the
    system consumes.
    """

    def __init__(
        self, index: int, entity: FrozenSet, existence_probability: float
    ) -> None:
        if not 0.0 <= existence_probability <= 1.0:
            raise ModelError(
                "existence probability must be in [0, 1], got "
                f"{existence_probability}"
            )
        self.index = index
        self.references = frozenset(entity)
        self.entities = (frozenset(entity),)
        self._existence = float(existence_probability)
        # Real configurations keep exact tooling — most importantly the
        # possible-worlds oracle — working over mutated graphs: the
        # entity either exists (p) or does not (1 - p).
        configurations = [
            ComponentConfiguration(
                chosen=frozenset((self.entities[0],)),
                probability=self._existence,
            )
        ]
        if self._existence < 1.0:
            configurations.append(
                ComponentConfiguration(
                    chosen=frozenset(),
                    probability=1.0 - self._existence,
                )
            )
        self.configurations: Tuple[ComponentConfiguration, ...] = tuple(
            configurations
        )

    @property
    def is_exact(self) -> bool:
        """Marginals are exact (a single entity, explicit probability)."""
        return True

    @property
    def is_trivial(self) -> bool:
        """Trivial only when the entity exists with certainty."""
        return self._existence >= 1.0

    def existence_probability(self, entity: FrozenSet) -> float:
        """``Pr(entity.n = T)`` — the supplied probability."""
        if frozenset(entity) != self.entities[0]:
            raise ModelError(
                f"entity {sorted(entity, key=repr)} is not in component "
                f"{self.index}"
            )
        return self._existence

    def existence_marginal(self, entities: Iterable[FrozenSet]) -> float:
        """Joint marginal; only the component's own entity is legal."""
        key = {frozenset(e) for e in entities}
        if not key:
            return 1.0
        if key != {self.entities[0]}:
            unknown = sorted(map(sorted, key - {self.entities[0]}))
            raise ModelError(
                f"entities {unknown} are not in component {self.index}"
            )
        return self._existence

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DynamicComponent(index={self.index}, "
            f"references={len(self.references)}, p={self._existence:.3g})"
        )


def partition_into_components(
    set_potentials: Mapping[FrozenSet, float],
) -> Sequence[Tuple[frozenset, tuple]]:
    """Group reference sets into components by shared references.

    Returns a list of ``(references, entities)`` tuples in deterministic
    order. Union-find over references; every reference set connects all
    of its references.
    """
    parent: dict = {}

    def find(x):
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return root

    def union(a, b):
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[rb] = ra

    for entity in set_potentials:
        for ref in entity:
            parent.setdefault(ref, ref)
        refs = list(entity)
        for other in refs[1:]:
            union(refs[0], other)

    groups: dict = {}
    for ref in parent:
        groups.setdefault(find(ref), set()).add(ref)

    components = []
    for refs in groups.values():
        entities = tuple(
            sorted(
                (e for e in set_potentials if e <= refs),
                key=repr,
            )
        )
        components.append((frozenset(refs), entities))
    components.sort(key=lambda item: min(repr(r) for r in item[0]))
    return components
