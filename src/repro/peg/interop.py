"""Interoperability: export ``G_U`` as a networkx graph.

Downstream users often want to run off-the-shelf graph analytics
(centrality, communities, visualization) on the entity graph. This
module renders a PEG into a :class:`networkx.Graph` carrying the
probabilistic annotations as node/edge attributes.
"""

from __future__ import annotations

import networkx as nx

from repro.peg.entity_graph import ProbabilisticEntityGraph


def to_networkx(peg: ProbabilisticEntityGraph) -> "nx.Graph":
    """Convert the PEG's ``G_U`` into a networkx graph.

    Node keys are the entity frozensets. Node attributes:

    * ``labels`` — ``{label: probability}`` merged distribution,
    * ``existence`` — ``Pr(v.n = T)``,
    * ``component`` — identity-component index,
    * ``references`` — sorted list of underlying references.

    Edge attributes:

    * ``probability`` — ``Pr(e = T)`` for the independent model,
    * ``max_probability`` — the CPT maximum for the conditional model
      (plus ``cpt``, the full table, when conditional).
    """
    graph = nx.Graph()
    for entity in peg.entities:
        graph.add_node(
            entity,
            labels=peg.label_distribution(entity).as_dict(),
            existence=peg.existence_probability(entity),
            component=peg.component_of(entity).index,
            references=sorted(entity, key=repr),
        )
    for pair, dist in peg.edges():
        entity_a, entity_b = tuple(pair)
        if dist.conditional:
            graph.add_edge(
                entity_a,
                entity_b,
                max_probability=dist.max_probability(),
                cpt={labels: prob for labels, prob in dist.items()},
            )
        else:
            graph.add_edge(
                entity_a, entity_b, probability=dist.probability()
            )
    return graph
