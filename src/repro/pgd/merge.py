"""Merge functions ``m_Sigma`` and ``m_{T,F}`` (Definition 1).

A merge function transforms the distributions of the references inside a
reference set into the single distribution of the resulting entity. The
paper's experiments use *average* for both labels and edges; *disjunct*
(noisy-or) is named as an alternative for edge existence. All merge
functions here also handle the label-conditioned edge CPTs of Section
5.3 by merging entry-wise.

The registry (:func:`get_merge_functions` / :func:`register_merge_functions`)
lets applications plug in their own domain-appropriate merges, matching
the paper's "merge functions controlled by the user" design point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.pgd.distributions import (
    BernoulliEdge,
    ConditionalEdge,
    LabelDistribution,
)
from repro.utils.errors import ModelError


def average_labels(distributions: Sequence[LabelDistribution]) -> LabelDistribution:
    """Average the input label distributions pointwise.

    The output support is the union of input supports; because each input
    sums to one, the pointwise mean also sums to one.
    """
    if not distributions:
        raise ModelError("cannot merge an empty set of label distributions")
    accum: dict = {}
    n = len(distributions)
    for dist in distributions:
        for label, prob in dist.items():
            accum[label] = accum.get(label, 0.0) + prob / n
    return LabelDistribution(accum)


def _merge_edge_probs(
    distributions: Sequence, combine: Callable[[Sequence[float]], float]
):
    """Shared machinery for edge merges.

    Merges Bernoulli inputs into a Bernoulli; if any input is a
    conditional CPT, merges entry-wise over the union of CPT keys (with
    Bernoulli inputs contributing their flat probability to every entry)
    and produces a :class:`ConditionalEdge`.
    """
    if not distributions:
        raise ModelError("cannot merge an empty set of edge distributions")
    if all(not d.conditional for d in distributions):
        return BernoulliEdge(combine([d.probability() for d in distributions]))
    keys: set = set()
    defaults = []
    for dist in distributions:
        if dist.conditional:
            keys |= {key for key, _ in dist.items()}
            defaults.append(dist.default)
        else:
            defaults.append(dist.probability())
    cpt = {}
    for key in keys:
        values = []
        for dist in distributions:
            if dist.conditional:
                values.append(dist.probability(key[0], key[1]))
            else:
                values.append(dist.probability())
        cpt[key] = combine(values)
    return ConditionalEdge(cpt, default=combine(defaults))


def average_edges(distributions: Sequence):
    """Average edge-existence probabilities (the paper's default merge)."""
    return _merge_edge_probs(
        distributions, lambda values: sum(values) / len(values)
    )


def disjunct_edges(distributions: Sequence):
    """Noisy-or merge: the entity edge exists if any reference edge does."""

    def noisy_or(values: Sequence[float]) -> float:
        result = 1.0
        for v in values:
            result *= 1.0 - v
        return 1.0 - result

    return _merge_edge_probs(distributions, noisy_or)


def max_edges(distributions: Sequence):
    """Optimistic merge taking the maximum input probability."""
    return _merge_edge_probs(distributions, max)


@dataclass(frozen=True)
class MergeFunctions:
    """A pair of merge functions: one for labels, one for edge existence."""

    labels: Callable[[Sequence[LabelDistribution]], LabelDistribution]
    edges: Callable[[Sequence], object]
    name: str = "custom"


_REGISTRY: dict = {}


def register_merge_functions(name: str, merge: MergeFunctions) -> None:
    """Register a named pair of merge functions for later lookup."""
    if not name:
        raise ModelError("merge-function name must be non-empty")
    _REGISTRY[name] = merge


def get_merge_functions(name: str = "average") -> MergeFunctions:
    """Fetch a registered pair of merge functions by name.

    Built-ins: ``"average"`` (paper default), ``"disjunct"`` (average
    labels + noisy-or edges) and ``"max"`` (average labels + max edges).
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ModelError(
            f"unknown merge functions {name!r}; "
            f"registered: {sorted(_REGISTRY)}"
        ) from None


register_merge_functions(
    "average",
    MergeFunctions(labels=average_labels, edges=average_edges, name="average"),
)
register_merge_functions(
    "disjunct",
    MergeFunctions(labels=average_labels, edges=disjunct_edges, name="disjunct"),
)
register_merge_functions(
    "max",
    MergeFunctions(labels=average_labels, edges=max_edges, name="max"),
)
