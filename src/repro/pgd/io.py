"""PGD interchange: JSON import/export.

A PGD round-trips through a plain JSON document so uncertain graphs can
be produced by external pipelines (extractors, entity-resolution jobs)
and versioned alongside code. The format::

    {
      "format": "repro-pgd",
      "version": 1,
      "merge": "average",
      "references": {"r1": {"a": 0.75, "r": 0.25}, "r2": {"a": 1.0}},
      "edges": [
        {"refs": ["r1", "r2"], "probability": 0.9},
        {"refs": ["r1", "r3"],
         "cpt": [{"labels": ["a", "a"], "probability": 0.9}],
         "default": 0.1}
      ],
      "reference_sets": [
        {"refs": ["r3", "r4"], "potential": 0.8}
      ],
      "singleton_potentials": {"r3": 0.6}
    }

Reference names are JSON strings; non-string reference objects are
stringified on export (a warning-free, lossy-by-design choice — JSON has
no richer key type).
"""

from __future__ import annotations

import json
from typing import Mapping

from repro.pgd.distributions import ConditionalEdge
from repro.pgd.model import PGD
from repro.utils.errors import ModelError

FORMAT_NAME = "repro-pgd"
FORMAT_VERSION = 1


def pgd_to_dict(pgd: PGD) -> dict:
    """Serialize a PGD into the JSON-ready dictionary format."""
    references = {
        str(ref): {
            str(label): prob
            for label, prob in pgd.label_distribution(ref).items()
        }
        for ref in pgd.references
    }
    edges = []
    for pair, dist in pgd.edges():
        ref_a, ref_b = sorted(pair, key=str)
        entry: dict = {"refs": [str(ref_a), str(ref_b)]}
        if dist.conditional:
            entry["cpt"] = [
                {"labels": [str(l1), str(l2)], "probability": prob}
                for (l1, l2), prob in sorted(dist.items(), key=repr)
            ]
            entry["default"] = dist.default
        else:
            entry["probability"] = dist.probability()
        edges.append(entry)
    reference_sets = [
        {"refs": sorted(map(str, refs)), "potential": potential}
        for refs, potential in sorted(
            pgd.declared_sets().items(), key=lambda kv: repr(kv[0])
        )
    ]
    singleton_potentials = {
        str(ref): potential
        for ref, potential in sorted(
            pgd._singleton_overrides.items(), key=lambda kv: repr(kv[0])
        )
    }
    return {
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        "merge": pgd.merge.name,
        "references": references,
        "edges": edges,
        "reference_sets": reference_sets,
        "singleton_potentials": singleton_potentials,
    }


def pgd_from_dict(document: Mapping) -> PGD:
    """Deserialize the dictionary format back into a PGD."""
    if not isinstance(document, Mapping):
        raise ModelError("PGD document must be a JSON object")
    if document.get("format") != FORMAT_NAME:
        raise ModelError(
            f"not a {FORMAT_NAME} document (format={document.get('format')!r})"
        )
    if document.get("version") != FORMAT_VERSION:
        raise ModelError(
            f"unsupported PGD document version {document.get('version')!r}"
        )
    pgd = PGD(merge=document.get("merge", "average"))
    references = document.get("references")
    if not isinstance(references, Mapping) or not references:
        raise ModelError("PGD document needs a non-empty 'references' object")
    for ref, labels in references.items():
        pgd.add_reference(ref, labels)
    for entry in document.get("edges", ()):
        refs = entry.get("refs")
        if not isinstance(refs, (list, tuple)) or len(refs) != 2:
            raise ModelError(f"edge entry {entry!r} needs two refs")
        if "cpt" in entry:
            cpt = {
                tuple(row["labels"]): row["probability"]
                for row in entry["cpt"]
            }
            dist = ConditionalEdge(cpt, default=entry.get("default", 0.0))
            pgd.add_edge(refs[0], refs[1], dist)
        elif "probability" in entry:
            pgd.add_edge(refs[0], refs[1], entry["probability"])
        else:
            raise ModelError(
                f"edge entry {entry!r} needs 'probability' or 'cpt'"
            )
    for entry in document.get("reference_sets", ()):
        pgd.add_reference_set(entry["refs"], entry["potential"])
    for ref, potential in document.get("singleton_potentials", {}).items():
        pgd.set_singleton_potential(ref, potential)
    pgd.validate()
    return pgd


def save_pgd_json(pgd: PGD, path: str) -> None:
    """Write a PGD to ``path`` as pretty-printed JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(pgd_to_dict(pgd), handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_pgd_json(path: str) -> PGD:
    """Read a PGD previously written by :func:`save_pgd_json`."""
    with open(path, "r", encoding="utf-8") as handle:
        try:
            document = json.load(handle)
        except json.JSONDecodeError as exc:
            raise ModelError(f"{path!r} is not valid JSON: {exc}") from exc
    return pgd_from_dict(document)
