"""Convenience constructors for PGDs.

These helpers cover the common entry points the paper's motivating
example implies: building a PGD from plain node/edge lists, calibrating
pair-merge potentials so a standalone pair has an exact merge
probability, and proposing reference sets from a string-similarity pass
(the entity-resolution front end).
"""

from __future__ import annotations

import math
from typing import Callable, Iterable, Mapping, Sequence, Tuple

from repro.pgd.model import PGD
from repro.utils.errors import ModelError
from repro.utils.validation import check_probability


def pair_merge_potentials(merge_probability: float) -> Tuple[float, float]:
    """Potentials that realize an exact pair-merge probability.

    For an isolated pair component ``{{a}, {b}, {a, b}}`` the normalized
    probability of the merged configuration is

    ``Pr(merged) = p_ab^2 / (p_ab^2 + p_a * p_b)``

    (the pair potential is counted once per covered reference). Setting
    ``p_ab = sqrt(p)`` and ``p_a = p_b = sqrt(1 - p)`` makes the merged
    configuration probability exactly ``p``.

    Returns
    -------
    ``(pair_potential, singleton_potential)``.
    """
    p = check_probability(merge_probability, "merge probability")
    if p >= 1.0:
        raise ModelError(
            "merge probability must be < 1: a certainly-merged pair should "
            "be modeled as a single reference instead"
        )
    return math.sqrt(p), math.sqrt(1.0 - p)


def pgd_from_edge_list(
    node_labels: Mapping,
    edges: Iterable,
    reference_sets: Iterable[Tuple[Iterable, float]] = (),
    merge="average",
    calibrate_pairs: bool = True,
) -> PGD:
    """Build a PGD from node/edge collections.

    Parameters
    ----------
    node_labels:
        ``{reference: label_spec}`` where label_spec is a bare label, a
        mapping, or a :class:`~repro.pgd.distributions.LabelDistribution`.
    edges:
        Iterable of ``(ref_1, ref_2, distribution_spec)``.
    reference_sets:
        Iterable of ``(references, merge_probability)``. With
        ``calibrate_pairs=True`` (default) and a size-2 set, potentials
        are calibrated via :func:`pair_merge_potentials` so an isolated
        pair merges with exactly the given probability; otherwise the
        given value is used directly as the raw set potential.
    """
    pgd = PGD(merge=merge)
    for reference, labels in node_labels.items():
        pgd.add_reference(reference, labels)
    for ref_1, ref_2, dist in edges:
        pgd.add_edge(ref_1, ref_2, dist)
    for refs, prob in reference_sets:
        refs = tuple(refs)
        if calibrate_pairs and len(refs) == 2:
            pair_potential, singleton_potential = pair_merge_potentials(prob)
            pgd.add_reference_set(refs, pair_potential)
            for ref in refs:
                pgd.set_singleton_potential(ref, singleton_potential)
        else:
            pgd.add_reference_set(refs, prob)
    pgd.validate()
    return pgd


def reference_sets_from_similarity(
    names: Mapping,
    similarity: Callable[[str, str], float],
    threshold: float = 0.9,
    probability: Callable[[float], float] | None = None,
    blocking: Callable[[str], object] | None = None,
) -> list:
    """Propose pair reference sets from name similarity (entity resolution).

    Mirrors the paper's DBLP construction: "a reference set for every pair
    of authors whose names have normalized string similarity above 0.9".

    Parameters
    ----------
    names:
        ``{reference: name_string}``.
    similarity:
        Normalized similarity function into ``[0, 1]``.
    threshold:
        Minimum similarity to propose a pair.
    probability:
        Maps a similarity score to a merge probability; defaults to the
        identity clipped into ``[0, 0.99]`` (a certainly-merged pair is
        better modeled as one reference).
    blocking:
        Optional blocking key function over names; when given, only pairs
        sharing a key are compared — the standard entity-resolution
        optimization avoiding the O(n²) all-pairs pass.

    Returns
    -------
    List of ``((ref_1, ref_2), merge_probability)`` suitable for
    :func:`pgd_from_edge_list`'s ``reference_sets`` argument. Each
    reference appears in at most one proposed pair (greedy best-first),
    keeping identity components small as the paper assumes.
    """
    if probability is None:
        probability = lambda score: min(score, 0.99)  # noqa: E731
    if blocking is None:
        blocks = [list(names)]
    else:
        by_key: dict = {}
        for ref in names:
            by_key.setdefault(blocking(names[ref]), []).append(ref)
        blocks = list(by_key.values())
    scored = []
    for refs in blocks:
        for i, ref_1 in enumerate(refs):
            for ref_2 in refs[i + 1:]:
                score = similarity(names[ref_1], names[ref_2])
                if score >= threshold:
                    scored.append((score, ref_1, ref_2))
    scored.sort(key=lambda item: (-item[0], repr(item[1]), repr(item[2])))
    used: set = set()
    proposals = []
    for score, ref_1, ref_2 in scored:
        if ref_1 in used or ref_2 in used:
            continue
        used.add(ref_1)
        used.add(ref_2)
        proposals.append(((ref_1, ref_2), probability(score)))
    return proposals


def normalized_levenshtein(left: str, right: str) -> float:
    """Similarity in ``[0, 1]``: 1 minus normalized edit distance.

    Small dynamic-programming implementation so dataset generators and
    examples do not depend on external string libraries.
    """
    if left == right:
        return 1.0
    if not left or not right:
        return 0.0
    previous = list(range(len(right) + 1))
    for i, ch_l in enumerate(left, start=1):
        current = [i]
        for j, ch_r in enumerate(right, start=1):
            cost = 0 if ch_l == ch_r else 1
            current.append(
                min(previous[j] + 1, current[j - 1] + 1, previous[j - 1] + cost)
            )
        previous = current
    distance = previous[-1]
    return 1.0 - distance / max(len(left), len(right))
