"""Probabilistic Graph Description (PGD) — the reference-level input model.

A PGD (Definition 1 of the paper) specifies:

* a set of references ``R`` with a label distribution each,
* edge-existence distributions over pairs of references (independent
  Bernoulli, or label-conditioned CPTs for the correlated variant of
  Section 5.3),
* a set ``S`` of reference sets (potential entities) with existence
  potentials, always including all singletons,
* merge functions ``m_Sigma`` and ``m_{T,F}`` used to aggregate reference
  distributions into entity distributions.
"""

from repro.pgd.distributions import (
    LabelDistribution,
    BernoulliEdge,
    ConditionalEdge,
)
from repro.pgd.merge import (
    MergeFunctions,
    average_labels,
    average_edges,
    disjunct_edges,
    max_edges,
    get_merge_functions,
    register_merge_functions,
)
from repro.pgd.model import PGD
from repro.pgd.builders import (
    pgd_from_edge_list,
    pair_merge_potentials,
    reference_sets_from_similarity,
)
from repro.pgd.closure import (
    add_transitive_closure,
    transitive_closure_sets,
    geometric_mean_combiner,
)
from repro.pgd.io import (
    load_pgd_json,
    save_pgd_json,
    pgd_to_dict,
    pgd_from_dict,
)

__all__ = [
    "LabelDistribution",
    "BernoulliEdge",
    "ConditionalEdge",
    "MergeFunctions",
    "average_labels",
    "average_edges",
    "disjunct_edges",
    "max_edges",
    "get_merge_functions",
    "register_merge_functions",
    "PGD",
    "pgd_from_edge_list",
    "pair_merge_potentials",
    "reference_sets_from_similarity",
    "add_transitive_closure",
    "transitive_closure_sets",
    "geometric_mean_combiner",
    "load_pgd_json",
    "save_pgd_json",
    "pgd_to_dict",
    "pgd_from_dict",
]
