"""Transitive-closure merging constraints (the paper's future work).

Section 8 names "other types of entity merging constraints such as
transitive closure" as future work. This module implements it: when the
pair sets {a, b} and {b, c} are declared, transitivity of identity
suggests {a, b, c} should be a candidate entity too — all three mentions
may refer to one real-world object.

:func:`transitive_closure_sets` expands a collection of seed reference
sets into all connected unions reachable by overlap chaining, assigning
potentials through a combiner (geometric mean of the member pair
potentials by default, damped by an optional decay per extra member).
:func:`add_transitive_closure` applies the expansion to a PGD in place.
"""

from __future__ import annotations

import itertools
import math
from typing import Iterable, Mapping, Tuple

from repro.pgd.model import PGD
from repro.utils.errors import ModelError

#: Safety cap on the number of reference sets one closure may produce.
DEFAULT_CLOSURE_LIMIT = 64


def geometric_mean_combiner(pair_potentials: Iterable[float]) -> float:
    """Default potential combiner: geometric mean of the pair evidence."""
    values = [float(p) for p in pair_potentials]
    if not values:
        raise ModelError("combiner needs at least one pair potential")
    if any(v <= 0 for v in values):
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))


def transitive_closure_sets(
    seed_sets: Mapping[frozenset, float],
    combiner=geometric_mean_combiner,
    decay: float = 1.0,
    limit: int = DEFAULT_CLOSURE_LIMIT,
) -> dict:
    """Expand seed reference sets into their overlap-closure.

    Parameters
    ----------
    seed_sets:
        ``{frozenset of references: potential}`` — typically pair sets
        from an entity-resolution pass.
    combiner:
        Combines the potentials of the seed sets *contained in* a closure
        union into the union's potential.
    decay:
        Multiplicative damping applied per member beyond two — larger
        merged entities demand more evidence. ``1.0`` disables damping.
    limit:
        Maximum number of derived sets per connected overlap component
        (identity components must stay small for exact inference).

    Returns
    -------
    ``{frozenset: potential}`` containing every union of two or more
    overlapping seed sets (the seeds themselves are *not* included).
    """
    if not 0.0 < decay <= 1.0:
        raise ModelError(f"decay must be in (0, 1], got {decay}")
    seeds = {frozenset(s): float(p) for s, p in seed_sets.items()}
    components = _overlap_components(list(seeds))
    derived: dict = {}
    for component in components:
        if len(component) < 2:
            continue
        unions: dict = {}
        for count in range(2, len(component) + 1):
            for subset in itertools.combinations(component, count):
                if not _is_connected(subset):
                    continue
                union = frozenset().union(*subset)
                if union in seeds or union in unions:
                    continue
                supporting = [p for s, p in seeds.items() if s <= union]
                potential = combiner(supporting)
                potential *= decay ** max(0, len(union) - 2)
                unions[union] = potential
                if len(unions) > limit:
                    raise ModelError(
                        f"transitive closure produced more than {limit} "
                        "sets in one component; cap the seed overlap or "
                        "raise the limit"
                    )
        derived.update(unions)
    return derived


def add_transitive_closure(
    pgd: PGD,
    combiner=geometric_mean_combiner,
    decay: float = 0.9,
) -> Tuple[frozenset, ...]:
    """Add closure sets for the PGD's declared reference sets, in place.

    Returns the tuple of newly added reference sets. Potentials are
    combined from the contained seed sets and damped by ``decay`` per
    member beyond two.
    """
    derived = transitive_closure_sets(
        pgd.declared_sets(), combiner=combiner, decay=decay
    )
    added = []
    for refs, potential in sorted(derived.items(), key=lambda kv: repr(kv[0])):
        if potential <= 0.0:
            continue
        pgd.add_reference_set(refs, min(potential, 1.0))
        added.append(refs)
    return tuple(added)


def _overlap_components(sets: list) -> list:
    """Group sets into connected components by member overlap."""
    parent = list(range(len(sets)))

    def find(i):
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    member_index: dict = {}
    for i, refs in enumerate(sets):
        for ref in refs:
            if ref in member_index:
                ra, rb = find(member_index[ref]), find(i)
                if ra != rb:
                    parent[rb] = ra
            else:
                member_index[ref] = i
    groups: dict = {}
    for i, refs in enumerate(sets):
        groups.setdefault(find(i), []).append(refs)
    return list(groups.values())


def _is_connected(subset: tuple) -> bool:
    """True when the chosen seed sets chain together by overlap."""
    remaining = list(subset)
    frontier = [remaining.pop()]
    covered = set(frontier[0])
    while remaining:
        extended = False
        for i, candidate in enumerate(remaining):
            if candidate & covered:
                covered |= candidate
                remaining.pop(i)
                extended = True
                break
        if not extended:
            return False
    return True
