"""The Probabilistic Graph Description (PGD) container — Definition 1.

A :class:`PGD` collects the reference-level uncertain data:

* references with label distributions (attribute uncertainty),
* reference-pair edge distributions (edge existence uncertainty),
* reference sets with existence potentials (identity uncertainty),
* the merge functions used to lift reference data to entity data.

``S`` always contains all singletons. Singleton potentials default to
``1.0`` and can be overridden — lowering them shifts probability mass
toward merged configurations of the components they participate in
(see :mod:`repro.pgm.configurations` for the exact semantics).
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.pgd.distributions import (
    BernoulliEdge,
    ConditionalEdge,
    LabelDistribution,
)
from repro.pgd.merge import MergeFunctions, get_merge_functions
from repro.utils.errors import ModelError
from repro.utils.validation import check_probability


def _as_label_distribution(value) -> LabelDistribution:
    if isinstance(value, LabelDistribution):
        return value
    if isinstance(value, Mapping):
        return LabelDistribution(value)
    return LabelDistribution.certain(value)


def _as_edge_distribution(value):
    if isinstance(value, (BernoulliEdge, ConditionalEdge)):
        return value
    if isinstance(value, Mapping):
        return ConditionalEdge(value)
    return BernoulliEdge(value)


class PGD:
    """Reference-level probabilistic graph description.

    Parameters
    ----------
    merge:
        Either a :class:`~repro.pgd.merge.MergeFunctions` instance or the
        name of a registered pair (``"average"``, ``"disjunct"``, ``"max"``).
    """

    def __init__(self, merge="average") -> None:
        if isinstance(merge, MergeFunctions):
            self.merge = merge
        else:
            self.merge = get_merge_functions(merge)
        self._labels: dict = {}
        self._edges: dict = {}
        self._set_potentials: dict = {}
        self._singleton_overrides: dict = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def add_reference(self, reference, labels) -> None:
        """Declare ``reference`` with a label distribution.

        ``labels`` may be a :class:`LabelDistribution`, a mapping
        ``{label: probability}``, or a bare label (certain attribute).
        """
        if reference in self._labels:
            raise ModelError(f"reference {reference!r} already declared")
        self._labels[reference] = _as_label_distribution(labels)

    def add_edge(self, ref_1, ref_2, distribution) -> None:
        """Declare an edge-existence distribution between two references.

        ``distribution`` may be a probability (independent Bernoulli), a
        mapping ``{(label_1, label_2): probability}`` (conditional CPT), or
        a prebuilt distribution object. Edges are undirected; redeclaring a
        pair is an error.
        """
        if ref_1 == ref_2:
            raise ModelError(f"self-loop edge on reference {ref_1!r}")
        for ref in (ref_1, ref_2):
            if ref not in self._labels:
                raise ModelError(
                    f"edge endpoint {ref!r} is not a declared reference"
                )
        key = frozenset((ref_1, ref_2))
        if key in self._edges:
            raise ModelError(
                f"edge between {ref_1!r} and {ref_2!r} already declared"
            )
        self._edges[key] = _as_edge_distribution(distribution)

    def add_reference_set(self, references: Iterable, potential: float) -> None:
        """Declare a non-singleton reference set with existence potential.

        The potential is the factor value ``p_s(s.x = T)`` used by the
        node-existence factors; configuration probabilities are obtained
        by normalizing over all exact covers of the component.
        """
        refs = frozenset(references)
        if len(refs) < 2:
            raise ModelError(
                "reference sets added explicitly must contain at least two "
                "references; singletons are implicit"
            )
        missing = [r for r in refs if r not in self._labels]
        if missing:
            raise ModelError(f"reference set contains undeclared references: {missing}")
        if refs in self._set_potentials:
            raise ModelError(f"reference set {sorted(refs, key=repr)} already declared")
        self._set_potentials[refs] = check_probability(
            potential, "reference-set potential"
        )

    def set_singleton_potential(self, reference, potential: float) -> None:
        """Override the existence potential of ``reference``'s singleton set."""
        if reference not in self._labels:
            raise ModelError(f"unknown reference {reference!r}")
        self._singleton_overrides[reference] = check_probability(
            potential, "singleton potential"
        )

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------

    @property
    def references(self) -> tuple:
        """All declared references, in insertion order."""
        return tuple(self._labels)

    @property
    def sigma(self) -> frozenset:
        """The label alphabet: union of all label-distribution supports."""
        labels: set = set()
        for dist in self._labels.values():
            labels |= set(dist.support)
        return frozenset(labels)

    def label_distribution(self, reference) -> LabelDistribution:
        """The label distribution of a declared reference."""
        try:
            return self._labels[reference]
        except KeyError:
            raise ModelError(f"unknown reference {reference!r}") from None

    def edge_distribution(self, ref_1, ref_2):
        """The edge distribution of a declared pair, or ``None`` if absent."""
        return self._edges.get(frozenset((ref_1, ref_2)))

    def edges(self):
        """Iterate over ``(frozenset({r1, r2}), distribution)`` pairs."""
        return self._edges.items()

    def reference_sets(self) -> dict:
        """All of ``S`` with potentials: declared sets plus all singletons."""
        sets = {
            frozenset((ref,)): self._singleton_overrides.get(ref, 1.0)
            for ref in self._labels
        }
        sets.update(self._set_potentials)
        return sets

    def declared_sets(self) -> dict:
        """Only the explicitly declared (non-singleton) reference sets."""
        return dict(self._set_potentials)

    @property
    def has_conditional_edges(self) -> bool:
        """True if any edge uses a label-conditioned CPT (Section 5.3 mode)."""
        return any(dist.conditional for dist in self._edges.values())

    # ------------------------------------------------------------------
    # Validation / stats
    # ------------------------------------------------------------------

    def validate(self) -> None:
        """Check global consistency; raises :class:`ModelError` on problems.

        Verifies that every reference participating in a multi-reference
        set can still be covered (trivially true since singletons are
        implicit) and that conditional CPT labels are drawn from Sigma.
        """
        if not self._labels:
            raise ModelError("PGD has no references")
        sigma = self.sigma
        for key, dist in self._edges.items():
            if dist.conditional:
                for (l1, l2), _ in dist.items():
                    for label in (l1, l2):
                        if label not in sigma:
                            raise ModelError(
                                f"edge {sorted(key, key=repr)} CPT uses label "
                                f"{label!r} outside the alphabet {sorted(sigma, key=repr)}"
                            )

    def stats(self) -> dict:
        """Summary counts used by dataset reports and tests."""
        return {
            "references": len(self._labels),
            "edges": len(self._edges),
            "reference_sets": len(self._set_potentials),
            "labels": len(self.sigma),
            "conditional_edges": sum(
                1 for d in self._edges.values() if d.conditional
            ),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        s = self.stats()
        return (
            f"PGD(references={s['references']}, edges={s['edges']}, "
            f"reference_sets={s['reference_sets']}, merge={self.merge.name!r})"
        )
