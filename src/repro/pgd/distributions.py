"""Probability distributions attached to references and reference pairs.

Two families:

* :class:`LabelDistribution` — discrete distribution over the label
  alphabet Sigma for a reference's attribute value,
* edge-existence distributions — :class:`BernoulliEdge` for the
  independent model and :class:`ConditionalEdge` for the label-correlated
  model of Section 5.3 (a CPT keyed by the pair of endpoint labels).
"""

from __future__ import annotations

from typing import Mapping, Tuple

from repro.utils.errors import ModelError
from repro.utils.validation import check_probability, check_distribution


class LabelDistribution:
    """Discrete distribution over labels, e.g. ``{"a": 0.75, "r": 0.25}``.

    Immutable after construction; probabilities must sum to one.
    """

    __slots__ = ("_probs",)

    def __init__(self, probabilities: Mapping) -> None:
        self._probs = check_distribution(probabilities, "label distribution")

    @classmethod
    def certain(cls, label) -> "LabelDistribution":
        """Distribution putting all mass on a single label."""
        return cls({label: 1.0})

    def probability(self, label) -> float:
        """``Pr(label)``, zero for labels outside the support."""
        return self._probs.get(label, 0.0)

    @property
    def support(self) -> tuple:
        """Labels with non-zero probability, in insertion order."""
        return tuple(l for l, p in self._probs.items() if p > 0.0)

    def items(self):
        """Iterate over ``(label, probability)`` pairs."""
        return self._probs.items()

    def as_dict(self) -> dict:
        """Copy of the underlying mapping."""
        return dict(self._probs)

    def entropy_support_size(self) -> int:
        """Number of labels with non-zero mass (used by workload stats)."""
        return len(self.support)

    def __eq__(self, other) -> bool:
        if not isinstance(other, LabelDistribution):
            return NotImplemented
        return self._probs == other._probs

    def __hash__(self) -> int:
        return hash(tuple(sorted(self._probs.items(), key=lambda kv: repr(kv[0]))))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{l!r}: {p:.3g}" for l, p in self._probs.items())
        return f"LabelDistribution({{{inner}}})"


class BernoulliEdge:
    """Independent edge-existence distribution: ``Pr(e = T) = p``."""

    __slots__ = ("_p",)

    conditional = False

    def __init__(self, probability: float) -> None:
        self._p = check_probability(probability, "edge probability")

    def probability(self, label_1=None, label_2=None) -> float:
        """``Pr(e = T)``; endpoint labels are ignored for this model."""
        return self._p

    def max_probability(self) -> float:
        """Maximum of ``Pr(e = T)`` over label contexts (trivially ``p``)."""
        return self._p

    def __eq__(self, other) -> bool:
        if not isinstance(other, BernoulliEdge):
            return NotImplemented
        return self._p == other._p

    def __hash__(self) -> int:
        return hash(("bernoulli", self._p))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BernoulliEdge({self._p:.3g})"


class ConditionalEdge:
    """Label-conditioned edge existence: ``Pr(e = T | l1, l2)`` as a CPT.

    The CPT maps unordered label pairs to probabilities. For undirected
    graphs ``(l1, l2)`` and ``(l2, l1)`` denote the same entry; the
    constructor canonicalizes keys and rejects conflicting duplicates.

    A ``default`` probability applies to label pairs absent from the CPT.
    """

    __slots__ = ("_cpt", "_default")

    conditional = True

    def __init__(self, cpt: Mapping[Tuple, float], default: float = 0.0) -> None:
        if not cpt:
            raise ModelError("conditional edge CPT must not be empty")
        self._default = check_probability(default, "default edge probability")
        canonical: dict = {}
        for key, prob in cpt.items():
            if not isinstance(key, tuple) or len(key) != 2:
                raise ModelError(
                    f"CPT keys must be (label, label) tuples, got {key!r}"
                )
            p = check_probability(prob, f"CPT[{key!r}]")
            ckey = self._canonical(key[0], key[1])
            if ckey in canonical and canonical[ckey] != p:
                raise ModelError(
                    f"conflicting CPT entries for unordered pair {ckey!r}"
                )
            canonical[ckey] = p
        self._cpt = canonical

    @staticmethod
    def _canonical(label_1, label_2) -> tuple:
        a, b = sorted((label_1, label_2), key=repr)
        return (a, b)

    def probability(self, label_1=None, label_2=None) -> float:
        """``Pr(e = T | label_1, label_2)``.

        If either label is ``None`` the caller is asking for an
        upper bound context; use :meth:`max_probability` for that instead.
        """
        if label_1 is None or label_2 is None:
            raise ModelError(
                "conditional edge probability requires both endpoint labels; "
                "use max_probability() for upper bounds"
            )
        return self._cpt.get(self._canonical(label_1, label_2), self._default)

    def max_probability(self, label_1=None, label_2=None) -> float:
        """Max of ``Pr(e = T | l1, l2)`` over label pairs consistent with args.

        Any argument left as ``None`` is maximized over. This implements
        the Section 5.3 adjustment for ``ppu``/``fpu`` where one endpoint
        label is unknown.
        """
        best = 0.0
        matched = False
        for (a, b), p in self._cpt.items():
            for l1, l2 in ((a, b), (b, a)):
                ok_1 = label_1 is None or l1 == label_1
                ok_2 = label_2 is None or l2 == label_2
                if ok_1 and ok_2:
                    best = max(best, p)
                    matched = True
        if not matched:
            return self._default
        return max(best, self._default) if self._default > 0 else best

    def items(self):
        """Iterate over ``((label_1, label_2), probability)`` CPT entries."""
        return self._cpt.items()

    @property
    def default(self) -> float:
        """Probability used for label pairs absent from the CPT."""
        return self._default

    def __eq__(self, other) -> bool:
        if not isinstance(other, ConditionalEdge):
            return NotImplemented
        return self._cpt == other._cpt and self._default == other._default

    def __hash__(self) -> int:
        return hash(
            ("conditional", self._default, tuple(sorted(self._cpt.items(), key=repr)))
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ConditionalEdge({self._cpt!r}, default={self._default:.3g})"
