"""Query workload generators.

* :func:`random_query` — connected random queries ``q(n, m)`` (random
  spanning tree plus random extra edges, labels drawn from the
  alphabet), the paper's synthetic query generator,
* :func:`paper_query_series` — the ``q(n, min(4n, max))`` size series of
  Figure 6(c),
* :func:`pattern_query` — the Figure-8 collaboration patterns (BF1,
  BF2, GR, ST, TR) used in the real-world experiments.
"""

from __future__ import annotations

from repro.query.query_graph import QueryGraph
from repro.utils.errors import QueryError
from repro.utils.rng import ensure_rng

#: The Figure-8 pattern names.
PATTERN_NAMES = ("BF1", "BF2", "GR", "ST", "TR")


def random_query(
    num_nodes: int, num_edges: int, sigma, seed=None, labels=None
) -> QueryGraph:
    """Random connected query with ``num_nodes`` nodes and ``num_edges`` edges.

    A random spanning tree guarantees connectivity; remaining edges are
    sampled uniformly from the missing pairs. Node labels are drawn
    uniformly from ``sigma`` unless ``labels`` supplies them.
    """
    rng = ensure_rng(seed)
    sigma = tuple(sigma)
    if num_nodes < 1:
        raise QueryError(f"query needs at least one node, got {num_nodes}")
    max_edges = num_nodes * (num_nodes - 1) // 2
    if num_edges < num_nodes - 1 or num_edges > max_edges:
        raise QueryError(
            f"q({num_nodes},{num_edges}) is not a connected simple graph: "
            f"need {num_nodes - 1} <= m <= {max_edges}"
        )
    nodes = [f"q{i}" for i in range(num_nodes)]
    if labels is None:
        node_labels = {
            node: sigma[int(rng.integers(len(sigma)))] for node in nodes
        }
    else:
        node_labels = dict(labels)
    edges: set = set()
    order = list(rng.permutation(num_nodes))
    for position in range(1, num_nodes):
        anchor = order[int(rng.integers(position))]
        edges.add(frozenset((nodes[order[position]], nodes[anchor])))
    candidates = [
        frozenset((nodes[i], nodes[j]))
        for i in range(num_nodes)
        for j in range(i + 1, num_nodes)
        if frozenset((nodes[i], nodes[j])) not in edges
    ]
    extra = num_edges - len(edges)
    if extra > 0:
        picks = rng.choice(len(candidates), size=extra, replace=False)
        for pick in picks:
            edges.add(candidates[int(pick)])
    return QueryGraph(node_labels, [tuple(edge) for edge in edges])


def paper_query_series(max_nodes: int = 15) -> list:
    """The Figure 6(c) size series: ``(n, min(4n, n(n-1)/2))`` for odd n.

    Returns ``(num_nodes, num_edges)`` tuples for n = 3, 5, ..., max.
    """
    series = []
    for n in range(3, max_nodes + 1, 2):
        series.append((n, min(4 * n, n * (n - 1) // 2)))
    return series


def pattern_query(name: str, labels) -> QueryGraph:
    """One of the Figure-8 collaboration patterns.

    Parameters
    ----------
    name:
        ``"BF1"`` (butterfly: two triangles sharing a center), ``"BF2"``
        (larger butterfly: two diamonds sharing a center), ``"GR"``
        (group: 4-clique), ``"ST"`` (star with four leaves) or ``"TR"``
        (complete binary tree of depth 2).
    labels:
        Either a single label applied to every node (the IMDB setting:
        co-starring within one genre) or a mapping ``{node: label}``
        (the DBLP setting mixes areas). Node names per pattern are
        ``n0, n1, ...`` in the structures documented here.
    """
    structures = {
        "BF1": (
            5,
            [(0, 1), (0, 2), (1, 2), (0, 3), (0, 4), (3, 4)],
        ),
        "BF2": (
            7,
            [
                (0, 1), (0, 2), (1, 3), (2, 3),
                (0, 4), (0, 5), (4, 6), (5, 6),
            ],
        ),
        "GR": (
            4,
            [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)],
        ),
        "ST": (
            5,
            [(0, 1), (0, 2), (0, 3), (0, 4)],
        ),
        "TR": (
            7,
            [(0, 1), (0, 2), (1, 3), (1, 4), (2, 5), (2, 6)],
        ),
    }
    if name not in structures:
        raise QueryError(
            f"unknown pattern {name!r}; available: {sorted(structures)}"
        )
    num_nodes, edge_indexes = structures[name]
    nodes = [f"n{i}" for i in range(num_nodes)]
    if isinstance(labels, dict):
        node_labels = {node: labels[node] for node in nodes}
    else:
        node_labels = {node: labels for node in nodes}
    edges = [(nodes[i], nodes[j]) for i, j in edge_indexes]
    return QueryGraph(node_labels, edges)
