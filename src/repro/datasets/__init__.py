"""Workload generators reproducing the paper's experimental setup.

* :mod:`repro.datasets.synthetic` — preferential-attachment graphs with
  zipf-skewed label/edge probabilities and grouped reference sets
  (Section 6's synthetic setting),
* :mod:`repro.datasets.queries` — random queries ``q(n, m)`` and the
  Figure-8 pattern queries (BF1, BF2, GR, ST, TR),
* :mod:`repro.datasets.dblp` — DBLP-like collaboration network with
  label-correlated edge CPTs,
* :mod:`repro.datasets.imdb` — IMDB-like co-starring network with
  independent edge probabilities.
"""

from repro.datasets.synthetic import (
    SyntheticConfig,
    generate_synthetic_pgd,
    preferential_attachment_edges,
    zipf_label_distribution,
    skewed_edge_probability,
)
from repro.datasets.queries import (
    random_query,
    paper_query_series,
    pattern_query,
    PATTERN_NAMES,
)
from repro.datasets.dblp import generate_dblp_pgd
from repro.datasets.imdb import generate_imdb_pgd

__all__ = [
    "SyntheticConfig",
    "generate_synthetic_pgd",
    "preferential_attachment_edges",
    "zipf_label_distribution",
    "skewed_edge_probability",
    "random_query",
    "paper_query_series",
    "pattern_query",
    "PATTERN_NAMES",
    "generate_dblp_pgd",
    "generate_imdb_pgd",
]
