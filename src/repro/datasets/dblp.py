"""DBLP-like collaboration network generator (Section 6.3 substitute).

We have no network access to the real DBLP dump, so this module
synthesizes a graph with the statistics the paper extracts from it:

* nodes are authors; each has a probability distribution over three
  research areas (Databases, Machine Learning, Software Engineering)
  derived from per-area publication counts,
* edges are collaborations with a *label-correlated* CPT: a base
  probability ``p`` in ``[0.5, 1]`` grows with the collaboration count;
  the conditional probability is ``p`` when both authors' areas agree
  and ``0.8 p`` otherwise — exactly the paper's construction,
* reference sets pair authors whose (synthetic) names have normalized
  string similarity above 0.9, modeling name variants.
"""

from __future__ import annotations

from repro.datasets.synthetic import preferential_attachment_edges
from repro.pgd.builders import (
    normalized_levenshtein,
    pair_merge_potentials,
    reference_sets_from_similarity,
)
from repro.pgd.distributions import ConditionalEdge, LabelDistribution
from repro.pgd.model import PGD
from repro.utils.rng import ensure_rng

#: The three research areas of the paper's DBLP experiment.
DBLP_AREAS = ("DB", "ML", "SE")

_FIRST_NAMES = (
    "Alice", "Robert", "Carol", "David", "Erica", "Frank", "Grace",
    "Henry", "Irene", "James", "Karen", "Louis", "Maria", "Nathan",
    "Olivia", "Peter", "Quinn", "Rachel", "Samuel", "Teresa",
)
_LAST_NAMES = (
    "Anderson", "Brown", "Castor", "Deshpande", "Evans", "Fischer",
    "Garcia", "Hansen", "Ivanov", "Jackson", "Kimura", "Lindgren",
    "Moreau", "Novak", "Olsen", "Petrov", "Quintana", "Rossi",
    "Schneider", "Tucker",
)


def _author_name(rng, used: set) -> str:
    """A fresh author name; middle initials disambiguate pool collisions.

    Regular authors get unique names so that identity uncertainty comes
    only from the injected duplicates, matching the paper's DBLP setup
    where most author names are distinct.
    """
    for _ in range(64):
        first = _FIRST_NAMES[int(rng.integers(len(_FIRST_NAMES)))]
        last = _LAST_NAMES[int(rng.integers(len(_LAST_NAMES)))]
        middle = chr(ord("A") + int(rng.integers(26)))
        name = f"{first} {middle}. {last}"
        if name not in used:
            used.add(name)
            return name
    # Pool exhausted (very large graphs): fall back to a counted suffix.
    name = f"{first} {middle}. {last} {len(used)}"
    used.add(name)
    return name


def _name_variant(name: str, rng) -> str:
    """A near-duplicate of a name: abbreviation or a one-letter typo."""
    first, rest = name.split(" ", 1)
    choice = int(rng.integers(3))
    if choice == 0:
        return f"{first[0]}. {rest}"          # initial abbreviation
    if choice == 1 and len(rest) > 4:
        position = int(rng.integers(3, len(rest) - 1))
        return f"{first} {rest[:position]}{rest[position + 1:]}"  # deletion
    return f"{first} {rest} "                  # trailing-space variant


def _area_distribution(rng) -> LabelDistribution:
    """Area distribution from synthetic per-area publication counts.

    Most authors publish dominantly in one area (the paper derives the
    distribution from relative conference counts, which are heavily
    concentrated for typical authors).
    """
    counts = rng.integers(0, 3, size=len(DBLP_AREAS)).astype(float)
    dominant = int(rng.integers(len(DBLP_AREAS)))
    counts[dominant] += float(rng.integers(20, 60))
    total = float(counts.sum())
    return LabelDistribution(
        {area: counts[i] / total for i, area in enumerate(DBLP_AREAS)}
    )


def _collaboration_cpt(base: float) -> ConditionalEdge:
    """The paper's correlated edge CPT: p if areas agree, else 0.8 p."""
    cpt = {}
    for i, area_a in enumerate(DBLP_AREAS):
        for area_b in DBLP_AREAS[i:]:
            cpt[(area_a, area_b)] = base if area_a == area_b else 0.8 * base
    return ConditionalEdge(cpt)


def generate_dblp_pgd(
    num_authors: int = 2000,
    edges_per_author: int = 2,
    duplicate_fraction: float = 0.02,
    seed=None,
) -> PGD:
    """Generate the DBLP-like PGD.

    ``duplicate_fraction`` of the authors get a name-variant duplicate
    reference wired into the graph; similarity-based entity resolution
    then proposes the reference sets exactly as the paper describes.
    """
    rng = ensure_rng(seed)
    pgd = PGD(merge="average")
    names = {}
    used_names: set = set()
    for author in range(num_authors):
        names[author] = _author_name(rng, used_names)
        pgd.add_reference(author, _area_distribution(rng))

    structural = preferential_attachment_edges(
        num_authors, edges_per_author, rng
    )
    for ref_a, ref_b in structural:
        # Base probability between 0.5 and 1 grows with the number of
        # collaborations (synthesized from a geometric count).
        collaborations = 1 + int(rng.geometric(0.45))
        base = min(1.0, 0.5 + 0.1 * collaborations)
        pgd.add_edge(ref_a, ref_b, _collaboration_cpt(base))

    # Inject near-duplicate references and connect them to a subset of
    # the original author's neighborhood.
    num_duplicates = int(num_authors * duplicate_fraction)
    adjacency: dict = {}
    for ref_a, ref_b in structural:
        adjacency.setdefault(ref_a, []).append(ref_b)
        adjacency.setdefault(ref_b, []).append(ref_a)
    originals = rng.choice(num_authors, size=num_duplicates, replace=False)
    next_ref = num_authors
    for original in (int(o) for o in originals):
        duplicate = next_ref
        next_ref += 1
        names[duplicate] = _name_variant(names[original], rng)
        pgd.add_reference(duplicate, _area_distribution(rng))
        for neighbor in adjacency.get(original, [])[:2]:
            collaborations = 1 + int(rng.geometric(0.45))
            base = min(1.0, 0.5 + 0.1 * collaborations)
            pgd.add_edge(duplicate, neighbor, _collaboration_cpt(base))

    proposals = reference_sets_from_similarity(
        names,
        normalized_levenshtein,
        threshold=0.9,
        blocking=lambda name: name.strip().split(" ")[-1][:2].lower(),
    )
    for (ref_a, ref_b), merge_probability in proposals:
        pair_potential, singleton_potential = pair_merge_potentials(
            merge_probability
        )
        pgd.add_reference_set((ref_a, ref_b), pair_potential)
        pgd.set_singleton_potential(ref_a, singleton_potential)
        pgd.set_singleton_potential(ref_b, singleton_potential)

    pgd.validate()
    return pgd
