"""IMDB-like co-starring network generator (Section 6.3 substitute).

Synthesizes the statistics the paper derives from the IMDB dump:

* nodes are actors labeled with a distribution over four movie genres
  (Drama, Comedy, Family, Action) from their participation counts,
* edges are co-starring relations between the two main stars of a
  movie, with independent existence probabilities increasing with the
  number of shared movies,
* identity uncertainty comes from duplicate/misspelled actor names.
"""

from __future__ import annotations

from repro.datasets.synthetic import preferential_attachment_edges
from repro.pgd.builders import pair_merge_potentials
from repro.pgd.distributions import LabelDistribution
from repro.pgd.model import PGD
from repro.utils.rng import ensure_rng

#: The four genres of the paper's IMDB experiment.
IMDB_GENRES = ("Drama", "Comedy", "Family", "Action")


def _genre_distribution(rng) -> LabelDistribution:
    """Genre distribution from synthetic per-genre movie counts.

    Typecast actors dominate one genre heavily, mirroring the skew of
    real per-actor genre participation counts.
    """
    counts = rng.integers(0, 3, size=len(IMDB_GENRES)).astype(float)
    dominant = int(rng.integers(len(IMDB_GENRES)))
    counts[dominant] += float(rng.integers(15, 45))
    total = float(counts.sum())
    return LabelDistribution(
        {genre: counts[i] / total for i, genre in enumerate(IMDB_GENRES)}
    )


def generate_imdb_pgd(
    num_actors: int = 2000,
    edges_per_actor: int = 5,
    duplicate_fraction: float = 0.015,
    seed=None,
) -> PGD:
    """Generate the IMDB-like PGD with independent edge probabilities."""
    rng = ensure_rng(seed)
    pgd = PGD(merge="average")
    for actor in range(num_actors):
        pgd.add_reference(actor, _genre_distribution(rng))

    structural = preferential_attachment_edges(num_actors, edges_per_actor, rng)
    adjacency: dict = {}
    for ref_a, ref_b in structural:
        # Co-starring probability rises with the number of shared movies.
        shared_movies = 1 + int(rng.geometric(0.5))
        probability = min(1.0, 0.4 + 0.15 * shared_movies)
        pgd.add_edge(ref_a, ref_b, probability)
        adjacency.setdefault(ref_a, []).append(ref_b)
        adjacency.setdefault(ref_b, []).append(ref_a)

    # Duplicate actor entries from misspelled names: add a duplicate
    # reference wired to part of the original's co-star neighborhood and
    # a reference set with a name-similarity-driven merge probability.
    num_duplicates = int(num_actors * duplicate_fraction)
    originals = rng.choice(num_actors, size=num_duplicates, replace=False)
    next_ref = num_actors
    for original in (int(o) for o in originals):
        duplicate = next_ref
        next_ref += 1
        pgd.add_reference(duplicate, _genre_distribution(rng))
        for neighbor in adjacency.get(original, [])[:2]:
            shared_movies = 1 + int(rng.geometric(0.5))
            pgd.add_edge(
                duplicate, neighbor, min(1.0, 0.4 + 0.15 * shared_movies)
            )
        merge_probability = float(rng.uniform(0.7, 0.98))
        pair_potential, singleton_potential = pair_merge_potentials(
            merge_probability
        )
        pgd.add_reference_set((original, duplicate), pair_potential)
        pgd.set_singleton_potential(original, singleton_potential)
        pgd.set_singleton_potential(duplicate, singleton_potential)

    pgd.validate()
    return pgd
