"""Synthetic workload generator (Section 6, first paragraph).

Reproduces the paper's construction:

* graph structure from the preferential-attachment model [Barabási &
  Albert 1999],
* node label distributions: random probabilities weighted by a zipf
  factor ``p'_i = p_i / i`` and normalized, assigned to labels randomly,
* edge probabilities generated analogously (a two-outcome {T, F}
  distribution built the same way; the T mass is the edge probability),
* reference sets: ``k`` random groups of ``s`` nodes, ``r`` random pairs
  per group placed in size-2 reference sets with random potentials,
* a configurable fraction of references/relations/reference sets is
  uncertain (the paper's "degree of uncertainty", default 20%).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.pgd.distributions import LabelDistribution
from repro.pgd.model import PGD
from repro.utils.errors import ModelError
from repro.utils.rng import ensure_rng


def preferential_attachment_edges(num_nodes: int, edges_per_node: int, rng) -> list:
    """Barabási–Albert preferential attachment edge list.

    Starts from a small clique and attaches every new node to
    ``edges_per_node`` distinct existing nodes chosen proportionally to
    their current degree (the classic repeated-nodes implementation).
    """
    rng = ensure_rng(rng)
    m = max(1, int(edges_per_node))
    if num_nodes <= m:
        raise ModelError(
            f"preferential attachment needs more than {m} nodes, got {num_nodes}"
        )
    edges = []
    # Seed: a clique over the first m+1 nodes.
    repeated = []
    for i in range(m + 1):
        for j in range(i + 1, m + 1):
            edges.append((i, j))
            repeated.extend((i, j))
    for new_node in range(m + 1, num_nodes):
        targets: set = set()
        while len(targets) < m:
            pick = repeated[int(rng.integers(len(repeated)))]
            targets.add(pick)
        for target in sorted(targets):
            edges.append((target, new_node))
            repeated.extend((target, new_node))
    return edges


def zipf_label_distribution(labels: tuple, rng) -> LabelDistribution:
    """Random label distribution with zipf skew (paper's construction).

    Draws ``p_i`` uniformly, weighs ``p'_i = p_i / i``, normalizes, and
    assigns the resulting probabilities to the labels in random order.
    """
    rng = ensure_rng(rng)
    raw = rng.uniform(0.05, 1.0, size=len(labels))
    weighted = [p / (i + 1) for i, p in enumerate(raw)]
    total = sum(weighted)
    probs = [w / total for w in weighted]
    order = list(rng.permutation(len(labels)))
    return LabelDistribution(
        {labels[order[i]]: probs[i] for i in range(len(labels))}
    )


def skewed_edge_probability(rng) -> float:
    """Edge probability from a zipf-skewed two-outcome distribution.

    The {T, F} analogue of the label construction: draw two random
    masses, weigh the second by 1/2, normalize; the T mass is returned.
    Skews towards existence (mean ≈ 2/3) while spanning (0, 1).
    """
    rng = ensure_rng(rng)
    p_true = rng.uniform(0.05, 1.0)
    p_false = rng.uniform(0.05, 1.0) / 2.0
    return p_true / (p_true + p_false)


@dataclass(frozen=True)
class SyntheticConfig:
    """Parameters of the synthetic workload.

    Defaults mirror the paper's ratios: relations = 5 × references,
    ``k = references / 1000`` groups (at least 1), ``s = r = 4``,
    20% of references/relations/reference sets uncertain.
    """

    num_references: int = 1000
    edges_per_node: int = 5
    num_labels: int = 5
    uncertainty: float = 0.2
    groups: int | None = None
    group_size: int = 4
    pairs_per_group: int = 4
    seed: int | None = None

    def resolved_groups(self) -> int:
        """Number of reference-set groups (paper default: refs/1000)."""
        if self.groups is not None:
            return self.groups
        return max(1, self.num_references // 1000)


def generate_synthetic_pgd(config: SyntheticConfig | None = None, **overrides) -> PGD:
    """Generate a synthetic PGD per the paper's recipe.

    Accepts either a :class:`SyntheticConfig` or keyword overrides of its
    fields. The result is reproducible for a fixed ``seed``.
    """
    if config is None:
        config = SyntheticConfig(**overrides)
    elif overrides:
        raise ModelError("pass either a config object or keyword overrides")
    if not 0.0 <= config.uncertainty <= 1.0:
        raise ModelError(f"uncertainty must be in [0, 1], got {config.uncertainty}")
    rng = ensure_rng(config.seed)
    labels = tuple(f"L{i}" for i in range(config.num_labels))
    pgd = PGD(merge="average")

    # --- references with label distributions ---------------------------
    uncertain_nodes = rng.random(config.num_references) < config.uncertainty
    for ref in range(config.num_references):
        if uncertain_nodes[ref]:
            pgd.add_reference(ref, zipf_label_distribution(labels, rng))
        else:
            pgd.add_reference(ref, labels[int(rng.integers(len(labels)))])

    # --- relations with edge probabilities -----------------------------
    edges = preferential_attachment_edges(
        config.num_references, config.edges_per_node, rng
    )
    uncertain_edges = rng.random(len(edges)) < config.uncertainty
    for index, (ref_a, ref_b) in enumerate(edges):
        if uncertain_edges[index]:
            pgd.add_edge(ref_a, ref_b, skewed_edge_probability(rng))
        else:
            pgd.add_edge(ref_a, ref_b, 1.0)

    # --- reference sets -------------------------------------------------
    # Groups are disjoint slices of a random permutation so connected
    # identity components never exceed the group size s (the paper:
    # "the maximum size of a connected component is s").
    k = config.resolved_groups()
    s = config.group_size
    r = config.pairs_per_group
    if k * s > config.num_references:
        raise ModelError(
            f"{k} groups of size {s} need more than "
            f"{config.num_references} references"
        )
    permutation = rng.permutation(config.num_references)
    seen_pairs: set = set()
    for group_index in range(k):
        group = permutation[group_index * s:(group_index + 1) * s]
        for _ in range(r):
            pair = tuple(sorted(rng.choice(group, size=2, replace=False)))
            pair = (int(pair[0]), int(pair[1]))
            if pair in seen_pairs:
                continue
            seen_pairs.add(pair)
            # An uncertain reference set gets a random potential; a
            # "certain" one a high potential (strong merge evidence).
            if rng.random() < config.uncertainty:
                potential = float(rng.uniform(0.1, 0.9))
            else:
                potential = 0.9
            pgd.add_reference_set(pair, potential)

    pgd.validate()
    return pgd
