"""The two-level path store: hash directory + B+ tree + record log.

First level: a hash directory mapping a canonical label sequence ``X``
to a dense integer id (equality access). Second level: a B+ tree over
composite keys ``(sequence id, probability bucket)`` supporting range
scans over buckets (range access on π). Payloads are stored in a record
log and pointed to from the tree.

Two implementations share the :class:`PathStore` interface:
:class:`InMemoryPathStore` for tests and small workloads, and
:class:`DiskPathStore` for the paper's disk-based setting.

Both count the read operations they serve (``read_count``), which the
batched query path and its benchmarks use to show that grouping queries
fetches each shard bucket range once instead of once per query. A
sharded index lays its per-shard stores out as ``shard-00/ ...
shard-NN/`` subdirectories of one bundle directory; the
:func:`shard_directory` / :func:`list_shard_directories` helpers define
that naming in one place.
"""

from __future__ import annotations

import os
import pickle
import struct
import threading
from abc import ABC, abstractmethod
from typing import Iterable, Iterator, Tuple

from repro.storage.btree import BPlusTree
from repro.storage.recordlog import RecordLog
from repro.testing import faults
from repro.utils.errors import StorageError

_COMPOSITE = struct.Struct(">IH")   # (sequence id, bucket in milli-units)
_POINTER = struct.Struct(">QI")     # (record offset, record length)


class PathStore(ABC):
    """Bucketed key/value store keyed by ``(label sequence, bucket)``.

    Buckets are integers in milli-probability units (``0..1000``);
    payloads are opaque bytes-like buffers (the index builder
    serializes path lists into them). Reads return ``bytes`` or — for
    zero-copy implementations — a read-only ``memoryview``; consumers
    must treat payloads as buffers (``struct.unpack_from``,
    ``np.frombuffer``, ``bytes(payload)``) and call ``bytes()`` before
    pickling or using one as a dict key. Every store counts the read
    operations (:meth:`get_bucket` / :meth:`scan_buckets` calls) it
    serves in ``read_count``.
    """

    #: Read operations served; incremented by subclasses, reset with
    #: :meth:`reset_read_count`.
    read_count: int = 0

    #: Total payload bytes handed out by reads (observability: the
    #: engine reports per-query byte deltas in its lookup-stage spans).
    bytes_read: int = 0

    def reset_read_count(self) -> None:
        """Zero the read-operation and bytes-read counters."""
        self.read_count = 0
        self.bytes_read = 0

    @abstractmethod
    def put_bucket(self, label_seq: tuple, bucket: int, payload: bytes) -> None:
        """Store ``payload`` under ``(label_seq, bucket)`` (replaces)."""

    @abstractmethod
    def get_bucket(
        self, label_seq: tuple, bucket: int
    ) -> "bytes | memoryview | None":
        """Fetch the payload of one bucket, or ``None``."""

    @abstractmethod
    def scan_buckets(
        self, label_seq: tuple, min_bucket: int = 0
    ) -> Iterator[Tuple[int, bytes]]:
        """Yield ``(bucket, payload)`` for buckets >= ``min_bucket``, ascending."""

    @abstractmethod
    def label_sequences(self) -> Iterable[tuple]:
        """All label sequences with at least one bucket."""

    @abstractmethod
    def size_bytes(self) -> int:
        """Approximate storage footprint in bytes."""

    @abstractmethod
    def flush(self) -> None:
        """Persist any buffered state."""

    @abstractmethod
    def close(self) -> None:
        """Release resources."""

    def __enter__(self) -> "PathStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _check_bucket(bucket: int) -> int:
    if not isinstance(bucket, int) or bucket < 0 or bucket > 1000:
        raise StorageError(f"bucket must be an int in [0, 1000], got {bucket!r}")
    return bucket


class InMemoryPathStore(PathStore):
    """Dictionary-backed path store for tests and small graphs."""

    def __init__(self) -> None:
        self._data: dict = {}

    def put_bucket(self, label_seq: tuple, bucket: int, payload: bytes) -> None:
        _check_bucket(bucket)
        self._data.setdefault(tuple(label_seq), {})[bucket] = bytes(payload)

    def get_bucket(self, label_seq: tuple, bucket: int) -> bytes | None:
        faults.check("store.read")
        self.read_count += 1
        payload = self._data.get(tuple(label_seq), {}).get(_check_bucket(bucket))
        if payload is not None:
            self.bytes_read += len(payload)
        return payload

    def scan_buckets(self, label_seq: tuple, min_bucket: int = 0):
        faults.check("store.read")
        self.read_count += 1
        buckets = self._data.get(tuple(label_seq), {})
        for bucket in sorted(buckets):
            if bucket >= min_bucket:
                self.bytes_read += len(buckets[bucket])
                yield bucket, buckets[bucket]

    def label_sequences(self):
        return tuple(self._data)

    def size_bytes(self) -> int:
        return sum(
            len(payload)
            for buckets in self._data.values()
            for payload in buckets.values()
        )

    def flush(self) -> None:
        pass

    def close(self) -> None:
        pass


#: Files a DiskPathStore creates under its directory; cleanup code
#: (e.g. bundle rebuilds) iterates this instead of restating the names.
DISK_STORE_FILENAMES = ("index.btree", "index.log", "index.dir")


class DiskPathStore(PathStore):
    """Disk-backed path store: hash directory + B+ tree + record log.

    Creates the :data:`DISK_STORE_FILENAMES` files under ``directory``:
    ``index.btree`` (tree pages), ``index.log`` (payload record log)
    and ``index.dir`` (pickled label-sequence directory, written on
    flush/close).

    With ``mmap_reads`` (the default), payloads are returned as
    zero-copy ``memoryview`` slices over an mmap of the record log —
    bucket payloads feed ``np.frombuffer`` bulk decoding without an
    intermediate copy. Views stay valid for the process lifetime (the
    log is append-only and the mapping survives :meth:`close` while
    referenced). Pass ``mmap_reads=False`` to get fresh ``bytes``.

    All operations are serialized through one reentrant lock, so a store
    may be shared by concurrent readers (the tree's pager cache and the
    log's file handle are position-stateful and would otherwise race);
    :meth:`scan_buckets` materializes its scan under the lock before
    yielding.
    """

    def __init__(self, directory: str, mmap_reads: bool = True) -> None:
        self.directory = str(directory)
        os.makedirs(self.directory, exist_ok=True)
        self._lock = threading.RLock()
        self._mmap_reads = bool(mmap_reads)
        tree_name, log_name, dir_name = DISK_STORE_FILENAMES
        self._tree = BPlusTree(os.path.join(self.directory, tree_name))
        self._log = RecordLog(os.path.join(self.directory, log_name))
        self._dir_path = os.path.join(self.directory, dir_name)
        if os.path.exists(self._dir_path):
            with open(self._dir_path, "rb") as handle:
                self._sequence_ids = pickle.load(handle)
        else:
            self._sequence_ids = {}
        self._dirty_directory = False

    def _sequence_id(self, label_seq: tuple, create: bool) -> int | None:
        label_seq = tuple(label_seq)
        seq_id = self._sequence_ids.get(label_seq)
        if seq_id is None and create:
            seq_id = len(self._sequence_ids)
            self._sequence_ids[label_seq] = seq_id
            self._dirty_directory = True
        return seq_id

    def put_bucket(self, label_seq: tuple, bucket: int, payload: bytes) -> None:
        _check_bucket(bucket)
        with self._lock:
            seq_id = self._sequence_id(label_seq, create=True)
            offset, length = self._log.append(bytes(payload))
            key = _COMPOSITE.pack(seq_id, bucket)
            self._tree.put(key, _POINTER.pack(offset, length))

    def _read_payload(self, offset: int, length: int):
        if self._mmap_reads:
            return self._log.read_view(offset, length)
        return self._log.read(offset, length)

    def get_bucket(
        self, label_seq: tuple, bucket: int
    ) -> "bytes | memoryview | None":
        _check_bucket(bucket)
        faults.check("store.read")
        with self._lock:
            self.read_count += 1
            seq_id = self._sequence_id(label_seq, create=False)
            if seq_id is None:
                return None
            pointer = self._tree.get(_COMPOSITE.pack(seq_id, bucket))
            if pointer is None:
                return None
            offset, length = _POINTER.unpack(pointer)
            self.bytes_read += length
            return self._read_payload(offset, length)

    def scan_buckets(self, label_seq: tuple, min_bucket: int = 0):
        faults.check("store.read")
        with self._lock:
            self.read_count += 1
            seq_id = self._sequence_id(label_seq, create=False)
            if seq_id is None:
                return
            lo = _COMPOSITE.pack(seq_id, _check_bucket(min_bucket))
            hi = _COMPOSITE.pack(seq_id, 1000) + b"\xff"
            results = []
            for key, pointer in self._tree.range(lo, hi):
                _, bucket = _COMPOSITE.unpack(key)
                offset, length = _POINTER.unpack(pointer)
                self.bytes_read += length
                results.append((bucket, self._read_payload(offset, length)))
        yield from results

    def label_sequences(self):
        with self._lock:
            return tuple(self._sequence_ids)

    def size_bytes(self) -> int:
        with self._lock:
            return self._tree.size_bytes() + self._log.size_bytes()

    def flush(self) -> None:
        with self._lock:
            self._tree.flush()
            self._log.flush()
            if self._dirty_directory:
                with open(self._dir_path, "wb") as handle:
                    pickle.dump(self._sequence_ids, handle)
                self._dirty_directory = False

    def close(self) -> None:
        with self._lock:
            self.flush()
            self._tree.close()
            self._log.close()


# ----------------------------------------------------------------------
# Shard-aware on-disk layout
# ----------------------------------------------------------------------

_SHARD_PREFIX = "shard-"


def shard_directory(base_directory: str, shard_id: int) -> str:
    """Directory holding shard ``shard_id``'s store under a bundle dir."""
    if shard_id < 0:
        raise StorageError(f"shard id must be >= 0, got {shard_id}")
    return os.path.join(base_directory, f"{_SHARD_PREFIX}{shard_id:02d}")


def list_shard_directories(base_directory: str) -> list:
    """Existing shard store directories under ``base_directory``, in shard order."""
    if not os.path.isdir(base_directory):
        return []
    shards = []
    for name in os.listdir(base_directory):
        if not name.startswith(_SHARD_PREFIX):
            continue
        suffix = name[len(_SHARD_PREFIX):]
        if suffix.isdigit():
            shards.append((int(suffix), os.path.join(base_directory, name)))
    return [path for _, path in sorted(shards)]
