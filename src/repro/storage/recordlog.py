"""Append-only blob store for index payloads.

Bucket payloads (serialized path lists) are variable-length and often
much larger than a page, so the B+ tree stores fixed-size *pointers*
``(offset, length)`` into this log instead of inlining values — the
classic indirection KyotoCabinet applies for large records.

Reads come in two flavors: :meth:`RecordLog.read` copies the record
into fresh bytes, while :meth:`RecordLog.read_view` returns a zero-copy
``memoryview`` over an mmap of the log — the payload feeds
``np.frombuffer`` bulk decoding without an intermediate copy. The log
is append-only, so mapped regions are immutable; the mapping is lazily
(re)created when a read reaches past its current size.
"""

from __future__ import annotations

import mmap
import os
import struct

from repro.utils.errors import StorageError

_HEADER = struct.Struct(">I")  # record length prefix


class RecordLog:
    """Append-only sequence of length-prefixed binary records."""

    def __init__(self, path: str) -> None:
        self.path = str(path)
        existed = os.path.exists(self.path)
        self._file = open(self.path, "r+b" if existed else "w+b")
        self._file.seek(0, os.SEEK_END)
        self._end = self._file.tell()
        self._map: mmap.mmap | None = None
        self._map_size = 0

    def append(self, payload: bytes) -> tuple:
        """Append ``payload`` and return its ``(offset, length)`` pointer."""
        if not isinstance(payload, (bytes, bytearray)):
            raise StorageError("record payload must be bytes")
        offset = self._end
        self._file.seek(offset)
        self._file.write(_HEADER.pack(len(payload)))
        self._file.write(payload)
        self._end = offset + _HEADER.size + len(payload)
        return offset, len(payload)

    def read(self, offset: int, length: int) -> bytes:
        """Read the record at ``offset`` (its length is also verified)."""
        if offset < 0 or offset + _HEADER.size > self._end:
            raise StorageError(f"record offset {offset} out of range")
        self._file.seek(offset)
        header = self._file.read(_HEADER.size)
        (stored_length,) = _HEADER.unpack(header)
        if stored_length != length:
            raise StorageError(
                f"record length mismatch at {offset}: "
                f"stored {stored_length}, requested {length}"
            )
        payload = self._file.read(length)
        if len(payload) != length:
            raise StorageError(f"short record read at offset {offset}")
        return payload

    def _drop_map(self) -> None:
        if self._map is not None:
            try:
                self._map.close()
            except BufferError:
                # Zero-copy views (numpy arrays, memoryviews) still
                # reference the mapping; it stays alive until they are
                # collected, which keeps those views valid.
                pass
            self._map = None
            self._map_size = 0

    def _mapped(self, end: int) -> mmap.mmap | None:
        """A read-only mapping covering ``[0, end)``, or ``None``."""
        if self._map is None or self._map_size < end:
            self._drop_map()
            self._file.flush()
            size = os.path.getsize(self.path)
            if size < end:
                return None
            try:
                self._map = mmap.mmap(
                    self._file.fileno(), size, access=mmap.ACCESS_READ
                )
            except (OSError, ValueError):  # pragma: no cover - platform quirk
                return None
            self._map_size = size
        return self._map

    def read_view(self, offset: int, length: int):
        """Zero-copy read: a ``memoryview`` over the mapped record.

        The view aliases the mmap directly (no payload copy); the
        length prefix is verified exactly like :meth:`read`. Falls back
        to the copying :meth:`read` when the log cannot be mapped
        (e.g. it is empty).
        """
        if offset < 0 or offset + _HEADER.size > self._end:
            raise StorageError(f"record offset {offset} out of range")
        end = offset + _HEADER.size + length
        mapping = self._mapped(end)
        if mapping is None:
            return self.read(offset, length)
        (stored_length,) = _HEADER.unpack_from(mapping, offset)
        if stored_length != length:
            raise StorageError(
                f"record length mismatch at {offset}: "
                f"stored {stored_length}, requested {length}"
            )
        return memoryview(mapping)[offset + _HEADER.size:end]

    def records(self):
        """Iterate ``(offset, payload)`` over every record, in write order.

        The length prefixes make the log self-delimiting, so a reopened
        log can be replayed without an external offset directory — this
        is what :class:`repro.delta.log.MutationLog` recovery uses. A
        truncated tail (e.g. a crash mid-append) raises
        :class:`StorageError` rather than yielding a partial record.
        """
        offset = 0
        while offset < self._end:
            if offset + _HEADER.size > self._end:
                raise StorageError(
                    f"truncated record header at offset {offset}"
                )
            self._file.seek(offset)
            (length,) = _HEADER.unpack(self._file.read(_HEADER.size))
            payload = self._file.read(length)
            if len(payload) != length:
                raise StorageError(f"short record read at offset {offset}")
            yield offset, payload
            offset += _HEADER.size + length

    def size_bytes(self) -> int:
        """Total bytes written to the log."""
        return self._end

    def flush(self) -> None:
        self._file.flush()

    def close(self) -> None:
        self._drop_map()
        if not self._file.closed:
            self._file.flush()
            self._file.close()

    def __enter__(self) -> "RecordLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
