"""Append-only blob store for index payloads.

Bucket payloads (serialized path lists) are variable-length and often
much larger than a page, so the B+ tree stores fixed-size *pointers*
``(offset, length)`` into this log instead of inlining values — the
classic indirection KyotoCabinet applies for large records.
"""

from __future__ import annotations

import os
import struct

from repro.utils.errors import StorageError

_HEADER = struct.Struct(">I")  # record length prefix


class RecordLog:
    """Append-only sequence of length-prefixed binary records."""

    def __init__(self, path: str) -> None:
        self.path = str(path)
        existed = os.path.exists(self.path)
        self._file = open(self.path, "r+b" if existed else "w+b")
        self._file.seek(0, os.SEEK_END)
        self._end = self._file.tell()

    def append(self, payload: bytes) -> tuple:
        """Append ``payload`` and return its ``(offset, length)`` pointer."""
        if not isinstance(payload, (bytes, bytearray)):
            raise StorageError("record payload must be bytes")
        offset = self._end
        self._file.seek(offset)
        self._file.write(_HEADER.pack(len(payload)))
        self._file.write(payload)
        self._end = offset + _HEADER.size + len(payload)
        return offset, len(payload)

    def read(self, offset: int, length: int) -> bytes:
        """Read the record at ``offset`` (its length is also verified)."""
        if offset < 0 or offset + _HEADER.size > self._end:
            raise StorageError(f"record offset {offset} out of range")
        self._file.seek(offset)
        header = self._file.read(_HEADER.size)
        (stored_length,) = _HEADER.unpack(header)
        if stored_length != length:
            raise StorageError(
                f"record length mismatch at {offset}: "
                f"stored {stored_length}, requested {length}"
            )
        payload = self._file.read(length)
        if len(payload) != length:
            raise StorageError(f"short record read at offset {offset}")
        return payload

    def size_bytes(self) -> int:
        """Total bytes written to the log."""
        return self._end

    def flush(self) -> None:
        self._file.flush()

    def close(self) -> None:
        if not self._file.closed:
            self._file.flush()
            self._file.close()

    def __enter__(self) -> "RecordLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
