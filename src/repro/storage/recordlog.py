"""Append-only blob store for index payloads.

Bucket payloads (serialized path lists) are variable-length and often
much larger than a page, so the B+ tree stores fixed-size *pointers*
``(offset, length)`` into this log instead of inlining values — the
classic indirection KyotoCabinet applies for large records.

Reads come in two flavors: :meth:`RecordLog.read` copies the record
into fresh bytes, while :meth:`RecordLog.read_view` returns a zero-copy
``memoryview`` over an mmap of the log — the payload feeds
``np.frombuffer`` bulk decoding without an intermediate copy. The log
is append-only, so mapped regions are immutable; the mapping is lazily
(re)created when a read reaches past its current size.
"""

from __future__ import annotations

import mmap
import os
import struct

from repro.utils.errors import StorageError

_HEADER = struct.Struct(">I")  # record length prefix


class RecordLog:
    """Append-only sequence of length-prefixed binary records."""

    def __init__(self, path: str) -> None:
        self.path = str(path)
        existed = os.path.exists(self.path)
        self._file = open(self.path, "r+b" if existed else "w+b")
        self._file.seek(0, os.SEEK_END)
        self._end = self._file.tell()
        self._map: mmap.mmap | None = None
        self._map_size = 0
        #: Updated by :meth:`records` scans: whether the last scan hit a
        #: torn tail, and where the last complete record ends.
        self.truncated_tail = False
        self.valid_end = self._end

    def append(self, payload: bytes) -> tuple:
        """Append ``payload`` and return its ``(offset, length)`` pointer."""
        if not isinstance(payload, (bytes, bytearray)):
            raise StorageError("record payload must be bytes")
        offset = self._end
        self._file.seek(offset)
        self._file.write(_HEADER.pack(len(payload)))
        self._file.write(payload)
        self._end = offset + _HEADER.size + len(payload)
        return offset, len(payload)

    def read(self, offset: int, length: int) -> bytes:
        """Read the record at ``offset`` (its length is also verified)."""
        if offset < 0 or offset + _HEADER.size > self._end:
            raise StorageError(f"record offset {offset} out of range")
        self._file.seek(offset)
        header = self._file.read(_HEADER.size)
        (stored_length,) = _HEADER.unpack(header)
        if stored_length != length:
            raise StorageError(
                f"record length mismatch at {offset}: "
                f"stored {stored_length}, requested {length}"
            )
        payload = self._file.read(length)
        if len(payload) != length:
            raise StorageError(f"short record read at offset {offset}")
        return payload

    def _drop_map(self) -> None:
        if self._map is not None:
            try:
                self._map.close()
            except BufferError:
                # Zero-copy views (numpy arrays, memoryviews) still
                # reference the mapping; it stays alive until they are
                # collected, which keeps those views valid.
                pass
            self._map = None
            self._map_size = 0

    def _mapped(self, end: int) -> mmap.mmap | None:
        """A read-only mapping covering ``[0, end)``, or ``None``."""
        if self._map is None or self._map_size < end:
            self._drop_map()
            self._file.flush()
            size = os.path.getsize(self.path)
            if size < end:
                return None
            try:
                self._map = mmap.mmap(
                    self._file.fileno(), size, access=mmap.ACCESS_READ
                )
            except (OSError, ValueError):  # pragma: no cover - platform quirk
                return None
            self._map_size = size
        return self._map

    def read_view(self, offset: int, length: int):
        """Zero-copy read: a ``memoryview`` over the mapped record.

        The view aliases the mmap directly (no payload copy); the
        length prefix is verified exactly like :meth:`read`. Falls back
        to the copying :meth:`read` when the log cannot be mapped
        (e.g. it is empty).
        """
        if offset < 0 or offset + _HEADER.size > self._end:
            raise StorageError(f"record offset {offset} out of range")
        end = offset + _HEADER.size + length
        mapping = self._mapped(end)
        if mapping is None:
            return self.read(offset, length)
        (stored_length,) = _HEADER.unpack_from(mapping, offset)
        if stored_length != length:
            raise StorageError(
                f"record length mismatch at {offset}: "
                f"stored {stored_length}, requested {length}"
            )
        return memoryview(mapping)[offset + _HEADER.size:end]

    def records(self, tolerate_truncation: bool = False):
        """Iterate ``(offset, payload)`` over every record, in write order.

        The length prefixes make the log self-delimiting, so a reopened
        log can be replayed without an external offset directory — this
        is what :class:`repro.delta.log.MutationLog` recovery uses.

        A truncated tail (a crash mid-append leaves a partial header or
        a short payload) raises :class:`StorageError` by default. With
        ``tolerate_truncation=True`` iteration instead stops cleanly at
        the last complete record, sets :attr:`truncated_tail` and
        leaves :attr:`valid_end` pointing at the first torn byte —
        callers can :meth:`truncate_to` it to make the log appendable
        again. Every complete prefix record is still yielded.
        """
        self.truncated_tail = False
        offset = 0
        while offset < self._end:
            if offset + _HEADER.size > self._end:
                if tolerate_truncation:
                    self.truncated_tail = True
                    self.valid_end = offset
                    return
                raise StorageError(
                    f"truncated record header at offset {offset}"
                )
            self._file.seek(offset)
            (length,) = _HEADER.unpack(self._file.read(_HEADER.size))
            payload = self._file.read(length)
            if len(payload) != length:
                if tolerate_truncation:
                    self.truncated_tail = True
                    self.valid_end = offset
                    return
                raise StorageError(f"short record read at offset {offset}")
            yield offset, payload
            offset += _HEADER.size + length
        self.valid_end = offset

    def truncate_to(self, offset: int) -> None:
        """Chop the log back to ``offset`` bytes (crash recovery).

        Used after a tolerant :meth:`records` scan found a torn tail:
        truncating to ``valid_end`` discards the partial record so
        subsequent appends produce a well-formed log again. The mmap is
        dropped first — a mapping over the shrunk region would be
        stale.
        """
        if offset < 0 or offset > self._end:
            raise StorageError(
                f"truncate offset {offset} out of range [0, {self._end}]"
            )
        self._drop_map()
        self._file.truncate(offset)
        self._file.flush()
        self._end = offset

    def size_bytes(self) -> int:
        """Total bytes written to the log."""
        return self._end

    def flush(self) -> None:
        self._file.flush()

    def close(self) -> None:
        self._drop_map()
        if not self._file.closed:
            self._file.flush()
            self._file.close()

    def __enter__(self) -> "RecordLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
