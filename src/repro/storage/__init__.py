"""Disk-backed storage substrate for the path index.

The paper stores its index in KyotoCabinet as a two-level structure: a
hash index on the label sequence and a B+ tree on the probability bucket.
This package provides an equivalent pure-Python substrate:

* :class:`~repro.storage.pager.Pager` — fixed-size page file manager,
* :class:`~repro.storage.btree.BPlusTree` — disk B+ tree over byte keys
  with range scans (the second level),
* :class:`~repro.storage.recordlog.RecordLog` — append-only blob store
  for bucket payloads,
* :class:`~repro.storage.kvstore.DiskPathStore` /
  :class:`~repro.storage.kvstore.InMemoryPathStore` — the two-level
  path-store interface the index builder writes to.
"""

from repro.storage.pager import Pager, PAGE_SIZE
from repro.storage.btree import BPlusTree
from repro.storage.recordlog import RecordLog
from repro.storage.kvstore import (
    PathStore,
    InMemoryPathStore,
    DiskPathStore,
)

__all__ = [
    "Pager",
    "PAGE_SIZE",
    "BPlusTree",
    "RecordLog",
    "PathStore",
    "InMemoryPathStore",
    "DiskPathStore",
]
