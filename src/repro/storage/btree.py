"""Disk-backed B+ tree over byte-string keys.

The second level of the paper's two-level index: supports exact lookup
and ascending range scans over probability buckets. Keys and values are
byte strings; values are expected to be small fixed-size pointers into a
:class:`~repro.storage.recordlog.RecordLog` (large payloads should not
be inlined).

Implementation notes
--------------------
* Nodes are serialized into fixed 4 KiB pages (see
  :mod:`repro.storage.pager`); a node splits when its serialization no
  longer fits in a page.
* Leaves are chained for range scans.
* Inserting an existing key replaces its value; deletion is not
  supported (the path index is write-once, read-many).
"""

from __future__ import annotations

import struct
from typing import Iterator, Tuple

from repro.storage.pager import PAGE_SIZE, Pager
from repro.utils.errors import StorageError

_LEAF, _INTERNAL = 1, 2
_NODE_HEADER = struct.Struct(">BHI")  # type, count, next_leaf/child0
_TREE_HEADER = struct.Struct(">4sIQ")  # magic, root page, entry count
_MAGIC = b"BPT1"

#: Largest key+value size a node entry may have; guarantees that a node
#: with a single entry always fits in a page.
MAX_ENTRY_SIZE = PAGE_SIZE // 4


class _Node:
    __slots__ = ("kind", "keys", "values", "children", "next_leaf")

    def __init__(self, kind: int) -> None:
        self.kind = kind
        self.keys: list = []
        self.values: list = []      # leaves only
        self.children: list = []    # internals only: len(keys) + 1 children
        self.next_leaf = 0

    # -- serialization -------------------------------------------------

    def to_bytes(self) -> bytes:
        parts = []
        if self.kind == _LEAF:
            parts.append(_NODE_HEADER.pack(_LEAF, len(self.keys), self.next_leaf))
            for key, value in zip(self.keys, self.values):
                parts.append(struct.pack(">H", len(key)))
                parts.append(key)
                parts.append(struct.pack(">H", len(value)))
                parts.append(value)
        else:
            parts.append(
                _NODE_HEADER.pack(_INTERNAL, len(self.keys), self.children[0])
            )
            for key, child in zip(self.keys, self.children[1:]):
                parts.append(struct.pack(">H", len(key)))
                parts.append(key)
                parts.append(struct.pack(">I", child))
        data = b"".join(parts)
        if len(data) > PAGE_SIZE:
            raise StorageError("internal error: node serialized over page size")
        return data + b"\x00" * (PAGE_SIZE - len(data))

    @classmethod
    def from_bytes(cls, data: bytes) -> "_Node":
        kind, count, extra = _NODE_HEADER.unpack_from(data, 0)
        node = cls(kind)
        pos = _NODE_HEADER.size
        if kind == _LEAF:
            node.next_leaf = extra
            for _ in range(count):
                (klen,) = struct.unpack_from(">H", data, pos)
                pos += 2
                key = data[pos:pos + klen]
                pos += klen
                (vlen,) = struct.unpack_from(">H", data, pos)
                pos += 2
                value = data[pos:pos + vlen]
                pos += vlen
                node.keys.append(key)
                node.values.append(value)
        elif kind == _INTERNAL:
            node.children.append(extra)
            for _ in range(count):
                (klen,) = struct.unpack_from(">H", data, pos)
                pos += 2
                key = data[pos:pos + klen]
                pos += klen
                (child,) = struct.unpack_from(">I", data, pos)
                pos += 4
                node.keys.append(key)
                node.children.append(child)
        else:
            raise StorageError(f"corrupt node page (kind={kind})")
        return node

    def serialized_size(self) -> int:
        size = _NODE_HEADER.size
        if self.kind == _LEAF:
            for key, value in zip(self.keys, self.values):
                size += 4 + len(key) + len(value)
        else:
            for key in self.keys:
                size += 6 + len(key)
        return size


class BPlusTree:
    """Ordered mapping ``bytes -> bytes`` stored in a page file."""

    def __init__(self, path: str) -> None:
        self._pager = Pager(path)
        header = self._pager.read(0)
        magic, root, count = _TREE_HEADER.unpack_from(header, 0)
        if magic == _MAGIC:
            self._root = root
            self._count = count
        elif magic == b"\x00\x00\x00\x00":
            root_node = _Node(_LEAF)
            self._root = self._pager.allocate()
            self._pager.write(self._root, root_node.to_bytes())
            self._count = 0
            self._write_header()
        else:
            raise StorageError(f"not a B+ tree file: {path!r}")

    def _write_header(self) -> None:
        header = _TREE_HEADER.pack(_MAGIC, self._root, self._count)
        self._pager.write(0, header + b"\x00" * (PAGE_SIZE - len(header)))

    def _load(self, page_id: int) -> _Node:
        return _Node.from_bytes(self._pager.read(page_id))

    def _store(self, page_id: int, node: _Node) -> None:
        self._pager.write(page_id, node.to_bytes())

    def __len__(self) -> int:
        return self._count

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------

    def put(self, key: bytes, value: bytes) -> None:
        """Insert ``key -> value``, replacing any existing value."""
        if not isinstance(key, (bytes, bytearray)) or not isinstance(
            value, (bytes, bytearray)
        ):
            raise StorageError("B+ tree keys and values must be bytes")
        if 4 + len(key) + len(value) > MAX_ENTRY_SIZE:
            raise StorageError(
                f"entry too large ({len(key)}+{len(value)} bytes); store the "
                "payload in a RecordLog and index its pointer instead"
            )
        split = self._insert(self._root, bytes(key), bytes(value))
        if split is not None:
            sep_key, right_page = split
            new_root = _Node(_INTERNAL)
            new_root.keys = [sep_key]
            new_root.children = [self._root, right_page]
            root_page = self._pager.allocate()
            self._store(root_page, new_root)
            self._root = root_page
        self._write_header()

    def _insert(self, page_id: int, key: bytes, value: bytes):
        node = self._load(page_id)
        if node.kind == _LEAF:
            idx = _lower_bound(node.keys, key)
            if idx < len(node.keys) and node.keys[idx] == key:
                node.values[idx] = value
            else:
                node.keys.insert(idx, key)
                node.values.insert(idx, value)
                self._count += 1
            if node.serialized_size() > PAGE_SIZE:
                return self._split_leaf(page_id, node)
            self._store(page_id, node)
            return None
        # internal node: descend into the child whose range covers key
        child_idx = _upper_bound(node.keys, key)
        split = self._insert(node.children[child_idx], key, value)
        if split is None:
            return None
        sep_key, right_page = split
        node.keys.insert(child_idx, sep_key)
        node.children.insert(child_idx + 1, right_page)
        if node.serialized_size() > PAGE_SIZE:
            return self._split_internal(page_id, node)
        self._store(page_id, node)
        return None

    def _split_leaf(self, page_id: int, node: _Node):
        mid = len(node.keys) // 2
        right = _Node(_LEAF)
        right.keys = node.keys[mid:]
        right.values = node.values[mid:]
        right.next_leaf = node.next_leaf
        node.keys = node.keys[:mid]
        node.values = node.values[:mid]
        right_page = self._pager.allocate()
        node.next_leaf = right_page
        self._store(right_page, right)
        self._store(page_id, node)
        return right.keys[0], right_page

    def _split_internal(self, page_id: int, node: _Node):
        mid = len(node.keys) // 2
        sep_key = node.keys[mid]
        right = _Node(_INTERNAL)
        right.keys = node.keys[mid + 1:]
        right.children = node.children[mid + 1:]
        node.keys = node.keys[:mid]
        node.children = node.children[:mid + 1]
        right_page = self._pager.allocate()
        self._store(right_page, right)
        self._store(page_id, node)
        return sep_key, right_page

    # ------------------------------------------------------------------
    # Read path
    # ------------------------------------------------------------------

    def get(self, key: bytes) -> bytes | None:
        """Exact lookup; ``None`` when the key is absent."""
        key = bytes(key)
        page_id = self._root
        while True:
            node = self._load(page_id)
            if node.kind == _LEAF:
                idx = _lower_bound(node.keys, key)
                if idx < len(node.keys) and node.keys[idx] == key:
                    return node.values[idx]
                return None
            page_id = node.children[_upper_bound(node.keys, key)]

    def range(self, lo: bytes, hi: bytes | None = None) -> Iterator[Tuple[bytes, bytes]]:
        """Yield ``(key, value)`` for ``lo <= key < hi`` in ascending order.

        ``hi=None`` scans to the end of the tree.
        """
        lo = bytes(lo)
        page_id = self._root
        while True:
            node = self._load(page_id)
            if node.kind == _LEAF:
                break
            page_id = node.children[_upper_bound(node.keys, lo)]
        idx = _lower_bound(node.keys, lo)
        while True:
            while idx < len(node.keys):
                key = node.keys[idx]
                if hi is not None and key >= hi:
                    return
                yield key, node.values[idx]
                idx += 1
            if not node.next_leaf:
                return
            node = self._load(node.next_leaf)
            idx = 0

    def items(self) -> Iterator[Tuple[bytes, bytes]]:
        """All entries in ascending key order."""
        return self.range(b"")

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def flush(self) -> None:
        self._pager.flush()

    def close(self) -> None:
        self._pager.close()

    def size_bytes(self) -> int:
        """Size of the backing page file in bytes."""
        return self._pager.size_bytes()

    def __enter__(self) -> "BPlusTree":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _lower_bound(keys: list, key: bytes) -> int:
    lo, hi = 0, len(keys)
    while lo < hi:
        mid = (lo + hi) // 2
        if keys[mid] < key:
            lo = mid + 1
        else:
            hi = mid
    return lo


def _upper_bound(keys: list, key: bytes) -> int:
    lo, hi = 0, len(keys)
    while lo < hi:
        mid = (lo + hi) // 2
        if keys[mid] <= key:
            lo = mid + 1
        else:
            hi = mid
    return lo
