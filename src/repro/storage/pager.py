"""Fixed-size page file manager.

The B+ tree persists its nodes as 4 KiB pages in a single file through
this pager. Page 0 is reserved for the owner's metadata (the tree
header). The pager offers allocation, read, write and an in-memory page
cache with write-back on flush.
"""

from __future__ import annotations

import os

from repro.utils.errors import StorageError

#: Size of every page in bytes.
PAGE_SIZE = 4096


class Pager:
    """Page-granular access to a single file.

    Parameters
    ----------
    path:
        File path; created (with a zeroed page 0) if absent.
    cache_pages:
        Maximum number of pages kept in the write-back cache.
    """

    def __init__(self, path: str, cache_pages: int = 1024) -> None:
        self.path = str(path)
        self._cache: dict = {}
        self._dirty: set = set()
        self._cache_limit = max(cache_pages, 8)
        existed = os.path.exists(self.path)
        self._file = open(self.path, "r+b" if existed else "w+b")
        if existed:
            size = os.path.getsize(self.path)
            if size % PAGE_SIZE != 0:
                raise StorageError(
                    f"file {self.path!r} size {size} is not page aligned"
                )
            self._num_pages = size // PAGE_SIZE
            if self._num_pages == 0:
                self._bootstrap()
        else:
            self._bootstrap()

    def _bootstrap(self) -> None:
        self._num_pages = 1
        self._file.seek(0)
        self._file.write(b"\x00" * PAGE_SIZE)
        self._file.flush()

    @property
    def num_pages(self) -> int:
        """Number of allocated pages including the reserved header page."""
        return self._num_pages

    def allocate(self) -> int:
        """Allocate a fresh zeroed page and return its id."""
        page_id = self._num_pages
        self._num_pages += 1
        self._cache[page_id] = bytearray(PAGE_SIZE)
        self._dirty.add(page_id)
        self._maybe_evict()
        return page_id

    def read(self, page_id: int) -> bytes:
        """Read a page as bytes."""
        self._check_page(page_id)
        cached = self._cache.get(page_id)
        if cached is not None:
            return bytes(cached)
        self._file.seek(page_id * PAGE_SIZE)
        data = self._file.read(PAGE_SIZE)
        if len(data) != PAGE_SIZE:
            raise StorageError(
                f"short read of page {page_id} in {self.path!r}"
            )
        self._cache[page_id] = bytearray(data)
        self._maybe_evict(exclude=page_id)
        return data

    def write(self, page_id: int, data: bytes) -> None:
        """Replace a page's contents (must be exactly one page long)."""
        self._check_page(page_id)
        if len(data) != PAGE_SIZE:
            raise StorageError(
                f"page write must be {PAGE_SIZE} bytes, got {len(data)}"
            )
        self._cache[page_id] = bytearray(data)
        self._dirty.add(page_id)
        self._maybe_evict(exclude=page_id)

    def flush(self) -> None:
        """Write all dirty cached pages back to the file."""
        for page_id in sorted(self._dirty):
            self._file.seek(page_id * PAGE_SIZE)
            self._file.write(bytes(self._cache[page_id]))
        self._dirty.clear()
        self._file.flush()

    def close(self) -> None:
        """Flush and close the underlying file."""
        if not self._file.closed:
            self.flush()
            self._file.close()

    def size_bytes(self) -> int:
        """Current file size in bytes."""
        return self._num_pages * PAGE_SIZE

    def _check_page(self, page_id: int) -> None:
        if page_id < 0 or page_id >= self._num_pages:
            raise StorageError(
                f"page {page_id} out of range (file has {self._num_pages})"
            )

    def _maybe_evict(self, exclude: int | None = None) -> None:
        if len(self._cache) <= self._cache_limit:
            return
        # Evict clean pages first; flush if everything is dirty.
        clean = [p for p in self._cache if p not in self._dirty and p != exclude]
        if not clean:
            self.flush()
            clean = [p for p in self._cache if p != exclude]
        for page_id in clean[: len(self._cache) - self._cache_limit]:
            del self._cache[page_id]

    def __enter__(self) -> "Pager":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
