"""repro — Subgraph pattern matching over uncertain graphs with identity
linkage uncertainty.

A faithful, from-scratch Python reproduction of Moustafa, Kimmig,
Deshpande & Getoor, *"Subgraph Pattern Matching over Uncertain Graphs
with Identity Linkage Uncertainty"* (ICDE 2014, arXiv:1305.7006).

Quickstart
----------
>>> from repro import PGD, build_peg, QueryEngine, QueryGraph
>>> pgd = PGD()
>>> pgd.add_reference("r1", {"a": 0.8, "b": 0.2})
>>> pgd.add_reference("r2", "b")
>>> pgd.add_edge("r1", "r2", 0.9)
>>> peg = build_peg(pgd)
>>> engine = QueryEngine(peg, max_length=1, beta=0.05)
>>> query = QueryGraph({"u": "a", "v": "b"}, [("u", "v")])
>>> result = engine.query(query, alpha=0.5)
>>> [round(m.probability, 2) for m in result.matches]
[0.72]
"""

from repro.pgd import (
    PGD,
    LabelDistribution,
    BernoulliEdge,
    ConditionalEdge,
    MergeFunctions,
    get_merge_functions,
    register_merge_functions,
    pgd_from_edge_list,
    pair_merge_potentials,
    reference_sets_from_similarity,
)
from repro.peg import (
    ProbabilisticEntityGraph,
    Match,
    build_peg,
    enumerate_worlds,
    world_match_probability,
)
from repro.index import (
    PathIndex,
    ShardedPathIndex,
    build_path_index,
    build_sharded_path_index,
    build_context,
)
from repro.query import (
    QueryGraph,
    QueryEngine,
    QueryOptions,
    QueryResult,
    QueryPlanner,
    PlanInfo,
    EstimatorFeedback,
    exhaustive_matches,
    direct_matches,
)
from repro.relational import sql_baseline_matches
from repro.obs import (
    MetricsRegistry,
    Tracer,
    current_span,
    get_registry,
    render_trace,
)
from repro.service import QueryService, ResultCache, ServiceStats
from repro.delta import (
    AddEdge,
    AddEntity,
    DeltaOverlayIndex,
    MergeEntities,
    MutationLog,
    UpdateEdgeDistribution,
    UpdateLabelProbability,
    apply_mutations,
)

__version__ = "1.10.0"

__all__ = [
    "PGD",
    "LabelDistribution",
    "BernoulliEdge",
    "ConditionalEdge",
    "MergeFunctions",
    "get_merge_functions",
    "register_merge_functions",
    "pgd_from_edge_list",
    "pair_merge_potentials",
    "reference_sets_from_similarity",
    "ProbabilisticEntityGraph",
    "Match",
    "build_peg",
    "enumerate_worlds",
    "world_match_probability",
    "PathIndex",
    "ShardedPathIndex",
    "build_path_index",
    "build_sharded_path_index",
    "build_context",
    "QueryGraph",
    "QueryEngine",
    "QueryOptions",
    "QueryResult",
    "QueryPlanner",
    "PlanInfo",
    "EstimatorFeedback",
    "exhaustive_matches",
    "direct_matches",
    "sql_baseline_matches",
    "MetricsRegistry",
    "Tracer",
    "current_span",
    "get_registry",
    "render_trace",
    "QueryService",
    "ResultCache",
    "ServiceStats",
    "AddEdge",
    "AddEntity",
    "DeltaOverlayIndex",
    "MergeEntities",
    "MutationLog",
    "UpdateEdgeDistribution",
    "UpdateLabelProbability",
    "apply_mutations",
    "__version__",
]
