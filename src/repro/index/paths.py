"""Compact binary serialization of indexed paths.

A bucket payload is a sequence of paths sharing the same label sequence
and probability bucket. Each path stores its node ids and the two
probability components ``Prle`` and ``Prn`` (the label sequence lives in
the key, so it is not repeated per path).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Iterable, Tuple

from repro.utils.errors import IndexError_

_COUNT = struct.Struct(">I")
_PATH_HEADER = struct.Struct(">B")
_NODE = struct.Struct(">I")
_PROBS = struct.Struct(">dd")


@dataclass(frozen=True)
class IndexedPath:
    """One indexed path under a fixed node-label assignment.

    Attributes
    ----------
    nodes:
        Node ids along the path (length = path length + 1).
    prle:
        Label-and-edge probability component under the key's label
        assignment.
    prn:
        Node-existence probability component of the path's node set.
    """

    nodes: Tuple[int, ...]
    prle: float
    prn: float

    @property
    def probability(self) -> float:
        """Full path probability ``Prle * Prn``."""
        return self.prle * self.prn

    def reversed(self) -> "IndexedPath":
        """The same path traversed from the other end."""
        return IndexedPath(tuple(reversed(self.nodes)), self.prle, self.prn)


def encode_paths(paths: Iterable[IndexedPath]) -> bytes:
    """Serialize a sequence of paths into a bucket payload."""
    paths = list(paths)
    parts = [_COUNT.pack(len(paths))]
    for path in paths:
        if len(path.nodes) > 255:
            raise IndexError_("path too long to serialize (max 255 nodes)")
        parts.append(_PATH_HEADER.pack(len(path.nodes)))
        parts.extend(_NODE.pack(node) for node in path.nodes)
        parts.append(_PROBS.pack(path.prle, path.prn))
    return b"".join(parts)


def payload_count(payload: bytes) -> int:
    """Number of paths in a bucket payload (header only, no decode)."""
    (count,) = _COUNT.unpack_from(payload, 0)
    return count


def concat_payloads(payloads: Iterable[bytes]) -> bytes:
    """Merge bucket payloads of the same key without decoding.

    The format is a count header followed by self-delimiting records, so
    concatenation is summing the headers and joining the bodies — the
    sharded builder's reduce phase merges spilled partitions this way.
    """
    payloads = list(payloads)
    total = sum(payload_count(payload) for payload in payloads)
    parts = [_COUNT.pack(total)]
    parts.extend(payload[_COUNT.size:] for payload in payloads)
    return b"".join(parts)


def decode_paths(payload: bytes) -> list:
    """Deserialize a bucket payload back into :class:`IndexedPath` objects."""
    (count,) = _COUNT.unpack_from(payload, 0)
    pos = _COUNT.size
    paths = []
    for _ in range(count):
        (num_nodes,) = _PATH_HEADER.unpack_from(payload, pos)
        pos += _PATH_HEADER.size
        nodes = struct.unpack_from(f">{num_nodes}I", payload, pos)
        pos += _NODE.size * num_nodes
        prle, prn = _PROBS.unpack_from(payload, pos)
        pos += _PROBS.size
        paths.append(IndexedPath(nodes, prle, prn))
    if pos != len(payload):
        raise IndexError_(
            f"corrupt bucket payload: {len(payload) - pos} trailing bytes"
        )
    return paths
