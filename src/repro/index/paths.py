"""Compact binary serialization of indexed paths.

A bucket payload is a sequence of paths sharing the same label sequence
and probability bucket. Each path stores its node ids and the two
probability components ``Prle`` and ``Prn`` (the label sequence lives in
the key, so it is not repeated per path).

All paths of one bucket share the key's label sequence, so records are
fixed-width in practice; :func:`decode_path_arrays` exploits that to
parse a whole payload with ``np.frombuffer`` + offset arithmetic into
node-id/probability arrays (zero-copy compatible with the mmap-backed
store reads), and :func:`decode_paths_above` materializes
:class:`IndexedPath` objects only for the rows surviving a probability
threshold. A record-by-record scalar decoder remains as the fallback
for heterogeneous payloads and numpy-free environments.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Iterable, Tuple

from repro.utils.errors import IndexError_

try:  # numpy accelerates bulk decoding but is not a hard dependency here
    import numpy as _np
except ImportError:  # pragma: no cover - the toolchain ships numpy
    _np = None

_COUNT = struct.Struct(">I")
_PATH_HEADER = struct.Struct(">B")
_NODE = struct.Struct(">I")
_PROBS = struct.Struct(">dd")


@dataclass(frozen=True)
class IndexedPath:
    """One indexed path under a fixed node-label assignment.

    Attributes
    ----------
    nodes:
        Node ids along the path (length = path length + 1).
    prle:
        Label-and-edge probability component under the key's label
        assignment.
    prn:
        Node-existence probability component of the path's node set.
    """

    nodes: Tuple[int, ...]
    prle: float
    prn: float

    @property
    def probability(self) -> float:
        """Full path probability ``Prle * Prn``."""
        return self.prle * self.prn

    def reversed(self) -> "IndexedPath":
        """The same path traversed from the other end."""
        return IndexedPath(tuple(reversed(self.nodes)), self.prle, self.prn)


def encode_paths(paths: Iterable[IndexedPath]) -> bytes:
    """Serialize a sequence of paths into a bucket payload."""
    paths = list(paths)
    parts = [_COUNT.pack(len(paths))]
    for path in paths:
        if len(path.nodes) > 255:
            raise IndexError_("path too long to serialize (max 255 nodes)")
        parts.append(_PATH_HEADER.pack(len(path.nodes)))
        parts.extend(_NODE.pack(node) for node in path.nodes)
        parts.append(_PROBS.pack(path.prle, path.prn))
    return b"".join(parts)


def payload_count(payload: bytes) -> int:
    """Number of paths in a bucket payload (header only, no decode)."""
    (count,) = _COUNT.unpack_from(payload, 0)
    return count


def concat_payloads(payloads: Iterable[bytes]) -> bytes:
    """Merge bucket payloads of the same key without decoding.

    The format is a count header followed by self-delimiting records, so
    concatenation is summing the headers and joining the bodies — the
    sharded builder's reduce phase merges spilled partitions this way.
    """
    payloads = list(payloads)
    total = sum(payload_count(payload) for payload in payloads)
    parts = [_COUNT.pack(total)]
    parts.extend(payload[_COUNT.size:] for payload in payloads)
    return b"".join(parts)


def _decode_paths_scalar(payload) -> list:
    """Record-by-record reference decoder (any mix of path lengths)."""
    (count,) = _COUNT.unpack_from(payload, 0)
    pos = _COUNT.size
    paths = []
    for _ in range(count):
        (num_nodes,) = _PATH_HEADER.unpack_from(payload, pos)
        pos += _PATH_HEADER.size
        nodes = struct.unpack_from(f">{num_nodes}I", payload, pos)
        pos += _NODE.size * num_nodes
        prle, prn = _PROBS.unpack_from(payload, pos)
        pos += _PROBS.size
        paths.append(IndexedPath(nodes, prle, prn))
    if pos != len(payload):
        raise IndexError_(
            f"corrupt bucket payload: {len(payload) - pos} trailing bytes"
        )
    return paths


def decode_path_arrays(payload):
    """Bulk-parse a fixed-width payload into numpy arrays.

    Returns ``(nodes, prle, prn)`` — an ``(count, num_nodes)`` int64
    node-id matrix and two float64 arrays — or ``None`` when the
    payload is not fixed-width (mixed path lengths) or numpy is
    unavailable; callers then fall back to the scalar decoder. Accepts
    any buffer (bytes, memoryview over an mmap) without copying the
    payload up front.
    """
    if _np is None:
        return None
    (count,) = _COUNT.unpack_from(payload, 0)
    if count == 0:
        if len(payload) != _COUNT.size:
            return None  # scalar decoder reports the trailing bytes
        empty = _np.zeros((0, 0), dtype=_np.int64)
        return empty, _np.zeros(0), _np.zeros(0)
    num_nodes = payload[_COUNT.size]
    record = _PATH_HEADER.size + _NODE.size * num_nodes + _PROBS.size
    if len(payload) != _COUNT.size + count * record:
        return None
    raw = _np.frombuffer(payload, dtype=_np.uint8, offset=_COUNT.size)
    records = raw.reshape(count, record)
    if not (records[:, 0] == num_nodes).all():
        return None
    node_bytes = _np.ascontiguousarray(
        records[:, _PATH_HEADER.size:_PATH_HEADER.size + _NODE.size * num_nodes]
    )
    if num_nodes:
        nodes = node_bytes.view(">u4").astype(_np.int64)
    else:
        nodes = _np.zeros((count, 0), dtype=_np.int64)
    probs = _np.ascontiguousarray(records[:, record - _PROBS.size:]).view(">f8")
    return nodes, probs[:, 0].astype(_np.float64), probs[:, 1].astype(_np.float64)


def _materialize(nodes, prle, prn) -> list:
    """:class:`IndexedPath` objects from decoded (and masked) arrays."""
    return [
        IndexedPath(tuple(row), path_prle, path_prn)
        for row, path_prle, path_prn in zip(
            nodes.tolist(), prle.tolist(), prn.tolist()
        )
    ]


def decode_paths(payload) -> list:
    """Deserialize a bucket payload back into :class:`IndexedPath` objects."""
    arrays = decode_path_arrays(payload)
    if arrays is None:
        return _decode_paths_scalar(payload)
    return _materialize(*arrays)


def decode_paths_above(payload, alpha: float) -> list:
    """Paths of a payload with ``Prle * Prn >= alpha``.

    The threshold test runs on the decoded probability arrays; only
    surviving rows are materialized into :class:`IndexedPath` objects.
    """
    arrays = decode_path_arrays(payload)
    if arrays is None:
        return [
            path for path in _decode_paths_scalar(payload)
            if path.probability >= alpha
        ]
    nodes, prle, prn = arrays
    mask = prle * prn >= alpha
    if not mask.any():
        return []
    if mask.all():
        return _materialize(nodes, prle, prn)
    return _materialize(nodes[mask], prle[mask], prn[mask])
