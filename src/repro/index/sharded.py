"""Hash-sharded path index: partitioned storage, parallel construction.

The paper builds one monolithic path index per PEG, which caps both
build parallelism and the graph sizes one store can serve.
:class:`ShardedPathIndex` partitions the indexed paths across ``N``
shards by a stable hash of the canonical label sequence
(:func:`shard_for_sequence`); each shard is a full
:class:`~repro.index.path_index.PathIndex` over its own store, and the
sharded index implements the same
:class:`~repro.index.protocol.PathIndexProtocol`, so the query engine,
the offline bundle, and the serving layer work transparently over
either shape.

Construction (:class:`ShardedIndexBuilder`) is a two-phase map/reduce
over a process pool, reusing the warm-start idea of
:mod:`repro.service` (workers are initialized once with the pickled
PEG, exactly like the service's process executor warm-starts from a
snapshot):

* **map** — the PEG's node ids are split into one slice per worker;
  each worker runs the bottom-up frontier expansion restricted to
  directed paths *starting* in its slice (a partition of the full
  enumeration, see
  :meth:`~repro.index.builder.PathIndexBuilder.collect_buckets`) and
  spills its canonical paths routed by shard;
* **reduce** — one task per shard merges the spilled partitions and
  writes the shard's store and histograms.

Because every directed path has exactly one start node and only the
canonical orientation is kept, no path is produced twice and the union
over shards is exactly the monolithic index's content — the invariant
the property tests in ``tests/test_index_sharded.py`` pin down.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import shutil
from concurrent.futures import ProcessPoolExecutor
from typing import Sequence

from repro.index.builder import PathIndexBuilder, _grid_milli
from repro.index.path_index import PathIndex, make_histogram
from repro.index.paths import concat_payloads, encode_paths, payload_count
from repro.index.protocol import PathIndexProtocol, canonical_sequence
from repro.obs.metrics import get_registry
from repro.obs.trace import current_span
from repro.peg.entity_graph import ProbabilisticEntityGraph
from repro.storage.kvstore import (
    DiskPathStore,
    InMemoryPathStore,
    list_shard_directories,
    shard_directory,
)
from repro.utils.errors import IndexError_
from repro.obs.timing import Timer

#: Separator between labels in the shard hash input; a byte that cannot
#: appear ambiguously inside ``repr`` output of one label boundary.
_HASH_SEPARATOR = b"\x1f"

_SPILL_DIR = "spill"

#: Registry counters per shard id, created on first fetch. Module-level
#: (not index attributes) so sharded indexes stay picklable; all
#: sharded indexes in the process share the per-shard-id series.
_FETCH_COUNTERS: dict = {}


def _shard_fetch_counter(shard_id: int):
    counter = _FETCH_COUNTERS.get(shard_id)
    if counter is None:
        counter = get_registry().counter(
            "repro_index_shard_fetches_total", shard=f"{shard_id:02d}"
        )
        _FETCH_COUNTERS[shard_id] = counter
    return counter


def shard_for_sequence(label_seq: Sequence, num_shards: int) -> int:
    """Stable shard of a label sequence.

    SHA-1 over the ``repr`` of each label of the **canonical**
    orientation, joined with a separator byte, modulo ``num_shards``.
    The hash depends only on label ``repr`` strings — never on Python's
    per-process randomized ``hash()`` — so the assignment is stable
    across processes, interpreter restarts, platforms, and
    ``PYTHONHASHSEED`` values; independently built shards, warm-started
    snapshots, and online lookups therefore always agree on where a
    sequence lives. A sequence and its reverse hash identically (both
    canonicalize first), matching the index's undirected symmetry.
    """
    if num_shards < 1:
        raise IndexError_(f"num_shards must be >= 1, got {num_shards}")
    canonical = canonical_sequence(tuple(label_seq))
    payload = _HASH_SEPARATOR.join(
        repr(label).encode("utf-8") for label in canonical
    )
    digest = hashlib.sha1(payload).digest()
    return int.from_bytes(digest[:8], "big") % num_shards


class ShardedPathIndex(PathIndexProtocol):
    """N hash shards behind the one path-index lookup protocol.

    Each shard is a complete :class:`PathIndex` holding exactly the
    canonical label sequences that :func:`shard_for_sequence` assigns to
    it; lookups and cardinality estimates route to the owning shard.
    """

    def __init__(self, shards: Sequence[PathIndex], build_stats: dict | None = None) -> None:
        shards = list(shards)
        if not shards:
            raise IndexError_("a sharded index needs at least one shard")
        first = shards[0]
        for shard in shards[1:]:
            if (
                shard.max_length != first.max_length
                or shard.beta != first.beta
                or shard.gamma != first.gamma
            ):
                raise IndexError_(
                    "all shards must share max_length/beta/gamma; got "
                    f"({shard.max_length}, {shard.beta}, {shard.gamma}) vs "
                    f"({first.max_length}, {first.beta}, {first.gamma})"
                )
        self.shards = shards
        self.max_length = first.max_length
        self.beta = first.beta
        self.gamma = first.gamma
        self.build_stats = dict(build_stats or {})

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    @property
    def num_shards(self) -> int:
        """Number of shards."""
        return len(self.shards)

    def shard_for(self, label_seq: Sequence) -> int:
        """Shard id owning a label sequence (orientation-invariant)."""
        return shard_for_sequence(label_seq, len(self.shards))

    def shard_of(self, label_seq: Sequence) -> PathIndex:
        """The shard index owning a label sequence."""
        return self.shards[self.shard_for(label_seq)]

    # ------------------------------------------------------------------
    # Lookup protocol
    # ------------------------------------------------------------------

    def bucket_for(self, probability: float) -> int:
        """Grid bucket containing ``probability`` (same grid on every shard)."""
        return self.shards[0].bucket_for(probability)

    def grid(self) -> tuple:
        """All bucket grid points in milli-units, ascending."""
        return self.shards[0].grid()

    def lookup_canonical(self, canonical_seq: tuple, alpha: float) -> list:
        shard_id = self.shard_for(canonical_seq)
        span = current_span()
        if span.enabled:
            span.incr(f"shard_fetches[{shard_id:02d}]")
        _shard_fetch_counter(shard_id).inc()
        return self.shards[shard_id].lookup_canonical(canonical_seq, alpha)

    def estimate_cardinality(self, label_seq: Sequence, alpha: float) -> float:
        return self.shard_of(label_seq).estimate_cardinality(label_seq, alpha)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def histograms(self) -> dict:
        """Merged per-sequence histograms of every shard (shards are disjoint)."""
        merged: dict = {}
        for shard in self.shards:
            merged.update(shard.histograms)
        return merged

    def num_sequences(self) -> int:
        return sum(shard.num_sequences() for shard in self.shards)

    def num_paths(self) -> int:
        return sum(shard.num_paths() for shard in self.shards)

    def size_bytes(self) -> int:
        return sum(shard.size_bytes() for shard in self.shards)

    def store_read_count(self) -> int:
        """Total read operations served by all shard stores."""
        return sum(shard.store.read_count for shard in self.shards)

    def reset_store_read_count(self) -> None:
        """Zero every shard store's read counter."""
        for shard in self.shards:
            shard.store.reset_read_count()

    def stats(self) -> dict:
        """Aggregate summary plus per-shard path counts."""
        info = {
            "max_length": self.max_length,
            "beta": self.beta,
            "gamma": self.gamma,
            "sequences": self.num_sequences(),
            "paths": self.num_paths(),
            "size_bytes": self.size_bytes(),
            "num_shards": self.num_shards,
            "paths_per_shard": tuple(
                shard.num_paths() for shard in self.shards
            ),
        }
        info.update(self.build_stats)
        return info


# ----------------------------------------------------------------------
# Parallel construction
# ----------------------------------------------------------------------

#: PEG and build parameters of the current pool worker (set once by the
#: initializer — the same warm-start pattern as repro.service's process
#: executor, which initializes workers from a snapshot).
_WORKER_PEG: ProbabilisticEntityGraph | None = None
_WORKER_PARAMS: dict | None = None


def _worker_init(peg, params: dict) -> None:
    """Warm-start one pool worker with the shared PEG and parameters."""
    global _WORKER_PEG, _WORKER_PARAMS
    _WORKER_PEG = peg
    _WORKER_PARAMS = params


def _spill_path(spill_dir: str, slice_id: int, shard_id: int) -> str:
    return os.path.join(
        spill_dir, f"part-{slice_id:03d}-shard-{shard_id:03d}.pkl"
    )


def _route_by_shard(per_key: dict, num_shards: int) -> dict:
    """Group ``{labels: buckets}`` by owning shard id."""
    routed: dict = {}
    for labels, buckets in per_key.items():
        shard_id = shard_for_sequence(labels, num_shards)
        routed.setdefault(shard_id, {})[labels] = buckets
    return routed


def _map_slice(
    slice_id: int, node_slice: tuple, num_shards: int, spill_dir: str
) -> dict:
    """Map phase: expand one start-node slice, spill paths per shard.

    Spill files hold already *encoded* bucket payloads, not path
    objects: encoding happens here (in parallel, once per path), and the
    reduce phase merges payloads by byte concatenation — far cheaper
    than pickling/unpickling tens of thousands of path objects through
    the spill boundary.
    """
    builder = PathIndexBuilder(_WORKER_PEG, **_WORKER_PARAMS)
    per_key, paths_per_length = builder.collect_buckets(node_slice)
    encoded = {
        labels: {
            bucket: encode_paths(paths) for bucket, paths in buckets.items()
        }
        for labels, buckets in per_key.items()
    }
    for shard_id, shard_keys in _route_by_shard(encoded, num_shards).items():
        with open(_spill_path(spill_dir, slice_id, shard_id), "wb") as handle:
            pickle.dump(shard_keys, handle, protocol=pickle.HIGHEST_PROTOCOL)
    return paths_per_length


def _write_shard_store(store, per_key: dict, grid: tuple) -> dict:
    """Persist one shard's routed path lists; returns its histograms."""
    histograms = {}
    for labels, buckets in per_key.items():
        counts = {}
        for bucket, paths in sorted(buckets.items()):
            store.put_bucket(labels, bucket, encode_paths(paths))
            counts[bucket] = len(paths)
        histograms[labels] = make_histogram(grid, counts)
    store.flush()
    return histograms


def _reduce_shard(
    shard_id: int,
    num_slices: int,
    spill_dir: str,
    shard_dir: str,
    grid: tuple,
) -> dict:
    """Reduce phase: merge one shard's spilled partitions into its store."""
    merged: dict = {}
    for slice_id in range(num_slices):
        path = _spill_path(spill_dir, slice_id, shard_id)
        if not os.path.exists(path):
            continue
        with open(path, "rb") as handle:
            for labels, buckets in pickle.load(handle).items():
                target = merged.setdefault(labels, {})
                for bucket, payload in buckets.items():
                    target.setdefault(bucket, []).append(payload)
    store = DiskPathStore(shard_dir)
    histograms = {}
    for labels, buckets in merged.items():
        counts = {}
        for bucket, payloads in sorted(buckets.items()):
            payload = (
                payloads[0] if len(payloads) == 1
                else concat_payloads(payloads)
            )
            store.put_bucket(labels, bucket, payload)
            counts[bucket] = payload_count(payload)
        histograms[labels] = make_histogram(grid, counts)
    store.close()
    return histograms


class ShardedIndexBuilder:
    """Builds a :class:`ShardedPathIndex`, optionally on a process pool.

    Parameters
    ----------
    peg:
        The probabilistic entity graph.
    num_shards:
        Number of hash shards (>= 1).
    max_length / beta / gamma:
        Index parameters, as for
        :class:`~repro.index.builder.PathIndexBuilder`.
    directory:
        Base directory for the shard stores (``shard-00/ ...``); when
        omitted the shards are built in memory. Required for
        ``num_processes > 1`` — pool workers exchange data through it.
    num_processes:
        Pool workers for the map/reduce build. ``0`` or ``1`` builds
        serially in-process (still sharded); ``> 1`` uses a
        ``ProcessPoolExecutor`` whose workers warm-start once with the
        pickled PEG, giving true CPU parallelism on multi-core hosts.
    """

    def __init__(
        self,
        peg: ProbabilisticEntityGraph,
        num_shards: int,
        max_length: int = 3,
        beta: float = 0.1,
        gamma: float = 0.1,
        directory: str | None = None,
        num_processes: int = 0,
    ) -> None:
        if num_shards < 1:
            raise IndexError_(f"num_shards must be >= 1, got {num_shards}")
        if num_processes < 0:
            raise IndexError_(
                f"num_processes must be >= 0, got {num_processes}"
            )
        if num_processes > 1 and directory is None:
            raise IndexError_(
                "a parallel sharded build needs a directory: map workers "
                "spill per-shard partitions and reduce workers build the "
                "shard stores there"
            )
        self.peg = peg
        self.num_shards = int(num_shards)
        self.max_length = int(max_length)
        self.beta = float(beta)
        self.gamma = float(gamma)
        self.directory = directory
        self.num_processes = int(num_processes)

    # ------------------------------------------------------------------

    def build(self) -> ShardedPathIndex:
        """Run the (possibly parallel) construction and return the index."""
        if self.directory is not None:
            self._clear_stale_state()
        grid = _grid_milli(self.beta, self.gamma)
        stats: dict = {
            "num_shards": self.num_shards,
            "build_processes": self.num_processes,
        }
        with Timer() as timer:
            if self.num_processes > 1:
                shard_histograms, paths_per_length = self._build_parallel(
                    grid, stats
                )
            else:
                shard_histograms, paths_per_length = self._build_serial(grid)
        stats["build_seconds"] = timer.elapsed
        stats["paths_per_length"] = paths_per_length

        shards = []
        for shard_id, histograms in enumerate(shard_histograms):
            if self.directory is not None:
                store = DiskPathStore(
                    shard_directory(self.directory, shard_id)
                )
            else:
                store = self._memory_stores[shard_id]
            shards.append(
                PathIndex(
                    store=store,
                    max_length=self.max_length,
                    beta=self.beta,
                    gamma=self.gamma,
                    histograms=histograms,
                    build_stats={"shard_id": shard_id},
                )
            )
        return ShardedPathIndex(shards, build_stats=stats)

    # ------------------------------------------------------------------

    def _clear_stale_state(self) -> None:
        """Remove leftovers of earlier builds under the target directory.

        A fresh build must not inherit anything: existing shard stores
        (possibly from a build with a different shard count — their
        buckets would otherwise survive wherever keys don't collide)
        and spill files of a build that died before its cleanup ran
        (they would be merged into the new shards as duplicates).
        """
        for stale in list_shard_directories(self.directory):
            shutil.rmtree(stale, ignore_errors=True)
        shutil.rmtree(
            os.path.join(self.directory, _SPILL_DIR), ignore_errors=True
        )

    def _params(self) -> dict:
        return {
            "max_length": self.max_length,
            "beta": self.beta,
            "gamma": self.gamma,
        }

    def _build_serial(self, grid: tuple) -> tuple:
        """Single-process build: one enumeration, routed into N stores."""
        builder = PathIndexBuilder(self.peg, **self._params())
        per_key, paths_per_length = builder.collect_buckets()
        routed = _route_by_shard(per_key, self.num_shards)
        shard_histograms = []
        self._memory_stores = []
        for shard_id in range(self.num_shards):
            if self.directory is not None:
                store = DiskPathStore(shard_directory(self.directory, shard_id))
            else:
                store = InMemoryPathStore()
                self._memory_stores.append(store)
            histograms = _write_shard_store(
                store, routed.get(shard_id, {}), grid
            )
            if self.directory is not None:
                store.close()
            shard_histograms.append(histograms)
        return shard_histograms, paths_per_length

    def _build_parallel(self, grid: tuple, stats: dict) -> tuple:
        """Map/reduce build over a warm-started process pool."""
        spill_dir = os.path.join(self.directory, _SPILL_DIR)
        os.makedirs(spill_dir, exist_ok=True)
        slices = _slice_nodes(
            tuple(self.peg.node_ids()), self.num_processes
        )
        paths_per_length: dict = {}
        try:
            with ProcessPoolExecutor(
                max_workers=self.num_processes,
                initializer=_worker_init,
                initargs=(self.peg, self._params()),
            ) as pool:
                with Timer() as map_timer:
                    map_futures = [
                        pool.submit(
                            _map_slice,
                            slice_id,
                            node_slice,
                            self.num_shards,
                            spill_dir,
                        )
                        for slice_id, node_slice in enumerate(slices)
                    ]
                    for future in map_futures:
                        for length, count in future.result().items():
                            paths_per_length[length] = (
                                paths_per_length.get(length, 0) + count
                            )
                stats["map_seconds"] = map_timer.elapsed
                with Timer() as reduce_timer:
                    reduce_futures = [
                        pool.submit(
                            _reduce_shard,
                            shard_id,
                            len(slices),
                            spill_dir,
                            shard_directory(self.directory, shard_id),
                            grid,
                        )
                        for shard_id in range(self.num_shards)
                    ]
                    shard_histograms = [
                        future.result() for future in reduce_futures
                    ]
                stats["reduce_seconds"] = reduce_timer.elapsed
        finally:
            shutil.rmtree(spill_dir, ignore_errors=True)
        return shard_histograms, paths_per_length


def _slice_nodes(node_ids: tuple, num_slices: int) -> list:
    """Split node ids into round-robin slices (balances degree skew)."""
    slices = [node_ids[i::num_slices] for i in range(num_slices)]
    return [s for s in slices if s]


def build_sharded_path_index(
    peg: ProbabilisticEntityGraph,
    num_shards: int,
    max_length: int = 3,
    beta: float = 0.1,
    gamma: float = 0.1,
    directory: str | None = None,
    num_processes: int = 0,
) -> ShardedPathIndex:
    """One-call façade over :class:`ShardedIndexBuilder`."""
    return ShardedIndexBuilder(
        peg,
        num_shards,
        max_length=max_length,
        beta=beta,
        gamma=gamma,
        directory=directory,
        num_processes=num_processes,
    ).build()
