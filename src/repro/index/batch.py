"""A caching index view for batched multi-query execution.

When a batch of queries is evaluated together, their decomposition
paths frequently share candidate label sequences — the same sequence
would be fetched from the (possibly sharded) store once per query.
:class:`BatchLookupIndex` wraps any
:class:`~repro.index.protocol.PathIndexProtocol` implementation and
memoizes canonical-space fetches for the lifetime of one batch, so each
``(canonical sequence)`` range scan hits the underlying store at most
once per batch; per-query thresholds are applied by filtering the
cached result.

The view is deliberately *not* thread-safe and *not* long-lived — it is
created per batch by :meth:`repro.query.engine.QueryEngine.query_batch`
and discarded with it. Long-lived cross-request caching belongs to the
serving layer's result cache (:mod:`repro.service.cache`), which caches
whole query results, not index fetches.
"""

from __future__ import annotations

from typing import Sequence

from repro.index.protocol import PathIndexProtocol, canonical_sequence


class BatchLookupIndex(PathIndexProtocol):
    """Per-batch memoization of canonical index fetches.

    Cache entries map a canonical sequence to ``(alpha_fetched, paths)``
    where ``paths`` are the stored paths with probability >=
    ``alpha_fetched``. A cached entry answers any request with
    ``alpha >= alpha_fetched`` by filtering; a request below the fetched
    threshold refetches (and widens the entry). Prefetching with the
    batch-wide minimum alpha per sequence therefore guarantees one
    store fetch per distinct sequence.
    """

    def __init__(self, inner: PathIndexProtocol) -> None:
        self.inner = inner
        self.max_length = inner.max_length
        self.beta = inner.beta
        self.gamma = inner.gamma
        self._cache: dict = {}
        self.fetches = 0

    # ------------------------------------------------------------------

    def prefetch(self, label_seq: Sequence, alpha: float) -> None:
        """Warm the cache for one sequence at (at most) ``alpha``."""
        canonical = canonical_sequence(tuple(label_seq))
        entry = self._cache.get(canonical)
        if entry is not None and entry[0] <= alpha:
            return
        self._fetch(canonical, alpha)

    def _fetch(self, canonical: tuple, alpha: float) -> list:
        paths = self.inner.lookup_canonical(canonical, alpha)
        self._cache[canonical] = (alpha, paths)
        self.fetches += 1
        return paths

    # ------------------------------------------------------------------
    # Lookup protocol
    # ------------------------------------------------------------------

    def lookup_canonical(self, canonical_seq: tuple, alpha: float) -> list:
        entry = self._cache.get(canonical_seq)
        if entry is not None and entry[0] <= alpha:
            fetched_alpha, paths = entry
            if fetched_alpha == alpha:
                return list(paths)
            return [p for p in paths if p.probability >= alpha]
        return list(self._fetch(canonical_seq, alpha))

    def estimate_cardinality(self, label_seq: Sequence, alpha: float) -> float:
        return self.inner.estimate_cardinality(label_seq, alpha)

    # ------------------------------------------------------------------
    # Introspection (delegated)
    # ------------------------------------------------------------------

    def num_sequences(self) -> int:
        return self.inner.num_sequences()

    def num_paths(self) -> int:
        return self.inner.num_paths()

    def size_bytes(self) -> int:
        return self.inner.size_bytes()

    def stats(self) -> dict:
        return self.inner.stats()
