"""Persistence of the offline phase: index + context as one bundle.

The paper's system builds its disk-based index once and serves many
online queries. This module gives the reproduction the same lifecycle:
:func:`save_offline` writes a directory containing the path store(s)
(B+ tree + record log + hash directory), the index metadata (L, β, γ,
histograms, build statistics) and the context tables;
:func:`load_offline` reopens it without recomputation, and
:meth:`repro.query.engine.QueryEngine.from_saved` builds a queryable
engine from it.

Format version 2 adds sharded bundles: a
:class:`~repro.index.sharded.ShardedPathIndex` persists one store per
shard under ``shard-00/ ... shard-NN/`` subdirectories (the layout
defined by :func:`repro.storage.kvstore.shard_directory`) with
per-shard histograms in the metadata; unsharded bundles keep their
store files at the directory root, and version-1 bundles still load.
"""

from __future__ import annotations

import os
import pickle
import shutil

from repro.index.context import ContextInformation
from repro.index.path_index import PathIndex
from repro.index.sharded import ShardedPathIndex
from repro.storage.kvstore import (
    DISK_STORE_FILENAMES,
    DiskPathStore,
    list_shard_directories,
    shard_directory,
)
from repro.utils.errors import IndexError_

#: Bundle format version; bump when the pickled layout changes.
FORMAT_VERSION = 2
#: Versions load_offline understands.
_SUPPORTED_VERSIONS = (1, 2)
_META_FILE = "offline.meta"


def _persist_store(index: PathIndex, directory: str) -> None:
    """Materialize one index's store under ``directory``.

    If the store is a :class:`DiskPathStore` already living there it is
    flushed in place; otherwise (another location, or an in-memory
    store) its buckets are copied into a fresh store under
    ``directory``.
    """
    store = index.store
    if isinstance(store, DiskPathStore) and os.path.samefile(
        store.directory, directory
    ):
        store.flush()
        return
    target = DiskPathStore(directory)
    for sequence in store.label_sequences():
        for bucket, payload in store.scan_buckets(sequence, 0):
            target.put_bucket(sequence, bucket, payload)
    target.close()


def clear_offline_artifacts(directory: str) -> None:
    """Remove every offline artifact of earlier builds under ``directory``.

    Deletes the metadata file, the root store files of an unsharded
    bundle, and any ``shard-NN/`` subdirectories — but nothing else, so
    a user-supplied output directory that happens to hold other files
    is safe. Building into a reused directory without clearing first
    would mix stale and fresh data: a reopened
    :class:`DiskPathStore` appends to the old tree, and sequences that
    no longer exist keep being served.
    """
    if not os.path.isdir(directory):
        return
    for name in (_META_FILE,) + DISK_STORE_FILENAMES:
        path = os.path.join(directory, name)
        if os.path.exists(path):
            os.remove(path)
    for stale in list_shard_directories(directory):
        shutil.rmtree(stale, ignore_errors=True)


def save_offline(
    index, context: ContextInformation, directory: str
) -> None:
    """Write the offline phase's artifacts into ``directory``.

    Accepts any index built by this package — a monolithic
    :class:`PathIndex` or a :class:`ShardedPathIndex` (each shard store
    goes into its own subdirectory).
    """
    os.makedirs(directory, exist_ok=True)
    meta = {
        "version": FORMAT_VERSION,
        "max_length": index.max_length,
        "beta": index.beta,
        "gamma": index.gamma,
        "build_stats": index.build_stats,
        "context": {
            "sigma": context.sigma,
            "cardinality": context._cardinality,
            "partial_upper": context._partial_upper,
            "full_upper": context._full_upper,
        },
    }
    if isinstance(index, ShardedPathIndex):
        for shard_id, shard in enumerate(index.shards):
            target = shard_directory(directory, shard_id)
            os.makedirs(target, exist_ok=True)
            _persist_store(shard, target)
        meta["num_shards"] = index.num_shards
        meta["shard_histograms"] = [
            shard.histograms for shard in index.shards
        ]
    else:
        _persist_store(index, directory)
        meta["num_shards"] = 0
        meta["histograms"] = index.histograms
    with open(os.path.join(directory, _META_FILE), "wb") as handle:
        pickle.dump(meta, handle, protocol=pickle.HIGHEST_PROTOCOL)


def load_offline(directory: str) -> tuple:
    """Reopen a bundle written by :func:`save_offline`.

    Returns ``(index, ContextInformation)`` where the index is a
    :class:`PathIndex` or :class:`ShardedPathIndex` matching what was
    saved; raises :class:`IndexError_` for missing or incompatible
    bundles.
    """
    meta_path = os.path.join(directory, _META_FILE)
    if not os.path.exists(meta_path):
        raise IndexError_(f"no offline bundle at {directory!r}")
    with open(meta_path, "rb") as handle:
        meta = pickle.load(handle)
    if not isinstance(meta, dict) or meta.get("version") not in _SUPPORTED_VERSIONS:
        raise IndexError_(
            f"unsupported offline bundle version in {directory!r}"
        )
    num_shards = meta.get("num_shards", 0)
    if num_shards:
        shards = []
        for shard_id, histograms in enumerate(meta["shard_histograms"]):
            shards.append(
                PathIndex(
                    store=DiskPathStore(shard_directory(directory, shard_id)),
                    max_length=meta["max_length"],
                    beta=meta["beta"],
                    gamma=meta["gamma"],
                    histograms=histograms,
                    build_stats={"shard_id": shard_id},
                )
            )
        index: PathIndex | ShardedPathIndex = ShardedPathIndex(
            shards, build_stats=meta["build_stats"]
        )
    else:
        index = PathIndex(
            store=DiskPathStore(directory),
            max_length=meta["max_length"],
            beta=meta["beta"],
            gamma=meta["gamma"],
            histograms=meta["histograms"],
            build_stats=meta["build_stats"],
        )
    raw = meta["context"]
    context = ContextInformation(
        sigma=raw["sigma"],
        cardinality=raw["cardinality"],
        partial_upper=raw["partial_upper"],
        full_upper=raw["full_upper"],
    )
    return index, context
