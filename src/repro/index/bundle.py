"""Persistence of the offline phase: index + context as one bundle.

The paper's system builds its disk-based index once and serves many
online queries. This module gives the reproduction the same lifecycle:
:func:`save_offline` writes a directory containing the path store
(B+ tree + record log + hash directory), the index metadata (L, β, γ,
histograms, build statistics) and the context tables;
:func:`load_offline` reopens it without recomputation, and
:meth:`repro.query.engine.QueryEngine.from_saved` builds a queryable
engine from it.
"""

from __future__ import annotations

import os
import pickle

from repro.index.context import ContextInformation
from repro.index.path_index import PathIndex
from repro.storage.kvstore import DiskPathStore
from repro.utils.errors import IndexError_

#: Bundle format version; bump when the pickled layout changes.
FORMAT_VERSION = 1
_META_FILE = "offline.meta"


def save_offline(
    index: PathIndex, context: ContextInformation, directory: str
) -> None:
    """Write the offline phase's artifacts into ``directory``.

    If the index is already backed by a :class:`DiskPathStore` in another
    location (or by an in-memory store), its buckets are copied into a
    fresh store under ``directory``; a store already living there is
    flushed in place.
    """
    os.makedirs(directory, exist_ok=True)
    store = index.store
    if isinstance(store, DiskPathStore) and os.path.samefile(
        store.directory, directory
    ):
        store.flush()
    else:
        target = DiskPathStore(directory)
        for sequence in store.label_sequences():
            for bucket, payload in store.scan_buckets(sequence, 0):
                target.put_bucket(sequence, bucket, payload)
        target.close()
    meta = {
        "version": FORMAT_VERSION,
        "max_length": index.max_length,
        "beta": index.beta,
        "gamma": index.gamma,
        "histograms": index.histograms,
        "build_stats": index.build_stats,
        "context": {
            "sigma": context.sigma,
            "cardinality": context._cardinality,
            "partial_upper": context._partial_upper,
            "full_upper": context._full_upper,
        },
    }
    with open(os.path.join(directory, _META_FILE), "wb") as handle:
        pickle.dump(meta, handle, protocol=pickle.HIGHEST_PROTOCOL)


def load_offline(directory: str) -> tuple:
    """Reopen a bundle written by :func:`save_offline`.

    Returns ``(PathIndex, ContextInformation)``; raises
    :class:`IndexError_` for missing or incompatible bundles.
    """
    meta_path = os.path.join(directory, _META_FILE)
    if not os.path.exists(meta_path):
        raise IndexError_(f"no offline bundle at {directory!r}")
    with open(meta_path, "rb") as handle:
        meta = pickle.load(handle)
    if not isinstance(meta, dict) or meta.get("version") != FORMAT_VERSION:
        raise IndexError_(
            f"unsupported offline bundle version in {directory!r}"
        )
    store = DiskPathStore(directory)
    index = PathIndex(
        store=store,
        max_length=meta["max_length"],
        beta=meta["beta"],
        gamma=meta["gamma"],
        histograms=meta["histograms"],
        build_stats=meta["build_stats"],
    )
    raw = meta["context"]
    context = ContextInformation(
        sigma=raw["sigma"],
        cardinality=raw["cardinality"],
        partial_upper=raw["partial_upper"],
        full_upper=raw["full_upper"],
    )
    return index, context
