"""Context-aware path indexing — the offline phase (Section 5.1).

* :mod:`repro.index.paths` — compact binary serialization of indexed
  paths (node ids + probability components),
* :mod:`repro.index.context` — per-node context information
  ``c(v, σ)``, ``ppu(v, σ)``, ``fpu(v, σ)``,
* :mod:`repro.index.histogram` — per-label-sequence cardinality
  histograms with exponential-curve-fit estimation,
* :mod:`repro.index.builder` — bottom-up, length-wise index
  construction with β pruning and symmetry canonicalisation,
* :mod:`repro.index.path_index` — the queryable index: bucket range
  scans, orientation handling, cardinality estimates.
"""

from repro.index.paths import IndexedPath, encode_paths, decode_paths
from repro.index.context import ContextInformation, build_context
from repro.index.histogram import CardinalityHistogram
from repro.index.path_index import PathIndex
from repro.index.builder import PathIndexBuilder, build_path_index

__all__ = [
    "IndexedPath",
    "encode_paths",
    "decode_paths",
    "ContextInformation",
    "build_context",
    "CardinalityHistogram",
    "PathIndex",
    "PathIndexBuilder",
    "build_path_index",
]
