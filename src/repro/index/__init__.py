"""Context-aware path indexing — the offline phase (Section 5.1).

* :mod:`repro.index.paths` — compact binary serialization of indexed
  paths (node ids + probability components),
* :mod:`repro.index.context` — per-node context information
  ``c(v, σ)``, ``ppu(v, σ)``, ``fpu(v, σ)``,
* :mod:`repro.index.histogram` — per-label-sequence cardinality
  histograms with exponential-curve-fit estimation,
* :mod:`repro.index.builder` — bottom-up, length-wise index
  construction with β pruning and symmetry canonicalisation,
* :mod:`repro.index.protocol` — the lookup protocol every index
  implementation speaks (validation + orientation shared in one place),
* :mod:`repro.index.path_index` — the queryable monolithic index:
  bucket range scans, orientation handling, cardinality estimates,
* :mod:`repro.index.sharded` — the hash-sharded index and its parallel
  (map/reduce process-pool) builder,
* :mod:`repro.index.batch` — the per-batch caching view used by batched
  multi-query execution.
"""

from repro.index.paths import (
    IndexedPath,
    encode_paths,
    decode_paths,
    decode_path_arrays,
    decode_paths_above,
)
from repro.index.context import ContextInformation, build_context
from repro.index.histogram import CardinalityHistogram
from repro.index.protocol import (
    PathIndexProtocol,
    canonical_sequence,
    is_palindrome,
    orient_to_sequence,
)
from repro.index.path_index import PathIndex
from repro.index.builder import PathIndexBuilder, build_path_index
from repro.index.sharded import (
    ShardedIndexBuilder,
    ShardedPathIndex,
    build_sharded_path_index,
    shard_for_sequence,
)
from repro.index.batch import BatchLookupIndex

__all__ = [
    "IndexedPath",
    "encode_paths",
    "decode_paths",
    "decode_path_arrays",
    "decode_paths_above",
    "ContextInformation",
    "build_context",
    "CardinalityHistogram",
    "PathIndexProtocol",
    "canonical_sequence",
    "is_palindrome",
    "orient_to_sequence",
    "PathIndex",
    "PathIndexBuilder",
    "build_path_index",
    "ShardedIndexBuilder",
    "ShardedPathIndex",
    "build_sharded_path_index",
    "shard_for_sequence",
    "BatchLookupIndex",
]
