"""Bottom-up path-index construction (Section 5.1).

Construction starts from single-node paths (length 0) and extends
length-``l`` paths by one edge to build length-``l+1`` entries, pruning
by the lower bound β at every step — every sub-path of a β-qualified
path is itself β-qualified, so no qualifying path is missed.

The frontier holds *directed* labeled paths (each undirected path in
both orientations, which is what edge-extension needs); storage keeps
only the canonical orientation, exploiting the undirected symmetry the
paper describes. Optional thread-based parallelism mirrors the paper's
per-label-sequence parallel build with a barrier between lengths.

Sharded builds
--------------
:class:`~repro.index.sharded.ShardedIndexBuilder` parallelizes this
construction across processes: map workers each expand the frontier for
a disjoint slice of start nodes (every directed path has exactly one
start node, so slices partition the enumeration with no duplicates —
:meth:`PathIndexBuilder.collect_buckets` is the per-slice entry point),
then reduce workers assemble one store per shard. Paths are routed to
shards by :func:`repro.index.sharded.shard_for_sequence`, the hash of
the **canonical** label sequence: SHA-1 over the ``repr`` of each label
joined with a separator byte, taken modulo the shard count. Because the
hash depends only on label ``repr`` strings — never on Python's
randomized ``hash()`` — the shard of a sequence is stable across
processes, interpreter restarts, platforms and ``PYTHONHASHSEED``
values, which is what lets independently built shards, warm-started
snapshots, and online lookups all agree on where a sequence lives.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Sequence

from repro.index.path_index import PathIndex, make_histogram
from repro.index.paths import IndexedPath, encode_paths
from repro.peg.entity_graph import ProbabilisticEntityGraph
from repro.storage.kvstore import InMemoryPathStore, PathStore
from repro.utils.errors import IndexError_
from repro.obs.timing import Timer


class PathIndexBuilder:
    """Builds a :class:`~repro.index.path_index.PathIndex` over a PEG.

    Parameters
    ----------
    peg:
        The probabilistic entity graph.
    max_length:
        Maximum indexed path length ``L`` (edges per path).
    beta:
        Index lower-bound probability threshold β.
    gamma:
        Bucket resolution γ.
    store:
        Target :class:`~repro.storage.kvstore.PathStore`; defaults to a
        fresh in-memory store.
    num_threads:
        Worker threads for the per-sequence storage step (>=1). The
        default of 1 is fastest under CPython's GIL; the parallel path
        exists for structural parity with the paper.
    """

    def __init__(
        self,
        peg: ProbabilisticEntityGraph,
        max_length: int = 3,
        beta: float = 0.1,
        gamma: float = 0.1,
        store: PathStore | None = None,
        num_threads: int = 1,
    ) -> None:
        if max_length < 1:
            raise IndexError_(f"max_length must be >= 1, got {max_length}")
        if num_threads < 1:
            raise IndexError_(f"num_threads must be >= 1, got {num_threads}")
        self.peg = peg
        self.max_length = int(max_length)
        self.beta = float(beta)
        self.gamma = float(gamma)
        self.store = store if store is not None else InMemoryPathStore()
        self.num_threads = int(num_threads)
        # component sharing fast path: a node can only share references
        # with another node if its identity component has several entities.
        self._comp_shared = self._component_sharing_flags()

    def _component_sharing_flags(self) -> list:
        counts: dict = {}
        for node in self.peg.node_ids():
            comp = self.peg.component_index_id(node)
            counts[comp] = counts.get(comp, 0) + 1
        return [
            counts[self.peg.component_index_id(node)] > 1
            for node in self.peg.node_ids()
        ]

    # ------------------------------------------------------------------

    def build(self) -> PathIndex:
        """Run the full construction and return the queryable index."""
        stats = {"paths_per_length": {}, "build_seconds": 0.0}
        bucket_counts: dict = {}
        grid = _grid_milli(self.beta, self.gamma)

        with Timer() as timer:
            frontier = self._seed_frontier()
            self._store_level(frontier, bucket_counts, grid)
            stats["paths_per_length"][0] = len(frontier)

            for length in range(1, self.max_length + 1):
                frontier = self._extend(frontier)
                self._store_level(frontier, bucket_counts, grid)
                stats["paths_per_length"][length] = len(frontier)

        stats["build_seconds"] = timer.elapsed
        self.store.flush()
        histograms = {
            seq: make_histogram(grid, counts)
            for seq, counts in bucket_counts.items()
        }
        return PathIndex(
            store=self.store,
            max_length=self.max_length,
            beta=self.beta,
            gamma=self.gamma,
            histograms=histograms,
            build_stats=stats,
        )

    def collect_buckets(self, start_nodes=None) -> tuple:
        """Enumerate canonical paths without writing them to a store.

        Returns ``(per_key, paths_per_length)`` where ``per_key`` maps a
        canonical label sequence to ``{bucket: [IndexedPath, ...]}``.
        When ``start_nodes`` is given, only directed paths *starting* at
        one of those nodes are expanded — since every directed path has
        exactly one start node, disjoint slices of the node set partition
        the full enumeration with no duplicates, which is how
        :class:`~repro.index.sharded.ShardedIndexBuilder`'s map workers
        split the build.
        """
        grid = _grid_milli(self.beta, self.gamma)
        per_key: dict = {}
        paths_per_length: dict = {}
        frontier = self._seed_frontier(start_nodes)
        self._bucket_level(frontier, per_key, grid)
        paths_per_length[0] = len(frontier)
        for length in range(1, self.max_length + 1):
            frontier = self._extend(frontier)
            self._bucket_level(frontier, per_key, grid)
            paths_per_length[length] = len(frontier)
        return per_key, paths_per_length

    # ------------------------------------------------------------------

    def _seed_frontier(self, start_nodes=None) -> list:
        """Length-0 frontier: one directed path per (node, possible label)."""
        peg = self.peg
        nodes = peg.node_ids() if start_nodes is None else start_nodes
        frontier = []
        for node in nodes:
            prn = peg.existence_probability_id(node)
            if prn <= 0.0:
                continue
            for label in peg.possible_labels_id(node):
                prle = peg.label_probability_id(node, label)
                if prle * prn >= self.beta:
                    frontier.append(((node,), (label,), prle, prn))
        return frontier

    def _extend(self, frontier: list) -> list:
        """Extend every directed path by one edge at its tail."""
        peg = self.peg
        beta = self.beta
        comp_shared = self._comp_shared
        extended = []
        for ids, labels, prle, prn in frontier:
            tail = ids[-1]
            tail_label = labels[-1]
            id_set = set(ids)
            for neighbor in peg.neighbor_ids(tail):
                if neighbor in id_set:
                    continue
                if comp_shared[neighbor] and any(
                    peg.shares_references_id(neighbor, node) for node in ids
                ):
                    continue
                new_prn = self._extended_prn(ids, prn, neighbor)
                if new_prn <= 0.0:
                    continue
                for label in peg.possible_labels_id(neighbor):
                    p_edge = peg.edge_probability_id(
                        tail, neighbor, tail_label, label
                    )
                    if p_edge <= 0.0:
                        continue
                    p_label = peg.label_probability_id(neighbor, label)
                    new_prle = prle * p_edge * p_label
                    if new_prle * new_prn < beta:
                        continue
                    extended.append(
                        (
                            ids + (neighbor,),
                            labels + (label,),
                            new_prle,
                            new_prn,
                        )
                    )
        return extended

    def _extended_prn(self, ids: tuple, prn: float, neighbor: int) -> float:
        """``Prn`` after adding ``neighbor`` to a path's node set.

        Fast path: across components the marginal multiplies; only when
        the new node shares a non-trivial component with an existing path
        node must the joint marginal be recomputed.
        """
        peg = self.peg
        if self._comp_shared[neighbor]:
            comp = peg.component_index_id(neighbor)
            if any(peg.component_index_id(node) == comp for node in ids):
                return peg.existence_marginal_ids(ids + (neighbor,))
        return prn * peg.existence_probability_id(neighbor)

    # ------------------------------------------------------------------

    def _bucket_level(
        self, frontier: list, per_key: dict, grid: Sequence[int]
    ) -> None:
        """Merge a level's canonical paths into ``per_key`` by bucket."""
        for ids, labels, prle, prn in frontier:
            if not _is_canonical(ids, labels):
                continue
            prob = prle * prn
            bucket = _bucket_for(prob, grid)
            per_key.setdefault(labels, {}).setdefault(bucket, []).append(
                IndexedPath(ids, prle, prn)
            )

    def _store_level(
        self, frontier: list, bucket_counts: dict, grid: Sequence[int]
    ) -> None:
        """Bucket and persist the canonical orientation of a level's paths."""
        per_key: dict = {}
        self._bucket_level(frontier, per_key, grid)
        for labels, buckets in per_key.items():
            counts = bucket_counts.setdefault(labels, {})
            for bucket, paths in buckets.items():
                counts[bucket] = counts.get(bucket, 0) + len(paths)

        def store_sequence(item):
            labels, buckets = item
            for bucket, paths in buckets.items():
                existing = self.store.get_bucket(labels, bucket)
                if existing:
                    # Append to a previously written bucket (only happens
                    # if a caller builds incrementally; levels write
                    # disjoint key spaces otherwise).
                    from repro.index.paths import decode_paths

                    paths = decode_paths(existing) + paths
                self.store.put_bucket(labels, bucket, encode_paths(paths))

        if self.num_threads > 1 and len(per_key) > 1:
            with ThreadPoolExecutor(max_workers=self.num_threads) as pool:
                list(pool.map(store_sequence, per_key.items()))
        else:
            for item in per_key.items():
                store_sequence(item)


def build_path_index(
    peg: ProbabilisticEntityGraph,
    max_length: int = 3,
    beta: float = 0.1,
    gamma: float = 0.1,
    store: PathStore | None = None,
    num_threads: int = 1,
) -> PathIndex:
    """One-call façade over :class:`PathIndexBuilder`."""
    builder = PathIndexBuilder(
        peg,
        max_length=max_length,
        beta=beta,
        gamma=gamma,
        store=store,
        num_threads=num_threads,
    )
    return builder.build()


def enumerate_paths_for_sequence(
    peg: ProbabilisticEntityGraph, label_seq: Sequence, alpha: float
) -> list:
    """On-demand path enumeration for thresholds below the index's β.

    The paper's footnote: "paths with smaller probability are computed on
    demand". Performs a pruned DFS aligned to ``label_seq`` and returns
    :class:`IndexedPath` objects oriented to the requested sequence, the
    same contract as :meth:`PathIndex.lookup`.
    """
    seq = tuple(label_seq)
    if not seq:
        return []
    counts: dict = {}
    for node in peg.node_ids():
        comp = peg.component_index_id(node)
        counts[comp] = counts.get(comp, 0) + 1

    results = []

    def extend(ids: tuple, prle: float, prn: float, position: int) -> None:
        if position == len(seq):
            results.append(IndexedPath(ids, prle, prn))
            return
        label = seq[position]
        tail = ids[-1]
        tail_label = seq[position - 1]
        id_set = set(ids)
        for neighbor in peg.neighbor_ids(tail):
            if neighbor in id_set:
                continue
            if counts[peg.component_index_id(neighbor)] > 1 and any(
                peg.shares_references_id(neighbor, node) for node in ids
            ):
                continue
            p_label = peg.label_probability_id(neighbor, label)
            if p_label <= 0.0:
                continue
            p_edge = peg.edge_probability_id(tail, neighbor, tail_label, label)
            if p_edge <= 0.0:
                continue
            new_prle = prle * p_label * p_edge
            new_prn = _joint_prn(peg, counts, ids, prn, neighbor)
            if new_prle * new_prn < alpha or new_prn <= 0.0:
                continue
            extend(ids + (neighbor,), new_prle, new_prn, position + 1)

    first = seq[0]
    for node in peg.node_ids():
        p_label = peg.label_probability_id(node, first)
        prn = peg.existence_probability_id(node)
        if p_label <= 0.0 or prn <= 0.0 or p_label * prn < alpha:
            continue
        extend((node,), p_label, prn, 1)
    return results


def _joint_prn(peg, comp_counts, ids, prn, neighbor) -> float:
    comp = peg.component_index_id(neighbor)
    if comp_counts[comp] > 1 and any(
        peg.component_index_id(node) == comp for node in ids
    ):
        return peg.existence_marginal_ids(ids + (neighbor,))
    return prn * peg.existence_probability_id(neighbor)


def _milli(probability: float) -> int:
    """Probability in milli-units — THE rounding rule of the bucket grid.

    One shared rule for grid construction, builder-side bucket
    assignment and lookup-side bucket selection. Mixing rules broke
    grid boundaries: ``round`` maps the float ``0.7`` (repr
    ``0.6999999...``) to 700 while truncation maps it to 699, so a
    builder and a reader disagreeing by one rule put (or look for)
    boundary probabilities one bucket low. Any single monotone rule is
    sound — lookups re-filter decoded paths against the exact float
    threshold — and ``round`` keeps human-entered grid parameters like
    ``beta=0.7`` on the buckets they name.
    """
    return int(round(probability * 1000))


def _grid_milli(beta: float, gamma: float) -> tuple:
    start = _milli(beta)
    if start > 1000:
        raise IndexError_(f"beta must be in (0, 1], got {beta}")
    step = max(1, _milli(gamma))
    points = list(range(start, 1001, step))
    if points[-1] != 1000:
        points.append(1000)
    return tuple(points)


def _bucket_for(prob: float, grid: Sequence[int]) -> int:
    milli = _milli(prob)
    bucket = grid[0]
    for point in grid:
        if point <= milli:
            bucket = point
        else:
            break
    return bucket


def _is_canonical(ids: tuple, labels: tuple) -> bool:
    """True when the directed path is in its canonical orientation.

    The canonical orientation is the lexicographically smaller of
    ``(labels, ids)`` and its reverse (labels compared through repr);
    ties (palindromic single nodes) count as canonical.
    """
    if len(ids) == 1:
        return True
    fwd = (tuple(map(repr, labels)), ids)
    rev = (tuple(map(repr, reversed(labels))), tuple(reversed(ids)))
    return fwd <= rev
