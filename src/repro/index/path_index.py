"""The queryable context-aware path index (Section 5.1).

Entries are keyed by ``(X, π)`` where ``X`` is a node-label sequence and
``π`` a probability bucket on the grid ``{β, β+γ, ..., 1}``; values are
the paths whose probability under ``X`` falls in ``[π, π+γ)``, each with
its ``Prle`` and ``Prn`` components. For undirected graphs, ``X`` and its
reverse share one stored entry (symmetry optimisation); lookups
transparently orient results to the requested sequence.

:class:`PathIndex` is the monolithic implementation of the
:class:`~repro.index.protocol.PathIndexProtocol`; see
:mod:`repro.index.sharded` for the hash-partitioned one.
"""

from __future__ import annotations

from typing import Sequence

from repro.index.histogram import CardinalityHistogram
from repro.index.paths import decode_paths_above
from repro.index.protocol import (
    PathIndexProtocol,
    canonical_sequence,
    is_palindrome,
)
from repro.obs.trace import current_span
from repro.storage.kvstore import PathStore
from repro.utils.errors import IndexError_

__all__ = [
    "PathIndex",
    "canonical_sequence",
    "is_palindrome",
    "make_histogram",
]


class PathIndex(PathIndexProtocol):
    """Two-level context-aware path index over a PEG.

    Constructed by :class:`~repro.index.builder.PathIndexBuilder`; query
    processing uses :meth:`lookup` and :meth:`estimate_cardinality`.
    """

    def __init__(
        self,
        store: PathStore,
        max_length: int,
        beta: float,
        gamma: float,
        histograms: dict,
        build_stats: dict | None = None,
    ) -> None:
        if not 0.0 < beta <= 1.0:
            raise IndexError_(f"beta must be in (0, 1], got {beta}")
        if not 0.0 < gamma <= 1.0:
            raise IndexError_(f"gamma must be in (0, 1], got {gamma}")
        if max_length < 1:
            raise IndexError_(f"max_length must be >= 1, got {max_length}")
        self.store = store
        self.max_length = int(max_length)
        self.beta = float(beta)
        self.gamma = float(gamma)
        self.histograms = dict(histograms)
        self.build_stats = dict(build_stats or {})
        self._beta_milli = int(round(beta * 1000))
        self._gamma_milli = max(1, int(round(gamma * 1000)))

    # ------------------------------------------------------------------
    # Bucket grid
    # ------------------------------------------------------------------

    def bucket_for(self, probability: float) -> int:
        """Grid bucket (milli-units) containing ``probability``.

        The largest grid point not exceeding the probability; the grid
        always ends with a 1000 point (probability exactly 1). Uses the
        builder's one rounding rule (:func:`repro.index.builder._milli`)
        so grid-boundary probabilities — e.g. ``alpha == beta == 0.7``,
        whose float repr truncates to 699 milli — resolve to the same
        bucket the builder stored them in instead of falling one bucket
        (or below ``beta``) short.
        """
        from repro.index.builder import _milli

        milli = _milli(probability)
        if milli < self._beta_milli:
            raise IndexError_(
                f"probability {probability} below index lower bound {self.beta}"
            )
        if milli >= 1000:
            return 1000
        steps = (milli - self._beta_milli) // self._gamma_milli
        return self._beta_milli + steps * self._gamma_milli

    def grid(self) -> tuple:
        """All bucket grid points in milli-units, ascending."""
        points = list(range(self._beta_milli, 1001, self._gamma_milli))
        if points[-1] != 1000:
            points.append(1000)
        return tuple(points)

    # ------------------------------------------------------------------
    # Lookup (the public lookup() lives on PathIndexProtocol)
    # ------------------------------------------------------------------

    def lookup_canonical(self, canonical_seq: tuple, alpha: float) -> list:
        """Stored paths of one canonical sequence with probability >= alpha.

        Bucket payloads are bulk-decoded (one ``frombuffer`` parse plus
        an array threshold test per bucket) and only surviving paths are
        materialized — see :func:`repro.index.paths.decode_paths_above`.
        """
        min_bucket = self.bucket_for(alpha)
        results = []
        for _, payload in self.store.scan_buckets(canonical_seq, min_bucket):
            results.extend(decode_paths_above(payload, alpha))
        span = current_span()
        if span.enabled:
            span.incr("index_fetches")
            span.incr("paths_decoded", len(results))
        return results

    def estimate_cardinality(self, label_seq: Sequence, alpha: float) -> float:
        """Histogram estimate of ``|PIndex(label_seq, alpha)|``.

        Uses the per-sequence cumulative histogram with exponential curve
        fitting; returns 0 for sequences never indexed. Palindromic
        sequences double the estimate, mirroring :meth:`lookup`.
        """
        seq = tuple(label_seq)
        histogram = self.histograms.get(canonical_sequence(seq))
        if histogram is None:
            return 0.0
        estimate = histogram.estimate(max(alpha, self.beta))
        if is_palindrome(seq) and len(seq) > 1:
            estimate *= 2.0
        return estimate

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def size_bytes(self) -> int:
        """Approximate index footprint in bytes."""
        return self.store.size_bytes()

    def num_sequences(self) -> int:
        """Number of distinct canonical label sequences indexed."""
        return len(self.histograms)

    def num_paths(self) -> int:
        """Total number of stored (canonical) paths."""
        return sum(h.total() for h in self.histograms.values())

    def stats(self) -> dict:
        """Summary including builder statistics."""
        info = {
            "max_length": self.max_length,
            "beta": self.beta,
            "gamma": self.gamma,
            "sequences": self.num_sequences(),
            "paths": self.num_paths(),
            "size_bytes": self.size_bytes(),
        }
        info.update(self.build_stats)
        return info


def make_histogram(grid_milli: Sequence[int], bucket_counts: dict) -> CardinalityHistogram:
    """Build a cumulative histogram from per-bucket counts of one sequence."""
    probs = [b / 1000.0 for b in grid_milli]
    counts = [bucket_counts.get(b, 0) for b in grid_milli]
    return CardinalityHistogram.from_bucket_counts(probs, counts)
