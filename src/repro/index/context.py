"""Per-node context information (Section 5.1, "Context Information").

For every node ``v`` of ``G_U`` and label ``σ``, with
``N(v, σ) = {v' ∈ Γ(v) | σ ∈ L(v'), refs(v) ∩ refs(v') = ∅}``:

* cardinality       ``c(v, σ)   = |N(v, σ)|``
* partial upperbound ``ppu(v, σ) = max Pr((v, v').e = T)``
* full upperbound    ``fpu(v, σ) = max Pr(v'.l = σ) · Pr((v, v').e = T)``

For the label-correlated model (Section 5.3), the edge probability needs
``v``'s own label, which is unknown here; per the paper we maximize over
all possible labels of ``v``, keeping ``ppu``/``fpu`` valid upper bounds.
"""

from __future__ import annotations

from typing import Mapping

from repro.peg.entity_graph import ProbabilisticEntityGraph


class ContextInformation:
    """Dense per-(node, label) context tables for online pruning."""

    def __init__(
        self,
        sigma: tuple,
        cardinality: list,
        partial_upper: list,
        full_upper: list,
    ) -> None:
        self.sigma = tuple(sigma)
        self._label_pos = {label: i for i, label in enumerate(self.sigma)}
        self._cardinality = cardinality
        self._partial_upper = partial_upper
        self._full_upper = full_upper

    def cardinality(self, node_id: int, label) -> int:
        """``c(v, σ)``: neighbors of ``v`` that can carry label ``σ``."""
        pos = self._label_pos.get(label)
        if pos is None:
            return 0
        return self._cardinality[node_id][pos]

    def partial_upperbound(self, node_id: int, label) -> float:
        """``ppu(v, σ)``: best edge probability into ``N(v, σ)``."""
        pos = self._label_pos.get(label)
        if pos is None:
            return 0.0
        return self._partial_upper[node_id][pos]

    def full_upperbound(self, node_id: int, label) -> float:
        """``fpu(v, σ)``: best label-times-edge probability into ``N(v, σ)``."""
        pos = self._label_pos.get(label)
        if pos is None:
            return 0.0
        return self._full_upper[node_id][pos]

    def as_rows(self, node_id: int) -> Mapping:
        """All three measures of one node keyed by label (for reports)."""
        return {
            label: {
                "c": self.cardinality(node_id, label),
                "ppu": self.partial_upperbound(node_id, label),
                "fpu": self.full_upperbound(node_id, label),
            }
            for label in self.sigma
        }


def build_context(peg: ProbabilisticEntityGraph) -> ContextInformation:
    """Compute the context tables for every node of ``G_U``.

    Tables are sized by the *id space*, not the live-entity count —
    the same discipline as
    :class:`repro.query.reduction.PegProbabilityArrays`. After live
    merges (:mod:`repro.delta`) the id range contains tombstoned slots;
    rows must stay addressable by raw node id (index lookups return
    paths whose node ids the online phase feeds straight into these
    tables), so tombstones keep an explicit all-zero row rather than
    shifting later rows onto wrong ids.
    """
    sigma = tuple(sorted(peg.sigma, key=repr))
    label_pos = {label: i for i, label in enumerate(sigma)}
    num_labels = len(sigma)
    id_space = len(peg.node_ids())
    cardinality = [[0] * num_labels for _ in range(id_space)]
    partial_upper = [[0.0] * num_labels for _ in range(id_space)]
    full_upper = [[0.0] * num_labels for _ in range(id_space)]
    for node in peg.node_ids():
        if peg.is_removed_id(node):
            continue
        counts = cardinality[node]
        ppu = partial_upper[node]
        fpu = full_upper[node]
        for neighbor in peg.neighbor_ids(node):
            if peg.shares_references_id(node, neighbor):
                continue
            for label in peg.possible_labels_id(neighbor):
                pos = label_pos[label]
                counts[pos] += 1
                # Edge probability upper bound: v's own label is unknown
                # here, so maximize over it (exact for the independent
                # model, an upper bound for the conditional one).
                p_edge = peg.edge_max_probability_id(
                    node, neighbor, None, label
                )
                if p_edge > ppu[pos]:
                    ppu[pos] = p_edge
                p_full = peg.label_probability_id(neighbor, label) * p_edge
                if p_full > fpu[pos]:
                    fpu[pos] = p_full
    return ContextInformation(sigma, cardinality, partial_upper, full_upper)
