"""Cardinality histograms with exponential curve fitting (Section 5.2.1).

For every label sequence ``X`` the offline phase records
``hist(X, α_i) = |PIndex(X, α_i)|`` — the number of indexed paths with
probability at least ``α_i`` — at the index's probability grid points.
At query time, the cardinality at an arbitrary threshold ``α`` is
estimated by fitting an exponential curve through the two surrounding
grid points, exactly as the paper describes.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.utils.errors import IndexError_


class CardinalityHistogram:
    """Cumulative path counts of one label sequence at grid thresholds."""

    def __init__(self, thresholds: Sequence[float], counts: Sequence[int]) -> None:
        if len(thresholds) != len(counts):
            raise IndexError_("histogram thresholds and counts length mismatch")
        if len(thresholds) < 1:
            raise IndexError_("histogram needs at least one grid point")
        # Merge duplicate grid thresholds (possible after a delta
        # compaction true-up re-derives a grid): two cumulative counts
        # at one threshold mean the larger one — keeping both would
        # either trip the monotonicity check below (the sort puts the
        # smaller first) or leave a zero-width interval whose span the
        # estimator divides by.
        merged: list = []
        for threshold, count in sorted(zip(thresholds, counts)):
            if merged and merged[-1][0] == threshold:
                merged[-1][1] = max(merged[-1][1], int(count))
            else:
                merged.append([threshold, int(count)])
        self.thresholds = tuple(t for t, _ in merged)
        self.counts = tuple(c for _, c in merged)
        for earlier, later in zip(self.counts, self.counts[1:]):
            if later > earlier:
                raise IndexError_(
                    "cumulative histogram counts must be non-increasing "
                    "in the threshold"
                )

    @classmethod
    def from_bucket_counts(
        cls, bucket_probs: Sequence[float], bucket_counts: Sequence[int]
    ) -> "CardinalityHistogram":
        """Build from per-bucket counts: cumulative sums from the top down.

        Duplicate bucket probabilities are summed first — they describe
        one bucket's count split across entries, and cumulating them
        separately would hand the constructor two different cumulative
        values for the same threshold.
        """
        totals: dict = {}
        for prob, count in zip(bucket_probs, bucket_counts):
            totals[prob] = totals.get(prob, 0) + int(count)
        pairs = sorted(totals.items())
        thresholds = [p for p, _ in pairs]
        counts = [c for _, c in pairs]
        cumulative = []
        running = 0
        for count in reversed(counts):
            running += count
            cumulative.append(running)
        cumulative.reverse()
        return cls(thresholds, cumulative)

    def estimate(self, alpha: float) -> float:
        """Estimated ``|PIndex(X, alpha)|`` via exponential interpolation.

        Between grid points ``(α_i, h_i)`` and ``(α_{i+1}, h_{i+1})`` the
        estimate is ``h_i * (h_{i+1}/h_i) ** ((α - α_i)/(α_{i+1} - α_i))``
        — an exponential through both points. Zero counts short-circuit
        (the exponential model degenerates); thresholds outside the grid
        clamp to the nearest grid value.
        """
        thresholds = self.thresholds
        if alpha <= thresholds[0]:
            return float(self.counts[0])
        if alpha >= thresholds[-1]:
            return float(self.counts[-1])
        # Locate the surrounding grid interval.
        lo = 0
        hi = len(thresholds) - 1
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if thresholds[mid] <= alpha:
                lo = mid
            else:
                hi = mid
        h_lo, h_hi = self.counts[lo], self.counts[hi]
        if h_lo <= 0:
            return 0.0
        if h_hi <= 0:
            # Exponential fit impossible with a zero endpoint; fall back
            # to linear decay toward zero.
            span = thresholds[hi] - thresholds[lo]
            frac = (alpha - thresholds[lo]) / span
            return h_lo * (1.0 - frac)
        span = thresholds[hi] - thresholds[lo]
        frac = (alpha - thresholds[lo]) / span
        return h_lo * math.exp(frac * math.log(h_hi / h_lo))

    def total(self) -> int:
        """Count of all indexed paths of the sequence (lowest threshold)."""
        return self.counts[0]
