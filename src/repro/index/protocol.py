"""The common lookup protocol every path-index implementation speaks.

Three implementations share this contract:

* :class:`~repro.index.path_index.PathIndex` — one store, the paper's
  monolithic index,
* :class:`~repro.index.sharded.ShardedPathIndex` — N hash shards, each
  a :class:`PathIndex` over its own store,
* :class:`~repro.index.batch.BatchLookupIndex` — a caching view used by
  batched query execution.

The protocol splits a lookup into the *canonical-space primitive*
:meth:`PathIndexProtocol.lookup_canonical` (what a store/shard actually
fetches) and the shared public :meth:`PathIndexProtocol.lookup`
(argument validation plus orientation of results to the requested
sequence), so every implementation validates, errors, and orients
identically and downstream consumers — ``QueryEngine``,
``index.bundle``, ``DiskPathStore``-backed serving — work transparently
over any of them.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Sequence

from repro.utils.errors import IndexError_


def store_read_totals(index) -> tuple:
    """``(read_ops, bytes_read)`` served so far by the store(s) behind ``index``.

    Unwraps caching and overlay views (``.inner`` of a batch view,
    ``.base`` of a delta overlay) down to the store-backed
    implementation; a sharded index sums over its shards. The engine
    snapshots these totals around its lookup stage to attribute store
    traffic to individual queries.
    """
    for _ in range(8):  # wrapper chains are short; bound the walk
        inner = getattr(index, "inner", None)
        if inner is None:
            inner = getattr(index, "base", None)
        if inner is None:
            break
        index = inner
    shards = getattr(index, "shards", None)
    if shards is not None:
        reads = sum(shard.store.read_count for shard in shards)
        nbytes = sum(getattr(shard.store, "bytes_read", 0) for shard in shards)
        return reads, nbytes
    store = getattr(index, "store", None)
    if store is not None:
        return store.read_count, getattr(store, "bytes_read", 0)
    return 0, 0


def canonical_sequence(label_seq: tuple) -> tuple:
    """Canonical orientation of a label sequence (min of itself/reverse).

    Labels are compared through ``repr`` so heterogeneous label types
    cannot break ordering.
    """
    seq = tuple(label_seq)
    rev = tuple(reversed(seq))
    return seq if tuple(map(repr, seq)) <= tuple(map(repr, rev)) else rev


def is_palindrome(label_seq: tuple) -> bool:
    """True when a label sequence reads the same in both directions."""
    seq = tuple(label_seq)
    return seq == tuple(reversed(seq))


def orient_to_sequence(paths: list, label_seq: tuple) -> list:
    """Orient canonical-space lookup results to a requested sequence.

    ``paths`` must be stored (canonical-oriented) paths of
    ``canonical_sequence(label_seq)``. Results are oriented so that
    ``result.nodes[i]`` carries ``label_seq[i]``; for palindromic
    sequences both alignments of each stored path are returned (they are
    distinct embeddings).
    """
    seq = tuple(label_seq)
    reverse_needed = canonical_sequence(seq) != seq
    palindrome = is_palindrome(seq)
    results = []
    for path in paths:
        oriented = path.reversed() if reverse_needed else path
        results.append(oriented)
        if palindrome and len(oriented.nodes) > 1:
            results.append(oriented.reversed())
    return results


class PathIndexProtocol(ABC):
    """Contract of a queryable context-aware path index.

    Implementations carry the grid parameters ``max_length``, ``beta``
    and ``gamma`` as attributes and provide the canonical-space
    primitives; the public :meth:`lookup` — validation, canonicalisation
    and orientation — is implemented once here.
    """

    max_length: int
    beta: float
    gamma: float

    # -- canonical-space primitives ------------------------------------

    @abstractmethod
    def lookup_canonical(self, canonical_seq: tuple, alpha: float) -> list:
        """Stored paths of one canonical sequence with probability >= alpha.

        ``canonical_seq`` must already be canonical
        (:func:`canonical_sequence`); results keep the stored canonical
        orientation and are *not* palindrome-duplicated — that is
        :func:`orient_to_sequence`'s job.
        """

    @abstractmethod
    def estimate_cardinality(self, label_seq: Sequence, alpha: float) -> float:
        """Histogram estimate of ``|PIndex(label_seq, alpha)|``."""

    # -- shared public lookup ------------------------------------------

    def check_lookup(self, label_seq: Sequence, alpha: float) -> tuple:
        """Validate lookup arguments; returns the sequence as a tuple.

        Raises :class:`IndexError_` for sequences longer than the index
        supports and for ``alpha < beta`` — such paths are not indexed;
        callers fall back to on-demand enumeration
        (:func:`repro.index.builder.enumerate_paths_for_sequence`).
        """
        seq = tuple(label_seq)
        if len(seq) - 1 > self.max_length:
            raise IndexError_(
                f"label sequence of length {len(seq) - 1} exceeds index "
                f"max path length {self.max_length}"
            )
        if alpha < self.beta:
            raise IndexError_(
                f"alpha {alpha} below index lower bound beta {self.beta} "
                f"for label sequence {seq!r}; compute paths on demand"
            )
        return seq

    def lookup(self, label_seq: Sequence, alpha: float) -> list:
        """All indexed paths matching ``label_seq`` with probability >= alpha.

        Results are oriented so that ``result.nodes[i]`` carries
        ``label_seq[i]``; see :func:`orient_to_sequence` for the
        palindrome contract and :meth:`check_lookup` for the errors.
        """
        seq = self.check_lookup(label_seq, alpha)
        canonical = canonical_sequence(seq)
        return orient_to_sequence(self.lookup_canonical(canonical, alpha), seq)

    # -- introspection --------------------------------------------------

    @abstractmethod
    def num_sequences(self) -> int:
        """Number of distinct canonical label sequences indexed."""

    @abstractmethod
    def num_paths(self) -> int:
        """Total number of stored (canonical) paths."""

    @abstractmethod
    def size_bytes(self) -> int:
        """Approximate index footprint in bytes."""

    @abstractmethod
    def stats(self) -> dict:
        """Summary including builder statistics."""
