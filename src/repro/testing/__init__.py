"""Test-support subsystems shipped with the library.

:mod:`repro.testing.faults` is the seedable fault-injection registry
the chaos suite and the ``REPRO_FAULTS`` environment hook drive. It
lives in the installed package (not under ``tests/``) because its
injection sites are threaded through production modules — the store
read path, the service worker pool, mutation-log replay, and the
network server — and those modules import it unconditionally.

:mod:`repro.testing.sanitizer` is the runtime concurrency sanitizer
(``REPRO_SANITIZE=1``): sanitized lock wrappers that detect lock-order
inversions at runtime, plus Eraser-style lockset checking of
``# guarded-by:`` annotations. It is exported as a submodule —
``sanitizer.install`` / ``sanitizer.uninstall`` would collide with the
fault registry's hooks of the same names.
"""

from repro.testing import sanitizer
from repro.testing.faults import (
    FaultInjector,
    FaultRule,
    check,
    fire,
    get_injector,
    install,
    install_from_env,
    uninstall,
)

__all__ = [
    "FaultInjector",
    "FaultRule",
    "check",
    "fire",
    "get_injector",
    "install",
    "install_from_env",
    "uninstall",
    "sanitizer",
]
